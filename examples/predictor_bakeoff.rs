//! Predictor bake-off on emulated game worlds.
//!
//! Spins up the paper's game emulator (Table I, Set 5: a mixed
//! aggressive/scout/team population with peak hours), trains the neural
//! predictor on day one, then scores all predictors on day two — both on
//! the world aggregate and per sub-zone, the granularity the paper's
//! provisioning actually uses (Sec. IV-B).
//!
//! Run with: `cargo run --release --example predictor_bakeoff`

use mmog_dc::predict::eval::{evaluate_accuracy, PredictorKind};
use mmog_dc::predict::subzone::SubZoneBank;
use mmog_dc::world::{GameEmulator, TraceSet};

fn main() {
    let set = TraceSet::Set5;
    println!(
        "Emulating {} ({:?}, peak hours: {})\n",
        set.name(),
        set.signal_type(),
        set.peak_hours()
    );
    let run = GameEmulator::run(set.config(), 99, 2 * 720);
    let totals = run.total_series().into_values();

    println!("World-aggregate accuracy (train on day 1, score day 2):");
    println!("{:<24} {:>10}", "Predictor", "Error [%]");
    let mut results = evaluate_accuracy(&totals, &PredictorKind::FIGURE5, 0.5);
    results.sort_by(|a, b| a.error_pct.partial_cmp(&b.error_pct).expect("finite"));
    for r in &results {
        println!("{:<24} {:>10.2}", r.name, r.error_pct);
    }

    // Per-sub-zone prediction: one predictor per sub-zone, world
    // forecast = sum of the zone forecasts (Sec. IV-B).
    println!("\nPer-sub-zone vs aggregate prediction (Last value):");
    let zones = run.grid.sub_zone_count();
    let mut bank = SubZoneBank::new(zones, |_| PredictorKind::LastValue.build(&[]));
    let mut aggregate = PredictorKind::LastValue.build(&[]);
    let (mut err_bank, mut err_agg, mut total_load) = (0.0, 0.0, 0.0);
    for (i, snapshot) in run.snapshots.iter().enumerate() {
        let actual = f64::from(snapshot.total);
        if i > 10 {
            err_bank += (bank.predict_total() - actual).abs();
            err_agg += (aggregate.predict() - actual).abs();
            total_load += actual;
        }
        bank.observe_u32(&snapshot.counts);
        aggregate.observe(actual);
    }
    println!(
        "  per-sub-zone bank ({zones} zones): {:.2}%",
        100.0 * err_bank / total_load
    );
    println!(
        "  single aggregate predictor:      {:.2}%",
        100.0 * err_agg / total_load
    );
    println!(
        "\nThe bank additionally yields a per-zone forecast map, which the\n\
         interaction-aware load model needs — the aggregate total alone\n\
         cannot weigh hotspots (Sec. IV-B)."
    );
}
