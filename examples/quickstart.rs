//! Quickstart: provision one MMOG on the paper's Table III platform.
//!
//! Generates a small RuneScape-like workload, runs dynamic provisioning
//! with the neural predictor, and prints the headline metrics next to a
//! static-provisioning baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use mmog_dc::prelude::*;

fn main() {
    // A 3-day workload with 8 server groups per region — big enough to
    // show the dynamics, small enough to run in seconds.
    let opts = ScenarioOpts {
        days: 3,
        seed: 42,
        group_cap: Some(8),
    };
    let trace = standard_trace(&opts);
    println!(
        "Workload: {} server groups, {} two-minute samples, global peak {:.0} players\n",
        trace.total_groups(),
        trace.global_series().len(),
        trace.global_series().max().unwrap_or(0.0),
    );

    // Dynamic provisioning: predict every 2 minutes, lease what's needed.
    let dynamic = Ecosystem::builder()
        .table3_platform()
        .game(Ecosystem::default_game(trace.clone()))
        .run();

    // The industry baseline: size every group for peak load, once.
    let static_ = Ecosystem::builder()
        .table3_platform()
        .game(Ecosystem::default_game(trace))
        .static_provisioning()
        .run();

    println!("{:<28} {:>12} {:>12}", "Metric", "Dynamic", "Static");
    println!("{:-<28} {:->12} {:->12}", "", "", "");
    for (name, r) in [
        ("CPU over-allocation [%]", ResourceType::Cpu),
        ("ExtNet[out] over-alloc [%]", ResourceType::ExtNetOut),
    ] {
        println!(
            "{:<28} {:>12.1} {:>12.1}",
            name,
            dynamic.metrics.avg_over(r),
            static_.metrics.avg_over(r)
        );
    }
    println!(
        "{:<28} {:>12.3} {:>12.3}",
        "CPU under-allocation [%]",
        dynamic.metrics.avg_under(ResourceType::Cpu),
        static_.metrics.avg_under(ResourceType::Cpu)
    );
    println!(
        "{:<28} {:>12} {:>12}",
        "|Y|>1% disruption events",
        dynamic.metrics.events(),
        static_.metrics.events()
    );
    println!(
        "\nDynamic provisioning allocated {:.1}x less CPU than static sizing,",
        (static_.metrics.avg_over(ResourceType::Cpu) + 100.0)
            / (dynamic.metrics.avg_over(ResourceType::Cpu) + 100.0)
    );
    println!(
        "at the cost of {} short under-allocation events.",
        dynamic.metrics.events()
    );
}
