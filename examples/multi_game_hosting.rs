//! Multi-game hosting: three MMOGs of different genres sharing one data
//! center federation (the Sec. V-F ecosystem).
//!
//! MMOG A is a slow-paced RPG (O(n·log n) interactions), MMOG B a
//! standard MMORPG (O(n²)), MMOG C a battle-heavy world (O(n²·log n)).
//! The example runs three workload mixes and shows that the platform's
//! efficiency is set by its biggest consumer.
//!
//! Run with: `cargo run --release --example multi_game_hosting`

use mmog_dc::prelude::*;
use mmog_dc::sim::scenario::{multi_mmog, ScenarioOpts as SimScenarioOpts};

fn main() {
    let opts = SimScenarioOpts {
        days: 3,
        seed: 21,
        group_cap: Some(6),
    };
    println!(
        "{:<14} {:>12} {:>12} {:>8} {:>8}",
        "Mix A/B/C [%]", "Over CPU [%]", "Under [%]", "Events", "Unmet"
    );
    for mix in [[100.0, 0.0, 0.0], [33.0, 33.0, 33.0], [0.0, 0.0, 100.0]] {
        let report = Simulation::new(multi_mmog(mix, &opts)).run();
        println!(
            "{:<14} {:>12.1} {:>12.3} {:>8} {:>8}",
            format!("{:.0}/{:.0}/{:.0}", mix[0], mix[1], mix[2]),
            report.metrics.avg_over(ResourceType::Cpu),
            report.metrics.avg_under(ResourceType::Cpu),
            report.metrics.events(),
            report.unmet_steps
        );
    }
    println!(
        "\nA pure-A (low-interaction) workload provisions much tighter; once a\n\
         compute-hungry B/C game enters the mix, the ecosystem's efficiency is\n\
         set by that biggest consumer (Table VII of the paper). Game operators\n\
         of type-A games may prefer their own infrastructure — or, as the paper\n\
         suggests for future work, request prioritisation by interaction type."
    );
}
