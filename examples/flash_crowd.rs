//! Flash crowd: dynamic provisioning through a content-release surge
//! and a mass-quit shock (the Figure 2 population events).
//!
//! The workload carries the December-2007 event sequence: an unpopular
//! decision costing a quarter of the player base within a day, then two
//! content releases each driving a ~50% surge. The example shows the
//! provisioner absorbing both directions and prints a day-by-day view.
//!
//! Run with: `cargo run --release --example flash_crowd`

use mmog_dc::prelude::*;

fn main() {
    // 28 days: decision on day 9, first release on day 17.
    let mut cfg = RuneScapeConfig::with_figure2_events(28, 11, 9);
    for region in &mut cfg.regions {
        region.groups = region.groups.min(6); // keep the example quick
    }
    let trace = generate(&cfg);

    let report = Ecosystem::builder()
        .table3_platform()
        .game(Ecosystem::default_game(trace.clone()))
        .run();

    // Daily aggregates: players vs. allocated vs. demanded CPU.
    let day = 720usize; // 2-minute ticks per day
    let players = trace.global_series();
    println!(
        "{:<6} {:>12} {:>14} {:>14} {:>10}",
        "Day", "Players", "CPU demand", "CPU allocated", "Over [%]"
    );
    let demand = &report.demand_cpu_series;
    let alloc = &report.alloc_cpu_series;
    for d in 0..demand.len() / day {
        let window = |s: &[f64]| s[d * day..(d + 1) * day].iter().sum::<f64>() / day as f64;
        let dm = window(demand.values());
        let al = window(alloc.values());
        let marker = match d {
            9 => "  <- unpopular decision",
            17 | 25 => "  <- content release",
            _ => "",
        };
        println!(
            "{:<6} {:>12.0} {:>14.1} {:>14.1} {:>10.1}{marker}",
            d + 1,
            window(&players.values()[30..]), // skip the warm-up offset
            dm,
            al,
            100.0 * al / dm - 100.0,
        );
    }

    println!(
        "\nTotals: over-allocation {:.1}%, under-allocation {:.3}%, {} disruption events.",
        report.metrics.avg_over(ResourceType::Cpu),
        report.metrics.avg_under(ResourceType::Cpu),
        report.metrics.events()
    );
    println!(
        "The allocation tracks the crash down (releasing leases as the time\n\
         bulks mature) and the surges up — the elasticity static provisioning\n\
         cannot offer."
    );
}
