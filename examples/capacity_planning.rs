//! Capacity planning: which hosting policy should a game operator rent
//! under, and how much headroom should it add on top of the prediction?
//!
//! Sweeps the Table IV policies and a headroom factor for an O(n²) MMOG
//! and prints the over-allocation / disruption-event trade-off — the
//! decision a real operator faces when choosing among hosters.
//!
//! Run with: `cargo run --release --example capacity_planning`

use mmog_dc::prelude::*;
use mmog_dc::sim::scenario;

fn main() {
    let opts = ScenarioOpts {
        days: 3,
        seed: 7,
        group_cap: Some(8),
    };

    println!("Sweep 1: hosting policy (headroom fixed at 1.0)\n");
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>10} {:>8}",
        "Policy", "CPU bulk", "Lease [h]", "Over CPU [%]", "Under [%]", "Events"
    );
    for n in 3..=11 {
        let policy = HostingPolicy::hp(n);
        let bulk = policy.bulk(ResourceType::Cpu).unwrap_or(0.0);
        let hours = policy.time_bulk.hours();
        let report = Simulation::new(scenario::policy_impact(policy, &opts)).run();
        println!(
            "{:<8} {:>10.2} {:>10.0} {:>12.1} {:>10.3} {:>8}",
            format!("HP-{n}"),
            bulk,
            hours,
            report.metrics.avg_over(ResourceType::Cpu),
            report.metrics.avg_under(ResourceType::Cpu),
            report.metrics.events()
        );
    }

    println!("\nSweep 2: headroom on the predicted demand (policy HP-5)\n");
    println!(
        "{:<10} {:>12} {:>10} {:>8}",
        "Headroom", "Over CPU [%]", "Under [%]", "Events"
    );
    for headroom in [1.0, 1.05, 1.1, 1.2, 1.35, 1.5] {
        let mut cfg = scenario::policy_impact(HostingPolicy::hp(5), &opts);
        for g in &mut cfg.games {
            g.headroom = headroom;
        }
        let report = Simulation::new(cfg).run();
        println!(
            "{:<10.2} {:>12.1} {:>10.3} {:>8}",
            headroom,
            report.metrics.avg_over(ResourceType::Cpu),
            report.metrics.avg_under(ResourceType::Cpu),
            report.metrics.events()
        );
    }

    println!(
        "\nReading the tables: finer CPU bulks and shorter leases cut the\n\
         over-allocation; headroom buys down disruption events at a linear\n\
         over-allocation cost (Sec. V-C/V-D of the paper)."
    );
}
