//! Shape-level assertions for the paper's headline claims, at test
//! scale. The full-scale numbers live in EXPERIMENTS.md; these tests
//! pin the *directions* so regressions in any crate surface here.

use mmog_dc::predict::eval::{evaluate_accuracy, PredictorKind};
use mmog_dc::prelude::*;
use mmog_dc::util::stats;
use mmog_dc::util::time::TICKS_PER_DAY;
use mmog_dc::workload::analysis;
use mmog_dc::workload::growth;
use mmog_dc::workload::packets;
use mmog_dc::world::{GameEmulator, TraceSet};

/// Sec. III-B / Figure 2: the population events reshape the global
/// series the way the paper describes.
#[test]
fn figure2_mass_quit_and_surge() {
    let mut cfg = RuneScapeConfig::with_figure2_events(24, 1, 8);
    cfg.regions.truncate(1);
    cfg.regions[0].groups = 8;
    let trace = generate(&cfg);
    let daily = trace
        .global_series()
        .downsample_mean(TICKS_PER_DAY as usize);
    let v = daily.values();
    let baseline = v[..7].iter().sum::<f64>() / 7.0;
    let crash = v[8..11].iter().fold(f64::INFINITY, |a, &b| a.min(b));
    let surge = v[16..22].iter().fold(0.0f64, |a, &b| a.max(b));
    assert!(
        crash < 0.88 * baseline,
        "crash {crash} vs baseline {baseline}"
    );
    assert!(
        surge > 1.05 * baseline,
        "surge {surge} vs baseline {baseline}"
    );
}

/// Sec. III-C / Figure 3: the diurnal cycle at lag 720 with the
/// negative peak at lag 360.
#[test]
fn figure3_acf_structure() {
    let opts = ScenarioOpts {
        days: 5,
        seed: 2,
        group_cap: Some(6),
    };
    let trace = standard_trace(&opts);
    let region = &trace.regions[0];
    let acfs = analysis::acf_per_group(region, TICKS_PER_DAY as usize + 10);
    let day_lag = TICKS_PER_DAY as usize;
    let mut cyclic = 0;
    for acf in &acfs {
        if acf.len() > day_lag && acf[day_lag] > 0.4 && acf[day_lag / 2] < 0.0 {
            cyclic += 1;
        }
    }
    assert!(
        cyclic as f64 >= 0.5 * acfs.len() as f64,
        "only {cyclic}/{} groups show the 24h/12h ACF structure",
        acfs.len()
    );
}

/// Sec. III-D / Figure 4: interaction type orders the packet traces.
#[test]
fn figure4_packet_orderings() {
    let traces = packets::generate_all(4000, 3);
    let med_iat = |n: &str| {
        traces
            .iter()
            .find(|t| t.name == n)
            .unwrap()
            .iat_ecdf()
            .inverse(0.5)
            .unwrap()
    };
    let med_len = |n: &str| {
        traces
            .iter()
            .find(|t| t.name == n)
            .unwrap()
            .length_ecdf()
            .inverse(0.5)
            .unwrap()
    };
    // Fast-paced low IAT regardless of crowding.
    assert!(med_iat("Trace 1") < med_iat("Trace 2"));
    assert!(med_iat("Trace 6") < med_iat("Trace 3"));
    // T2/T7 similar sizes, T7 faster.
    assert!((med_len("Trace 2") - med_len("Trace 7")).abs() < 0.15 * med_len("Trace 2"));
    assert!(med_iat("Trace 7") < med_iat("Trace 2"));
    // Group play: biggest packets, smallest IAT.
    assert!(med_len("Trace 4") > med_len("Trace 1"));
    assert!(med_iat("Trace 4") <= med_iat("Trace 1"));
}

/// Figure 1: six titles above 500k players in 2008 and a growing
/// market.
#[test]
fn figure1_market_shape() {
    let roster = growth::title_roster();
    assert_eq!(growth::titles_over(&roster, 2008.0, 0.5).len(), 6);
    assert!(
        growth::total_subscribers(&roster, 2008.0) > growth::total_subscribers(&roster, 2003.0)
    );
}

/// Figure 5: the neural predictor leads the pack on emulated data, and
/// the Average predictor trails badly.
#[test]
fn figure5_neural_wins_average_loses() {
    // A peak-hours set exposes the Average predictor's inability to
    // track the diurnal swing (the Table V "poor performance class").
    let run = GameEmulator::run(TraceSet::Set5.config(), 4, 2 * TICKS_PER_DAY as usize);
    let series = run.total_series().into_values();
    let results = evaluate_accuracy(&series, &PredictorKind::FIGURE5, 0.5);
    let err = |name: &str| {
        results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.error_pct)
            .unwrap()
    };
    assert!(
        err("Neural") < err("Average") / 2.0,
        "neural should crush Average"
    );
    assert!(
        err("Neural") < err("Last value") * 1.05,
        "neural ~beats last value"
    );
}

/// Sec. V-C / Table VI: static over-allocation grows with the update
/// model's complexity.
#[test]
fn table6_static_cost_grows_with_interaction_complexity() {
    use mmog_dc::sim::scenario::interaction_impact;
    let opts = ScenarioOpts {
        days: 1,
        seed: 5,
        group_cap: Some(3),
    };
    let over = |model: UpdateModel| {
        let mut cfg = interaction_impact(model, AllocationMode::Static, &opts);
        for g in &mut cfg.games {
            g.predictor = PredictorKind::LastValue;
        }
        cfg.train_ticks = 0;
        Simulation::new(cfg)
            .run()
            .metrics
            .avg_over(ResourceType::Cpu)
    };
    let linear = over(UpdateModel::Linear);
    let quad = over(UpdateModel::Quadratic);
    let cubic = over(UpdateModel::Cubic);
    assert!(linear < quad && quad < cubic, "{linear} {quad} {cubic}");
}

/// Sec. V-D / Figure 11: coarser CPU bulks raise over-allocation.
#[test]
fn figure11_bulk_direction() {
    use mmog_dc::sim::scenario::policy_impact;
    let opts = ScenarioOpts {
        days: 1,
        seed: 7,
        group_cap: Some(3),
    };
    let over = |hp: usize| {
        let mut cfg = policy_impact(HostingPolicy::hp(hp), &opts);
        for g in &mut cfg.games {
            g.predictor = PredictorKind::LastValue;
        }
        cfg.train_ticks = 0;
        Simulation::new(cfg)
            .run()
            .metrics
            .avg_over(ResourceType::Cpu)
    };
    assert!(over(3) < over(7), "HP-3 (fine) must beat HP-7 (coarse)");
}

/// Sec. V-D / Figure 12: longer time bulks raise over-allocation.
#[test]
fn figure12_time_bulk_direction() {
    use mmog_dc::sim::scenario::policy_impact;
    let opts = ScenarioOpts {
        days: 2,
        seed: 9,
        group_cap: Some(3),
    };
    let over = |hp: usize| {
        let mut cfg = policy_impact(HostingPolicy::hp(hp), &opts);
        for g in &mut cfg.games {
            g.predictor = PredictorKind::LastValue;
        }
        cfg.train_ticks = 0;
        Simulation::new(cfg)
            .run()
            .metrics
            .avg_over(ResourceType::Cpu)
    };
    assert!(over(5) < over(11), "3h lease must beat 48h lease");
}

/// Table I: the emulator's signal types separate as classified.
#[test]
fn table1_signal_types_separate() {
    let inst = |set: TraceSet| {
        let run = GameEmulator::run(set.config(), 11, TICKS_PER_DAY as usize);
        let pairs = run.interaction_series();
        let diffs: Vec<f64> = pairs.diff().values().iter().map(|d| d.abs()).collect();
        stats::mean(&diffs).unwrap() / pairs.mean().unwrap().max(1.0)
    };
    // Type I (Set 3) must be more instantaneous-dynamic than Type II (Set 7).
    assert!(inst(TraceSet::Set3) > inst(TraceSet::Set7));
}
