//! Cross-crate integration tests: the full pipeline from workload
//! synthesis through prediction, matching and metrics.

use mmog_dc::prelude::*;
use mmog_dc::sim::scenario;

fn tiny_opts(seed: u64) -> ScenarioOpts {
    ScenarioOpts {
        days: 1,
        seed,
        group_cap: Some(3),
    }
}

fn fast_game(trace: GameTrace) -> GameSpec {
    GameSpec {
        predictor: PredictorKind::LastValue,
        ..Ecosystem::default_game(trace)
    }
}

#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        Ecosystem::builder()
            .table3_platform()
            .game(fast_game(standard_trace(&tiny_opts(77))))
            .train_ticks(0)
            .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.metrics.events(), b.metrics.events());
    assert_eq!(a.alloc_cpu_series.values(), b.alloc_cpu_series.values());
    assert_eq!(a.unmet_steps, b.unmet_steps);
}

#[test]
fn dynamic_beats_static_on_over_allocation() {
    let trace = standard_trace(&tiny_opts(3));
    let dynamic = Ecosystem::builder()
        .table3_platform()
        .game(fast_game(trace.clone()))
        .train_ticks(0)
        .run();
    let static_ = Ecosystem::builder()
        .table3_platform()
        .game(fast_game(trace))
        .static_provisioning()
        .train_ticks(0)
        .run();
    let over_d = dynamic.metrics.avg_over(ResourceType::Cpu);
    let over_s = static_.metrics.avg_over(ResourceType::Cpu);
    assert!(
        over_s > 1.5 * over_d,
        "static ({over_s:.1}%) should far exceed dynamic ({over_d:.1}%)"
    );
    // Static trades that for zero under-allocation.
    assert_eq!(static_.metrics.events(), 0);
    assert!(static_.metrics.avg_under(ResourceType::Cpu).abs() < 1e-9);
}

#[test]
fn allocation_never_exceeds_platform_capacity() {
    let report = Ecosystem::builder()
        .table3_platform()
        .game(fast_game(standard_trace(&tiny_opts(5))))
        .train_ticks(0)
        .run();
    let capacity: f64 = table3_hp12().iter().map(|c| c.spec.capacity().cpu).sum();
    for &alloc in report.alloc_cpu_series.values() {
        assert!(
            alloc <= capacity + 1e-6,
            "allocated {alloc} beyond capacity {capacity}"
        );
    }
}

#[test]
fn latency_tolerance_moves_allocation_and_changes_efficiency() {
    let mk = |tolerance| {
        let mut cfg = scenario::latency_impact(tolerance, &tiny_opts(9));
        for g in &mut cfg.games {
            g.predictor = PredictorKind::LastValue;
        }
        cfg.train_ticks = 0;
        let centers = cfg.centers.clone();
        (Simulation::new(cfg).run(), centers)
    };
    let (same, same_centers) = mk(DistanceClass::SameLocation);
    let (far, far_centers) = mk(DistanceClass::VeryFar);
    // Tight tolerance pins everything to the co-located bucket.
    let same_shares = same.allocation_by_distance_class(&same_centers);
    assert!(
        same_shares[0].1 > 99.9,
        "same-location share {:?}",
        same_shares
    );
    // Loose tolerance lets requests travel: some allocation leaves the
    // co-located bucket for the finer-grained remote centers…
    let far_shares = far.allocation_by_distance_class(&far_centers);
    assert!(
        far_shares[0].1 < same_shares[0].1,
        "far shares {far_shares:?}"
    );
    // …which lowers total allocation: East-coast requests escape their
    // coarse local policies (the Sec. V-E penalty mechanism).
    assert!(
        far.alloc_cpu_series.sum() < same.alloc_cpu_series.sum(),
        "loose tolerance should allocate less in total"
    );
}

#[test]
fn coarse_east_centers_attract_less_allocation_per_unit() {
    let cfg = scenario::latency_impact(DistanceClass::VeryFar, &tiny_opts(11));
    let mut cfg = cfg;
    for g in &mut cfg.games {
        g.predictor = PredictorKind::LastValue;
    }
    cfg.train_ticks = 0;
    let report = Simulation::new(cfg).run();
    let util = |name: &str| {
        let u = report
            .center_usage
            .iter()
            .find(|u| u.name == name)
            .unwrap_or_else(|| panic!("{name} missing"));
        u.cpu_total / (u.capacity_cpu * report.metrics.samples() as f64)
    };
    // Fine-grained west coast runs hotter than coarse east coast.
    let west = util("US West (1)");
    let east = util("US East (1)");
    assert!(
        west > east,
        "west utilisation {west:.3} should exceed east {east:.3}"
    );
}

#[test]
fn multi_game_traces_partition_cleanly_through_engine() {
    let cfg = scenario::multi_mmog([0.4, 0.3, 0.3], &tiny_opts(13));
    let mut cfg = cfg;
    for g in &mut cfg.games {
        g.predictor = PredictorKind::LastValue;
    }
    cfg.train_ticks = 0;
    let total_groups: usize = cfg.games.iter().map(|g| g.workload.group_count()).sum();
    assert_eq!(total_groups, standard_trace(&tiny_opts(13)).total_groups());
    let report = Simulation::new(cfg).run();
    assert!(report.metrics.samples() > 0);
    // Usage attribution covers at least two distinct operators.
    let mut ops: Vec<u32> = report
        .center_usage
        .iter()
        .flat_map(|u| u.cpu_by_operator.keys().copied())
        .collect();
    ops.sort_unstable();
    ops.dedup();
    assert!(ops.len() >= 2, "expected multiple operators, got {ops:?}");
}

#[test]
fn trace_survives_csv_round_trip_into_simulation() {
    let trace = standard_trace(&tiny_opts(17));
    let parsed = GameTrace::from_csv(&trace.to_csv()).expect("round trip");
    // Region names are not preserved by CSV (documented); the engine
    // still runs and produces identical aggregate demand.
    let run = |t: GameTrace| {
        Ecosystem::builder()
            .table3_platform()
            .game(fast_game(t))
            .train_ticks(0)
            .run()
    };
    let a = run(trace);
    let b = run(parsed);
    assert_eq!(a.demand_cpu_series.values(), b.demand_cpu_series.values());
}

#[test]
fn headroom_reduces_under_allocation() {
    let mk = |headroom: f64| {
        let mut cfg = scenario::prediction_impact(
            PredictorKind::LastValue,
            AllocationMode::Dynamic,
            &tiny_opts(19),
        );
        for g in &mut cfg.games {
            g.headroom = headroom;
        }
        cfg.train_ticks = 0;
        Simulation::new(cfg).run()
    };
    let plain = mk(1.0);
    let padded = mk(1.3);
    assert!(
        padded.metrics.avg_under(ResourceType::Cpu)
            >= plain.metrics.avg_under(ResourceType::Cpu) - 1e-12,
        "headroom should not worsen under-allocation"
    );
    assert!(
        padded.metrics.avg_over(ResourceType::Cpu) > plain.metrics.avg_over(ResourceType::Cpu),
        "headroom must cost over-allocation"
    );
}
