//! Offline stand-in for `proptest`.
//!
//! The hermetic build has no crates.io access, so this crate implements
//! the subset of the proptest API the workspace's property tests use:
//! the `proptest!` macro (with optional `#![proptest_config(..)]`),
//! range/tuple/`vec`/`option` strategies, `prop_map`, `any::<u64>()`
//! and the `prop_assert*` macros. Sampling is fully deterministic — the
//! case index seeds a SplitMix64/Xoshiro256++ stream — so failures
//! reproduce bit-for-bit without a persistence file.

pub mod test_runner {
    //! The deterministic RNG driving strategy sampling.

    /// SplitMix64 step, used for seeding.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Deterministic Xoshiro256++ generator for test-case sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds the stream for one test case.
        #[must_use]
        pub fn deterministic(case: u64) -> Self {
            let mut sm = case.wrapping_mul(0xA076_1D64_78BD_642F) ^ 0x2545_F491_4F6C_DD1D;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, n)`; 0 when `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                return 0;
            }
            // Multiply-shift; the tiny modulo bias is irrelevant for
            // test-case generation.
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! Strategies: deterministic value generators.

    use crate::test_runner::TestRng;

    /// A generator of test values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from the deterministic stream.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (self.start, self.end);
                    if hi <= lo { lo } else { lo + (hi - lo) * rng.unit_f64() as $t }
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    if hi <= lo { lo } else { lo + (hi - lo) * rng.unit_f64() as $t }
                }
            }
        )*};
    }
    impl_float_range!(f32, f64);

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (self.start, self.end);
                    if hi <= lo { lo } else {
                        let span = hi.abs_diff(lo) as u64;
                        lo.wrapping_add(rng.below(span) as $t)
                    }
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    if hi <= lo { lo } else {
                        let span = (hi.abs_diff(lo) as u64).saturating_add(1);
                        lo.wrapping_add(rng.below(span) as $t)
                    }
                }
            }
        )*};
    }
    impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_tuple {
        ($(($($name:ident),+);)*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
        (A, B, C, D, E, F);
    }

    /// `any::<T>()` support for the primitives the tests draw.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as Self
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy for an unconstrained value of `T`.
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! `prop::collection` — sized collections of strategy draws.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi: r.end.saturating_sub(1).max(r.start),
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: (*r.end()).max(*r.start()),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from the range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.saturating_add(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, sizes)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `prop::option` — optional values.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `None` roughly a quarter of the time.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }

    /// `prop::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// Controls how many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of deterministic cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` module alias used by `prop::collection::vec` paths.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Asserts a property-level condition (plain `assert!` here).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts property-level equality (plain `assert_eq!` here).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts property-level inequality (plain `assert_ne!` here).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The `proptest!` block: each contained `#[test] fn name(pat in
/// strategy, ..) { body }` becomes a test running `cases` deterministic
/// samples. Failures report the case index via the panic location.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..u64::from(config.cases) {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(__case);
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}
