//! Offline stand-in for the `serde` facade.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so
//! that a real serde can be dropped in when network access exists, but
//! no code path serialises through serde at runtime. This shim provides
//! the two marker traits and re-exports the no-op derives, which is all
//! the hermetic build needs.

/// Marker for types that would be serialisable under real serde.
pub trait Serialize {}

/// Marker for types that would be deserialisable under real serde.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
