//! Offline stand-in for the `bytes` crate.
//!
//! Implements exactly the subset the workspace's packet codec uses:
//! big-endian `put_*`/`get_*` through the [`Buf`]/[`BufMut`] traits,
//! `BytesMut::with_capacity` + `freeze`, and `Bytes` views with
//! `slice`, `from_static` and `len`. Backed by plain `Vec<u8>`/offset
//! pairs instead of the real crate's refcounted buffers — correctness
//! over zero-copy, since the hermetic build has no crates.io access.

use std::ops::RangeBounds;

/// Read access to a contiguous buffer, big-endian decode helpers.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Consumes and returns `n` raw bytes.
    ///
    /// # Panics
    /// Panics when fewer than `n` bytes remain.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// Consumes a big-endian `u32`.
    ///
    /// # Panics
    /// Panics when fewer than four bytes remain.
    fn get_u32(&mut self) -> u32 {
        let b = self.take_bytes(4);
        u32::from_be_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Consumes a big-endian `u64`.
    ///
    /// # Panics
    /// Panics when fewer than eight bytes remain.
    fn get_u64(&mut self) -> u64 {
        let b = self.take_bytes(8);
        u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    /// Consumes a big-endian `f64`.
    ///
    /// # Panics
    /// Panics when fewer than eight bytes remain.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

/// Write access to a growable buffer, big-endian encode helpers.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// An immutable byte buffer with a consume cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self {
            data: bytes.to_vec(),
            pos: 0,
        }
    }

    /// Unconsumed length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no bytes remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the sub-range of the unconsumed bytes.
    ///
    /// # Panics
    /// Panics when the range exceeds the unconsumed length.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of range");
        Self {
            data: self.data[self.pos + start..self.pos + end].to_vec(),
            pos: 0,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underflow: {n} > {}", self.len());
        let start = self.pos;
        self.pos += n;
        &self.data[start..self.pos]
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with at least the given capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Current length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_f64(1.5);
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 12);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_f64(), 1.5);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_is_a_copy_of_the_window() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.len(), 3);
        let mut s = s;
        assert_eq!(s.take_bytes(3), &[2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from_static(&[1, 2]);
        let _ = b.get_u32();
    }
}
