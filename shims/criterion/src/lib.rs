//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with throughput and per-group sample sizes,
//! `Bencher::iter`/`iter_batched` and `BenchmarkId` — backed by a small
//! wall-clock harness: warm up briefly, time a fixed number of samples,
//! report min/median/mean per iteration. No statistics engine, no
//! plotting; numbers print to stdout in a stable format.
//!
//! Set `CRITERION_SAMPLE_MS` to change the per-benchmark time budget
//! (milliseconds, default 200).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Batch sizing hints for [`Bencher::iter_batched`] (accepted for
/// API compatibility; every batch re-runs the setup closure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// Throughput annotation printed alongside the timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    #[must_use]
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    /// Identifier from the parameter alone.
    #[must_use]
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed over by a benchmark body.
pub struct Bencher {
    budget: Duration,
    samples: Vec<f64>,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Self {
            budget,
            samples: Vec::new(),
        }
    }

    /// Times `routine` repeatedly until the budget is spent.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: how many iterations fit in ~1/10 of the budget?
        let calib = Instant::now();
        let mut n = 0u64;
        while calib.elapsed() < self.budget / 10 {
            black_box(routine());
            n += 1;
        }
        let per_batch = n.max(1);
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let t = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            self.samples
                .push(t.elapsed().as_secs_f64() / per_batch as f64);
        }
    }

    /// Times `routine` on fresh inputs produced by `setup` (setup time
    /// excluded from the measurement).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let start = Instant::now();
        loop {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed().as_secs_f64());
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }
}

fn format_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

fn report(name: &str, samples: &mut [f64], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 / median)
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 / median)
        }
        _ => String::new(),
    };
    println!(
        "{name:<48} min {:>10}  median {:>10}  mean {:>10}{rate}",
        format_secs(min),
        format_secs(median),
        format_secs(mean),
    );
}

fn default_budget() -> Duration {
    let ms = std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200u64);
    Duration::from_millis(ms)
}

/// The benchmark harness entry point.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            budget: default_budget(),
        }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.budget, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            budget: default_budget(),
            throughput: None,
        }
    }
}

fn run_one(
    name: &str,
    budget: Duration,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher::new(budget);
    f(&mut b);
    report(name, &mut b.samples, throughput);
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    budget: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the wall-clock budget, not the
    /// sample count, bounds each benchmark here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = format!("{}/{id}", self.name);
        run_one(&name, self.budget, self.throughput, f);
        self
    }

    /// Runs one benchmark with an explicit input reference.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{id}", self.name);
        run_one(&name, self.budget, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags (e.g. --bench); this
            // shim runs everything unconditionally.
            $( $group(); )+
        }
    };
}
