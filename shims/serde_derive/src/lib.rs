//! No-op `Serialize`/`Deserialize` derives.
//!
//! This workspace builds in a hermetic environment with no crates.io
//! access, and nothing in it actually serialises data (reports are
//! rendered as plain text / hand-written JSON). The derives therefore
//! only need to *accept* the annotation syntax, including `#[serde(..)]`
//! field attributes, and expand to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
