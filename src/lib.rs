//! `mmog-dc` — umbrella crate for the SC'08 MMOG resource-provisioning
//! reproduction.
//!
//! This crate re-exports the whole workspace so downstream users can add
//! one dependency and reach every subsystem:
//!
//! - [`core`] / [`prelude`] — the high-level ecosystem API (start here),
//! - [`world`] — the game-world emulator,
//! - [`workload`] — trace synthesis and analysis,
//! - [`predict`] — load predictors including the neural network,
//! - [`datacenter`] — data centers, hosting policies, matching,
//! - [`sim`] — the trace-driven provisioning simulator,
//! - [`util`] — RNG, statistics, time series, geography.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use mmog_core as core;
pub use mmog_datacenter as datacenter;
pub use mmog_predict as predict;
pub use mmog_sim as sim;
pub use mmog_util as util;
pub use mmog_workload as workload;
pub use mmog_world as world;

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use mmog_core::prelude::*;
}
