//! Shared substrate for the `mmog-dc` workspace.
//!
//! This crate holds the domain-agnostic building blocks every other crate
//! leans on:
//!
//! - [`rng`] — a deterministic, dependency-free pseudo-random toolkit
//!   (SplitMix64 seeding, Xoshiro256++ core, and the distributions the
//!   simulators need). Simulation results are bit-reproducible for a given
//!   seed on every platform.
//! - [`stats`] — descriptive statistics used by the workload analysis of
//!   Section III of the paper: quantiles, IQR, autocorrelation, empirical
//!   CDFs, histograms and online (Welford) accumulators.
//! - [`series`] — fixed-interval time series (the paper samples everything
//!   every two simulated minutes) with resampling and windowed operators.
//! - [`geo`] — geographic coordinates and great-circle distances for the
//!   latency-tolerance experiments of Section V-E.
//! - [`time`] — simulation clock types ([`SimTime`], [`SimDuration`], ticks).
//! - [`memo`] — process-wide memoisation of expensive deterministic
//!   builds (shared workload caching for experiment sweeps).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod geo;
pub mod memo;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;

pub use geo::{DistanceClass, GeoPoint};
pub use rng::Rng64;
pub use series::TimeSeries;
pub use stats::{OnlineStats, Summary};
pub use time::{SimDuration, SimTime, TICK_MINUTES};
