//! Descriptive statistics for workload analysis.
//!
//! Section III of the paper characterises the RuneScape traces with
//! medians, min/max envelopes, interquartile ranges, autocorrelation
//! functions and empirical CDFs. This module provides those primitives
//! (plus online accumulators used by the simulator's metric collection).

use serde::{Deserialize, Serialize};

/// Arithmetic mean; `None` for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population variance; `None` for an empty slice.
#[must_use]
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation; `None` for an empty slice.
#[must_use]
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Quantile by linear interpolation between closest ranks
/// (the "type 7" estimator used by R and NumPy). `q` is clamped to `[0,1]`.
/// Returns `None` for an empty slice.
#[must_use]
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    Some(quantile_sorted(&sorted, q))
}

/// Quantile on data already sorted ascending. Panics in debug builds if
/// the input is empty.
#[must_use]
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let q = q.clamp(0.0, 1.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Median (0.5 quantile); `None` for an empty slice.
#[must_use]
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Interquartile range `Q3 − Q1`; `None` for an empty slice.
///
/// The middle sub-plot of Figure 3 plots exactly this across the server
/// groups of a region at every time step.
#[must_use]
pub fn iqr(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in iqr input"));
    Some(quantile_sorted(&sorted, 0.75) - quantile_sorted(&sorted, 0.25))
}

/// Sample autocorrelation function for lags `0..=max_lag`.
///
/// Returns the normalized ACF (lag 0 ≡ 1). Series shorter than 2 samples
/// or with zero variance yield an empty vector. The bottom sub-plot of
/// Figure 3 computes this per server group; the paper reports a strong
/// positive peak at lag 720 (24 h of 2-min samples) and a negative peak
/// at lag 360 (12 h).
#[must_use]
pub fn autocorrelation(xs: &[f64], max_lag: usize) -> Vec<f64> {
    let n = xs.len();
    if n < 2 {
        return Vec::new();
    }
    let m = mean(xs).expect("non-empty");
    let denom: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    if denom <= f64::EPSILON {
        return Vec::new();
    }
    let max_lag = max_lag.min(n - 1);
    let mut acf = Vec::with_capacity(max_lag + 1);
    for lag in 0..=max_lag {
        let num: f64 = (0..n - lag).map(|i| (xs[i] - m) * (xs[i + lag] - m)).sum();
        acf.push(num / denom);
    }
    acf
}

/// An empirical cumulative distribution function.
///
/// Figure 4 of the paper plots the ECDF of packet lengths and packet
/// inter-arrival times for nine session traces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF from raw samples (NaNs are rejected with a panic
    /// in debug builds and dropped in release builds).
    #[must_use]
    pub fn new(mut samples: Vec<f64>) -> Self {
        debug_assert!(samples.iter().all(|x| !x.is_nan()), "NaN sample");
        samples.retain(|x| !x.is_nan());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("NaNs removed"));
        Self { sorted: samples }
    }

    /// Number of underlying samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the ECDF holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)` as a fraction in `[0, 1]`.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: smallest sample `x` with `eval(x) >= p`.
    #[must_use]
    pub fn inverse(&self, p: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        let idx = ((p * self.sorted.len() as f64).ceil() as usize).max(1) - 1;
        Some(self.sorted[idx.min(self.sorted.len() - 1)])
    }

    /// Evaluates the ECDF at evenly spaced points over `[lo, hi]`,
    /// producing `(x, percent)` pairs suited for plotting figures like
    /// Figure 4 (truncated at a maximum value).
    #[must_use]
    pub fn curve(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        if points == 0 || hi < lo {
            return Vec::new();
        }
        (0..points)
            .map(|i| {
                let x = if points == 1 {
                    lo
                } else {
                    lo + (hi - lo) * i as f64 / (points - 1) as f64
                };
                (x, 100.0 * self.eval(x))
            })
            .collect()
    }
}

/// A fixed-width histogram over `[lo, hi)` with saturating edge bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width buckets over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Records a sample; values outside the range clamp to the edge bins.
    pub fn record(&mut self, x: f64) {
        let bins = self.counts.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            bins - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
        self.total += 1;
    }

    /// Raw bin counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total recorded samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bin centre for bin `i`.
    #[must_use]
    pub fn center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }
}

/// Online mean/variance/min/max accumulator (Welford's algorithm).
///
/// The simulation engine records Ω(t) and Υ(t) at every 2-minute step of
/// a 2-week run — more than 10 000 samples per metric — so metric
/// summaries are accumulated online instead of buffered.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 for an empty accumulator).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than 2 samples).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest recorded sample (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Self) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A five-number-plus summary of a batch of samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample count.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Summary {
    /// Summarises a batch; `None` for an empty slice.
    #[must_use]
    pub fn of(xs: &[f64]) -> Option<Self> {
        if xs.is_empty() {
            return None;
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in summary input"));
        Some(Self {
            count: sorted.len(),
            min: sorted[0],
            q1: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            q3: quantile_sorted(&sorted, 0.75),
            max: sorted[sorted.len() - 1],
            mean: mean(xs).expect("non-empty"),
        })
    }

    /// Interquartile range.
    #[must_use]
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basic() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), Some(2.5));
        assert!((variance(&xs).unwrap() - 1.25).abs() < 1e-12);
        assert!((std_dev(&xs).unwrap() - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[]), None);
        assert_eq!(median(&[]), None);
        assert_eq!(iqr(&[]), None);
        assert_eq!(quantile(&[], 0.5), None);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), Some(2.5));
    }

    #[test]
    fn quantile_endpoints_and_clamping() {
        let xs = [10.0, 20.0, 30.0];
        assert_eq!(quantile(&xs, 0.0), Some(10.0));
        assert_eq!(quantile(&xs, 1.0), Some(30.0));
        assert_eq!(quantile(&xs, -0.5), Some(10.0));
        assert_eq!(quantile(&xs, 1.5), Some(30.0));
    }

    #[test]
    fn iqr_of_uniform_grid() {
        let xs: Vec<f64> = (0..=100).map(f64::from).collect();
        assert!((iqr(&xs).unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn acf_lag_zero_is_one() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).sin()).collect();
        let acf = autocorrelation(&xs, 10);
        assert!((acf[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn acf_detects_period() {
        // A pure 24-sample period should have ACF peak near lag 24 and a
        // trough near lag 12 — the structure Figure 3 shows at 720/360.
        let period = 24usize;
        let xs: Vec<f64> = (0..480)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / period as f64).sin())
            .collect();
        let acf = autocorrelation(&xs, 30);
        assert!(acf[period] > 0.9, "peak at lag 24: {}", acf[period]);
        assert!(
            acf[period / 2] < -0.9,
            "trough at lag 12: {}",
            acf[period / 2]
        );
    }

    #[test]
    fn acf_constant_series_is_empty() {
        assert!(autocorrelation(&[5.0; 40], 10).is_empty());
        assert!(autocorrelation(&[1.0], 10).is_empty());
    }

    #[test]
    fn ecdf_eval_and_inverse() {
        let ecdf = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ecdf.eval(0.0), 0.0);
        assert_eq!(ecdf.eval(2.0), 0.5);
        assert_eq!(ecdf.eval(10.0), 1.0);
        assert_eq!(ecdf.inverse(0.5), Some(2.0));
        assert_eq!(ecdf.inverse(1.0), Some(4.0));
        assert_eq!(ecdf.inverse(0.0), Some(1.0));
    }

    #[test]
    fn ecdf_empty() {
        let ecdf = Ecdf::new(vec![]);
        assert!(ecdf.is_empty());
        assert_eq!(ecdf.eval(1.0), 0.0);
        assert_eq!(ecdf.inverse(0.5), None);
        assert!(ecdf.curve(0.0, 1.0, 0).is_empty());
    }

    #[test]
    fn ecdf_curve_monotone() {
        let ecdf = Ecdf::new((0..100).map(f64::from).collect());
        let curve = ecdf.curve(0.0, 99.0, 50);
        assert_eq!(curve.len(), 50);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be monotone");
        }
        assert!((curve.last().unwrap().1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_clamps_edges() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(-5.0);
        h.record(50.0);
        h.record(3.0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[4], 1);
        assert_eq!(h.counts()[1], 1);
        assert!((h.center(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn online_stats_matches_batch() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        let mut os = OnlineStats::new();
        for &x in &xs {
            os.record(x);
        }
        assert_eq!(os.count(), 1000);
        assert!((os.mean() - mean(&xs).unwrap()).abs() < 1e-9);
        assert!((os.variance() - variance(&xs).unwrap()).abs() < 1e-6);
        assert_eq!(os.min(), Some(0.0));
        assert_eq!(os.max(), Some(100.0));
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sqrt()).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..200] {
            a.record(x);
        }
        for &x in &xs[200..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn online_stats_merge_with_empty() {
        let mut a = OnlineStats::new();
        a.record(1.0);
        let b = OnlineStats::new();
        let mut c = a;
        c.merge(&b);
        assert_eq!(c.count(), 1);
        let mut d = OnlineStats::new();
        d.merge(&a);
        assert_eq!(d.count(), 1);
        assert_eq!(d.mean(), 1.0);
    }

    #[test]
    fn summary_quartiles() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.iqr(), 2.0);
        assert_eq!(s.mean, 3.0);
    }
}
