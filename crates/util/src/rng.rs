//! Deterministic pseudo-random number generation.
//!
//! The provisioning simulator must be bit-reproducible for a given seed so
//! that every table and figure of the paper can be regenerated exactly,
//! regardless of the platform or the version of external crates. We
//! therefore implement a small, well-known generator stack in-crate:
//!
//! - **SplitMix64** for seed expansion (as recommended by the Xoshiro
//!   authors),
//! - **Xoshiro256++** as the core generator — fast, 256-bit state,
//!   excellent statistical quality for simulation workloads,
//! - the handful of distributions the emulator and the trace generator
//!   need (uniform, Bernoulli, normal, exponential, Poisson, Zipf, Pareto,
//!   triangular) plus Fisher–Yates shuffling and weighted choice.
//!
//! The generator intentionally does **not** implement `rand`'s traits:
//! hot simulation loops stay free of external API churn. `rand` remains
//! available at the workspace edges (e.g. experiment orchestration).

/// SplitMix64 step: used for seeding and as a cheap stateless mixer.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a master seed with a stream index into an uncorrelated child
/// seed (two SplitMix64 rounds over the concatenated inputs). Stateless
/// and order-independent: callers may seed stream `i` from any thread
/// at any time and always obtain the same value.
#[inline]
#[must_use]
pub fn stream_seed(master: u64, index: u64) -> u64 {
    let mut sm = master;
    let a = splitmix64(&mut sm);
    let mut sm = a ^ index.wrapping_mul(0xA24B_AED4_963E_E407);
    splitmix64(&mut sm)
}

/// A deterministic Xoshiro256++ pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use mmog_util::rng::Rng64;
/// let mut a = Rng64::seed_from(42);
/// let mut b = Rng64::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rng64 {
    s: [u64; 4],
    /// Cached second normal variate from the Box–Muller transform.
    cached_normal: Option<f64>,
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed, expanding it through
    /// SplitMix64 so that similar seeds yield uncorrelated streams.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self {
            s,
            cached_normal: None,
        }
    }

    /// Derives an independent child generator; useful to give each
    /// entity/server group its own stream without cross-correlation.
    #[must_use]
    pub fn split(&mut self) -> Self {
        Self::seed_from(self.next_u64())
    }

    /// Creates the `index`-th stream of a seed family. Unlike [`split`],
    /// this is stateless: stream `i` of a given master seed is always
    /// the same generator, no matter in which order (or on which
    /// thread) the streams are instantiated — the anchor of the
    /// parallel engine's determinism guarantee.
    ///
    /// [`split`]: Self::split
    #[must_use]
    pub fn stream(master: u64, index: u64) -> Self {
        Self::seed_from(stream_seed(master, index))
    }

    /// Returns the next raw 64-bit output (Xoshiro256++ scrambler).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of entropy.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // Take the top 53 bits — the standard unbiased construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. Returns `lo` when the range is empty.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's unbiased method.
    /// Returns 0 when `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)` (empty ranges return `lo`).
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.below(hi - lo)
    }

    /// Uniform `usize` in `[0, n)`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Standard normal variate via the Box–Muller transform (the second
    /// variate of each pair is cached).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.cached_normal.take() {
            return z;
        }
        // Rejection-free polar-less form; u1 is kept away from zero.
        let u1 = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal variate with the given mean and standard deviation.
    #[inline]
    pub fn normal_with(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.normal()
    }

    /// Exponential variate with rate `lambda` (> 0).
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        debug_assert!(lambda > 0.0, "exponential rate must be positive");
        let u = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        -u.ln() / lambda
    }

    /// Poisson variate with mean `lambda`. Uses Knuth's product method for
    /// small means and a normal approximation above 30 (adequate for the
    /// arrival processes in the emulator).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        if lambda <= 0.0 {
            return 0;
        }
        if lambda > 30.0 {
            let z = self.normal_with(lambda, lambda.sqrt());
            return z.max(0.0).round() as u64;
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Pareto variate with scale `x_m` and shape `alpha` (both > 0);
    /// heavy-tailed session lengths and packet bursts use this.
    pub fn pareto(&mut self, x_m: f64, alpha: f64) -> f64 {
        debug_assert!(x_m > 0.0 && alpha > 0.0);
        let u = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        x_m / u.powf(1.0 / alpha)
    }

    /// Zipf-distributed rank in `[1, n]` with exponent `s`, via inverse
    /// transform on the precomputable harmonic weights. O(n) per call —
    /// fine for the small `n` used here; use [`ZipfTable`] for hot loops.
    pub fn zipf(&mut self, n: u64, s: f64) -> u64 {
        ZipfTable::new(n, s).sample(self)
    }

    /// Triangular variate on `[lo, hi]` with the given mode.
    pub fn triangular(&mut self, lo: f64, hi: f64, mode: f64) -> f64 {
        debug_assert!(lo <= mode && mode <= hi);
        if hi <= lo {
            return lo;
        }
        let u = self.f64();
        let fc = (mode - lo) / (hi - lo);
        if u < fc {
            lo + ((hi - lo) * (mode - lo) * u).sqrt()
        } else {
            hi - ((hi - lo) * (hi - mode) * (1.0 - u)).sqrt()
        }
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks an index according to non-negative `weights`. Returns `None`
    /// when the weights are empty or sum to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        // NaN weights never pass the > 0.0 filter, so `total` is a
        // plain non-negative sum.
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if target < w {
                return Some(i);
            }
            target -= w;
        }
        // Floating-point slack: fall back to the last positive weight.
        weights.iter().rposition(|&w| w > 0.0)
    }
}

/// Precomputed cumulative weights for repeated Zipf sampling.
#[derive(Debug, Clone)]
pub struct ZipfTable {
    cumulative: Vec<f64>,
}

impl ZipfTable {
    /// Builds the table for ranks `1..=n` with exponent `s`.
    #[must_use]
    pub fn new(n: u64, s: f64) -> Self {
        let n = n.max(1) as usize;
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cumulative.push(acc);
        }
        Self { cumulative }
    }

    /// Samples a rank in `[1, n]`.
    pub fn sample(&self, rng: &mut Rng64) -> u64 {
        let total = *self.cumulative.last().expect("table is never empty");
        let target = rng.f64() * total;
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&target).expect("weights are finite"))
        {
            Ok(i) | Err(i) => (i.min(self.cumulative.len() - 1) + 1) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_for_same_seed() {
        let mut a = Rng64::seed_from(7);
        let mut b = Rng64::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::seed_from(1);
        let mut b = Rng64::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_independent_of_parent_continuation() {
        let mut parent = Rng64::seed_from(9);
        let mut child = parent.split();
        let c0 = child.next_u64();
        let p0 = parent.next_u64();
        assert_ne!(c0, p0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng64::seed_from(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x), "{x} outside [0,1)");
        }
    }

    #[test]
    fn below_is_unbiased_over_small_range() {
        let mut rng = Rng64::seed_from(11);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[rng.below(5) as usize] += 1;
        }
        for &c in &counts {
            // Each bucket should hold ~10_000 draws; allow 5% slack.
            assert!((9_500..10_500).contains(&c), "biased bucket: {c}");
        }
    }

    #[test]
    fn below_zero_returns_zero() {
        let mut rng = Rng64::seed_from(5);
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    fn range_handles_empty_ranges() {
        let mut rng = Rng64::seed_from(5);
        assert_eq!(rng.range_u64(10, 10), 10);
        assert_eq!(rng.range_f64(2.0, 1.0), 2.0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng64::seed_from(13);
        let n = 100_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let z = rng.normal();
            sum += z;
            sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Rng64::seed_from(17);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn poisson_small_and_large_means() {
        let mut rng = Rng64::seed_from(19);
        let n = 50_000;
        let m_small: f64 = (0..n).map(|_| rng.poisson(3.0) as f64).sum::<f64>() / n as f64;
        assert!((m_small - 3.0).abs() < 0.1, "small mean {m_small}");
        let m_large: f64 = (0..n).map(|_| rng.poisson(100.0) as f64).sum::<f64>() / n as f64;
        assert!((m_large - 100.0).abs() < 1.0, "large mean {m_large}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = Rng64::seed_from(23);
        for _ in 0..10_000 {
            assert!(rng.pareto(1.5, 2.0) >= 1.5);
        }
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let mut rng = Rng64::seed_from(29);
        let table = ZipfTable::new(10, 1.2);
        let mut counts = [0u32; 10];
        for _ in 0..20_000 {
            counts[(table.sample(&mut rng) - 1) as usize] += 1;
        }
        assert!(counts[0] > counts[4], "rank 1 should beat rank 5");
        assert!(counts[4] > counts[9], "rank 5 should beat rank 10");
    }

    #[test]
    fn triangular_within_bounds_and_mode_pull() {
        let mut rng = Rng64::seed_from(31);
        let mut sum = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let x = rng.triangular(0.0, 10.0, 9.0);
            assert!((0.0..=10.0).contains(&x));
            sum += x;
        }
        // Expected mean is (0 + 10 + 9)/3 ≈ 6.33.
        let mean = sum / n as f64;
        assert!((mean - 6.33).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng64::seed_from(37);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Rng64::seed_from(41);
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_empty_or_zero_is_none() {
        let mut rng = Rng64::seed_from(43);
        assert_eq!(rng.weighted_index(&[]), None);
        assert_eq!(rng.weighted_index(&[0.0, 0.0]), None);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng64::seed_from(47);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }
}
