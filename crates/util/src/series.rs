//! Fixed-interval time series.
//!
//! Every signal in this reproduction — player counts per server group,
//! entity counts per sub-zone, allocation metrics — lives on the paper's
//! two-minute sampling grid. [`TimeSeries`] is a thin, allocation-friendly
//! wrapper over `Vec<f64>` indexed by tick, with the resampling and
//! windowing operations the analysis and prediction layers need.

use crate::stats;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A time series sampled once per simulation tick, starting at tick 0.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series.
    #[must_use]
    pub fn new() -> Self {
        Self { values: Vec::new() }
    }

    /// Creates an empty series with reserved capacity.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            values: Vec::with_capacity(n),
        }
    }

    /// Wraps an existing vector of samples.
    #[must_use]
    pub fn from_values(values: Vec<f64>) -> Self {
        Self { values }
    }

    /// Appends the sample for the next tick.
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sample at tick `t`, or `None` past the end.
    #[must_use]
    pub fn get(&self, t: SimTime) -> Option<f64> {
        self.values.get(t.tick() as usize).copied()
    }

    /// Raw sample slice.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consumes the series, returning the raw samples.
    #[must_use]
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Iterator over `(SimTime, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| (SimTime(i as u64), v))
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Largest sample (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(m) => m.max(v),
            })
        })
    }

    /// Smallest sample (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(m) => m.min(v),
            })
        })
    }

    /// Mean of all samples (`None` when empty).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        stats::mean(&self.values)
    }

    /// Slice of samples in the half-open tick range `[from, to)`,
    /// clamped to the available data.
    #[must_use]
    pub fn window(&self, from: SimTime, to: SimTime) -> &[f64] {
        let lo = (from.tick() as usize).min(self.values.len());
        let hi = (to.tick() as usize).clamp(lo, self.values.len());
        &self.values[lo..hi]
    }

    /// Down-samples by averaging consecutive blocks of `factor` ticks
    /// (a trailing partial block is averaged over its own length). Used
    /// for the "two-hours average" points of Figure 2.
    ///
    /// # Panics
    /// Panics if `factor == 0`.
    #[must_use]
    pub fn downsample_mean(&self, factor: usize) -> TimeSeries {
        assert!(factor > 0, "downsample factor must be positive");
        let values = self
            .values
            .chunks(factor)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        TimeSeries { values }
    }

    /// Centered moving average with the given window half-width; the
    /// window shrinks at the edges. Used for trend extraction.
    #[must_use]
    pub fn smooth(&self, half_width: usize) -> TimeSeries {
        let n = self.values.len();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let lo = i.saturating_sub(half_width);
            let hi = (i + half_width + 1).min(n);
            let w = &self.values[lo..hi];
            out.push(w.iter().sum::<f64>() / w.len() as f64);
        }
        TimeSeries { values: out }
    }

    /// First difference (length `len()-1`; empty for a series shorter
    /// than 2 samples).
    #[must_use]
    pub fn diff(&self) -> TimeSeries {
        let values = self.values.windows(2).map(|w| w[1] - w[0]).collect();
        TimeSeries { values }
    }

    /// Element-wise sum of several series; shorter inputs are treated as
    /// zero-padded. Aggregating server groups into the regional or global
    /// population (Figures 2 and 3) uses this.
    #[must_use]
    pub fn aggregate<'a, I>(series: I) -> TimeSeries
    where
        I: IntoIterator<Item = &'a TimeSeries>,
    {
        let mut out: Vec<f64> = Vec::new();
        for s in series {
            if s.values.len() > out.len() {
                out.resize(s.values.len(), 0.0);
            }
            for (o, v) in out.iter_mut().zip(&s.values) {
                *o += v;
            }
        }
        TimeSeries { values: out }
    }

    /// Scales every sample by `k`.
    #[must_use]
    pub fn scaled(&self, k: f64) -> TimeSeries {
        TimeSeries {
            values: self.values.iter().map(|v| v * k).collect(),
        }
    }

    /// Clamps every sample to at least `floor` (used to keep synthetic
    /// player counts non-negative).
    #[must_use]
    pub fn clamped_min(&self, floor: f64) -> TimeSeries {
        TimeSeries {
            values: self.values.iter().map(|v| v.max(floor)).collect(),
        }
    }
}

impl FromIterator<f64> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Self {
            values: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> TimeSeries {
        (0..n).map(|i| i as f64).collect()
    }

    #[test]
    fn push_get_len() {
        let mut s = TimeSeries::new();
        assert!(s.is_empty());
        s.push(1.5);
        s.push(2.5);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(SimTime(0)), Some(1.5));
        assert_eq!(s.get(SimTime(1)), Some(2.5));
        assert_eq!(s.get(SimTime(2)), None);
    }

    #[test]
    fn basic_reductions() {
        let s = ramp(5); // 0 1 2 3 4
        assert_eq!(s.sum(), 10.0);
        assert_eq!(s.min(), Some(0.0));
        assert_eq!(s.max(), Some(4.0));
        assert_eq!(s.mean(), Some(2.0));
        let empty = TimeSeries::new();
        assert_eq!(empty.min(), None);
        assert_eq!(empty.max(), None);
        assert_eq!(empty.mean(), None);
    }

    #[test]
    fn window_clamps() {
        let s = ramp(10);
        assert_eq!(s.window(SimTime(2), SimTime(5)), &[2.0, 3.0, 4.0]);
        assert_eq!(s.window(SimTime(8), SimTime(100)), &[8.0, 9.0]);
        assert!(s.window(SimTime(5), SimTime(3)).is_empty());
        assert!(s.window(SimTime(50), SimTime(60)).is_empty());
    }

    #[test]
    fn downsample_mean_blocks() {
        let s = ramp(6);
        let d = s.downsample_mean(2);
        assert_eq!(d.values(), &[0.5, 2.5, 4.5]);
        // Partial trailing block averaged over its own length.
        let d3 = ramp(5).downsample_mean(3);
        assert_eq!(d3.values(), &[1.0, 3.5]);
    }

    #[test]
    #[should_panic(expected = "factor must be positive")]
    fn downsample_zero_panics() {
        let _ = ramp(4).downsample_mean(0);
    }

    #[test]
    fn smooth_preserves_constant_and_length() {
        let s = TimeSeries::from_values(vec![3.0; 20]);
        let sm = s.smooth(4);
        assert_eq!(sm.len(), 20);
        assert!(sm.values().iter().all(|&v| (v - 3.0).abs() < 1e-12));
    }

    #[test]
    fn smooth_reduces_noise_variance() {
        // Alternating +-1 noise should shrink under a window.
        let s: TimeSeries = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let sm = s.smooth(3);
        let var_raw = crate::stats::variance(s.values()).unwrap();
        let var_sm = crate::stats::variance(sm.values()).unwrap();
        assert!(var_sm < var_raw / 4.0, "raw {var_raw} smoothed {var_sm}");
    }

    #[test]
    fn diff_of_ramp_is_constant() {
        let d = ramp(5).diff();
        assert_eq!(d.values(), &[1.0, 1.0, 1.0, 1.0]);
        assert!(TimeSeries::new().diff().is_empty());
        assert!(TimeSeries::from_values(vec![1.0]).diff().is_empty());
    }

    #[test]
    fn aggregate_zero_pads() {
        let a = TimeSeries::from_values(vec![1.0, 2.0, 3.0]);
        let b = TimeSeries::from_values(vec![10.0]);
        let sum = TimeSeries::aggregate([&a, &b]);
        assert_eq!(sum.values(), &[11.0, 2.0, 3.0]);
        assert!(TimeSeries::aggregate(std::iter::empty::<&TimeSeries>()).is_empty());
    }

    #[test]
    fn scaled_and_clamped() {
        let s = TimeSeries::from_values(vec![-1.0, 0.5, 2.0]);
        assert_eq!(s.scaled(2.0).values(), &[-2.0, 1.0, 4.0]);
        assert_eq!(s.clamped_min(0.0).values(), &[0.0, 0.5, 2.0]);
    }

    #[test]
    fn iter_pairs() {
        let s = ramp(3);
        let pairs: Vec<_> = s.iter().collect();
        assert_eq!(
            pairs,
            vec![(SimTime(0), 0.0), (SimTime(1), 1.0), (SimTime(2), 2.0)]
        );
    }
}
