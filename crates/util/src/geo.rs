//! Geographic coordinates and the paper's latency-tolerance distance
//! classes.
//!
//! Section V-E assumes "an ideal network behavior, thus the latency
//! between the players and the data centers is exclusively determined by
//! their physical distance", and defines five maximal-distance classes
//! (same location, <1000 km, <2000 km, <4000 km, unbounded). We model
//! locations as WGS-84 latitude/longitude pairs and measure great-circle
//! distance with the haversine formula.

use serde::{Deserialize, Serialize};

/// Mean Earth radius in kilometres.
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// A point on the Earth's surface (degrees).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point from latitude/longitude degrees.
    #[must_use]
    pub const fn new(lat: f64, lon: f64) -> Self {
        Self { lat, lon }
    }

    /// Great-circle distance to another point in kilometres (haversine).
    #[must_use]
    pub fn distance_km(&self, other: &Self) -> f64 {
        let lat1 = self.lat.to_radians();
        let lat2 = other.lat.to_radians();
        let dlat = (other.lat - self.lat).to_radians();
        let dlon = (other.lon - self.lon).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }
}

/// The five latency-tolerance classes of Section V-E, expressed as the
/// maximal allowed player-to-server distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DistanceClass {
    /// "users must be handled by resources at the same location" (d ≈ 0 km).
    SameLocation,
    /// Within 1 000 km.
    VeryClose,
    /// Within 2 000 km.
    Close,
    /// Within 4 000 km.
    Far,
    /// "any server can serve any user".
    VeryFar,
}

impl DistanceClass {
    /// All classes, least to most tolerant (the x-axis of Figure 13).
    pub const ALL: [Self; 5] = [
        Self::SameLocation,
        Self::VeryClose,
        Self::Close,
        Self::Far,
        Self::VeryFar,
    ];

    /// Maximum admissible distance in kilometres. `SameLocation` allows a
    /// small slack (50 km) so that co-located centers with slightly
    /// different coordinates still qualify; `VeryFar` is unbounded.
    #[must_use]
    pub fn max_km(self) -> f64 {
        match self {
            Self::SameLocation => 50.0,
            Self::VeryClose => 1_000.0,
            Self::Close => 2_000.0,
            Self::Far => 4_000.0,
            Self::VeryFar => f64::INFINITY,
        }
    }

    /// Whether a separation of `km` kilometres is admissible.
    #[must_use]
    pub fn admits(self, km: f64) -> bool {
        km <= self.max_km()
    }

    /// Human-readable label matching the paper's figure legends.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::SameLocation => "Same location (d~0km)",
            Self::VeryClose => "Very close (d<1000km)",
            Self::Close => "Close (d<2000km)",
            Self::Far => "Far (d<4000km)",
            Self::VeryFar => "Very far (d>4000km)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference coordinates for checks.
    const AMSTERDAM: GeoPoint = GeoPoint::new(52.37, 4.90);
    const LONDON: GeoPoint = GeoPoint::new(51.51, -0.13);
    const NEW_YORK: GeoPoint = GeoPoint::new(40.71, -74.01);
    const SYDNEY: GeoPoint = GeoPoint::new(-33.87, 151.21);

    #[test]
    fn zero_distance_to_self() {
        assert!(AMSTERDAM.distance_km(&AMSTERDAM) < 1e-9);
    }

    #[test]
    fn distance_is_symmetric() {
        let d1 = AMSTERDAM.distance_km(&NEW_YORK);
        let d2 = NEW_YORK.distance_km(&AMSTERDAM);
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn known_distances_roughly_correct() {
        // Amsterdam–London ≈ 358 km; Amsterdam–New York ≈ 5860 km;
        // London–Sydney ≈ 16990 km.
        let al = AMSTERDAM.distance_km(&LONDON);
        assert!((340.0..380.0).contains(&al), "A-L: {al}");
        let an = AMSTERDAM.distance_km(&NEW_YORK);
        assert!((5700.0..6000.0).contains(&an), "A-NY: {an}");
        let ls = LONDON.distance_km(&SYDNEY);
        assert!((16500.0..17500.0).contains(&ls), "L-S: {ls}");
    }

    #[test]
    fn distance_classes_nest() {
        for w in DistanceClass::ALL.windows(2) {
            assert!(w[0].max_km() < w[1].max_km(), "{:?} vs {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn class_admission() {
        assert!(DistanceClass::SameLocation.admits(0.0));
        assert!(!DistanceClass::SameLocation.admits(300.0));
        assert!(DistanceClass::VeryClose.admits(999.0));
        assert!(!DistanceClass::VeryClose.admits(1001.0));
        assert!(DistanceClass::VeryFar.admits(20_000.0));
    }

    #[test]
    fn amsterdam_london_is_very_close_but_not_same() {
        let d = AMSTERDAM.distance_km(&LONDON);
        assert!(!DistanceClass::SameLocation.admits(d));
        assert!(DistanceClass::VeryClose.admits(d));
    }

    #[test]
    fn transatlantic_needs_very_far() {
        let d = AMSTERDAM.distance_km(&NEW_YORK);
        assert!(!DistanceClass::Far.admits(d));
        assert!(DistanceClass::VeryFar.admits(d));
    }
}
