//! Process-wide memoisation of expensive deterministic builds.
//!
//! Workload synthesis is deterministic in its configuration (a trace is
//! a pure function of `(config, seed)`), yet experiment sweeps used to
//! regenerate the same RuneScape-like trace and the same Table I
//! emulated data sets dozens of times per run. A [`Memo`] keys the
//! finished artefact by a caller-chosen string (typically the `Debug`
//! rendering of the full configuration) and shares it behind an `Arc`,
//! so every later request — from any thread — gets the cached value.
//!
//! Concurrency: the map lock is held only to look up or insert the
//! per-key cell, never while building. Concurrent requests for the
//! *same* key block on that key's [`OnceLock`] and the build runs
//! exactly once; requests for different keys build in parallel.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A process-wide cache of `Arc<V>` values keyed by string.
///
/// `const`-constructible, so instances can live in `static`s:
///
/// ```
/// use mmog_util::memo::Memo;
/// static SQUARES: Memo<u64> = Memo::new();
/// let nine = SQUARES.get_or_build("3", || 9);
/// assert_eq!(*SQUARES.get_or_build("3", || unreachable!()), *nine);
/// ```
pub struct Memo<V> {
    #[allow(clippy::type_complexity)]
    map: Mutex<BTreeMap<String, Arc<OnceLock<Arc<V>>>>>,
}

impl<V> Memo<V> {
    /// Creates an empty memo.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            map: Mutex::new(BTreeMap::new()),
        }
    }

    /// Returns the cached value for `key`, building it with `build` on
    /// first use. The build runs outside the map lock; concurrent
    /// callers with the same key wait for the first builder instead of
    /// duplicating the work.
    pub fn get_or_build(&self, key: &str, build: impl FnOnce() -> V) -> Arc<V> {
        let cell = {
            let mut map = self
                .map
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(cell) = map.get(key) {
                Arc::clone(cell)
            } else {
                let cell = Arc::new(OnceLock::new());
                map.insert(key.to_owned(), Arc::clone(&cell));
                cell
            }
        };
        Arc::clone(cell.get_or_init(|| Arc::new(build())))
    }

    /// Number of cached entries (including ones still being built).
    #[must_use]
    pub fn len(&self) -> usize {
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Whether the memo holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached entry (outstanding `Arc`s stay valid).
    pub fn clear(&self) {
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }
}

impl<V> Default for Memo<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn builds_once_per_key() {
        let memo: Memo<u64> = Memo::new();
        let builds = AtomicUsize::new(0);
        let mk = |v: u64| {
            builds.fetch_add(1, Ordering::Relaxed);
            v * 10
        };
        assert_eq!(*memo.get_or_build("a", || mk(1)), 10);
        assert_eq!(*memo.get_or_build("a", || mk(1)), 10);
        assert_eq!(*memo.get_or_build("b", || mk(2)), 20);
        assert_eq!(builds.load(Ordering::Relaxed), 2);
        assert_eq!(memo.len(), 2);
    }

    #[test]
    fn concurrent_same_key_builds_once() {
        static MEMO: Memo<u64> = Memo::new();
        static BUILDS: AtomicUsize = AtomicUsize::new(0);
        let values: Vec<u64> = std::thread::scope(|s| {
            // The intermediate collect is the point: all spawns must
            // happen before the first join or the race disappears.
            #[allow(clippy::needless_collect)]
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        *MEMO.get_or_build("key", || {
                            BUILDS.fetch_add(1, Ordering::Relaxed);
                            // Widen the race window.
                            std::thread::sleep(std::time::Duration::from_millis(5));
                            77
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(values.iter().all(|&v| v == 77));
        assert_eq!(BUILDS.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn clear_resets() {
        let memo: Memo<String> = Memo::new();
        let kept = memo.get_or_build("x", || "v".to_owned());
        memo.clear();
        assert!(memo.is_empty());
        // Outstanding Arc survives the clear; the next get rebuilds.
        assert_eq!(*kept, "v");
        let rebuilt = memo.get_or_build("x", || "w".to_owned());
        assert_eq!(*rebuilt, "w");
    }
}
