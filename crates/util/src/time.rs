//! Simulation time.
//!
//! The paper samples every signal — player counts, predictions, metric
//! evaluations — on a fixed two-minute grid ("the traces are sampled every
//! two minutes", Sec. III-A; "the game operators perform a prediction of
//! the game load every two minutes", Sec. V). We therefore model time as a
//! monotone tick counter at [`TICK_MINUTES`]-minute resolution, with thin
//! wrappers that keep instants and durations from being mixed up.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Minutes per simulation tick (the paper's 2-minute sampling interval).
pub const TICK_MINUTES: u64 = 2;

/// Ticks per simulated hour.
pub const TICKS_PER_HOUR: u64 = 60 / TICK_MINUTES;

/// Ticks per simulated day (720 at 2-minute resolution — the lag at which
/// Figure 3's autocorrelation peaks).
pub const TICKS_PER_DAY: u64 = 24 * TICKS_PER_HOUR;

/// An instant on the simulation clock, counted in ticks since the start
/// of the simulated period.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulation time, counted in ticks.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (tick 0).
    pub const ZERO: Self = Self(0);

    /// Constructs an instant from whole simulated minutes (rounding down
    /// to the tick grid).
    #[must_use]
    pub fn from_minutes(minutes: u64) -> Self {
        Self(minutes / TICK_MINUTES)
    }

    /// Constructs an instant from whole simulated hours.
    #[must_use]
    pub fn from_hours(hours: u64) -> Self {
        Self(hours * TICKS_PER_HOUR)
    }

    /// Constructs an instant from whole simulated days.
    #[must_use]
    pub fn from_days(days: u64) -> Self {
        Self(days * TICKS_PER_DAY)
    }

    /// The tick index.
    #[must_use]
    pub fn tick(self) -> u64 {
        self.0
    }

    /// Total simulated minutes since the epoch.
    #[must_use]
    pub fn minutes(self) -> u64 {
        self.0 * TICK_MINUTES
    }

    /// Fractional hour-of-day in `[0, 24)` — drives the diurnal player
    /// pattern in the workload generator.
    #[must_use]
    pub fn hour_of_day(self) -> f64 {
        (self.0 % TICKS_PER_DAY) as f64 * TICK_MINUTES as f64 / 60.0
    }

    /// Day index since the epoch.
    #[must_use]
    pub fn day(self) -> u64 {
        self.0 / TICKS_PER_DAY
    }

    /// Day of week in `0..7` (day 0 is a Monday by convention); the trace
    /// generator uses this for the weekend effect noted in Sec. III-C.
    #[must_use]
    pub fn day_of_week(self) -> u64 {
        self.day() % 7
    }

    /// True on Saturday or Sunday.
    #[must_use]
    pub fn is_weekend(self) -> bool {
        self.day_of_week() >= 5
    }

    /// The next tick.
    #[must_use]
    pub fn next(self) -> Self {
        Self(self.0 + 1)
    }

    /// Saturating difference to an earlier instant.
    #[must_use]
    pub fn since(self, earlier: Self) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: Self = Self(0);

    /// A single tick.
    pub const TICK: Self = Self(1);

    /// From whole simulated minutes, rounding **up** to the tick grid
    /// (a lease of 3 minutes still occupies 2 ticks = 4 minutes).
    #[must_use]
    pub fn from_minutes_ceil(minutes: u64) -> Self {
        Self(minutes.div_ceil(TICK_MINUTES))
    }

    /// From whole simulated hours.
    #[must_use]
    pub fn from_hours(hours: u64) -> Self {
        Self(hours * TICKS_PER_HOUR)
    }

    /// From whole simulated days.
    #[must_use]
    pub fn from_days(days: u64) -> Self {
        Self(days * TICKS_PER_DAY)
    }

    /// Tick count.
    #[must_use]
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Total minutes.
    #[must_use]
    pub fn minutes(self) -> u64 {
        self.0 * TICK_MINUTES
    }

    /// Total fractional hours.
    #[must_use]
    pub fn hours(self) -> f64 {
        self.minutes() as f64 / 60.0
    }

    /// True when zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: Self) -> Self {
        Self(self.0 + other.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mins = self.minutes();
        write!(
            f,
            "d{} {:02}:{:02}",
            self.day(),
            (mins / 60) % 24,
            mins % 60
        )
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}min", self.minutes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_grid_constants() {
        assert_eq!(TICKS_PER_HOUR, 30);
        assert_eq!(TICKS_PER_DAY, 720); // the Figure-3 ACF peak lag
    }

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_days(2);
        assert_eq!(t.tick(), 1440);
        assert_eq!(t.day(), 2);
        assert_eq!(t.minutes(), 2 * 24 * 60);
        assert_eq!(SimTime::from_hours(24), SimTime::from_days(1));
        assert_eq!(SimTime::from_minutes(120), SimTime::from_hours(2));
    }

    #[test]
    fn hour_of_day_wraps() {
        let t = SimTime::from_days(3) + SimDuration::from_hours(13);
        assert!((t.hour_of_day() - 13.0).abs() < 1e-12);
        assert_eq!(SimTime::ZERO.hour_of_day(), 0.0);
    }

    #[test]
    fn weekend_detection() {
        assert!(!SimTime::from_days(0).is_weekend()); // Monday
        assert!(!SimTime::from_days(4).is_weekend()); // Friday
        assert!(SimTime::from_days(5).is_weekend()); // Saturday
        assert!(SimTime::from_days(6).is_weekend()); // Sunday
        assert!(!SimTime::from_days(7).is_weekend()); // next Monday
    }

    #[test]
    fn duration_ceil_rounding() {
        assert_eq!(SimDuration::from_minutes_ceil(3).ticks(), 2);
        assert_eq!(SimDuration::from_minutes_ceil(4).ticks(), 2);
        assert_eq!(SimDuration::from_minutes_ceil(0).ticks(), 0);
        assert_eq!(SimDuration::from_minutes_ceil(1).minutes(), 2);
    }

    #[test]
    fn arithmetic_saturates() {
        let t = SimTime(5);
        assert_eq!((t - SimDuration(10)).tick(), 0);
        assert_eq!(t.since(SimTime(10)).ticks(), 0);
        assert_eq!(SimTime(10).since(t).ticks(), 5);
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_days(1) + SimDuration::from_hours(2) + SimDuration::TICK;
        assert_eq!(t.to_string(), "d1 02:02");
        assert_eq!(SimDuration::from_hours(6).to_string(), "360min");
    }
}
