//! Property-based tests for the statistics, RNG and series substrate.

use mmog_util::rng::Rng64;
use mmog_util::series::TimeSeries;
use mmog_util::stats::{self, Ecdf, OnlineStats, Summary};
use proptest::prelude::*;

/// Strategy: non-empty vector of finite, reasonably sized floats.
fn finite_vec() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..200)
}

proptest! {
    #[test]
    fn quantile_stays_within_min_max(xs in finite_vec(), q in 0.0f64..=1.0) {
        let v = stats::quantile(&xs, q).unwrap();
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min - 1e-9 && v <= max + 1e-9, "{v} not in [{min}, {max}]");
    }

    #[test]
    fn quantiles_are_monotone_in_q(xs in finite_vec(), a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let va = stats::quantile(&xs, lo).unwrap();
        let vb = stats::quantile(&xs, hi).unwrap();
        prop_assert!(va <= vb + 1e-9);
    }

    #[test]
    fn iqr_non_negative(xs in finite_vec()) {
        prop_assert!(stats::iqr(&xs).unwrap() >= -1e-9);
    }

    #[test]
    fn mean_between_min_and_max(xs in finite_vec()) {
        let m = stats::mean(&xs).unwrap();
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= min - 1e-6 && m <= max + 1e-6);
    }

    #[test]
    fn acf_lag_zero_is_one_when_defined(xs in prop::collection::vec(-1e3f64..1e3, 3..100)) {
        let acf = stats::autocorrelation(&xs, 5);
        if !acf.is_empty() {
            prop_assert!((acf[0] - 1.0).abs() < 1e-9);
            // Every normalized ACF value lies in [-1, 1] (plus slack).
            for v in &acf {
                prop_assert!(v.abs() <= 1.0 + 1e-6, "acf value {v}");
            }
        }
    }

    #[test]
    fn ecdf_is_monotone_and_bounded(xs in finite_vec(), probe in -1e6f64..1e6) {
        let ecdf = Ecdf::new(xs);
        let p = ecdf.eval(probe);
        prop_assert!((0.0..=1.0).contains(&p));
        let p2 = ecdf.eval(probe + 1.0);
        prop_assert!(p2 >= p);
    }

    #[test]
    fn ecdf_inverse_round_trip(xs in finite_vec(), q in 0.01f64..=1.0) {
        let ecdf = Ecdf::new(xs);
        let x = ecdf.inverse(q).unwrap();
        // P(X <= inverse(q)) >= q by definition of the quantile function.
        prop_assert!(ecdf.eval(x) + 1e-9 >= q);
    }

    #[test]
    fn online_stats_merge_equals_sequential(
        a in prop::collection::vec(-1e4f64..1e4, 0..100),
        b in prop::collection::vec(-1e4f64..1e4, 0..100),
    ) {
        let mut merged = OnlineStats::new();
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &a {
            merged.record(x);
            left.record(x);
        }
        for &x in &b {
            merged.record(x);
            right.record(x);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), merged.count());
        prop_assert!((left.mean() - merged.mean()).abs() < 1e-6);
        prop_assert!((left.variance() - merged.variance()).abs() < 1e-3);
    }

    #[test]
    fn summary_orders_quartiles(xs in finite_vec()) {
        let s = Summary::of(&xs).unwrap();
        prop_assert!(s.min <= s.q1 + 1e-9);
        prop_assert!(s.q1 <= s.median + 1e-9);
        prop_assert!(s.median <= s.q3 + 1e-9);
        prop_assert!(s.q3 <= s.max + 1e-9);
        prop_assert_eq!(s.count, xs.len());
    }

    #[test]
    fn rng_below_is_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut rng = Rng64::seed_from(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(n) < n);
        }
    }

    #[test]
    fn rng_range_f64_in_bounds(seed in any::<u64>(), lo in -1e5f64..1e5, width in 0.001f64..1e5) {
        let mut rng = Rng64::seed_from(seed);
        let hi = lo + width;
        for _ in 0..50 {
            let x = rng.range_f64(lo, hi);
            prop_assert!(x >= lo && x < hi);
        }
    }

    #[test]
    fn shuffle_preserves_multiset(seed in any::<u64>(), mut xs in prop::collection::vec(0u32..1000, 0..50)) {
        let mut rng = Rng64::seed_from(seed);
        let mut original = xs.clone();
        rng.shuffle(&mut xs);
        original.sort_unstable();
        xs.sort_unstable();
        prop_assert_eq!(original, xs);
    }

    #[test]
    fn series_downsample_preserves_mean(xs in finite_vec(), factor in 1usize..10) {
        let s = TimeSeries::from_values(xs.clone());
        let d = s.downsample_mean(factor);
        // Each downsampled block mean lies within the block's min/max,
        // so the global min/max bracket is preserved.
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for &v in d.values() {
            prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
        }
        prop_assert_eq!(d.len(), xs.len().div_ceil(factor));
    }

    #[test]
    fn series_smooth_is_bounded_by_input(xs in finite_vec(), hw in 0usize..8) {
        let s = TimeSeries::from_values(xs.clone());
        let sm = s.smooth(hw);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for &v in sm.values() {
            prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
        }
    }

    #[test]
    fn aggregate_length_is_max_input_length(
        a in prop::collection::vec(-1e3f64..1e3, 0..50),
        b in prop::collection::vec(-1e3f64..1e3, 0..50),
    ) {
        let (la, lb) = (a.len(), b.len());
        let sa = TimeSeries::from_values(a);
        let sb = TimeSeries::from_values(b);
        let agg = TimeSeries::aggregate([&sa, &sb]);
        prop_assert_eq!(agg.len(), la.max(lb));
    }
}
