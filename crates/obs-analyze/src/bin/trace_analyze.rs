//! `trace_analyze` — fold a JSONL trace into per-run timelines.
//!
//! ```text
//! trace_analyze TRACE [--out DIR] [--kind K]... [--scope S]
//!               [--tick-min N] [--tick-max N]
//! ```
//!
//! Prints the deterministic text report and writes
//! `DIR/TIMELINE_<stem>.json` (default: next to the trace).

use mmog_obs_analyze::{analyze_trace, render_timelines, timelines_value, Query};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Opts {
    trace: PathBuf,
    out_dir: Option<PathBuf>,
    query: Query,
}

fn parse_args() -> Result<Opts, String> {
    let mut args = std::env::args().skip(1);
    let mut trace = None;
    let mut out_dir = None;
    let mut query = Query::default();
    let mut tick_min = None;
    let mut tick_max = None;
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--out" => out_dir = Some(PathBuf::from(value("--out")?)),
            "--kind" => query = query.kind(&value("--kind")?),
            "--scope" => query = query.scope_contains(&value("--scope")?),
            "--tick-min" => {
                tick_min = Some(
                    value("--tick-min")?
                        .parse::<u64>()
                        .map_err(|e| e.to_string())?,
                );
            }
            "--tick-max" => {
                tick_max = Some(
                    value("--tick-max")?
                        .parse::<u64>()
                        .map_err(|e| e.to_string())?,
                );
            }
            "--help" | "-h" => {
                return Err(
                    "usage: trace_analyze TRACE [--out DIR] [--kind K]... [--scope S] \
                     [--tick-min N] [--tick-max N]"
                        .to_string(),
                )
            }
            other if trace.is_none() && !other.starts_with('-') => {
                trace = Some(PathBuf::from(other));
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if tick_min.is_some() || tick_max.is_some() {
        query = query.tick_range(tick_min.unwrap_or(0), tick_max.unwrap_or(u64::MAX));
    }
    Ok(Opts {
        trace: trace.ok_or("missing TRACE argument")?,
        out_dir,
        query,
    })
}

fn run(opts: &Opts) -> Result<(), String> {
    let text = std::fs::read_to_string(&opts.trace)
        .map_err(|e| format!("{}: {e}", opts.trace.display()))?;
    let runs = analyze_trace(&text, &opts.query)?;
    print!("{}", render_timelines(&runs));
    let stem = opts
        .trace
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("trace");
    let dir = opts
        .out_dir
        .clone()
        .or_else(|| opts.trace.parent().map(Path::to_path_buf))
        .unwrap_or_else(|| PathBuf::from("."));
    let out = dir.join(format!("TIMELINE_{stem}.json"));
    let body = timelines_value(&runs).render_pretty() + "\n";
    std::fs::write(&out, body).map_err(|e| format!("{}: {e}", out.display()))?;
    println!("\nwrote {} ({} scopes)", out.display(), runs.len());
    Ok(())
}

fn main() -> ExitCode {
    match parse_args().and_then(|opts| run(&opts)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("trace_analyze: {e}");
            ExitCode::FAILURE
        }
    }
}
