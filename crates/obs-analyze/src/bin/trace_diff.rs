//! `trace_diff` — semantic first-divergence diff between two traces.
//!
//! ```text
//! trace_diff LEFT.jsonl RIGHT.jsonl [--text]
//! ```
//!
//! Exit code 0 and `no divergence` when the files are byte-identical;
//! exit code 1 and a localized report (kind, tick, field) otherwise.
//! `--text` switches to plain line-diff mode for non-trace reports.

use mmog_obs_analyze::{first_text_divergence, trace_diff};
use std::process::ExitCode;

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let text_mode = args.iter().any(|a| a == "--text");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [left, right] = paths.as_slice() else {
        return Err("usage: trace_diff LEFT RIGHT [--text]".to_string());
    };
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"));
    let (a, b) = (read(left)?, read(right)?);
    let message = if text_mode {
        first_text_divergence(&a, &b).map(|d| d.message())
    } else {
        trace_diff(&a, &b).map(|d| d.message())
    };
    match message {
        None => {
            println!("no divergence");
            Ok(true)
        }
        Some(msg) => {
            println!("{msg}");
            Ok(false)
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("trace_diff: {e}");
            ExitCode::from(2)
        }
    }
}
