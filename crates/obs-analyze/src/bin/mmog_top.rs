//! `mmog_top` — a live terminal dashboard over the engine's telemetry
//! tap.
//!
//! ```text
//! mmog_top [PATH] [--once] [--interval-ms N]
//! ```
//!
//! Watches the `OBS_live.json` snapshot a run publishes under `--live`
//! (default path: `results/OBS_live.json`) and redraws an in-place
//! dashboard: run progress, tick rate, per-stage p99 latencies, the
//! match skip rate, per-center utilization bars, and the fault/scenario
//! counters. The snapshot is atomically replaced by the engine, so a
//! read never observes a torn write. The watch loop exits when the
//! snapshot reports `done: true`; `--once` renders a single frame
//! without ANSI cursor control (the mode CI uses to capture a frame).

use mmog_obs::json::{parse, Value};
use mmog_obs::validate_live;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const BAR_WIDTH: usize = 24;

fn bar(fraction: f64, width: usize) -> String {
    let clamped = fraction.clamp(0.0, 1.0);
    let filled = (clamped * width as f64).round() as usize;
    format!("[{}{}]", "#".repeat(filled), ".".repeat(width - filled))
}

fn num(value: &Value, section: &str, field: &str) -> f64 {
    value
        .get(section)
        .and_then(|s| s.get(field))
        .and_then(Value::as_f64)
        .unwrap_or(0.0)
}

/// Renders one dashboard frame from a validated snapshot document.
fn render(doc: &Value) -> String {
    let run = doc.get("run").and_then(Value::as_str).unwrap_or("?");
    let tick = doc.get("tick").and_then(Value::as_u64).unwrap_or(0);
    let total = doc.get("ticks_total").and_then(Value::as_u64).unwrap_or(0);
    let done = matches!(doc.get("done"), Some(Value::Bool(true)));
    let progress = if total > 0 {
        (tick + 1) as f64 / total as f64
    } else {
        0.0
    };
    let mut out = String::new();
    out.push_str(&format!("mmog_top — {run}\n\n"));
    out.push_str(&format!(
        "  tick {tick}/{total} {} {:5.1}%{}\n",
        bar(progress, BAR_WIDTH),
        progress * 100.0,
        if done { "  (done)" } else { "" }
    ));
    out.push_str(&format!(
        "  tick rate {:.1}/s\n\n",
        num(doc, "timing", "tick_rate")
    ));
    out.push_str(&format!(
        "  demand {:10.1} cpu   alloc {:10.1} cpu   shortfall {:8.1} cpu\n",
        num(doc, "semantic", "demand_cpu"),
        num(doc, "semantic", "alloc_cpu"),
        num(doc, "semantic", "shortfall_cpu"),
    ));
    out.push_str(&format!(
        "  match skip {:5.1}%   leases held {}   faults {}   scenarios {}   centers down {}\n\n",
        num(doc, "timing", "match_skip_rate") * 100.0,
        num(doc, "semantic", "leases_held") as u64,
        num(doc, "semantic", "fault_events") as u64,
        num(doc, "semantic", "scenario_events") as u64,
        num(doc, "semantic", "centers_down") as u64,
    ));
    out.push_str("  stage p99 (us):");
    if let Some(Value::Obj(stages)) = doc.get("timing").and_then(|t| t.get("stage_p99_us")) {
        for (path, p99) in stages {
            out.push_str(&format!("  {path} {:.1}", p99.as_f64().unwrap_or(0.0)));
        }
    }
    out.push_str("\n\n  centers:\n");
    if let Some(centers) = doc
        .get("semantic")
        .and_then(|s| s.get("centers"))
        .and_then(Value::as_arr)
    {
        for center in centers {
            let name = center.get("name").and_then(Value::as_str).unwrap_or("?");
            let alloc = center
                .get("alloc_cpu")
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            let cap = center
                .get("capacity_cpu")
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            if cap > 0.0 {
                out.push_str(&format!(
                    "    {name:<16} {} {:5.1}%  {alloc:9.1}/{cap:9.1} cpu\n",
                    bar(alloc / cap, BAR_WIDTH),
                    100.0 * alloc / cap
                ));
            } else {
                out.push_str(&format!("    {name:<16} DOWN\n"));
            }
        }
    }
    out
}

fn load(path: &PathBuf) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    validate_live(&doc).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(doc)
}

fn run() -> Result<(), String> {
    let mut path: Option<PathBuf> = None;
    let mut once = false;
    let mut interval_ms = 500u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--once" => once = true,
            "--interval-ms" => {
                interval_ms = args
                    .next()
                    .ok_or("--interval-ms needs a value")?
                    .parse()
                    .map_err(|e: std::num::ParseIntError| e.to_string())?;
            }
            "--help" | "-h" => {
                return Err("usage: mmog_top [PATH] [--once] [--interval-ms N]".to_string())
            }
            other if path.is_none() && !other.starts_with('-') => {
                path = Some(PathBuf::from(other));
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    let path = path.unwrap_or_else(|| PathBuf::from("results/OBS_live.json"));
    if once {
        print!("{}", render(&load(&path)?));
        return Ok(());
    }
    // Watch mode: home the cursor and clear below the frame instead of
    // wiping the whole screen, so redraws don't flicker.
    print!("\x1b[2J");
    loop {
        match load(&path) {
            Ok(doc) => {
                print!("\x1b[H{}\x1b[J", render(&doc));
                if matches!(doc.get("done"), Some(Value::Bool(true))) {
                    return Ok(());
                }
            }
            // The run may not have published its first snapshot yet (or
            // is mid-rename); keep waiting rather than dying.
            Err(e) => println!("\x1b[H\x1b[Jmmog_top: waiting for snapshot ({e})"),
        }
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        std::thread::sleep(Duration::from_millis(interval_ms.max(50)));
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mmog_top: {e}");
            ExitCode::FAILURE
        }
    }
}
