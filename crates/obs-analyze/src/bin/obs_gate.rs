//! `obs_gate` — the baseline regression gate CI runs after the quick
//! suite.
//!
//! ```text
//! obs_gate --summary OBS_summary.json --bench BENCH_parallel.json
//!          --obs-baseline results/BASELINE_obs.json
//!          --bench-baseline results/BASELINE_bench.json
//!          [--max-slowdown-pct 25] [--min-stage-ms 50]
//!          [--max-p99-slowdown-pct 100] [--min-p99-us 20]
//!          [--strict-paths] [--update] [--suite quick]
//! ```
//!
//! Default mode compares and exits non-zero on any failure (semantic
//! drift always fails; timing failures require a matching
//! `jobs`/`logical_cpus` environment). Stages and latency paths the
//! baseline has never seen are listed by name — warnings by default,
//! hard failures under `--strict-paths` (the CI posture, so a renamed
//! kernel path can't silently dodge the p99 gate). `--update`
//! regenerates the baseline files from the current artifacts instead.
//!
//! `--summary`/`--obs-baseline` may be omitted **together** for
//! bench-only gating — any timing document with `jobs`,
//! `logical_cpus`, `stages[{path, total_ms}]` and `wall_seconds`
//! (`BENCH_parallel.json`, `BENCH_scale.json`) works as `--bench`:
//!
//! ```text
//! obs_gate --bench results/BENCH_scale.json
//!          --bench-baseline results/BASELINE_scale.json
//! ```

use mmog_obs_analyze::gate::{
    check_bench, check_obs, make_bench_baseline, make_obs_baseline, BenchThresholds, GateOutcome,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    /// `None` in bench-only mode (`--obs-baseline` must be absent too).
    summary: Option<PathBuf>,
    bench: PathBuf,
    obs_baseline: Option<PathBuf>,
    bench_baseline: PathBuf,
    thresholds: BenchThresholds,
    update: bool,
    suite: String,
}

fn parse_args() -> Result<Opts, String> {
    let mut args = std::env::args().skip(1);
    let mut summary = None;
    let mut bench = None;
    let mut obs_baseline = None;
    let mut bench_baseline = None;
    let mut thresholds = BenchThresholds::default();
    let mut update = false;
    let mut suite = "quick".to_string();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--summary" => summary = Some(PathBuf::from(value("--summary")?)),
            "--bench" => bench = Some(PathBuf::from(value("--bench")?)),
            "--obs-baseline" => obs_baseline = Some(PathBuf::from(value("--obs-baseline")?)),
            "--bench-baseline" => bench_baseline = Some(PathBuf::from(value("--bench-baseline")?)),
            "--max-slowdown-pct" => {
                thresholds.max_slowdown_pct = value("--max-slowdown-pct")?
                    .parse()
                    .map_err(|e| format!("--max-slowdown-pct: {e}"))?;
            }
            "--min-stage-ms" => {
                thresholds.min_stage_ms = value("--min-stage-ms")?
                    .parse()
                    .map_err(|e| format!("--min-stage-ms: {e}"))?;
            }
            "--max-p99-slowdown-pct" => {
                thresholds.max_p99_slowdown_pct = value("--max-p99-slowdown-pct")?
                    .parse()
                    .map_err(|e| format!("--max-p99-slowdown-pct: {e}"))?;
            }
            "--min-p99-us" => {
                thresholds.min_p99_us = value("--min-p99-us")?
                    .parse()
                    .map_err(|e| format!("--min-p99-us: {e}"))?;
            }
            "--strict-paths" => thresholds.strict_paths = true,
            "--update" => update = true,
            "--suite" => suite = value("--suite")?,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if summary.is_some() != obs_baseline.is_some() {
        return Err(
            "--summary and --obs-baseline must be given together (omit both for bench-only gating)"
                .into(),
        );
    }
    Ok(Opts {
        summary,
        bench: bench.ok_or("missing --bench")?,
        obs_baseline,
        bench_baseline: bench_baseline.ok_or("missing --bench-baseline")?,
        thresholds,
        update,
        suite,
    })
}

fn read(path: &PathBuf) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))
}

fn write(path: &PathBuf, body: String) -> Result<(), String> {
    std::fs::write(path, body + "\n").map_err(|e| format!("{}: {e}", path.display()))
}

fn run(opts: &Opts) -> Result<bool, String> {
    let bench = read(&opts.bench)?;
    if opts.update {
        if let (Some(summary), Some(obs_baseline)) = (&opts.summary, &opts.obs_baseline) {
            write(
                obs_baseline,
                make_obs_baseline(&read(summary)?, &opts.suite)?,
            )?;
            println!("updated {}", obs_baseline.display());
        }
        write(&opts.bench_baseline, make_bench_baseline(&bench)?)?;
        println!("updated {}", opts.bench_baseline.display());
        return Ok(true);
    }
    let mut outcome = GateOutcome::default();
    if let (Some(summary), Some(obs_baseline)) = (&opts.summary, &opts.obs_baseline) {
        outcome.merge(check_obs(&read(obs_baseline)?, &read(summary)?)?);
    }
    outcome.merge(check_bench(
        &read(&opts.bench_baseline)?,
        &bench,
        &opts.thresholds,
    )?);
    print!("{}", outcome.render("obs_gate"));
    Ok(outcome.pass())
}

fn main() -> ExitCode {
    match parse_args().and_then(|opts| run(&opts)) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("obs_gate: {e}");
            ExitCode::from(2)
        }
    }
}
