//! `obs_gate` — the baseline regression gate CI runs after the quick
//! suite.
//!
//! ```text
//! obs_gate --summary OBS_summary.json --bench BENCH_parallel.json
//!          --obs-baseline results/BASELINE_obs.json
//!          --bench-baseline results/BASELINE_bench.json
//!          [--max-slowdown-pct 25] [--min-stage-ms 50]
//!          [--update] [--suite quick]
//! ```
//!
//! Default mode compares and exits non-zero on any failure (semantic
//! drift always fails; timing failures require a matching
//! `jobs`/`logical_cpus` environment). `--update` regenerates both
//! baseline files from the current artifacts instead.

use mmog_obs_analyze::gate::{
    check_bench, check_obs, make_bench_baseline, make_obs_baseline, GateOutcome,
    DEFAULT_MAX_SLOWDOWN_PCT, DEFAULT_MIN_STAGE_MS,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    summary: PathBuf,
    bench: PathBuf,
    obs_baseline: PathBuf,
    bench_baseline: PathBuf,
    max_slowdown_pct: f64,
    min_stage_ms: f64,
    update: bool,
    suite: String,
}

fn parse_args() -> Result<Opts, String> {
    let mut args = std::env::args().skip(1);
    let mut summary = None;
    let mut bench = None;
    let mut obs_baseline = None;
    let mut bench_baseline = None;
    let mut max_slowdown_pct = DEFAULT_MAX_SLOWDOWN_PCT;
    let mut min_stage_ms = DEFAULT_MIN_STAGE_MS;
    let mut update = false;
    let mut suite = "quick".to_string();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--summary" => summary = Some(PathBuf::from(value("--summary")?)),
            "--bench" => bench = Some(PathBuf::from(value("--bench")?)),
            "--obs-baseline" => obs_baseline = Some(PathBuf::from(value("--obs-baseline")?)),
            "--bench-baseline" => bench_baseline = Some(PathBuf::from(value("--bench-baseline")?)),
            "--max-slowdown-pct" => {
                max_slowdown_pct = value("--max-slowdown-pct")?
                    .parse()
                    .map_err(|e| format!("--max-slowdown-pct: {e}"))?;
            }
            "--min-stage-ms" => {
                min_stage_ms = value("--min-stage-ms")?
                    .parse()
                    .map_err(|e| format!("--min-stage-ms: {e}"))?;
            }
            "--update" => update = true,
            "--suite" => suite = value("--suite")?,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(Opts {
        summary: summary.ok_or("missing --summary")?,
        bench: bench.ok_or("missing --bench")?,
        obs_baseline: obs_baseline.ok_or("missing --obs-baseline")?,
        bench_baseline: bench_baseline.ok_or("missing --bench-baseline")?,
        max_slowdown_pct,
        min_stage_ms,
        update,
        suite,
    })
}

fn read(path: &PathBuf) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))
}

fn write(path: &PathBuf, body: String) -> Result<(), String> {
    std::fs::write(path, body + "\n").map_err(|e| format!("{}: {e}", path.display()))
}

fn run(opts: &Opts) -> Result<bool, String> {
    let summary = read(&opts.summary)?;
    let bench = read(&opts.bench)?;
    if opts.update {
        write(
            &opts.obs_baseline,
            make_obs_baseline(&summary, &opts.suite)?,
        )?;
        write(&opts.bench_baseline, make_bench_baseline(&bench)?)?;
        println!(
            "updated {} and {}",
            opts.obs_baseline.display(),
            opts.bench_baseline.display()
        );
        return Ok(true);
    }
    let mut outcome = GateOutcome::default();
    outcome.merge(check_obs(&read(&opts.obs_baseline)?, &summary)?);
    outcome.merge(check_bench(
        &read(&opts.bench_baseline)?,
        &bench,
        opts.max_slowdown_pct,
        opts.min_stage_ms,
    )?);
    print!("{}", outcome.render("obs_gate"));
    Ok(outcome.pass())
}

fn main() -> ExitCode {
    match parse_args().and_then(|opts| run(&opts)) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("obs_gate: {e}");
            ExitCode::from(2)
        }
    }
}
