//! `lease_report` — reconstruct per-lease causal waterfalls from a
//! JSONL trace.
//!
//! ```text
//! lease_report TRACE [--quiet]
//! ```
//!
//! Replays the `lease_request` → `lease_grant` → `lease_mature` →
//! release/revoke chain per run and prints the deterministic lifecycle
//! report: request→grant latency, lease lifetime distributions, the
//! terminal-cause breakdown, and held cpu-ticks per center and per
//! operator. Exits nonzero when any causality invariant fails (orphan
//! terminals, grants without requests, reused lease keys, or leases
//! that never reached a terminal), listing every violation —
//! `--quiet` suppresses the report and prints violations only, for CI.

use mmog_obs_analyze::{analyze_lifecycle, check_lifecycle, render_lifecycle};
use std::path::PathBuf;
use std::process::ExitCode;

fn run() -> Result<(), String> {
    let mut trace: Option<PathBuf> = None;
    let mut quiet = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quiet" => quiet = true,
            "--help" | "-h" => return Err("usage: lease_report TRACE [--quiet]".to_string()),
            other if trace.is_none() && !other.starts_with('-') => {
                trace = Some(PathBuf::from(other));
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    let trace = trace.ok_or("missing TRACE argument")?;
    let text = std::fs::read_to_string(&trace).map_err(|e| format!("{}: {e}", trace.display()))?;
    let report = analyze_lifecycle(&text)?;
    if !quiet {
        print!("{}", render_lifecycle(&report));
    }
    check_lifecycle(&report)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("lease_report: {e}");
            ExitCode::FAILURE
        }
    }
}
