//! `span_profile` — flame-style span profile from a saved
//! `OBS_summary.json`.
//!
//! ```text
//! span_profile SUMMARY.json
//! ```

use mmog_obs_analyze::{profile_from_summary, render_profile};
use std::process::ExitCode;

fn run() -> Result<(), String> {
    let path = std::env::args()
        .nth(1)
        .ok_or("usage: span_profile SUMMARY.json")?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let roots = profile_from_summary(&text)?;
    print!("{}", render_profile(&roots));
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("span_profile: {e}");
            ExitCode::FAILURE
        }
    }
}
