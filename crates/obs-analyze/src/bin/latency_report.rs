//! `latency_report` — percentile tables and ASCII distribution
//! sketches from any artifact carrying log-bucketed latency snapshots:
//! a `mmog-scale-bench/v2` `BENCH_scale.json` (per-stage `latency`
//! sections) or an `OBS_summary.json` (`timing.latency`).
//!
//! ```text
//! latency_report results/BENCH_scale.json [more.json ...]
//! ```

use mmog_obs_analyze::{collect_snapshots, render_report};
use std::process::ExitCode;

fn run() -> Result<(), String> {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        return Err("usage: latency_report ARTIFACT.json [more.json ...]".into());
    }
    let mut snapshots = Vec::new();
    for path in &paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let doc = mmog_obs::json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        let mut found = collect_snapshots(&doc).map_err(|e| format!("{path}: {e}"))?;
        if paths.len() > 1 {
            for s in &mut found {
                s.name = format!("{path}: {}", s.name);
            }
        }
        snapshots.extend(found);
    }
    print!("{}", render_report(&snapshots));
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("latency_report: {e}");
            ExitCode::FAILURE
        }
    }
}
