//! Causal lease-lifecycle reconstruction over the JSONL trace.
//!
//! The engine emits a causal chain per lease — `lease_request` →
//! `lease_grant` → (optional) `lease_mature` → exactly one terminal
//! `lease_release` (with cause) or `lease_revoked` — all from serial
//! sections, so the chain is byte-identical across `--jobs` values.
//! [`analyze_lifecycle`] replays that chain per trace scope and
//! rebuilds every lease's waterfall: request→grant latency, lifetime,
//! terminal cause, and integrated held capacity per center and per
//! operator. While replaying it checks the causality invariants:
//!
//! 1. every grant names a request that exists in the same run;
//! 2. a `(center, lease)` key is granted at most once per run —
//!    centers never reuse lease ids, so a retired key must never
//!    reappear;
//! 3. every maturity and every terminal names a currently-live lease
//!    (no orphans, no double terminals);
//! 4. at scope end every granted lease has reached a terminal — the
//!    engine's run-end closure guarantees 100% reconstruction.
//!
//! Violations are collected (not fail-fast) so a broken trace reports
//! every divergence at once; [`check_lifecycle`] turns them into the
//! hard error `obs_check` and the determinism suite gate on.

use crate::reader::{read_trace, Query, TraceEvent};
use std::collections::BTreeMap;

/// One reconstructed lease waterfall.
#[derive(Debug, Clone)]
pub struct LeaseRecord {
    /// Center index the lease was granted at.
    pub center: u64,
    /// Center-local lease id.
    pub lease: u64,
    /// Operator that held the lease.
    pub operator: u64,
    /// The request id the grant answered.
    pub request: u64,
    /// Tick the lease was granted.
    pub granted_tick: u64,
    /// Tick the owning provisioner first observed the lease past its
    /// earliest-release time (absent when the run ended first, or on
    /// static runs that never re-enter the adjust path).
    pub matured_tick: Option<u64>,
    /// Tick of the terminal event (absent only on violation).
    pub end_tick: Option<u64>,
    /// Terminal cause: a `lease_release` cause label, or `revoked` for
    /// a fault-plane `lease_revoked` (absent only on violation).
    pub end_cause: Option<String>,
    /// CPU held by the lease.
    pub cpu: f64,
}

impl LeaseRecord {
    /// Ticks the lease was held (0 when granted and ended the same
    /// tick, or when it never reached a terminal).
    #[must_use]
    pub fn lifetime(&self) -> u64 {
        self.end_tick
            .map_or(0, |end| end.saturating_sub(self.granted_tick))
    }
}

/// One reconstructed request.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Request id (`group << 32 | seq`).
    pub id: u64,
    /// Requesting group index.
    pub group: u64,
    /// Operator that issued the request.
    pub operator: u64,
    /// Tick the request was made.
    pub tick: u64,
    /// CPU deficit requested.
    pub cpu: f64,
    /// Grants that answered it.
    pub grants: u64,
}

/// The reconstructed lifecycle of one trace scope (one run).
#[derive(Debug, Clone)]
pub struct ScopeLifecycle {
    /// The run's trace-chunk label.
    pub scope: String,
    /// Every request, in emission order.
    pub requests: Vec<RequestRecord>,
    /// Every lease, in grant order.
    pub leases: Vec<LeaseRecord>,
    /// Maturity events observed.
    pub matured: u64,
}

impl ScopeLifecycle {
    /// Leases that reached a terminal event.
    #[must_use]
    pub fn closed(&self) -> usize {
        self.leases.iter().filter(|l| l.end_tick.is_some()).count()
    }

    /// Terminal-cause breakdown in lexicographic cause order.
    #[must_use]
    pub fn causes(&self) -> BTreeMap<String, u64> {
        let mut map = BTreeMap::new();
        for lease in &self.leases {
            if let Some(cause) = &lease.end_cause {
                *map.entry(cause.clone()).or_insert(0) += 1;
            }
        }
        map
    }

    /// Integrated held capacity (CPU × ticks held) per center index.
    #[must_use]
    pub fn held_by_center(&self) -> BTreeMap<u64, f64> {
        let mut map = BTreeMap::new();
        for lease in &self.leases {
            *map.entry(lease.center).or_insert(0.0) += lease.cpu * lease.lifetime() as f64;
        }
        map
    }

    /// Integrated held capacity (CPU × ticks held) per operator id.
    #[must_use]
    pub fn held_by_operator(&self) -> BTreeMap<u64, f64> {
        let mut map = BTreeMap::new();
        for lease in &self.leases {
            *map.entry(lease.operator).or_insert(0.0) += lease.cpu * lease.lifetime() as f64;
        }
        map
    }
}

/// The full reconstruction: per-scope lifecycles plus every causality
/// violation found while replaying the trace.
#[derive(Debug, Clone, Default)]
pub struct LifecycleReport {
    /// Per-scope reconstructions, in scope order (scopes are sorted at
    /// flush time, so this order is deterministic).
    pub scopes: Vec<ScopeLifecycle>,
    /// Causality-invariant violations, each naming scope and key.
    pub violations: Vec<String>,
}

impl LifecycleReport {
    /// Total leases reconstructed across scopes.
    #[must_use]
    pub fn total_leases(&self) -> usize {
        self.scopes.iter().map(|s| s.leases.len()).sum()
    }

    /// Total leases that reached a terminal across scopes.
    #[must_use]
    pub fn total_closed(&self) -> usize {
        self.scopes.iter().map(ScopeLifecycle::closed).sum()
    }
}

/// Per-scope replay state.
struct ScopeState {
    lifecycle: ScopeLifecycle,
    /// Live leases: `(center, lease)` → index into `lifecycle.leases`.
    live: BTreeMap<(u64, u64), usize>,
    /// Retired keys (terminal reached) — a reappearing key is invariant
    /// violation 2.
    retired: BTreeMap<(u64, u64), ()>,
    /// Request id → index into `lifecycle.requests`.
    requests: BTreeMap<u64, usize>,
}

impl ScopeState {
    fn new(scope: &str) -> Self {
        Self {
            lifecycle: ScopeLifecycle {
                scope: scope.to_string(),
                requests: Vec::new(),
                leases: Vec::new(),
                matured: 0,
            },
            live: BTreeMap::new(),
            retired: BTreeMap::new(),
            requests: BTreeMap::new(),
        }
    }

    /// Closes the current run segment: flags every still-live lease as
    /// a violation (the engine's run-end closure must have released
    /// them before `run_end`) and clears the per-run id spaces. Two
    /// runs can share one scope label — the same simulation config
    /// appears in more than one experiment — so request ids, lease
    /// keys, and the retired set are all per-run, delimited by
    /// `run_start`.
    fn close_segment(&mut self, violations: &mut Vec<String>) {
        for (&key, &i) in &self.live {
            violations.push(format!(
                "[{}] lease {key:?} granted at tick {} never reached a terminal event",
                self.lifecycle.scope, self.lifecycle.leases[i].granted_tick
            ));
        }
        self.live.clear();
        self.retired.clear();
        self.requests.clear();
    }
}

fn req(event: &TraceEvent, field: &str) -> Result<u64, String> {
    event
        .u64(field)
        .ok_or_else(|| format!("{} event missing {field}", event.kind))
}

fn apply(state: &mut ScopeState, event: &TraceEvent, violations: &mut Vec<String>) {
    if event.kind == "run_start" {
        state.close_segment(violations);
        return;
    }
    let scope = &state.lifecycle.scope;
    let result: Result<(), String> = (|| {
        match event.kind.as_str() {
            "lease_request" => {
                let id = req(event, "request")?;
                if state.requests.contains_key(&id) {
                    violations.push(format!("[{scope}] duplicate request id {id}"));
                    return Ok(());
                }
                state.requests.insert(id, state.lifecycle.requests.len());
                state.lifecycle.requests.push(RequestRecord {
                    id,
                    group: req(event, "group")?,
                    operator: req(event, "operator")?,
                    tick: req(event, "tick")?,
                    cpu: event.f64("cpu").unwrap_or(0.0),
                    grants: 0,
                });
            }
            "lease_grant" => {
                let request = req(event, "request")?;
                let key = (req(event, "center")?, req(event, "lease")?);
                match state.requests.get(&request) {
                    Some(&i) => state.lifecycle.requests[i].grants += 1,
                    None => violations.push(format!(
                        "[{scope}] grant of lease {:?} names unknown request {request}",
                        key
                    )),
                }
                if state.live.contains_key(&key) || state.retired.contains_key(&key) {
                    violations.push(format!("[{scope}] lease key {key:?} granted twice"));
                    return Ok(());
                }
                state.live.insert(key, state.lifecycle.leases.len());
                state.lifecycle.leases.push(LeaseRecord {
                    center: key.0,
                    lease: key.1,
                    operator: req(event, "operator")?,
                    request,
                    granted_tick: req(event, "tick")?,
                    matured_tick: None,
                    end_tick: None,
                    end_cause: None,
                    cpu: event.f64("cpu").unwrap_or(0.0),
                });
            }
            "lease_mature" => {
                let key = (req(event, "center")?, req(event, "lease")?);
                match state.live.get(&key) {
                    Some(&i) => {
                        let lease = &mut state.lifecycle.leases[i];
                        if lease.matured_tick.is_none() {
                            lease.matured_tick = Some(req(event, "tick")?);
                            state.lifecycle.matured += 1;
                        }
                    }
                    None => {
                        violations.push(format!("[{scope}] maturity of non-live lease {key:?}"))
                    }
                }
            }
            "lease_release" | "lease_revoked" => {
                let key = (req(event, "center")?, req(event, "lease")?);
                let cause = if event.kind == "lease_revoked" {
                    "revoked".to_string()
                } else {
                    event.str("cause").unwrap_or("unknown").to_string()
                };
                match state.live.remove(&key) {
                    Some(i) => {
                        let lease = &mut state.lifecycle.leases[i];
                        lease.end_tick = Some(req(event, "tick")?);
                        lease.end_cause = Some(cause);
                        state.retired.insert(key, ());
                    }
                    None => violations.push(format!(
                        "[{scope}] orphan terminal ({cause}) for lease {key:?}"
                    )),
                }
            }
            _ => {}
        }
        Ok(())
    })();
    if let Err(e) = result {
        violations.push(format!("[{scope}] {e}"));
    }
}

/// Replays the lifecycle chain of every scope in `text` (a JSONL trace)
/// and reconstructs each lease's waterfall, collecting causality
/// violations along the way. One scope label can carry several runs
/// back to back (the same simulation config reached from different
/// experiments shares a label), so the per-run id spaces — request
/// ids, lease keys, the retired set — reset at every `run_start`.
///
/// # Errors
/// Returns the first malformed trace line (schema violations are a
/// reader error, not a lifecycle violation).
pub fn analyze_lifecycle(text: &str) -> Result<LifecycleReport, String> {
    let query = Query::default()
        .kind("run_start")
        .kind("lease_request")
        .kind("lease_grant")
        .kind("lease_mature")
        .kind("lease_release")
        .kind("lease_revoked");
    let mut report = LifecycleReport::default();
    let mut states: Vec<ScopeState> = Vec::new();
    for event in read_trace(text, &query) {
        let event = event?;
        let state = match states.iter_mut().find(|s| s.lifecycle.scope == event.scope) {
            Some(state) => state,
            None => {
                states.push(ScopeState::new(&event.scope));
                states.last_mut().expect("just pushed")
            }
        };
        apply(state, &event, &mut report.violations);
    }
    for mut state in states {
        state.close_segment(&mut report.violations);
        report.scopes.push(state.lifecycle);
    }
    Ok(report)
}

/// Turns a report's violations into a hard error listing every one.
///
/// # Errors
/// Returns the violation list (one per line) when any invariant failed.
pub fn check_lifecycle(report: &LifecycleReport) -> Result<(), String> {
    if report.violations.is_empty() {
        return Ok(());
    }
    Err(format!(
        "{} lifecycle violation(s):\n{}",
        report.violations.len(),
        report.violations.join("\n")
    ))
}

/// Deterministic quantile over a sorted slice (nearest-rank).
fn quantile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Renders the reconstruction as a deterministic text report: per
/// scope, the request/grant/terminal accounting, the request→grant
/// latency and lifetime distributions, the terminal-cause breakdown,
/// and the integrated held capacity per center and per operator.
#[must_use]
pub fn render_lifecycle(report: &LifecycleReport) -> String {
    let mut out = String::new();
    out.push_str("Lease lifecycle reconstruction\n");
    out.push_str("==============================\n");
    for scope in &report.scopes {
        out.push_str(&format!("\nscope: {}\n", scope.scope));
        let unmet = scope.requests.iter().filter(|r| r.grants == 0).count();
        out.push_str(&format!(
            "  requests {} (ungranted {}), leases {} (closed {}, matured {})\n",
            scope.requests.len(),
            unmet,
            scope.leases.len(),
            scope.closed(),
            scope.matured,
        ));
        let pct = if scope.leases.is_empty() {
            100.0
        } else {
            100.0 * scope.closed() as f64 / scope.leases.len() as f64
        };
        out.push_str(&format!("  reconstructed {pct:.1}%\n"));
        // Request→grant latency: grants land the tick their request was
        // made, so nonzero latency is itself a finding.
        let mut latencies: Vec<u64> = Vec::new();
        let by_id: BTreeMap<u64, u64> = scope.requests.iter().map(|r| (r.id, r.tick)).collect();
        for lease in &scope.leases {
            if let Some(&req_tick) = by_id.get(&lease.request) {
                latencies.push(lease.granted_tick.saturating_sub(req_tick));
            }
        }
        latencies.sort_unstable();
        let mut lifetimes: Vec<u64> = scope
            .leases
            .iter()
            .filter(|l| l.end_tick.is_some())
            .map(LeaseRecord::lifetime)
            .collect();
        lifetimes.sort_unstable();
        out.push_str(&format!(
            "  request->grant ticks: p50 {} p99 {} max {}\n",
            quantile(&latencies, 0.50),
            quantile(&latencies, 0.99),
            latencies.last().copied().unwrap_or(0),
        ));
        out.push_str(&format!(
            "  lease lifetime ticks: p50 {} p99 {} max {}\n",
            quantile(&lifetimes, 0.50),
            quantile(&lifetimes, 0.99),
            lifetimes.last().copied().unwrap_or(0),
        ));
        let causes = scope.causes();
        if !causes.is_empty() {
            out.push_str("  terminals by cause:\n");
            for (cause, count) in &causes {
                out.push_str(&format!("    {cause:<12} {count}\n"));
            }
        }
        let held = scope.held_by_center();
        if !held.is_empty() {
            out.push_str("  held cpu-ticks by center:\n");
            for (center, cpu_ticks) in &held {
                out.push_str(&format!("    center {center:<3} {cpu_ticks:.2}\n"));
            }
        }
        let held = scope.held_by_operator();
        if !held.is_empty() {
            out.push_str("  held cpu-ticks by operator:\n");
            for (op, cpu_ticks) in &held {
                out.push_str(&format!("    operator {op:<3} {cpu_ticks:.2}\n"));
            }
        }
    }
    out.push_str(&format!(
        "\ntotal: {} leases, {} closed, {} violations\n",
        report.total_leases(),
        report.total_closed(),
        report.violations.len()
    ));
    if !report.violations.is_empty() {
        out.push_str("violations:\n");
        for v in &report.violations {
            out.push_str(&format!("  {v}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(seq: u64, body: &str) -> String {
        format!(r#"{{"seq":{seq},"scope":"run a","kind":{body}}}"#)
    }

    fn healthy_trace() -> String {
        [
            line(
                0,
                r#""lease_request","tick":1,"request":4294967296,"group":1,"operator":7,"cpu":2.5"#,
            ),
            line(
                1,
                r#""lease_grant","tick":1,"request":4294967296,"center":0,"lease":0,"operator":7,"cpu":2.5"#,
            ),
            line(
                2,
                r#""lease_mature","tick":5,"center":0,"lease":0,"operator":7"#,
            ),
            line(
                3,
                r#""lease_release","tick":9,"center":0,"lease":0,"operator":7,"cpu":2.5,"cause":"surplus""#,
            ),
        ]
        .join("\n")
    }

    #[test]
    fn healthy_chain_reconstructs_fully() {
        let report = analyze_lifecycle(&healthy_trace()).expect("trace parses");
        check_lifecycle(&report).expect("no violations");
        assert_eq!(report.total_leases(), 1);
        assert_eq!(report.total_closed(), 1);
        let scope = &report.scopes[0];
        assert_eq!(scope.requests.len(), 1);
        assert_eq!(scope.requests[0].group, 1);
        assert_eq!(scope.requests[0].grants, 1);
        let lease = &scope.leases[0];
        assert_eq!(lease.matured_tick, Some(5));
        assert_eq!(lease.lifetime(), 8);
        assert_eq!(lease.end_cause.as_deref(), Some("surplus"));
        assert_eq!(scope.held_by_center().get(&0), Some(&20.0));
        let rendered = render_lifecycle(&report);
        assert!(rendered.contains("reconstructed 100.0%"), "{rendered}");
        assert!(rendered.contains("surplus"), "{rendered}");
    }

    #[test]
    fn orphan_terminal_and_unknown_request_are_violations() {
        let trace = [
            line(
                0,
                r#""lease_grant","tick":1,"request":99,"center":0,"lease":3,"operator":7,"cpu":1.0"#,
            ),
            line(
                1,
                r#""lease_release","tick":2,"center":4,"lease":8,"operator":7,"cpu":1.0,"cause":"surplus""#,
            ),
        ]
        .join("\n");
        let report = analyze_lifecycle(&trace).expect("trace parses");
        let err = check_lifecycle(&report).expect_err("violations found");
        assert!(err.contains("unknown request 99"), "{err}");
        assert!(err.contains("orphan terminal"), "{err}");
        assert!(err.contains("never reached a terminal"), "{err}");
    }

    #[test]
    fn reused_key_and_double_terminal_are_violations() {
        let trace = [
            line(
                0,
                r#""lease_request","tick":1,"request":1,"group":0,"operator":7,"cpu":2.0"#,
            ),
            line(
                1,
                r#""lease_grant","tick":1,"request":1,"center":0,"lease":0,"operator":7,"cpu":2.0"#,
            ),
            line(
                2,
                r#""lease_release","tick":2,"center":0,"lease":0,"operator":7,"cpu":2.0,"cause":"surplus""#,
            ),
            line(
                3,
                r#""lease_release","tick":3,"center":0,"lease":0,"operator":7,"cpu":2.0,"cause":"surplus""#,
            ),
            line(
                4,
                r#""lease_grant","tick":4,"request":1,"center":0,"lease":0,"operator":7,"cpu":2.0"#,
            ),
        ]
        .join("\n");
        let report = analyze_lifecycle(&trace).expect("trace parses");
        let err = check_lifecycle(&report).expect_err("violations found");
        assert!(err.contains("orphan terminal"), "{err}");
        assert!(err.contains("granted twice"), "{err}");
    }

    #[test]
    fn revoked_is_a_valid_terminal() {
        let trace = [
            line(
                0,
                r#""lease_request","tick":0,"request":1,"group":0,"operator":7,"cpu":2.0"#,
            ),
            line(
                1,
                r#""lease_grant","tick":0,"request":1,"center":2,"lease":5,"operator":7,"cpu":2.0"#,
            ),
            line(
                2,
                r#""lease_revoked","tick":6,"center":2,"lease":5,"operator":7,"cpu":2.0"#,
            ),
        ]
        .join("\n");
        let report = analyze_lifecycle(&trace).expect("trace parses");
        check_lifecycle(&report).expect("revocation closes the lease");
        assert_eq!(report.scopes[0].causes().get("revoked"), Some(&1));
    }
}
