//! The `latency_report` renderer: percentile tables and ASCII
//! distribution sketches over the log-bucketed snapshots that
//! `mmog_obs::latency` embeds in `BENCH_scale.json`
//! (`mmog-scale-bench/v2` stages) and `OBS_summary.json`
//! (`timing.latency`).
//!
//! Everything here is wall-clock-derived presentation — the report is
//! for humans and CI logs, never byte-compared by the determinism
//! suite.

use mmog_obs::json::Value;
use mmog_obs::{LatencySnapshot, LATENCY_BUCKETS};

/// One named distribution pulled out of an artifact.
#[derive(Debug, Clone)]
pub struct NamedSnapshot {
    /// Where the distribution came from (stage + path for scale-bench
    /// documents, the registry path for summaries).
    pub name: String,
    /// The parsed snapshot.
    pub snapshot: LatencySnapshot,
}

/// Extracts every latency snapshot from a parsed artifact: the
/// `timing.latency` section of an `OBS_summary.json`, or each stage's
/// `latency` object in a `mmog-scale-bench/v2` document
/// (`mmog-scale-bench/v1` has none and yields an empty list).
///
/// # Errors
/// Returns a message when a latency entry is present but malformed —
/// a half-readable artifact is an error, not a shorter report.
pub fn collect_snapshots(doc: &Value) -> Result<Vec<NamedSnapshot>, String> {
    let mut out = Vec::new();
    // OBS_summary.json: timing.latency is path → snapshot.
    if let Some(entries) = doc.get("timing").and_then(|t| t.get("latency")) {
        let entries = entries.as_obj().ok_or("timing.latency must be an object")?;
        for (path, snap) in entries {
            let snapshot = LatencySnapshot::from_value(snap)
                .map_err(|e| format!("timing.latency.{path}: {e}"))?;
            out.push(NamedSnapshot {
                name: path.clone(),
                snapshot,
            });
        }
    }
    // Scale-bench documents: stages[].latency, keyed by engine path.
    if let Some(stages) = doc.get("stages").and_then(Value::as_arr) {
        for stage in stages {
            let stage_path = stage.get("path").and_then(Value::as_str).unwrap_or("?");
            let Some(latency) = stage.get("latency") else {
                continue;
            };
            let entries = latency
                .as_obj()
                .ok_or_else(|| format!("stage {stage_path}: latency must be an object"))?;
            for (path, snap) in entries {
                let snapshot = LatencySnapshot::from_value(snap)
                    .map_err(|e| format!("stage {stage_path} latency {path}: {e}"))?;
                out.push(NamedSnapshot {
                    name: format!("{stage_path} {path}"),
                    snapshot,
                });
            }
        }
    }
    Ok(out)
}

/// Scales nanoseconds into the most readable unit.
fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.1} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Renders the percentile table over a set of named snapshots.
#[must_use]
pub fn render_table(snapshots: &[NamedSnapshot]) -> String {
    use std::fmt::Write as _;
    let name_w = snapshots
        .iter()
        .map(|s| s.name.len())
        .max()
        .unwrap_or(4)
        .max(4);
    let mut out = format!(
        "{:name_w$}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}\n",
        "path", "count", "mean", "p50", "p90", "p99", "p99.9", "max"
    );
    for s in snapshots {
        let q = |p: f64| s.snapshot.quantile(p).map_or("-".into(), fmt_ns);
        let _ = writeln!(
            out,
            "{:name_w$}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
            s.name,
            s.snapshot.count,
            s.snapshot
                .mean_ns()
                .map_or("-".into(), |m| fmt_ns(m as u64)),
            q(0.5),
            q(0.9),
            q(0.99),
            q(0.999),
            s.snapshot.max_ns.map_or("-".into(), fmt_ns),
        );
    }
    out
}

/// Renders an ASCII sketch of one distribution: one row per occupied
/// bucket, bar lengths proportional to the bucket's share of the count.
#[must_use]
pub fn render_sketch(s: &NamedSnapshot) -> String {
    use std::fmt::Write as _;
    const BAR_W: usize = 40;
    let mut out = format!("{} (n={})\n", s.name, s.snapshot.count);
    let peak = s.snapshot.counts.iter().copied().max().unwrap_or(0);
    if peak == 0 {
        out.push_str("  (empty)\n");
        return out;
    }
    for idx in 0..LATENCY_BUCKETS {
        let count = s.snapshot.counts.get(idx).copied().unwrap_or(0);
        if count == 0 {
            continue;
        }
        // Ceiling keeps every occupied bucket visible with ≥ 1 cell.
        let cells = (count as u128 * BAR_W as u128).div_ceil(u128::from(peak)) as usize;
        let _ = writeln!(
            out,
            "  {:>10} .. {:<10} {:7}  {}",
            fmt_ns(mmog_obs::latency::bucket_lower(idx)),
            fmt_ns(mmog_obs::latency::bucket_upper(idx)),
            count,
            "#".repeat(cells.min(BAR_W)),
        );
    }
    out
}

/// Renders the full report: the percentile table, then one sketch per
/// distribution.
#[must_use]
pub fn render_report(snapshots: &[NamedSnapshot]) -> String {
    if snapshots.is_empty() {
        return "no latency sections found (v1 artifact, or latency instrumentation off)\n"
            .to_string();
    }
    let mut out = render_table(snapshots);
    for s in snapshots {
        out.push('\n');
        out.push_str(&render_sketch(s));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmog_obs::LatencyHisto;

    fn named(name: &str, values: &[u64]) -> NamedSnapshot {
        let h = LatencyHisto::new();
        for &v in values {
            h.record(v);
        }
        NamedSnapshot {
            name: name.to_string(),
            snapshot: h.snapshot(),
        }
    }

    #[test]
    fn table_and_sketch_render_the_distribution() {
        let s = named("sim/run/tick", &[800, 1_200, 1_500, 2_000_000, 90_000]);
        let table = render_table(std::slice::from_ref(&s));
        assert!(table.contains("sim/run/tick"), "{table}");
        assert!(table.contains("p99"), "{table}");
        let sketch = render_sketch(&s);
        // Every occupied bucket draws at least one cell.
        assert!(sketch.contains('#'), "{sketch}");
        assert!(sketch.contains("ms"), "{sketch}");
    }

    #[test]
    fn collects_from_both_artifact_shapes() {
        let snap = named("x", &[1_000, 2_000]).snapshot.to_value().render();
        let summary = format!(
            r#"{{"schema":"mmog-obs/v1","timing":{{"latency":{{"sim/run/tick":{snap}}}}}}}"#
        );
        let doc = mmog_obs::json::parse(&summary).unwrap();
        let got = collect_snapshots(&doc).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].name, "sim/run/tick");
        assert_eq!(got[0].snapshot.count, 2);

        let bench = format!(
            r#"{{"schema":"mmog-scale-bench/v2","stages":[{{"path":"scale/10k","total_ms":1,"latency":{{"sim/run/reduce":{snap}}}}}]}}"#
        );
        let doc = mmog_obs::json::parse(&bench).unwrap();
        let got = collect_snapshots(&doc).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].name, "scale/10k sim/run/reduce");

        // v1 documents (no latency anywhere) are fine and empty.
        let v1 = r#"{"schema":"mmog-scale-bench/v1","stages":[{"path":"a","total_ms":1}]}"#;
        let doc = mmog_obs::json::parse(v1).unwrap();
        assert!(collect_snapshots(&doc).unwrap().is_empty());
        assert!(render_report(&[]).contains("no latency sections"));

        // Malformed latency entries are errors, not omissions.
        let bad = r#"{"stages":[{"path":"a","total_ms":1,"latency":{"p":{"count":1}}}]}"#;
        let doc = mmog_obs::json::parse(bad).unwrap();
        assert!(collect_snapshots(&doc).is_err());
    }
}
