//! Flame-style span profiles over `mmog_obs::span` output.
//!
//! The span tree records `(path, calls, total_ns, max_ns)` per node
//! with `/`-separated paths; this module rebuilds the hierarchy and
//! derives the two quantities the raw snapshot doesn't carry: **self
//! time** (total minus children) and **percent of parent**. Everything
//! here is wall-clock data — the rendered report belongs in the
//! `timing` half of the world and is never byte-compared.

use mmog_obs::json::Value;
use mmog_obs::SpanSnapshot;

/// One node of the reconstructed span hierarchy.
#[derive(Debug, Clone, Default)]
pub struct ProfileNode {
    /// Full `/`-separated span path.
    pub path: String,
    /// Last path segment (the display name).
    pub name: String,
    /// Number of recorded calls (0 for synthesized interior nodes).
    pub calls: u64,
    /// Total wall-clock nanoseconds, children included.
    pub total_ns: u64,
    /// Slowest single call.
    pub max_ns: u64,
    /// Child nodes, in path order.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// Nanoseconds spent in this node itself, excluding children.
    /// Clamped at zero: children timed on other threads can overlap the
    /// parent and sum past its total.
    #[must_use]
    pub fn self_ns(&self) -> u64 {
        let children: u64 = self.children.iter().map(|c| c.total_ns).sum();
        self.total_ns.saturating_sub(children)
    }
}

fn insert(roots: &mut Vec<ProfileNode>, path: &str, snap: &SpanSnapshot) {
    let mut nodes = roots;
    let mut prefix = String::new();
    let mut segments = path.split('/').peekable();
    while let Some(segment) = segments.next() {
        if !prefix.is_empty() {
            prefix.push('/');
        }
        prefix.push_str(segment);
        let idx = match nodes.iter().position(|n| n.name == segment) {
            Some(i) => i,
            None => {
                nodes.push(ProfileNode {
                    path: prefix.clone(),
                    name: segment.to_string(),
                    ..ProfileNode::default()
                });
                nodes.len() - 1
            }
        };
        if segments.peek().is_none() {
            let node = &mut nodes[idx];
            node.calls = snap.calls;
            node.total_ns = snap.total_ns;
            node.max_ns = snap.max_ns;
            return;
        }
        nodes = &mut nodes[idx].children;
    }
}

fn fill_synthesized(node: &mut ProfileNode) {
    for child in &mut node.children {
        fill_synthesized(child);
    }
    if node.calls == 0 && node.total_ns == 0 {
        node.total_ns = node.children.iter().map(|c| c.total_ns).sum();
        node.max_ns = node.children.iter().map(|c| c.max_ns).max().unwrap_or(0);
    }
}

/// Rebuilds the span hierarchy from a flat snapshot (the order
/// `mmog_obs::snapshot_spans` returns is preserved for siblings).
/// Interior paths that were never directly timed get their totals
/// synthesized from their children.
#[must_use]
pub fn profile_from_spans(spans: &[(String, SpanSnapshot)]) -> Vec<ProfileNode> {
    let mut roots = Vec::new();
    for (path, snap) in spans {
        insert(&mut roots, path, snap);
    }
    for root in &mut roots {
        fill_synthesized(root);
    }
    roots
}

/// Rebuilds the span hierarchy from a saved `OBS_summary.json`
/// document (`timing.spans`).
///
/// # Errors
/// Returns a message when the document doesn't parse or the spans
/// array is malformed.
pub fn profile_from_summary(text: &str) -> Result<Vec<ProfileNode>, String> {
    let doc = mmog_obs::json::parse(text)?;
    let spans = doc
        .get("timing")
        .and_then(|t| t.get("spans"))
        .and_then(Value::as_arr)
        .ok_or("missing timing.spans array")?;
    let mut flat = Vec::with_capacity(spans.len());
    for span in spans {
        let path = span
            .get("path")
            .and_then(Value::as_str)
            .ok_or("span without path")?
            .to_string();
        let get = |field: &str| -> Result<u64, String> {
            span.get(field)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("span {path}: missing {field}"))
        };
        flat.push((
            path.clone(),
            SpanSnapshot {
                calls: get("calls")?,
                total_ns: get("total_ns")?,
                max_ns: get("max_ns")?,
            },
        ));
    }
    Ok(profile_from_spans(&flat))
}

fn render_node(out: &mut String, node: &ProfileNode, parent_total: u64, depth: usize) {
    use std::fmt::Write as _;
    let pct = if parent_total == 0 {
        100.0
    } else {
        node.total_ns as f64 / parent_total as f64 * 100.0
    };
    let indent = "  ".repeat(depth);
    let label = format!("{indent}{}", node.name);
    let _ = writeln!(
        out,
        "{label:<38} {:>12.3} {:>12.3} {:>9} {:>7.1}%",
        node.total_ns as f64 / 1e6,
        node.self_ns() as f64 / 1e6,
        node.calls,
        pct
    );
    for child in &node.children {
        render_node(out, child, node.total_ns, depth + 1);
    }
}

/// Renders the profile as flame-style indented text. Wall-clock data:
/// embed the result behind `mmog_obs::timing_block` if it ever lands in
/// a byte-compared report.
#[must_use]
pub fn render_profile(roots: &[ProfileNode]) -> String {
    let mut out = String::from(
        "Span profile (mmog-obs-analyze)\n\
         span                                       total_ms      self_ms     calls  of-parent\n",
    );
    for root in roots {
        render_node(&mut out, root, 0, 0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(calls: u64, total_ns: u64) -> SpanSnapshot {
        SpanSnapshot {
            calls,
            total_ns,
            max_ns: total_ns,
        }
    }

    #[test]
    fn rebuilds_hierarchy_with_self_time() {
        let spans = vec![
            ("sim/run".to_string(), snap(1, 100_000_000)),
            ("sim/run/predict".to_string(), snap(10, 60_000_000)),
            ("sim/run/settle".to_string(), snap(10, 30_000_000)),
            ("world/emulator".to_string(), snap(5, 40_000_000)),
        ];
        let roots = profile_from_spans(&spans);
        assert_eq!(roots.len(), 2);
        let sim = &roots[0];
        assert_eq!(sim.name, "sim");
        // `sim` itself was never timed: synthesized from its child.
        assert_eq!(sim.total_ns, 100_000_000);
        let run = &sim.children[0];
        assert_eq!(run.children.len(), 2);
        assert_eq!(run.self_ns(), 10_000_000);
        assert_eq!(run.children[0].self_ns(), 60_000_000);

        let text = render_profile(&roots);
        assert!(text.contains("predict"), "{text}");
        assert!(text.contains("emulator"), "{text}");
    }

    #[test]
    fn summary_round_trip() {
        let summary = r#"{"schema":"mmog-obs/v1","semantic":{"counters":{},"gauges":{},"histograms":{}},"timing":{"counters":{},"gauges":{},"histograms":{},"spans":[{"path":"a/b","calls":2,"total_ns":1000,"max_ns":600},{"path":"a","calls":1,"total_ns":2000,"max_ns":2000}]}}"#;
        let roots = profile_from_summary(summary).unwrap();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "a");
        assert_eq!(roots[0].total_ns, 2000);
        assert_eq!(roots[0].self_ns(), 1000);
        assert!(profile_from_summary("{}").is_err());
    }
}
