//! `mmog-obs-analyze` — the read side of the `mmog-obs` telemetry
//! plane.
//!
//! PR 2 taught the simulator to *emit* deterministic traces and
//! metrics; this crate is the layer that reads them back, in the spirit
//! of the monitoring/accounting services the service-oriented MMOG
//! hosting literature treats as first-class citizens next to the
//! simulation itself:
//!
//! - [`reader`] — a streaming, validating iterator over the JSONL
//!   trace with a composable [`Query`] filter (kind, scope, tick
//!   range, group, center).
//! - [`timeline`] — per-run timelines derived from the event stream:
//!   per-tick demand vs. allocation with over/under-allocation, sampled
//!   per-center allocation/free curves, rejection-reason waterfalls and
//!   per-group prediction error, rendered as deterministic text and as
//!   a `TIMELINE_<run>.json` artifact.
//! - [`profile`] — a flame-style span profile (self/total time,
//!   percent-of-parent) over `mmog_obs::span` output, from the live
//!   tree or a saved `OBS_summary.json`.
//! - [`diff`] — semantic first-divergence reporting for traces and for
//!   report text, so determinism failures localize to one event and
//!   one field instead of a byte offset.
//! - [`gate`] — the baseline regression gate CI runs: exact match on
//!   the semantic metrics section, threshold-tolerant comparison on
//!   hot-path stage timings and per-stage p99 tail latency.
//! - [`latency`] — percentile tables and ASCII distribution sketches
//!   over the log-bucketed latency snapshots in `BENCH_scale.json`
//!   (v2) and `OBS_summary.json` (the `latency_report` binary).
//! - [`lifecycle`] — causal lease-lifecycle reconstruction: replays
//!   the `lease_request` → `lease_grant` → `lease_mature` →
//!   release/revoke chain per run, rebuilds every lease's waterfall
//!   (grant latency, lifetime, terminal cause, held capacity per
//!   center/operator) and checks the causality invariants (the
//!   `lease_report` binary).
//!
//! Everything here is offline analysis of already-deterministic
//! artifacts, so the same determinism rule applies transitively: any
//! output derived from semantic inputs is byte-stable; anything
//! wall-clock-derived (the span profile, timing verdicts) is clearly
//! separated and never byte-compared.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod diff;
pub mod gate;
pub mod latency;
pub mod lifecycle;
pub mod profile;
pub mod reader;
pub mod timeline;

pub use diff::{first_text_divergence, trace_diff, Divergence, TextDivergence};
pub use gate::{
    check_bench, check_obs, make_bench_baseline, make_obs_baseline, BenchThresholds, GateOutcome,
};
pub use latency::{collect_snapshots, render_report, render_sketch, render_table, NamedSnapshot};
pub use lifecycle::{
    analyze_lifecycle, check_lifecycle, render_lifecycle, LeaseRecord, LifecycleReport,
    RequestRecord, ScopeLifecycle,
};
pub use profile::{profile_from_spans, profile_from_summary, render_profile, ProfileNode};
pub use reader::{read_trace, Query, TraceEvent};
pub use timeline::{analyze_trace, render_timelines, timelines_value, RunTimeline};
