//! Per-run timelines derived from the event stream.
//!
//! A trace holds one chunk per simulation run (scope); this module
//! folds each scope's events into a [`RunTimeline`] — the per-tick
//! demand/allocation curves, sampled per-center series, rejection
//! waterfall and per-group prediction error that the paper's Sec. V
//! evaluation plots (Figs. 8–14) — and renders the set as a
//! deterministic text report plus a `TIMELINE_<run>.json` document.
//!
//! Every number here is folded from semantic event fields in global
//! `seq` order, so the text and JSON outputs inherit the trace's
//! byte-stability across `--jobs` values.

use crate::reader::{read_trace, Query, TraceEvent};
use mmog_obs::json::Value;

/// Schema identifier of the `TIMELINE_<run>.json` artifact.
pub const TIMELINE_SCHEMA: &str = "mmog-obs-timeline/v1";

/// One platform-wide tick sample (from `tick` events).
#[derive(Debug, Clone, Copy)]
pub struct TickRow {
    /// Tick index.
    pub tick: u64,
    /// Total CPU demand across groups.
    pub demand_cpu: f64,
    /// Total CPU allocated across groups.
    pub alloc_cpu: f64,
    /// Unmet CPU demand.
    pub shortfall_cpu: f64,
}

impl TickRow {
    /// CPU allocated beyond demand this tick (never negative).
    #[must_use]
    pub fn over_cpu(&self) -> f64 {
        (self.alloc_cpu - self.demand_cpu).max(0.0)
    }
}

/// One sampled per-center snapshot (from `center_tick` events).
#[derive(Debug, Clone, Copy)]
pub struct CenterSample {
    /// Tick index of the sample.
    pub tick: u64,
    /// CPU leased out of this center at the sample.
    pub alloc_cpu: f64,
    /// CPU free in this center at the sample.
    pub free_cpu: f64,
}

/// The sampled allocation series of one data center.
#[derive(Debug, Clone)]
pub struct CenterSeries {
    /// Platform index of the center.
    pub center: u64,
    /// Samples in tick order.
    pub samples: Vec<CenterSample>,
}

/// One group's prediction-error report (from `prediction_group`).
#[derive(Debug, Clone)]
pub struct PredictionRow {
    /// Group index.
    pub group: u64,
    /// Owning operator.
    pub operator: u64,
    /// Game name.
    pub game: String,
    /// Mean absolute prediction error, percent.
    pub error_pct: f64,
}

/// One center's integrated usage attribution (from `center_usage`).
#[derive(Debug, Clone)]
pub struct UsageRow {
    /// Center name.
    pub name: String,
    /// CPU capacity of the center.
    pub capacity_cpu: f64,
    /// Allocated CPU integrated over post-warmup ticks.
    pub cpu_unit_ticks: f64,
    /// Free CPU integrated over post-warmup ticks.
    pub cpu_free_unit_ticks: f64,
}

/// Everything the analytics layer derives from one run's events.
#[derive(Debug, Clone, Default)]
pub struct RunTimeline {
    /// The run's deterministic chunk label.
    pub scope: String,
    /// Allocation mode from `run_start` (when present).
    pub mode: Option<String>,
    /// Configured tick count from `run_start`.
    pub configured_ticks: Option<u64>,
    /// Platform-wide per-tick rows.
    pub ticks: Vec<TickRow>,
    /// Sampled per-center series, in center order.
    pub centers: Vec<CenterSeries>,
    /// Rejection-reason waterfall: `(reason, count)` sorted by reason.
    pub rejections: Vec<(String, u64)>,
    /// Scenario-event waterfall: `(kind, count)` sorted by kind, over
    /// the five topology-mutation kinds (`partition`, `heal`,
    /// `topology_change`, `migration`, `flash_crowd`). Empty for
    /// scenario-free runs.
    pub scenario: Vec<(String, u64)>,
    /// Player-ticks charged by zone migrations (sum of `migration`
    /// events' `cost` fields).
    pub migration_cost: f64,
    /// Per-group prediction error, in group-event order.
    pub prediction: Vec<PredictionRow>,
    /// Integrated per-center usage, in platform order.
    pub usage: Vec<UsageRow>,
}

impl RunTimeline {
    fn fold(&mut self, event: &TraceEvent) {
        match event.kind.as_str() {
            "run_start" => {
                self.mode = event.str("mode").map(str::to_string);
                self.configured_ticks = event.u64("ticks");
            }
            "tick" => self.ticks.push(TickRow {
                tick: event.tick().unwrap_or(0),
                demand_cpu: event.f64("demand_cpu").unwrap_or(0.0),
                alloc_cpu: event.f64("alloc_cpu").unwrap_or(0.0),
                shortfall_cpu: event.f64("shortfall_cpu").unwrap_or(0.0),
            }),
            "center_tick" => {
                let center = event.u64("center").unwrap_or(0);
                let sample = CenterSample {
                    tick: event.tick().unwrap_or(0),
                    alloc_cpu: event.f64("alloc_cpu").unwrap_or(0.0),
                    free_cpu: event.f64("free_cpu").unwrap_or(0.0),
                };
                match self.centers.iter_mut().find(|s| s.center == center) {
                    Some(series) => series.samples.push(sample),
                    None => self.centers.push(CenterSeries {
                        center,
                        samples: vec![sample],
                    }),
                }
            }
            "match_reject" => {
                let reason = event.str("reason").unwrap_or("?").to_string();
                match self.rejections.binary_search_by(|(r, _)| r.cmp(&reason)) {
                    Ok(i) => self.rejections[i].1 += 1,
                    Err(i) => self.rejections.insert(i, (reason, 1)),
                }
            }
            kind @ ("partition" | "heal" | "topology_change" | "migration" | "flash_crowd") => {
                if kind == "migration" {
                    self.migration_cost += event.f64("cost").unwrap_or(0.0);
                }
                match self
                    .scenario
                    .binary_search_by(|(k, _)| k.as_str().cmp(kind))
                {
                    Ok(i) => self.scenario[i].1 += 1,
                    Err(i) => self.scenario.insert(i, (kind.to_string(), 1)),
                }
            }
            "prediction_group" => self.prediction.push(PredictionRow {
                group: event.u64("group").unwrap_or(0),
                operator: event.u64("operator").unwrap_or(0),
                game: event.str("game").unwrap_or("?").to_string(),
                error_pct: event.f64("error_pct").unwrap_or(0.0),
            }),
            "center_usage" => self.usage.push(UsageRow {
                name: event.str("name").unwrap_or("?").to_string(),
                capacity_cpu: event.f64("capacity_cpu").unwrap_or(0.0),
                cpu_unit_ticks: event.f64("cpu_unit_ticks").unwrap_or(0.0),
                cpu_free_unit_ticks: event.f64("cpu_free_unit_ticks").unwrap_or(0.0),
            }),
            _ => {}
        }
    }
}

/// Folds a whole trace into one [`RunTimeline`] per scope, in the
/// trace's deterministic scope order. `query` pre-filters the events
/// that are folded (the default query folds everything).
///
/// # Errors
/// Returns the first malformed line (parse failure or field-schema
/// violation), with its line number.
pub fn analyze_trace(text: &str, query: &Query) -> Result<Vec<RunTimeline>, String> {
    let mut runs: Vec<RunTimeline> = Vec::new();
    for event in read_trace(text, query) {
        let event = event?;
        let run = match runs.iter_mut().find(|r| r.scope == event.scope) {
            Some(run) => run,
            None => {
                runs.push(RunTimeline {
                    scope: event.scope.clone(),
                    ..RunTimeline::default()
                });
                runs.last_mut().expect("just pushed")
            }
        };
        run.fold(&event);
    }
    Ok(runs)
}

fn mean(values: impl Iterator<Item = f64>) -> Option<(f64, f64, usize)> {
    let mut sum = 0.0;
    let mut peak = f64::NEG_INFINITY;
    let mut n = 0usize;
    for v in values {
        sum += v;
        peak = peak.max(v);
        n += 1;
    }
    (n > 0).then(|| (sum / n as f64, peak, n))
}

/// Renders the timeline set as the deterministic text report
/// `trace_analyze` prints.
#[must_use]
pub fn render_timelines(runs: &[RunTimeline]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("Timeline report (mmog-obs-analyze)\n");
    for run in runs {
        let _ = write!(out, "\nscope: {}\n", run.scope);
        if let (Some(mode), Some(ticks)) = (&run.mode, run.configured_ticks) {
            let _ = writeln!(out, "  mode {mode}, {ticks} configured ticks");
        }
        if let Some((mean_d, peak_d, n)) = mean(run.ticks.iter().map(|t| t.demand_cpu)) {
            let _ = writeln!(
                out,
                "  demand_cpu: {n} ticks, mean {mean_d:.3}, peak {peak_d:.3}"
            );
        }
        if let Some((mean_a, peak_a, _)) = mean(run.ticks.iter().map(|t| t.alloc_cpu)) {
            let _ = writeln!(out, "  alloc_cpu:  mean {mean_a:.3}, peak {peak_a:.3}");
        }
        if let Some((mean_o, peak_o, _)) = mean(run.ticks.iter().map(TickRow::over_cpu)) {
            let _ = writeln!(
                out,
                "  over-allocation: mean {mean_o:.3} cpu, peak {peak_o:.3}"
            );
        }
        let short_ticks = run.ticks.iter().filter(|t| t.shortfall_cpu > 0.0).count();
        let short_total: f64 = run.ticks.iter().map(|t| t.shortfall_cpu).sum();
        let _ = writeln!(
            out,
            "  under-allocation: {short_ticks} ticks short, {short_total:.3} cpu-ticks total"
        );
        if !run.centers.is_empty() {
            let samples = run.centers.iter().map(|c| c.samples.len()).sum::<usize>();
            let _ = writeln!(
                out,
                "  center series: {} centers, {samples} samples",
                run.centers.len()
            );
        }
        if !run.rejections.is_empty() {
            let waterfall: Vec<String> = run
                .rejections
                .iter()
                .map(|(r, n)| format!("{r} {n}"))
                .collect();
            let _ = writeln!(out, "  rejections: {}", waterfall.join(", "));
        }
        if !run.scenario.is_empty() {
            let waterfall: Vec<String> = run
                .scenario
                .iter()
                .map(|(k, n)| format!("{k} {n}"))
                .collect();
            let _ = writeln!(out, "  scenario events: {}", waterfall.join(", "));
            if run.migration_cost > 0.0 {
                let _ = writeln!(
                    out,
                    "  migration cost: {:.3} player-ticks",
                    run.migration_cost
                );
            }
        }
        if let Some((mean_e, _, n)) = mean(run.prediction.iter().map(|p| p.error_pct.abs())) {
            let worst = run
                .prediction
                .iter()
                .max_by(|a, b| {
                    a.error_pct
                        .abs()
                        .partial_cmp(&b.error_pct.abs())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("non-empty prediction set");
            let _ = writeln!(
                out,
                "  prediction error: {n} groups, mean |err| {mean_e:.3}%, worst group {} ({}) {:.3}%",
                worst.group, worst.game, worst.error_pct
            );
        }
        if !run.usage.is_empty() {
            let used: f64 = run.usage.iter().map(|u| u.cpu_unit_ticks).sum();
            let free: f64 = run.usage.iter().map(|u| u.cpu_free_unit_ticks).sum();
            let _ = writeln!(
                out,
                "  center usage: {} centers, {used:.3} allocated cpu-ticks, {free:.3} free cpu-ticks",
                run.usage.len()
            );
        }
    }
    out
}

fn num(v: f64) -> Value {
    Value::Num(v)
}

/// Builds the `TIMELINE_<run>.json` document for a timeline set.
#[must_use]
pub fn timelines_value(runs: &[RunTimeline]) -> Value {
    let scopes: Vec<Value> = runs
        .iter()
        .map(|run| {
            let ticks: Vec<Value> = run
                .ticks
                .iter()
                .map(|t| {
                    Value::Obj(vec![
                        ("tick".to_string(), Value::UInt(t.tick)),
                        ("demand_cpu".to_string(), num(t.demand_cpu)),
                        ("alloc_cpu".to_string(), num(t.alloc_cpu)),
                        ("shortfall_cpu".to_string(), num(t.shortfall_cpu)),
                        ("over_cpu".to_string(), num(t.over_cpu())),
                    ])
                })
                .collect();
            let centers: Vec<Value> = run
                .centers
                .iter()
                .map(|c| {
                    let samples: Vec<Value> = c
                        .samples
                        .iter()
                        .map(|s| {
                            Value::Obj(vec![
                                ("tick".to_string(), Value::UInt(s.tick)),
                                ("alloc_cpu".to_string(), num(s.alloc_cpu)),
                                ("free_cpu".to_string(), num(s.free_cpu)),
                            ])
                        })
                        .collect();
                    Value::Obj(vec![
                        ("center".to_string(), Value::UInt(c.center)),
                        ("samples".to_string(), Value::Arr(samples)),
                    ])
                })
                .collect();
            let rejections: Vec<(String, Value)> = run
                .rejections
                .iter()
                .map(|(r, n)| (r.clone(), Value::UInt(*n)))
                .collect();
            let prediction: Vec<Value> = run
                .prediction
                .iter()
                .map(|p| {
                    Value::Obj(vec![
                        ("group".to_string(), Value::UInt(p.group)),
                        ("operator".to_string(), Value::UInt(p.operator)),
                        ("game".to_string(), Value::Str(p.game.clone())),
                        ("error_pct".to_string(), num(p.error_pct)),
                    ])
                })
                .collect();
            let usage: Vec<Value> = run
                .usage
                .iter()
                .map(|u| {
                    Value::Obj(vec![
                        ("name".to_string(), Value::Str(u.name.clone())),
                        ("capacity_cpu".to_string(), num(u.capacity_cpu)),
                        ("cpu_unit_ticks".to_string(), num(u.cpu_unit_ticks)),
                        (
                            "cpu_free_unit_ticks".to_string(),
                            num(u.cpu_free_unit_ticks),
                        ),
                    ])
                })
                .collect();
            let mut fields = vec![
                ("scope".to_string(), Value::Str(run.scope.clone())),
                (
                    "mode".to_string(),
                    run.mode
                        .as_ref()
                        .map_or(Value::Null, |m| Value::Str(m.clone())),
                ),
                (
                    "configured_ticks".to_string(),
                    run.configured_ticks.map_or(Value::Null, Value::UInt),
                ),
                ("ticks".to_string(), Value::Arr(ticks)),
                ("centers".to_string(), Value::Arr(centers)),
                ("rejections".to_string(), Value::Obj(rejections)),
                ("prediction".to_string(), Value::Arr(prediction)),
                ("usage".to_string(), Value::Arr(usage)),
            ];
            // Scenario sections appear only for runs that saw scenario
            // events, so scenario-free documents stay byte-identical to
            // pre-scenario builds.
            if !run.scenario.is_empty() {
                let scenario: Vec<(String, Value)> = run
                    .scenario
                    .iter()
                    .map(|(k, n)| (k.clone(), Value::UInt(*n)))
                    .collect();
                fields.push(("scenario".to_string(), Value::Obj(scenario)));
                fields.push(("migration_cost".to_string(), num(run.migration_cost)));
            }
            Value::Obj(fields)
        })
        .collect();
    Value::Obj(vec![
        (
            "schema".to_string(),
            Value::Str(TIMELINE_SCHEMA.to_string()),
        ),
        ("scopes".to_string(), Value::Arr(scopes)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> String {
        [
            r#"{"seq":0,"scope":"runA","kind":"run_start","mode":"dynamic","groups":2,"centers":2,"ticks":4,"warmup":0}"#,
            r#"{"seq":1,"scope":"runA","kind":"tick","tick":0,"demand_cpu":10,"alloc_cpu":12,"shortfall_cpu":0}"#,
            r#"{"seq":2,"scope":"runA","kind":"center_tick","tick":0,"center":0,"alloc_cpu":8,"free_cpu":2}"#,
            r#"{"seq":3,"scope":"runA","kind":"center_tick","tick":0,"center":1,"alloc_cpu":4,"free_cpu":6}"#,
            r#"{"seq":4,"scope":"runA","kind":"tick","tick":1,"demand_cpu":14,"alloc_cpu":12,"shortfall_cpu":2}"#,
            r#"{"seq":5,"scope":"runA","kind":"match_reject","tick":1,"operator":0,"center":1,"reason":"distance"}"#,
            r#"{"seq":6,"scope":"runA","kind":"match_reject","tick":1,"operator":0,"center":0,"reason":"exhausted"}"#,
            r#"{"seq":7,"scope":"runA","kind":"match_reject","tick":2,"operator":1,"center":1,"reason":"distance"}"#,
            r#"{"seq":8,"scope":"runA","kind":"prediction_group","group":0,"operator":0,"game":"rpg","error_pct":7.5}"#,
            r#"{"seq":9,"scope":"runA","kind":"prediction_group","group":1,"operator":1,"game":"fps","error_pct":-12.5}"#,
            r#"{"seq":10,"scope":"runA","kind":"center_usage","name":"c0","capacity_cpu":10,"cpu_unit_ticks":16,"cpu_free_unit_ticks":4}"#,
            r#"{"seq":11,"scope":"runA","kind":"run_end","ticks":4,"unmet_steps":1,"leases_granted":3,"leases_released":1}"#,
            r#"{"seq":12,"scope":"runB","kind":"tick","tick":0,"demand_cpu":1,"alloc_cpu":1,"shortfall_cpu":0}"#,
        ]
        .join("\n")
    }

    #[test]
    fn folds_scopes_independently() {
        let runs = analyze_trace(&sample_trace(), &Query::default()).unwrap();
        assert_eq!(runs.len(), 2);
        let a = &runs[0];
        assert_eq!(a.scope, "runA");
        assert_eq!(a.mode.as_deref(), Some("dynamic"));
        assert_eq!(a.ticks.len(), 2);
        assert!((a.ticks[0].over_cpu() - 2.0).abs() < 1e-12);
        assert!((a.ticks[1].over_cpu()).abs() < 1e-12);
        assert_eq!(a.centers.len(), 2);
        assert_eq!(
            a.rejections,
            vec![("distance".to_string(), 2), ("exhausted".to_string(), 1)]
        );
        assert_eq!(a.prediction.len(), 2);
        assert_eq!(a.usage.len(), 1);
        assert_eq!(runs[1].scope, "runB");
        assert_eq!(runs[1].ticks.len(), 1);
    }

    #[test]
    fn report_and_json_are_deterministic() {
        let runs = analyze_trace(&sample_trace(), &Query::default()).unwrap();
        let text_a = render_timelines(&runs);
        let json_a = timelines_value(&runs).render_pretty();
        let runs_b = analyze_trace(&sample_trace(), &Query::default()).unwrap();
        assert_eq!(text_a, render_timelines(&runs_b));
        assert_eq!(json_a, timelines_value(&runs_b).render_pretty());
        assert!(
            text_a.contains("rejections: distance 2, exhausted 1"),
            "{text_a}"
        );
        assert!(text_a.contains("worst group 1 (fps) -12.500%"), "{text_a}");
        let parsed = mmog_obs::json::parse(&json_a).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(Value::as_str),
            Some(TIMELINE_SCHEMA)
        );
    }

    #[test]
    fn scenario_waterfall_folds_and_renders_only_when_present() {
        let trace = [
            r#"{"seq":0,"scope":"runS","kind":"partition","tick":5,"mask":9,"components":2}"#,
            r#"{"seq":1,"scope":"runS","kind":"migration","tick":6,"group":2,"center":1,"leases":3,"cost":84.5}"#,
            r#"{"seq":2,"scope":"runS","kind":"migration","tick":7,"group":0,"center":4,"leases":1,"cost":15.5}"#,
            r#"{"seq":3,"scope":"runS","kind":"flash_crowd","tick":8,"region":1,"factor":2.5,"groups":4}"#,
            r#"{"seq":4,"scope":"runS","kind":"topology_change","tick":8,"a":0,"b":3,"factor":3.5}"#,
            r#"{"seq":5,"scope":"runS","kind":"heal","tick":9,"components":1}"#,
        ]
        .join("\n");
        let runs = analyze_trace(&trace, &Query::default()).unwrap();
        assert_eq!(runs.len(), 1);
        let run = &runs[0];
        assert_eq!(
            run.scenario,
            vec![
                ("flash_crowd".to_string(), 1),
                ("heal".to_string(), 1),
                ("migration".to_string(), 2),
                ("partition".to_string(), 1),
                ("topology_change".to_string(), 1),
            ]
        );
        assert!((run.migration_cost - 100.0).abs() < 1e-12);
        let text = render_timelines(&runs);
        assert!(
            text.contains("scenario events: flash_crowd 1, heal 1, migration 2, partition 1, topology_change 1"),
            "{text}"
        );
        assert!(
            text.contains("migration cost: 100.000 player-ticks"),
            "{text}"
        );
        let json = timelines_value(&runs).render_pretty();
        let parsed = mmog_obs::json::parse(&json).unwrap();
        let scope = &parsed.get("scopes").and_then(Value::as_arr).unwrap()[0];
        assert_eq!(
            scope
                .get("scenario")
                .and_then(|s| s.get("migration"))
                .and_then(Value::as_u64),
            Some(2)
        );
        assert_eq!(
            scope.get("migration_cost").and_then(Value::as_f64),
            Some(100.0)
        );

        // Scenario-free runs render and serialize without the section —
        // byte-identical to pre-scenario builds.
        let plain = analyze_trace(&sample_trace(), &Query::default()).unwrap();
        let plain_text = render_timelines(&plain);
        assert!(!plain_text.contains("scenario events"), "{plain_text}");
        let plain_json = timelines_value(&plain).render_pretty();
        assert!(!plain_json.contains("\"scenario\""), "{plain_json}");
        assert!(!plain_json.contains("migration_cost"), "{plain_json}");
    }

    #[test]
    fn query_scoped_timelines() {
        let runs =
            analyze_trace(&sample_trace(), &Query::default().scope_contains("runB")).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].scope, "runB");
    }
}
