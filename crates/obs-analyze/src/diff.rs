//! Semantic first-divergence reporting.
//!
//! Byte-comparing two deterministic artifacts tells you *that* they
//! differ; this module tells you *where*: for traces, the first
//! diverging event with its kind, tick and the first field whose value
//! moved; for report text, the first diverging line. The determinism
//! suites route their failures through these helpers so a regression
//! reads as `kind `tick` tick 42 field `alloc_cpu`: 12.5 vs 13`, not a
//! byte offset.

use mmog_obs::json::Value;
use mmog_obs::parse_trace_line;

/// Where two traces first part ways.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// 1-based line number of the first differing line.
    pub line: usize,
    /// Sequence number of the left event, when it parsed.
    pub seq: Option<u64>,
    /// Scope of the left event (falls back to the right event's).
    pub scope: Option<String>,
    /// Kind of the left event (falls back to the right event's).
    pub kind: Option<String>,
    /// Tick of the left event (falls back to the right event's).
    pub tick: Option<u64>,
    /// First differing field, when both lines are events of one kind.
    pub field: Option<String>,
    /// The left side of the difference (field value or whole line).
    pub left: String,
    /// The right side of the difference.
    pub right: String,
}

impl Divergence {
    /// One human-readable sentence naming the divergence.
    #[must_use]
    pub fn message(&self) -> String {
        let mut out = format!("first divergence at line {}", self.line);
        if let Some(seq) = self.seq {
            out.push_str(&format!(" (seq {seq}"));
            if let Some(scope) = &self.scope {
                out.push_str(&format!(", scope {scope:?}"));
            }
            out.push(')');
        }
        if let Some(kind) = &self.kind {
            out.push_str(&format!(": kind `{kind}`"));
        }
        if let Some(tick) = self.tick {
            out.push_str(&format!(" tick {tick}"));
        }
        match &self.field {
            Some(field) => out.push_str(&format!(
                ", field `{field}`: {} vs {}",
                self.left, self.right
            )),
            None => out.push_str(&format!(": {} vs {}", self.left, self.right)),
        }
        out
    }
}

const END_OF_TRACE: &str = "<end of trace>";

fn event_context(line: &str) -> (Option<u64>, Option<String>, Option<String>, Option<u64>) {
    match parse_trace_line(line) {
        Ok((seq, scope, kind, value)) => (
            Some(seq),
            Some(scope),
            Some(kind),
            value.get("tick").and_then(Value::as_u64),
        ),
        Err(_) => (None, None, None, None),
    }
}

fn field_delta(left: &str, right: &str) -> Option<(String, String, String)> {
    let l = mmog_obs::json::parse(left).ok()?;
    let r = mmog_obs::json::parse(right).ok()?;
    let (lm, rm) = (l.as_obj()?, r.as_obj()?);
    for ((ln, lv), (rn, rv)) in lm.iter().zip(rm) {
        if ln != rn {
            return Some((
                ln.clone(),
                format!("field `{ln}` present"),
                format!("field `{rn}` present"),
            ));
        }
        if lv != rv {
            return Some((ln.clone(), lv.render(), rv.render()));
        }
    }
    if lm.len() != rm.len() {
        let (longer, side) = if lm.len() > rm.len() {
            (lm, "left")
        } else {
            (rm, "right")
        };
        let extra = &longer[lm.len().min(rm.len())].0;
        return Some((
            extra.clone(),
            format!("only {side} carries `{extra}`"),
            String::new(),
        ));
    }
    None
}

/// Compares two traces line by line and reports the first diverging
/// event, or `None` when they are byte-identical. A missing trailing
/// event (one trace is a prefix of the other) is reported against
/// `<end of trace>`.
#[must_use]
pub fn trace_diff(left: &str, right: &str) -> Option<Divergence> {
    let mut lines_l = left.lines();
    let mut lines_r = right.lines();
    let mut line_no = 0usize;
    loop {
        line_no += 1;
        match (lines_l.next(), lines_r.next()) {
            (None, None) => return None,
            (l, r) => {
                let l = l.unwrap_or(END_OF_TRACE);
                let r = r.unwrap_or(END_OF_TRACE);
                if l == r {
                    continue;
                }
                let (seq, scope, kind, tick) = match event_context(l) {
                    ctx @ (Some(_), _, _, _) => ctx,
                    _ => event_context(r),
                };
                let same_kind_delta = (l != END_OF_TRACE && r != END_OF_TRACE)
                    .then(|| field_delta(l, r))
                    .flatten();
                return Some(match same_kind_delta {
                    Some((field, lv, rv)) => Divergence {
                        line: line_no,
                        seq,
                        scope,
                        kind,
                        tick,
                        field: Some(field),
                        left: lv,
                        right: rv,
                    },
                    None => Divergence {
                        line: line_no,
                        seq,
                        scope,
                        kind,
                        tick,
                        field: None,
                        left: l.to_string(),
                        right: r.to_string(),
                    },
                });
            }
        }
    }
}

/// Where two text reports first part ways.
#[derive(Debug, Clone)]
pub struct TextDivergence {
    /// 1-based line number of the first differing line.
    pub line: usize,
    /// The left line (or `<end of text>`).
    pub left: String,
    /// The right line (or `<end of text>`).
    pub right: String,
}

impl TextDivergence {
    /// One human-readable sentence naming the divergence.
    #[must_use]
    pub fn message(&self) -> String {
        format!(
            "first divergence at line {}:\n  left:  {}\n  right: {}",
            self.line, self.left, self.right
        )
    }
}

/// Compares two text reports line by line and reports the first
/// diverging line, or `None` when they are byte-identical.
#[must_use]
pub fn first_text_divergence(left: &str, right: &str) -> Option<TextDivergence> {
    if left == right {
        return None;
    }
    let mut lines_l = left.lines();
    let mut lines_r = right.lines();
    let mut line_no = 0usize;
    loop {
        line_no += 1;
        match (lines_l.next(), lines_r.next()) {
            // Line content identical but the texts differ: trailing
            // newline or carriage-return drift.
            (None, None) => {
                return Some(TextDivergence {
                    line: line_no,
                    left: "<line terminator difference>".to_string(),
                    right: "<line terminator difference>".to_string(),
                })
            }
            (l, r) => {
                let l = l.unwrap_or("<end of text>");
                let r = r.unwrap_or("<end of text>");
                if l != r {
                    return Some(TextDivergence {
                        line: line_no,
                        left: l.to_string(),
                        right: r.to_string(),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = concat!(
        r#"{"seq":0,"scope":"a","kind":"run_start","mode":"dynamic","groups":1,"centers":1,"ticks":4,"warmup":0}"#,
        "\n",
        r#"{"seq":1,"scope":"a","kind":"tick","tick":0,"demand_cpu":10,"alloc_cpu":12.5,"shortfall_cpu":0}"#,
        "\n",
        r#"{"seq":2,"scope":"a","kind":"run_end","ticks":4,"unmet_steps":0,"leases_granted":1,"leases_released":0}"#,
        "\n",
    );

    #[test]
    fn identical_traces_have_no_divergence() {
        assert!(trace_diff(BASE, BASE).is_none());
        assert!(first_text_divergence(BASE, BASE).is_none());
    }

    #[test]
    fn perturbed_field_names_kind_tick_and_field() {
        let perturbed = BASE.replace(r#""alloc_cpu":12.5"#, r#""alloc_cpu":13"#);
        let d = trace_diff(BASE, &perturbed).expect("must diverge");
        assert_eq!(d.line, 2);
        assert_eq!(d.seq, Some(1));
        assert_eq!(d.kind.as_deref(), Some("tick"));
        assert_eq!(d.tick, Some(0));
        assert_eq!(d.field.as_deref(), Some("alloc_cpu"));
        assert_eq!(d.left, "12.5");
        assert_eq!(d.right, "13");
        let msg = d.message();
        assert!(msg.contains("kind `tick`"), "{msg}");
        assert!(msg.contains("tick 0"), "{msg}");
        assert!(msg.contains("`alloc_cpu`"), "{msg}");
    }

    #[test]
    fn missing_trailing_event_reports_end_of_trace() {
        let truncated: String = BASE.lines().take(2).collect::<Vec<_>>().join("\n") + "\n";
        let d = trace_diff(BASE, &truncated).expect("must diverge");
        assert_eq!(d.line, 3);
        assert_eq!(d.kind.as_deref(), Some("run_end"));
        assert_eq!(d.right, END_OF_TRACE);
    }

    /// A real flight-recorder dump: `flight_meta` first line, then the
    /// retained full-detail window (same envelope as the trace, so
    /// `trace_diff` localizes divergences in dumps too).
    fn flight_dump() -> String {
        use mmog_obs::{FlightConfig, FlightRecorder, FlightTrigger};
        let dir = std::env::temp_dir().join("obs_analyze_diff_flight");
        let mut cfg = FlightConfig::new(4);
        cfg.dump_dir.clone_from(&dir);
        let mut rec = FlightRecorder::new(cfg);
        for t in 0..12 {
            rec.begin_tick(t);
            rec.push("tick", t, &[10.0, 12.5, 0.0]);
            rec.push("tick_latency", t, &[10.0, 5.0, 0.0, 20.0]);
        }
        let path = rec
            .trigger(FlightTrigger::Explicit, 11, "diff-test")
            .unwrap()
            .expect("trigger writes a dump");
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        text
    }

    #[test]
    fn flight_dumps_diff_like_traces() {
        let dump = flight_dump();
        // Identical dumps: no divergence.
        assert!(trace_diff(&dump, &dump).is_none());
        // Tamper one record's payload: the divergence names the record
        // kind, its tick, and the exact field that moved — not a byte
        // offset.
        let tampered = dump.replacen(r#""alloc_cpu":12.5"#, r#""alloc_cpu":99"#, 1);
        assert_ne!(dump, tampered, "fixture must contain an alloc_cpu field");
        let d = trace_diff(&dump, &tampered).expect("tampered dump must diverge");
        assert_eq!(d.kind.as_deref(), Some("tick"));
        assert_eq!(d.field.as_deref(), Some("alloc_cpu"));
        assert_eq!(d.left, "12.5");
        assert_eq!(d.right, "99");
        assert!(d.tick.is_some());
        // Tamper the meta line: the divergence lands on line 1 and
        // names `flight_meta`.
        let meta_tampered = dump.replacen(r#""trigger":"explicit""#, r#""trigger":"fault""#, 1);
        assert_ne!(dump, meta_tampered, "fixture must carry the trigger");
        let d = trace_diff(&dump, &meta_tampered).expect("must diverge");
        assert_eq!(d.line, 1);
        assert_eq!(d.kind.as_deref(), Some("flight_meta"));
        assert_eq!(d.field.as_deref(), Some("trigger"));
        // Truncate the dump (a torn write): the first missing record is
        // reported against <end of trace>.
        let lines: Vec<&str> = dump.lines().collect();
        let truncated = lines[..lines.len() - 1].join("\n") + "\n";
        let d = trace_diff(&dump, &truncated).expect("must diverge");
        assert_eq!(d.right, END_OF_TRACE);
        assert_eq!(d.line, lines.len());
    }

    #[test]
    fn text_divergence_reports_first_line() {
        let d = first_text_divergence("a\nb\nc\n", "a\nB\nc\n").expect("differs");
        assert_eq!(d.line, 2);
        assert_eq!(d.left, "b");
        assert_eq!(d.right, "B");
        let msg = d.message();
        assert!(msg.contains("line 2"), "{msg}");
    }
}
