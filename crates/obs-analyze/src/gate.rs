//! The baseline regression gate.
//!
//! Two committed baselines, two comparison regimes:
//!
//! - `results/BASELINE_obs.json` holds the **semantic** metrics section
//!   of a quick-suite `OBS_summary.json`. Semantic instruments use only
//!   commutative integer operations and the workload caches build once
//!   per key, so a fresh-process quick-suite run reproduces the section
//!   byte-for-byte on any machine at any `--jobs` — the gate compares
//!   **exactly** and any drift fails the build.
//! - `results/BASELINE_bench.json` holds hot-path stage timings from
//!   `BENCH_parallel.json`. Wall-clock is machine-dependent, so the
//!   gate is **threshold-tolerant** (default: fail past a 25% slowdown
//!   on stages above a noise floor) and records `jobs`/`logical_cpus`
//!   honestly: when the current run's parallelism or core count differs
//!   from the baseline's, timing verdicts downgrade to warnings —
//!   cross-machine noise must never fail a build, but semantic drift
//!   always does.

use crate::diff::first_text_divergence;
use mmog_obs::json::Value;

/// Schema identifier of both baseline documents.
pub const GATE_SCHEMA: &str = "mmog-obs-gate/v1";

/// Default slowdown threshold, percent.
pub const DEFAULT_MAX_SLOWDOWN_PCT: f64 = 25.0;

/// Default noise floor: stages faster than this in the baseline are
/// never judged.
pub const DEFAULT_MIN_STAGE_MS: f64 = 50.0;

/// Default p99 tail-latency slowdown threshold, percent. Wider than the
/// total-time threshold: the latency histogram quantizes to sub-octave
/// buckets (≤ 1.5× between adjacent bounds), so a genuine regression
/// must clear two bucket steps before it is distinguishable from
/// bucket-boundary jitter.
pub const DEFAULT_MAX_P99_SLOWDOWN_PCT: f64 = 100.0;

/// Default p99 noise floor, microseconds: baseline tails faster than
/// this are scheduler noise, never judged.
pub const DEFAULT_MIN_P99_US: f64 = 20.0;

/// Tunable thresholds for [`check_bench`]. `..Default::default()` keeps
/// call sites stable as gates grow new knobs.
#[derive(Debug, Clone, Copy)]
pub struct BenchThresholds {
    /// Stage/wall slowdown that fails the gate, percent.
    pub max_slowdown_pct: f64,
    /// Stages faster than this in the baseline are never judged, ms.
    pub min_stage_ms: f64,
    /// p99 tail slowdown that fails the gate, percent.
    pub max_p99_slowdown_pct: f64,
    /// Baseline p99 tails faster than this are never judged, µs.
    pub min_p99_us: f64,
    /// When set, stages and latency paths the baseline has never seen
    /// — work the gate is silently not judging — fail instead of
    /// warning. Either way the verdict lists every missing path by
    /// name. Off by default: exploratory runs add paths legitimately;
    /// CI turns it on so a renamed kernel can't dodge the p99 gate.
    pub strict_paths: bool,
}

impl Default for BenchThresholds {
    fn default() -> Self {
        Self {
            max_slowdown_pct: DEFAULT_MAX_SLOWDOWN_PCT,
            min_stage_ms: DEFAULT_MIN_STAGE_MS,
            max_p99_slowdown_pct: DEFAULT_MAX_P99_SLOWDOWN_PCT,
            min_p99_us: DEFAULT_MIN_P99_US,
            strict_paths: false,
        }
    }
}

/// The gate's verdict: hard failures, advisory warnings, and notes.
#[derive(Debug, Clone, Default)]
pub struct GateOutcome {
    /// Violations that must fail the build.
    pub failures: Vec<String>,
    /// Suspicious but non-fatal observations.
    pub warnings: Vec<String>,
    /// Informational lines (improvements, skipped comparisons).
    pub notes: Vec<String>,
}

impl GateOutcome {
    /// Whether the gate passes (no failures; warnings allowed).
    #[must_use]
    pub fn pass(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the verdict as the report `obs_gate` prints.
    #[must_use]
    pub fn render(&self, title: &str) -> String {
        use std::fmt::Write as _;
        let mut out = format!("{title}: {}\n", if self.pass() { "PASS" } else { "FAIL" });
        for f in &self.failures {
            let _ = writeln!(out, "  FAIL: {f}");
        }
        for w in &self.warnings {
            let _ = writeln!(out, "  warn: {w}");
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }

    /// Merges another outcome into this one.
    pub fn merge(&mut self, other: GateOutcome) {
        self.failures.extend(other.failures);
        self.warnings.extend(other.warnings);
        self.notes.extend(other.notes);
    }
}

fn parse_doc(text: &str, what: &str) -> Result<Value, String> {
    mmog_obs::json::parse(text).map_err(|e| format!("{what}: {e}"))
}

fn check_gate_schema(doc: &Value, what: &str) -> Result<(), String> {
    match doc.get("schema").and_then(Value::as_str) {
        Some(GATE_SCHEMA) => Ok(()),
        Some(other) => Err(format!("{what}: unknown schema {other:?}")),
        None => Err(format!("{what}: missing schema field")),
    }
}

/// Builds the `BASELINE_obs.json` document from an `OBS_summary.json`.
///
/// # Errors
/// Returns a message when the summary doesn't validate against
/// `mmog-obs/v1`.
pub fn make_obs_baseline(summary_text: &str, suite: &str) -> Result<String, String> {
    mmog_obs::validate_summary(summary_text)?;
    let doc = parse_doc(summary_text, "OBS summary")?;
    let semantic = doc.get("semantic").ok_or("missing semantic section")?;
    let baseline = Value::Obj(vec![
        ("schema".to_string(), Value::Str(GATE_SCHEMA.to_string())),
        (
            "source".to_string(),
            Value::Str("OBS_summary.json".to_string()),
        ),
        ("suite".to_string(), Value::Str(suite.to_string())),
        ("semantic".to_string(), semantic.clone()),
    ]);
    Ok(baseline.render_pretty())
}

/// Compares a summary's semantic section exactly against the committed
/// baseline. Mismatches are localized via line diff over the
/// pretty-printed sections.
///
/// # Errors
/// Returns a message when either document is malformed (a broken
/// baseline is an error, not a failure — it means the gate itself is
/// mis-set-up).
pub fn check_obs(baseline_text: &str, summary_text: &str) -> Result<GateOutcome, String> {
    let baseline = parse_doc(baseline_text, "BASELINE_obs.json")?;
    check_gate_schema(&baseline, "BASELINE_obs.json")?;
    mmog_obs::validate_summary(summary_text)?;
    let summary = parse_doc(summary_text, "OBS summary")?;
    let expected = baseline
        .get("semantic")
        .ok_or("BASELINE_obs.json: missing semantic section")?;
    let actual = summary
        .get("semantic")
        .ok_or("OBS summary: missing semantic section")?;
    let mut outcome = GateOutcome::default();
    if expected == actual {
        let suite = baseline.get("suite").and_then(Value::as_str).unwrap_or("?");
        outcome.notes.push(format!(
            "semantic section matches the {suite} baseline exactly"
        ));
    } else {
        let delta = first_text_divergence(&expected.render_pretty(), &actual.render_pretty())
            .map_or_else(|| "sections differ".to_string(), |d| d.message());
        outcome.failures.push(format!(
            "semantic metrics drifted from the committed baseline — {delta}"
        ));
    }
    Ok(outcome)
}

struct Stage {
    path: String,
    total_ms: f64,
    /// Per-path p99 latency (µs) from the stage's optional `latency`
    /// section (`mmog-scale-bench/v2`), plus the raw section for
    /// baseline regeneration. Empty for v1 documents — p99 gating is
    /// skipped where the data doesn't exist.
    p99_us: Vec<(String, f64)>,
    latency_raw: Option<Value>,
}

/// Per-path p99 values (µs) plus the raw `latency` object of one stage.
type StageLatency = (Vec<(String, f64)>, Option<Value>);

fn stage_latency(s: &Value, what: &str) -> Result<StageLatency, String> {
    let Some(latency) = s.get("latency") else {
        return Ok((Vec::new(), None));
    };
    let entries = latency
        .as_obj()
        .ok_or_else(|| format!("{what}: stage latency must be an object"))?;
    let mut p99 = Vec::with_capacity(entries.len());
    for (path, snap) in entries {
        let p99_ns = snap
            .get("p99_ns")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{what}: stage latency entry `{path}` missing p99_ns"))?;
        p99.push((path.clone(), p99_ns / 1e3));
    }
    Ok((p99, Some(latency.clone())))
}

fn bench_stages(doc: &Value, what: &str) -> Result<Vec<Stage>, String> {
    let stages = doc
        .get("stages")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("{what}: missing stages array"))?;
    stages
        .iter()
        .map(|s| {
            let (p99_us, latency_raw) = stage_latency(s, what)?;
            Ok(Stage {
                path: s
                    .get("path")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("{what}: stage without path"))?
                    .to_string(),
                total_ms: s
                    .get("total_ms")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("{what}: stage without total_ms"))?,
                p99_us,
                latency_raw,
            })
        })
        .collect()
}

fn env_fields(doc: &Value, what: &str) -> Result<(u64, u64), String> {
    let get = |field: &str| {
        doc.get(field)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("{what}: missing {field}"))
    };
    Ok((get("jobs")?, get("logical_cpus")?))
}

/// Builds the `BASELINE_bench.json` document from a
/// `BENCH_parallel.json`, keeping `jobs` and `logical_cpus` honest so
/// comparisons on a differently-shaped machine degrade to warnings.
///
/// # Errors
/// Returns a message when the bench document is malformed.
pub fn make_bench_baseline(bench_text: &str) -> Result<String, String> {
    let doc = parse_doc(bench_text, "BENCH_parallel.json")?;
    let (jobs, cpus) = env_fields(&doc, "BENCH_parallel.json")?;
    let stages = bench_stages(&doc, "BENCH_parallel.json")?;
    let wall = doc
        .get("wall_seconds")
        .and_then(Value::as_f64)
        .ok_or("BENCH_parallel.json: missing wall_seconds")?;
    let stage_values: Vec<Value> = stages
        .iter()
        .map(|s| {
            let mut members = vec![
                ("path".to_string(), Value::Str(s.path.clone())),
                ("total_ms".to_string(), Value::Num(s.total_ms)),
            ];
            // v2 latency sections travel into the baseline so the p99
            // gate has something to compare against.
            if let Some(latency) = &s.latency_raw {
                members.push(("latency".to_string(), latency.clone()));
            }
            Value::Obj(members)
        })
        .collect();
    let baseline = Value::Obj(vec![
        ("schema".to_string(), Value::Str(GATE_SCHEMA.to_string())),
        (
            "source".to_string(),
            Value::Str("BENCH_parallel.json".to_string()),
        ),
        ("jobs".to_string(), Value::UInt(jobs)),
        ("logical_cpus".to_string(), Value::UInt(cpus)),
        ("wall_seconds".to_string(), Value::Num(wall)),
        ("stages".to_string(), Value::Arr(stage_values)),
    ]);
    Ok(baseline.render_pretty())
}

/// Compares a `BENCH_parallel.json` against the committed timing
/// baseline: stages above [`BenchThresholds::min_stage_ms`] in the
/// baseline that slowed down more than
/// [`BenchThresholds::max_slowdown_pct`] fail the gate, and per-path
/// p99 tails (when both documents carry the v2 `latency` section) that
/// slowed past [`BenchThresholds::max_p99_slowdown_pct`] do too —
/// unless the environment (`jobs`, `logical_cpus`) differs from the
/// baseline's, in which case every timing verdict is a warning.
/// Stages and latency paths absent from the baseline are listed by
/// name: warnings by default, hard failures under
/// [`BenchThresholds::strict_paths`].
///
/// # Errors
/// Returns a message when either document is malformed.
pub fn check_bench(
    baseline_text: &str,
    bench_text: &str,
    thresholds: &BenchThresholds,
) -> Result<GateOutcome, String> {
    let max_slowdown_pct = thresholds.max_slowdown_pct;
    let min_stage_ms = thresholds.min_stage_ms;
    let baseline = parse_doc(baseline_text, "BASELINE_bench.json")?;
    check_gate_schema(&baseline, "BASELINE_bench.json")?;
    let bench = parse_doc(bench_text, "BENCH_parallel.json")?;
    let (base_jobs, base_cpus) = env_fields(&baseline, "BASELINE_bench.json")?;
    let (cur_jobs, cur_cpus) = env_fields(&bench, "BENCH_parallel.json")?;
    let base_stages = bench_stages(&baseline, "BASELINE_bench.json")?;
    let cur_stages = bench_stages(&bench, "BENCH_parallel.json")?;

    let mut outcome = GateOutcome::default();
    let comparable = base_jobs == cur_jobs && base_cpus == cur_cpus;
    if !comparable {
        outcome.notes.push(format!(
            "environment differs from baseline (jobs {base_jobs}→{cur_jobs}, logical_cpus \
             {base_cpus}→{cur_cpus}); timing verdicts downgraded to warnings"
        ));
    }
    fn verdict(outcome: &mut GateOutcome, comparable: bool, message: String) {
        if comparable {
            outcome.failures.push(message);
        } else {
            outcome.warnings.push(message);
        }
    }
    for base in &base_stages {
        let Some(cur) = cur_stages.iter().find(|s| s.path == base.path) else {
            outcome.warnings.push(format!(
                "stage `{}` missing from the current run",
                base.path
            ));
            continue;
        };
        // Stage wall-clock gate, floored by min_stage_ms. The p99 gate
        // below runs regardless — a short stage can still carry a
        // meaningful tail (many fast ticks, a few pathological ones).
        if base.total_ms >= min_stage_ms {
            let slowdown_pct = (cur.total_ms / base.total_ms - 1.0) * 100.0;
            if slowdown_pct > max_slowdown_pct {
                verdict(
                    &mut outcome,
                    comparable,
                    format!(
                        "stage `{}` slowed down {slowdown_pct:.1}% ({:.1} ms → {:.1} ms, threshold {max_slowdown_pct:.0}%)",
                        base.path, base.total_ms, cur.total_ms
                    ),
                );
            } else if slowdown_pct < -max_slowdown_pct {
                outcome.notes.push(format!(
                    "stage `{}` sped up {:.1}% ({:.1} ms → {:.1} ms) — consider refreshing the baseline",
                    base.path, -slowdown_pct, base.total_ms, cur.total_ms
                ));
            }
        }
        // Tail-latency gate: per-path p99, only where the baseline has
        // the v2 latency section (v1 baselines skip silently — refresh
        // with --update to opt in) and the tail clears the noise floor.
        for (lat_path, base_p99) in &base.p99_us {
            if *base_p99 < thresholds.min_p99_us {
                continue;
            }
            let Some((_, cur_p99)) = cur.p99_us.iter().find(|(p, _)| p == lat_path) else {
                outcome.warnings.push(format!(
                    "stage `{}`: latency path `{lat_path}` missing from the current run",
                    base.path
                ));
                continue;
            };
            let slowdown_pct = (cur_p99 / base_p99 - 1.0) * 100.0;
            if slowdown_pct > thresholds.max_p99_slowdown_pct {
                verdict(
                    &mut outcome,
                    comparable,
                    format!(
                        "stage `{}`: p99 of `{lat_path}` regressed {slowdown_pct:.0}% \
                         ({base_p99:.1} µs → {cur_p99:.1} µs, threshold {:.0}%)",
                        base.path, thresholds.max_p99_slowdown_pct
                    ),
                );
            }
        }
    }
    // The reverse direction: work the current run does that the
    // baseline has never seen is work the gate silently isn't judging.
    // A renamed or newly-added kernel path would otherwise dodge the
    // p99 gate forever, so surface every one by name and point at
    // --update. Under `strict_paths` (the CI posture) an ungated path
    // is a hard failure, not a warning.
    let ungated = |outcome: &mut GateOutcome, message: String| {
        if thresholds.strict_paths {
            outcome.failures.push(message);
        } else {
            outcome.warnings.push(message);
        }
    };
    for cur in &cur_stages {
        let Some(base) = base_stages.iter().find(|s| s.path == cur.path) else {
            ungated(
                &mut outcome,
                format!(
                    "stage `{}` is not in the baseline — ungated; refresh the baseline with \
                     --update",
                    cur.path
                ),
            );
            continue;
        };
        for (lat_path, _) in &cur.p99_us {
            if !base.p99_us.iter().any(|(p, _)| p == lat_path) {
                ungated(
                    &mut outcome,
                    format!(
                        "stage `{}`: latency path `{lat_path}` is not in the baseline — its p99 \
                         is ungated; refresh the baseline with --update",
                        cur.path
                    ),
                );
            }
        }
    }
    if let (Some(base_wall), Some(cur_wall)) = (
        baseline.get("wall_seconds").and_then(Value::as_f64),
        bench.get("wall_seconds").and_then(Value::as_f64),
    ) {
        let slowdown_pct = (cur_wall / base_wall - 1.0) * 100.0;
        if slowdown_pct > max_slowdown_pct {
            verdict(
                &mut outcome,
                comparable,
                format!(
                    "suite wall clock slowed down {slowdown_pct:.1}% ({base_wall:.1} s → {cur_wall:.1} s)"
                ),
            );
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SUMMARY: &str = r#"{"schema":"mmog-obs/v1","semantic":{"counters":{"sim.ticks":40},"gauges":{},"histograms":{}},"timing":{"counters":{},"gauges":{},"histograms":{},"spans":[]}}"#;

    #[test]
    fn obs_gate_round_trip_and_perturbation() {
        let baseline = make_obs_baseline(SUMMARY, "quick").unwrap();
        let clean = check_obs(&baseline, SUMMARY).unwrap();
        assert!(clean.pass(), "{:?}", clean.failures);

        let perturbed = SUMMARY.replace(r#""sim.ticks":40"#, r#""sim.ticks":41"#);
        let bad = check_obs(&baseline, &perturbed).unwrap();
        assert!(!bad.pass());
        let msg = &bad.failures[0];
        assert!(msg.contains("sim.ticks"), "{msg}");
        assert!(msg.contains("drifted"), "{msg}");
    }

    fn bench(jobs: u64, cpus: u64, ms: f64) -> String {
        format!(
            r#"{{"jobs":{jobs},"logical_cpus":{cpus},"stages":[{{"path":"sim/run","calls":1,"total_ms":{ms},"mean_us":1}},{{"path":"tiny","calls":1,"total_ms":1,"mean_us":1}}],"wall_seconds":10}}"#
        )
    }

    #[test]
    fn bench_gate_thresholds_and_environment_honesty() {
        let t = BenchThresholds::default();
        let baseline = make_bench_baseline(&bench(1, 1, 1000.0)).unwrap();
        // Within threshold: pass.
        let ok = check_bench(&baseline, &bench(1, 1, 1200.0), &t).unwrap();
        assert!(ok.pass(), "{:?}", ok.failures);
        // Past threshold on the same environment: fail.
        let slow = check_bench(&baseline, &bench(1, 1, 1500.0), &t).unwrap();
        assert!(!slow.pass());
        assert!(slow.failures[0].contains("sim/run"), "{:?}", slow.failures);
        // Same slowdown on different hardware: warning, not failure.
        let other = check_bench(&baseline, &bench(4, 4, 1500.0), &t).unwrap();
        assert!(other.pass());
        assert_eq!(other.warnings.len(), 1);
        // Stages under the noise floor are never judged: `tiny` grows
        // 100x without tripping anything.
        let noisy = bench(1, 1, 1000.0).replace(r#""total_ms":1,"#, r#""total_ms":100,"#);
        let out = check_bench(&baseline, &noisy, &t).unwrap();
        assert!(out.pass(), "{:?}", out.failures);
    }

    fn bench_v2(jobs: u64, cpus: u64, p99_ns: u64) -> String {
        format!(
            r#"{{"jobs":{jobs},"logical_cpus":{cpus},"stages":[{{"path":"scale/10k","total_ms":100,"latency":{{"sim/run/tick":{{"count":60,"p99_ns":{p99_ns}}},"sim/run/reduce":{{"count":60,"p99_ns":500}}}}}}],"wall_seconds":1}}"#
        )
    }

    #[test]
    fn p99_gate_catches_injected_tail_regressions() {
        let t = BenchThresholds::default();
        let baseline = make_bench_baseline(&bench_v2(1, 1, 80_000)).unwrap();
        assert!(
            baseline.contains("latency"),
            "baseline must carry the latency section: {baseline}"
        );
        // Identical tail: pass.
        let ok = check_bench(&baseline, &bench_v2(1, 1, 80_000), &t).unwrap();
        assert!(ok.pass(), "{:?}", ok.failures);
        // 10x p99 on the same environment: hard failure naming the path.
        let slow = check_bench(&baseline, &bench_v2(1, 1, 800_000), &t).unwrap();
        assert!(!slow.pass());
        assert!(
            slow.failures[0].contains("sim/run/tick") && slow.failures[0].contains("p99"),
            "{:?}",
            slow.failures
        );
        // Same regression on different hardware: warning only.
        let other = check_bench(&baseline, &bench_v2(2, 2, 800_000), &t).unwrap();
        assert!(other.pass(), "{:?}", other.failures);
        assert!(!other.warnings.is_empty());
        // Tails under the µs noise floor are never judged: the 0.5 µs
        // `sim/run/reduce` entry grows 100x without tripping anything.
        let noisy = bench_v2(1, 1, 80_000).replace(r#""p99_ns":500"#, r#""p99_ns":50000"#);
        let out = check_bench(&baseline, &noisy, &t).unwrap();
        assert!(out.pass(), "{:?}", out.failures);
        // The p99 gate is independent of the stage wall-clock floor: a
        // stage too short for total_ms gating (quick-suite scale) still
        // fails on a regressed tail.
        let short = bench_v2(1, 1, 80_000).replace(r#""total_ms":100,"#, r#""total_ms":1,"#);
        let short_baseline = make_bench_baseline(&short).unwrap();
        let short_slow = bench_v2(1, 1, 800_000).replace(r#""total_ms":100,"#, r#""total_ms":1,"#);
        let out = check_bench(&short_baseline, &short_slow, &t).unwrap();
        assert!(
            !out.pass() && out.failures[0].contains("p99"),
            "sub-floor stages must still be p99-gated: {out:?}"
        );
        // A v1 baseline (no latency section) skips p99 gating entirely.
        let v1_baseline = make_bench_baseline(&bench(1, 1, 100.0)).unwrap();
        let against_v1 = check_bench(&v1_baseline, &bench(1, 1, 100.0), &t).unwrap();
        assert!(against_v1.pass(), "{:?}", against_v1.failures);
    }

    #[test]
    fn paths_unknown_to_the_baseline_warn_instead_of_dodging_the_gate() {
        let t = BenchThresholds::default();
        let baseline = make_bench_baseline(&bench_v2(1, 1, 80_000)).unwrap();
        // A latency path added since the baseline (a renamed kernel,
        // say) must be called out as ungated, not silently passed.
        let with_new_path =
            bench_v2(1, 1, 80_000).replace(r#""sim/run/reduce""#, r#""sim/run/match_skip""#);
        let out = check_bench(&baseline, &with_new_path, &t).unwrap();
        assert!(out.pass(), "new paths warn, they don't fail: {out:?}");
        assert!(
            out.warnings
                .iter()
                .any(|w| w.contains("sim/run/match_skip") && w.contains("--update")),
            "missing ungated-path warning: {out:?}"
        );
        // Same for a whole stage the baseline has never seen.
        let with_new_stage =
            bench_v2(1, 1, 80_000).replace(r#""path":"scale/10k""#, r#""path":"scale/1M""#);
        let out = check_bench(&baseline, &with_new_stage, &t).unwrap();
        assert!(
            out.warnings
                .iter()
                .any(|w| w.contains("scale/1M") && w.contains("--update")),
            "missing ungated-stage warning: {out:?}"
        );
        // An identical run stays warning-free in both directions.
        let clean = check_bench(&baseline, &bench_v2(1, 1, 80_000), &t).unwrap();
        assert!(clean.warnings.is_empty(), "{clean:?}");
    }

    #[test]
    fn strict_paths_promotes_ungated_paths_to_failures() {
        let strict = BenchThresholds {
            strict_paths: true,
            ..Default::default()
        };
        let baseline = make_bench_baseline(&bench_v2(1, 1, 80_000)).unwrap();
        // A new latency path fails under --strict-paths, still naming
        // the exact path.
        let with_new_path =
            bench_v2(1, 1, 80_000).replace(r#""sim/run/reduce""#, r#""sim/run/match_skip""#);
        let out = check_bench(&baseline, &with_new_path, &strict).unwrap();
        assert!(!out.pass(), "strict mode must fail on ungated paths");
        assert!(
            out.failures
                .iter()
                .any(|f| f.contains("sim/run/match_skip") && f.contains("--update")),
            "failure must name the missing path: {out:?}"
        );
        // Same for a stage the baseline has never seen.
        let with_new_stage =
            bench_v2(1, 1, 80_000).replace(r#""path":"scale/10k""#, r#""path":"scale/1M""#);
        let out = check_bench(&baseline, &with_new_stage, &strict).unwrap();
        assert!(
            out.failures.iter().any(|f| f.contains("scale/1M")),
            "failure must name the missing stage: {out:?}"
        );
        // A clean run passes strict mode — the flag only bites when
        // paths actually went ungated.
        let clean = check_bench(&baseline, &bench_v2(1, 1, 80_000), &strict).unwrap();
        assert!(clean.pass(), "{clean:?}");
    }

    #[test]
    fn malformed_baselines_are_errors_not_failures() {
        let t = BenchThresholds::default();
        assert!(check_obs("{}", SUMMARY).is_err());
        assert!(check_bench("{}", &bench(1, 1, 1.0), &t).is_err());
        assert!(make_obs_baseline("{}", "quick").is_err());
        // A latency section without p99 is malformed, not ignorable.
        let bad = bench_v2(1, 1, 1).replace(r#""p99_ns":1"#, r#""q":1"#);
        assert!(make_bench_baseline(&bad).is_err());
    }
}
