//! Streaming, validating reader over the JSONL trace.
//!
//! [`read_trace`] walks the trace text line by line without ever
//! materialising the whole file as parsed values; each yielded
//! [`TraceEvent`] has already passed [`mmog_obs::validate_event_fields`]
//! — kind known, field set exact, field order exact, types right — so
//! downstream analytics can index fields without re-checking.

use mmog_obs::json::Value;
use mmog_obs::{parse_trace_line, validate_event_fields};

/// One validated trace event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Global flush-time sequence number.
    pub seq: u64,
    /// The deterministic chunk label the emitting run submitted under.
    pub scope: String,
    /// Event kind (one of [`mmog_obs::KNOWN_EVENT_KINDS`]).
    pub kind: String,
    /// The full parsed line, envelope included.
    pub value: Value,
}

impl TraceEvent {
    /// An unsigned-integer field of the event.
    #[must_use]
    pub fn u64(&self, field: &str) -> Option<u64> {
        self.value.get(field).and_then(Value::as_u64)
    }

    /// A numeric field of the event.
    #[must_use]
    pub fn f64(&self, field: &str) -> Option<f64> {
        self.value.get(field).and_then(Value::as_f64)
    }

    /// A string field of the event.
    #[must_use]
    pub fn str(&self, field: &str) -> Option<&str> {
        self.value.get(field).and_then(Value::as_str)
    }

    /// The event's `tick` field, when the kind carries one.
    #[must_use]
    pub fn tick(&self) -> Option<u64> {
        self.u64("tick")
    }
}

/// A composable event filter. Every constraint left unset matches
/// everything, so `Query::default()` is the identity filter.
#[derive(Debug, Clone, Default)]
pub struct Query {
    kinds: Vec<String>,
    scope_contains: Option<String>,
    tick_min: Option<u64>,
    tick_max: Option<u64>,
    group: Option<u64>,
    center: Option<u64>,
}

impl Query {
    /// Restricts to one event kind (repeatable; kinds are OR-ed).
    #[must_use]
    pub fn kind(mut self, kind: &str) -> Self {
        self.kinds.push(kind.to_string());
        self
    }

    /// Restricts to scopes containing `needle`.
    #[must_use]
    pub fn scope_contains(mut self, needle: &str) -> Self {
        self.scope_contains = Some(needle.to_string());
        self
    }

    /// Restricts to events whose `tick` lies in `[min, max]`. Events
    /// without a tick field (e.g. `center_usage`) never match a
    /// tick-constrained query.
    #[must_use]
    pub fn tick_range(mut self, min: u64, max: u64) -> Self {
        self.tick_min = Some(min);
        self.tick_max = Some(max);
        self
    }

    /// Restricts to events carrying `group == g`.
    #[must_use]
    pub fn group(mut self, g: u64) -> Self {
        self.group = Some(g);
        self
    }

    /// Restricts to events carrying `center == c`.
    #[must_use]
    pub fn center(mut self, c: u64) -> Self {
        self.center = Some(c);
        self
    }

    /// Whether `event` satisfies every constraint.
    #[must_use]
    pub fn matches(&self, event: &TraceEvent) -> bool {
        if !self.kinds.is_empty() && !self.kinds.contains(&event.kind) {
            return false;
        }
        if let Some(needle) = &self.scope_contains {
            if !event.scope.contains(needle.as_str()) {
                return false;
            }
        }
        if self.tick_min.is_some() || self.tick_max.is_some() {
            let Some(tick) = event.tick() else {
                return false;
            };
            if self.tick_min.is_some_and(|min| tick < min)
                || self.tick_max.is_some_and(|max| tick > max)
            {
                return false;
            }
        }
        if let Some(g) = self.group {
            if event.u64("group") != Some(g) {
                return false;
            }
        }
        if let Some(c) = self.center {
            if event.u64("center") != Some(c) {
                return false;
            }
        }
        true
    }
}

/// Streams validated events out of trace text, one per non-empty line.
/// Errors carry the 1-based line number; iteration continues past a bad
/// line so callers can choose between fail-fast (`collect::<Result<…>>`)
/// and salvage.
pub fn read_trace<'a>(
    text: &'a str,
    query: &'a Query,
) -> impl Iterator<Item = Result<TraceEvent, String>> + 'a {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .filter_map(move |(idx, line)| {
            let no = idx + 1;
            match parse_event(line) {
                Ok(event) => query.matches(&event).then_some(Ok(event)),
                Err(e) => Some(Err(format!("line {no}: {e}"))),
            }
        })
}

fn parse_event(line: &str) -> Result<TraceEvent, String> {
    let (seq, scope, kind, value) = parse_trace_line(line)?;
    validate_event_fields(&kind, &value)?;
    Ok(TraceEvent {
        seq,
        scope,
        kind,
        value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &str = concat!(
        r#"{"seq":0,"scope":"a","kind":"run_start","mode":"dynamic","groups":2,"centers":1,"ticks":10,"warmup":2}"#,
        "\n",
        r#"{"seq":1,"scope":"a","kind":"tick","tick":0,"demand_cpu":1,"alloc_cpu":2,"shortfall_cpu":0}"#,
        "\n",
        r#"{"seq":2,"scope":"a","kind":"center_tick","tick":0,"center":0,"alloc_cpu":2,"shortfall_cpu":0}"#,
        "\n",
    );

    #[test]
    fn reader_validates_and_filters() {
        // Third line has a field-name skew (`shortfall_cpu` where
        // `free_cpu` belongs) — the reader must surface it as an error.
        let all: Vec<_> = read_trace(TRACE, &Query::default()).collect();
        assert_eq!(all.len(), 3);
        assert!(all[0].is_ok());
        assert!(all[1].is_ok());
        let err = all[2].as_ref().unwrap_err();
        assert!(err.starts_with("line 3:"), "{err}");
        assert!(err.contains("free_cpu"), "{err}");

        // Errors surface regardless of the filter; matching events are
        // the ok items.
        let ticks: Vec<_> = read_trace(TRACE, &Query::default().kind("tick"))
            .filter_map(Result::ok)
            .collect();
        assert_eq!(ticks.len(), 1);
        assert_eq!(ticks[0].f64("alloc_cpu"), Some(2.0));

        assert_eq!(
            read_trace(TRACE, &Query::default().kind("tick").tick_range(5, 9))
                .filter_map(Result::ok)
                .count(),
            0
        );
        assert_eq!(
            read_trace(TRACE, &Query::default().scope_contains("b"))
                .filter_map(Result::ok)
                .count(),
            0
        );
    }
}
