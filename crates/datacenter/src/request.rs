//! Operator resource requests.

use crate::resource::ResourceVector;
use mmog_util::geo::{DistanceClass, GeoPoint};
use serde::{Deserialize, Serialize};

/// Identifier of a game operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OperatorId(pub u32);

/// A request for resources, carrying the demand origin and the game's
/// latency tolerance (Sec. II-C: "depending on the game latency
/// tolerance, the matching mechanism locates the resources closest to
/// the request").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceRequest {
    /// The requesting operator.
    pub operator: OperatorId,
    /// Amounts desired, in units (pre-rounding; centers quantise).
    pub amounts: ResourceVector,
    /// Where the demand originates (the players' region).
    pub origin: GeoPoint,
    /// Maximum admissible player-to-server distance.
    pub tolerance: DistanceClass,
}

impl ResourceRequest {
    /// Creates a request.
    #[must_use]
    pub fn new(
        operator: OperatorId,
        amounts: ResourceVector,
        origin: GeoPoint,
        tolerance: DistanceClass,
    ) -> Self {
        Self {
            operator,
            amounts,
            origin,
            tolerance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_carries_fields() {
        let r = ResourceRequest::new(
            OperatorId(3),
            ResourceVector::new(1.0, 2.0, 0.5, 0.25),
            GeoPoint::new(0.0, 0.0),
            DistanceClass::Far,
        );
        assert_eq!(r.operator, OperatorId(3));
        assert_eq!(r.tolerance, DistanceClass::Far);
        assert_eq!(r.amounts.memory, 2.0);
    }
}
