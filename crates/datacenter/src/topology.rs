//! Mutable inter-center network topology: partitions and link quality.
//!
//! The paper's matcher treats the federation as a static clique — every
//! center is always reachable and the origin→center great-circle
//! distance is the whole latency story. The scenario engine (PR 8)
//! needs that assumption to be breakable at runtime: backbone links
//! degrade (distance inflation), and center↔center partitions make
//! whole subsets of the federation unreachable from a player's home
//! region until a `heal` event.
//!
//! A [`Topology`] is **per-simulation** state (not process-global like
//! the availability epoch): two concurrent simulations may hold
//! disjoint topologies. Runs without a scenario never construct one and
//! take the literal pre-topology code path in
//! [`crate::matching`].
//!
//! # Model
//!
//! - **Partitions** are modelled as component refinement. Every center
//!   carries a component label; `partition(mask)` splits each existing
//!   component into its `mask`-bit-set and `mask`-bit-clear halves, so
//!   arbitrary partition sequences compose. [`Topology::heal`] resets
//!   every label to zero, which makes "heal restores full
//!   reachability" structurally true (see the property test in the
//!   crate's test suite).
//! - **Link quality** is a symmetric per-pair distance multiplier
//!   (default `1.0`). The effective distance used for admission is
//!   `raw great-circle distance × factor(home, candidate)`, where
//!   `home` is the center nearest the request origin — the player's
//!   ingress point into the backbone.
//! - Every mutation bumps a `version` counter so cached matcher views
//!   ([`crate::matching::CandidateIndex`]) know when their distance
//!   ordering is stale and must be rebuilt (availability-only changes
//!   keep using the cheaper refresh path).

use serde::{Deserialize, Serialize};

/// Mutable network topology over `n` data centers: partition components
/// plus a symmetric link-quality (distance multiplier) matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Partition component label per center; equal labels ⇒ reachable.
    component: Vec<u32>,
    /// Symmetric `n × n` distance multipliers, row-major, default 1.0.
    factor: Vec<f64>,
    /// Bumped on every mutation; cached matcher views compare it.
    version: u64,
}

impl Topology {
    /// A fully-connected topology over `n` centers with nominal links.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            component: vec![0; n],
            factor: vec![1.0; n * n],
            version: 0,
        }
    }

    /// Number of centers the topology spans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.component.len()
    }

    /// Whether the topology spans zero centers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.component.is_empty()
    }

    /// Current mutation version (monotonically increasing).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Splits the federation along `mask`: centers whose index bit is
    /// set in `mask` are cut off from centers (of the same current
    /// component) whose bit is clear. Composes with earlier partitions
    /// by refinement; centers at index ≥ 64 land on the clear side.
    pub fn partition(&mut self, mask: u64) {
        for (i, label) in self.component.iter_mut().enumerate() {
            let side = if i < 64 { (mask >> i) & 1 } else { 0 };
            // Refine: each old component splits into two new labels.
            *label = label.wrapping_mul(2).wrapping_add(side as u32);
        }
        self.normalize_components();
        self.version += 1;
    }

    /// Heals every partition: all centers rejoin component 0. Link
    /// factors are untouched (degraded links heal via
    /// [`set_link_factor`]).
    ///
    /// [`set_link_factor`]: Self::set_link_factor
    pub fn heal(&mut self) {
        self.component.iter_mut().for_each(|c| *c = 0);
        self.version += 1;
    }

    /// Whether `a` and `b` are in the same partition component.
    /// Out-of-range indices are reachable only from themselves.
    #[must_use]
    pub fn reachable(&self, a: usize, b: usize) -> bool {
        if a == b {
            return true;
        }
        match (self.component.get(a), self.component.get(b)) {
            (Some(ca), Some(cb)) => ca == cb,
            _ => false,
        }
    }

    /// Number of distinct partition components (0 for an empty topology).
    #[must_use]
    pub fn components(&self) -> usize {
        // Labels are normalized to 0..k after every mutation.
        self.component.iter().max().map_or(0, |m| *m as usize + 1)
    }

    /// Whether every pair of centers is mutually reachable.
    #[must_use]
    pub fn fully_connected(&self) -> bool {
        self.components() <= 1
    }

    /// Sets the symmetric distance multiplier of link `a`↔`b` (clamped
    /// to be ≥ 1.0: a degraded link can only look farther, never
    /// closer). Self-links and out-of-range indices are ignored.
    pub fn set_link_factor(&mut self, a: usize, b: usize, factor: f64) {
        let n = self.len();
        if a == b || a >= n || b >= n {
            return;
        }
        let f = if factor.is_finite() {
            factor.max(1.0)
        } else {
            1.0
        };
        self.factor[a * n + b] = f;
        self.factor[b * n + a] = f;
        self.version += 1;
    }

    /// The distance multiplier of link `a`↔`b` (1.0 for self-links and
    /// out-of-range indices).
    #[must_use]
    pub fn link_factor(&self, a: usize, b: usize) -> f64 {
        let n = self.len();
        if a == b || a >= n || b >= n {
            return 1.0;
        }
        self.factor[a * n + b]
    }

    /// Effective matching distance from a request whose nearest center
    /// (backbone ingress) is `home` to candidate center `to`, given the
    /// raw origin→candidate great-circle distance.
    #[must_use]
    pub fn effective_distance(&self, home: usize, to: usize, raw_km: f64) -> f64 {
        raw_km * self.link_factor(home, to)
    }

    /// Renumbers component labels densely by first appearance so labels
    /// stay small and `components()` is a max, not a scan of a set.
    fn normalize_components(&mut self) {
        let mut seen: Vec<u32> = Vec::new();
        for label in &mut self.component {
            match seen.iter().position(|s| s == label) {
                Some(i) => *label = i as u32,
                None => {
                    seen.push(*label);
                    *label = (seen.len() - 1) as u32;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_topology_is_fully_connected_with_nominal_links() {
        let t = Topology::new(4);
        assert_eq!(t.len(), 4);
        assert!(t.fully_connected());
        assert_eq!(t.components(), 1);
        for a in 0..4 {
            for b in 0..4 {
                assert!(t.reachable(a, b));
                assert!((t.link_factor(a, b) - 1.0).abs() < 1e-12);
            }
        }
        assert_eq!(t.version(), 0);
    }

    #[test]
    fn partition_splits_and_heal_restores() {
        let mut t = Topology::new(4);
        t.partition(0b0011); // {0,1} vs {2,3}
        assert_eq!(t.components(), 2);
        assert!(t.reachable(0, 1));
        assert!(t.reachable(2, 3));
        assert!(!t.reachable(0, 2));
        assert!(!t.reachable(1, 3));
        assert_eq!(t.version(), 1);
        t.heal();
        assert!(t.fully_connected());
        assert!(t.reachable(0, 3));
        assert_eq!(t.version(), 2);
    }

    #[test]
    fn partitions_compose_by_refinement() {
        let mut t = Topology::new(4);
        t.partition(0b0011); // {0,1} | {2,3}
        t.partition(0b0101); // refine: {0} | {1} | {2} | {3}
        assert_eq!(t.components(), 4);
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(t.reachable(a, b), a == b);
            }
        }
        // A redundant cut along an existing boundary changes nothing.
        let mut u = Topology::new(4);
        u.partition(0b0011);
        u.partition(0b0011);
        assert_eq!(u.components(), 2);
        assert!(u.reachable(0, 1) && !u.reachable(0, 2));
    }

    #[test]
    fn trivial_masks_do_not_split() {
        let mut t = Topology::new(3);
        t.partition(0); // everyone on the clear side
        assert!(t.fully_connected());
        t.partition(0b0111); // everyone on the set side
        assert!(t.fully_connected());
        assert_eq!(t.version(), 2, "even no-op cuts bump the version");
    }

    #[test]
    fn link_factor_is_symmetric_clamped_and_scales_distance() {
        let mut t = Topology::new(3);
        t.set_link_factor(0, 2, 3.5);
        assert!((t.link_factor(0, 2) - 3.5).abs() < 1e-12);
        assert!((t.link_factor(2, 0) - 3.5).abs() < 1e-12);
        assert!((t.effective_distance(0, 2, 100.0) - 350.0).abs() < 1e-9);
        assert!((t.effective_distance(0, 1, 100.0) - 100.0).abs() < 1e-9);
        // Self-links stay nominal: a player's home center is never
        // pushed away by its own backbone.
        t.set_link_factor(1, 1, 9.0);
        assert!((t.link_factor(1, 1) - 1.0).abs() < 1e-12);
        // Factors below 1.0 (or non-finite) clamp to nominal.
        t.set_link_factor(0, 1, 0.25);
        assert!((t.link_factor(0, 1) - 1.0).abs() < 1e-12);
        t.set_link_factor(0, 1, f64::NAN);
        assert!((t.link_factor(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_indices_are_inert() {
        let mut t = Topology::new(2);
        t.set_link_factor(0, 7, 2.0);
        assert!((t.link_factor(0, 7) - 1.0).abs() < 1e-12);
        assert!(!t.reachable(0, 7));
        assert!(
            t.reachable(7, 7),
            "an index is always reachable from itself"
        );
    }

    #[test]
    fn every_mutation_bumps_the_version() {
        let mut t = Topology::new(3);
        let v0 = t.version();
        t.partition(0b001);
        t.heal();
        t.set_link_factor(0, 1, 2.0);
        assert_eq!(t.version(), v0 + 3);
    }
}
