//! Resource types and vectors.
//!
//! Sec. II-B: "The resources considered in this work can be of one of
//! the following four types: CPU time from data center machines (CPU),
//! memory from data center machines (memory), input from the external
//! network of a data center (ExtNet[in]), and output to the external
//! network of a data center (ExtNet[out])."
//!
//! Quantities are measured in the paper's abstract **units**: "a generic
//! 'unit' which represents the requirement for the respective resource
//! of a fully loaded RuneScape game server (e.g. one external outward
//! network unit is equivalent to a real bandwidth value of 3 MB/s)".

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// The four resource types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceType {
    /// CPU time from data-center machines.
    Cpu,
    /// Memory from data-center machines.
    Memory,
    /// Inbound external network bandwidth.
    ExtNetIn,
    /// Outbound external network bandwidth.
    ExtNetOut,
}

impl ResourceType {
    /// All four types in declaration order.
    pub const ALL: [Self; 4] = [Self::Cpu, Self::Memory, Self::ExtNetIn, Self::ExtNetOut];

    /// Label matching the paper's table headers.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Cpu => "CPU",
            Self::Memory => "Memory",
            Self::ExtNetIn => "ExtNet[in]",
            Self::ExtNetOut => "ExtNet[out]",
        }
    }
}

impl fmt::Display for ResourceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A dense vector of the four resource quantities, in units.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceVector {
    /// CPU units.
    pub cpu: f64,
    /// Memory units.
    pub memory: f64,
    /// Inbound network units.
    pub ext_net_in: f64,
    /// Outbound network units.
    pub ext_net_out: f64,
}

impl ResourceVector {
    /// The zero vector.
    pub const ZERO: Self = Self {
        cpu: 0.0,
        memory: 0.0,
        ext_net_in: 0.0,
        ext_net_out: 0.0,
    };

    /// Builds a vector from the four components.
    #[must_use]
    pub const fn new(cpu: f64, memory: f64, ext_net_in: f64, ext_net_out: f64) -> Self {
        Self {
            cpu,
            memory,
            ext_net_in,
            ext_net_out,
        }
    }

    /// Reads one component.
    #[must_use]
    pub fn get(&self, r: ResourceType) -> f64 {
        match r {
            ResourceType::Cpu => self.cpu,
            ResourceType::Memory => self.memory,
            ResourceType::ExtNetIn => self.ext_net_in,
            ResourceType::ExtNetOut => self.ext_net_out,
        }
    }

    /// Writes one component.
    pub fn set(&mut self, r: ResourceType, v: f64) {
        match r {
            ResourceType::Cpu => self.cpu = v,
            ResourceType::Memory => self.memory = v,
            ResourceType::ExtNetIn => self.ext_net_in = v,
            ResourceType::ExtNetOut => self.ext_net_out = v,
        }
    }

    /// Applies `f` to every component.
    #[must_use]
    pub fn map(&self, mut f: impl FnMut(ResourceType, f64) -> f64) -> Self {
        let mut out = *self;
        for r in ResourceType::ALL {
            out.set(r, f(r, self.get(r)));
        }
        out
    }

    /// Component-wise minimum.
    #[must_use]
    pub fn min(&self, other: &Self) -> Self {
        self.map(|r, v| v.min(other.get(r)))
    }

    /// Component-wise maximum.
    #[must_use]
    pub fn max(&self, other: &Self) -> Self {
        self.map(|r, v| v.max(other.get(r)))
    }

    /// Clamps negatives to zero.
    #[must_use]
    pub fn clamp_non_negative(&self) -> Self {
        self.map(|_, v| v.max(0.0))
    }

    /// True when every component is ≤ the other's (within `eps`).
    #[must_use]
    pub fn fits_within(&self, other: &Self, eps: f64) -> bool {
        ResourceType::ALL
            .iter()
            .all(|&r| self.get(r) <= other.get(r) + eps)
    }

    /// True when every component is ≤ `eps` in absolute value.
    #[must_use]
    pub fn is_negligible(&self, eps: f64) -> bool {
        ResourceType::ALL.iter().all(|&r| self.get(r).abs() <= eps)
    }

    /// Sum of all components (a crude scalar size used for sorting).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.cpu + self.memory + self.ext_net_in + self.ext_net_out
    }
}

impl Add for ResourceVector {
    type Output = Self;
    fn add(self, o: Self) -> Self {
        Self::new(
            self.cpu + o.cpu,
            self.memory + o.memory,
            self.ext_net_in + o.ext_net_in,
            self.ext_net_out + o.ext_net_out,
        )
    }
}

impl AddAssign for ResourceVector {
    fn add_assign(&mut self, o: Self) {
        *self = *self + o;
    }
}

impl Sub for ResourceVector {
    type Output = Self;
    fn sub(self, o: Self) -> Self {
        Self::new(
            self.cpu - o.cpu,
            self.memory - o.memory,
            self.ext_net_in - o.ext_net_in,
            self.ext_net_out - o.ext_net_out,
        )
    }
}

impl SubAssign for ResourceVector {
    fn sub_assign(&mut self, o: Self) {
        *self = *self - o;
    }
}

impl Mul<f64> for ResourceVector {
    type Output = Self;
    fn mul(self, k: f64) -> Self {
        Self::new(
            self.cpu * k,
            self.memory * k,
            self.ext_net_in * k,
            self.ext_net_out * k,
        )
    }
}

impl fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cpu={:.2} mem={:.2} in={:.2} out={:.2}",
            self.cpu, self.memory, self.ext_net_in, self.ext_net_out
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_round_trip() {
        let mut v = ResourceVector::ZERO;
        for (i, r) in ResourceType::ALL.into_iter().enumerate() {
            v.set(r, i as f64 + 1.0);
        }
        assert_eq!(v.get(ResourceType::Cpu), 1.0);
        assert_eq!(v.get(ResourceType::Memory), 2.0);
        assert_eq!(v.get(ResourceType::ExtNetIn), 3.0);
        assert_eq!(v.get(ResourceType::ExtNetOut), 4.0);
        assert_eq!(v.total(), 10.0);
    }

    #[test]
    fn arithmetic() {
        let a = ResourceVector::new(1.0, 2.0, 3.0, 4.0);
        let b = ResourceVector::new(0.5, 0.5, 0.5, 0.5);
        assert_eq!(a + b, ResourceVector::new(1.5, 2.5, 3.5, 4.5));
        assert_eq!(a - b, ResourceVector::new(0.5, 1.5, 2.5, 3.5));
        assert_eq!(a * 2.0, ResourceVector::new(2.0, 4.0, 6.0, 8.0));
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn fits_within_and_negligible() {
        let small = ResourceVector::new(1.0, 1.0, 1.0, 1.0);
        let big = ResourceVector::new(2.0, 2.0, 2.0, 2.0);
        assert!(small.fits_within(&big, 0.0));
        assert!(!big.fits_within(&small, 0.0));
        assert!(small.fits_within(&small, 0.0));
        assert!((small - small).is_negligible(1e-12));
        assert!(!small.is_negligible(0.5));
    }

    #[test]
    fn min_max_clamp() {
        let a = ResourceVector::new(1.0, -2.0, 3.0, -4.0);
        let b = ResourceVector::new(0.0, 0.0, 5.0, -5.0);
        assert_eq!(a.min(&b), ResourceVector::new(0.0, -2.0, 3.0, -5.0));
        assert_eq!(a.max(&b), ResourceVector::new(1.0, 0.0, 5.0, -4.0));
        assert_eq!(
            a.clamp_non_negative(),
            ResourceVector::new(1.0, 0.0, 3.0, 0.0)
        );
    }

    #[test]
    fn labels() {
        assert_eq!(ResourceType::ExtNetIn.to_string(), "ExtNet[in]");
        assert_eq!(ResourceType::Cpu.label(), "CPU");
        assert_eq!(ResourceType::ALL.len(), 4);
    }
}
