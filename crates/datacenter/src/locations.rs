//! The Table III experimental platform.
//!
//! "The data centers are located on four continents and in seven
//! countries": Finland (2 centers, 8 machines), Sweden (2, 8), U.K.
//! (2, 20), Netherlands (2, 15), US West (2, 35), Canada West (1, 15),
//! US Central (1, 15), US East (2, 32), Canada East (1, 10), and
//! Australia (2, 8). Machine totals are per location; co-located
//! centers split them (Sec. V-B halves the machines when assigning
//! HP-1/HP-2 round-robin).

use crate::center::{DataCenter, DataCenterId, DataCenterSpec};
use crate::policy::HostingPolicy;
use mmog_util::geo::GeoPoint;

/// One Table III row: location name, country, continent, coordinates,
/// number of co-located centers, total machines at the location.
struct LocationRow {
    name: &'static str,
    country: &'static str,
    continent: &'static str,
    point: GeoPoint,
    centers: u32,
    machines_total: u32,
}

const TABLE3: [LocationRow; 10] = [
    LocationRow {
        name: "Finland",
        country: "Finland",
        continent: "Europe",
        point: GeoPoint::new(60.17, 24.94), // Helsinki
        centers: 2,
        machines_total: 8,
    },
    LocationRow {
        name: "Sweden",
        country: "Sweden",
        continent: "Europe",
        point: GeoPoint::new(59.33, 18.07), // Stockholm
        centers: 2,
        machines_total: 8,
    },
    LocationRow {
        name: "U.K.",
        country: "U.K.",
        continent: "Europe",
        point: GeoPoint::new(51.51, -0.13), // London
        centers: 2,
        machines_total: 20,
    },
    LocationRow {
        name: "Netherlands",
        country: "Netherlands",
        continent: "Europe",
        point: GeoPoint::new(52.37, 4.90), // Amsterdam
        centers: 2,
        machines_total: 15,
    },
    LocationRow {
        name: "US West",
        country: "U.S.",
        continent: "North America",
        point: GeoPoint::new(37.34, -121.89), // San Jose
        centers: 2,
        machines_total: 35,
    },
    LocationRow {
        name: "Canada West",
        country: "Canada",
        continent: "North America",
        point: GeoPoint::new(49.28, -123.12), // Vancouver
        centers: 1,
        machines_total: 15,
    },
    LocationRow {
        name: "US Central",
        country: "U.S.",
        continent: "North America",
        point: GeoPoint::new(41.88, -87.63), // Chicago
        centers: 1,
        machines_total: 15,
    },
    LocationRow {
        name: "US East",
        country: "U.S.",
        continent: "North America",
        point: GeoPoint::new(38.90, -77.04), // Washington, D.C.
        centers: 2,
        machines_total: 32,
    },
    LocationRow {
        name: "Canada East",
        country: "Canada",
        continent: "North America",
        point: GeoPoint::new(43.65, -79.38), // Toronto
        centers: 1,
        machines_total: 10,
    },
    LocationRow {
        name: "Australia",
        country: "Australia",
        continent: "Australia",
        point: GeoPoint::new(-33.87, 151.21), // Sydney
        centers: 2,
        machines_total: 8,
    },
];

/// Builds the Table III data centers. `policy_for` selects each
/// center's hosting policy, given `(index_within_location, spec name)`
/// — Sec. V-B assigns HP-1 to the first co-located center and HP-2 to
/// the second, halving machines, which the machine split here already
/// does.
#[must_use]
pub fn table3_centers<F>(mut policy_for: F) -> Vec<DataCenter>
where
    F: FnMut(usize, &str) -> HostingPolicy,
{
    let mut id = 0u32;
    let mut out = Vec::new();
    for row in &TABLE3 {
        // Split the location's machines across its centers (remainder to
        // the first).
        let base = row.machines_total / row.centers;
        let remainder = row.machines_total % row.centers;
        for i in 0..row.centers {
            let machines = base + u32::from(i < remainder);
            let name = if row.centers > 1 {
                format!("{} ({})", row.name, i + 1)
            } else {
                row.name.to_string()
            };
            let policy = policy_for(i as usize, &name);
            out.push(DataCenter::new(DataCenterSpec {
                id: DataCenterId(id),
                name,
                country: row.country.into(),
                continent: row.continent.into(),
                location: row.point,
                machines,
                machine_capacity: DataCenterSpec::default_machine_capacity(),
                policy,
            }));
            id += 1;
        }
    }
    out
}

/// Convenience: Table III with the Sec. V-B policy assignment (HP-1 /
/// HP-2 round-robin within each location).
#[must_use]
pub fn table3_hp12() -> Vec<DataCenter> {
    table3_centers(|i, _| {
        if i % 2 == 0 {
            HostingPolicy::hp(1)
        } else {
            HostingPolicy::hp(2)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_centers_on_four_continents() {
        let centers = table3_hp12();
        // 2+2+2+2+2+1+1+2+1+2 = 17 centers.
        assert_eq!(centers.len(), 17);
        let mut continents: Vec<&str> = centers.iter().map(|c| c.spec.continent.as_str()).collect();
        continents.sort_unstable();
        continents.dedup();
        assert_eq!(continents.len(), 3); // Europe, North America, Australia
        let mut countries: Vec<&str> = centers.iter().map(|c| c.spec.country.as_str()).collect();
        countries.sort_unstable();
        countries.dedup();
        assert_eq!(countries.len(), 7, "{countries:?}"); // Table III: seven countries
    }

    #[test]
    fn machine_totals_match_table3() {
        let centers = table3_hp12();
        let total: u32 = centers.iter().map(|c| c.spec.machines).sum();
        assert_eq!(total, 8 + 8 + 20 + 15 + 35 + 15 + 15 + 32 + 10 + 8);
        // Co-located splits: Netherlands 15 → 8 + 7.
        let nl: Vec<u32> = centers
            .iter()
            .filter(|c| c.spec.country == "Netherlands")
            .map(|c| c.spec.machines)
            .collect();
        assert_eq!(nl, vec![8, 7]);
    }

    #[test]
    fn policy_round_robin_applied() {
        let centers = table3_hp12();
        let uk: Vec<&str> = centers
            .iter()
            .filter(|c| c.spec.country == "U.K.")
            .map(|c| c.spec.policy.name.as_str())
            .collect();
        assert_eq!(uk, vec!["HP-1", "HP-2"]);
        // Single-center locations get HP-1.
        let chi = centers
            .iter()
            .find(|c| c.spec.name == "US Central")
            .unwrap();
        assert_eq!(chi.spec.policy.name, "HP-1");
    }

    #[test]
    fn ids_unique_and_dense() {
        let centers = table3_hp12();
        let mut ids: Vec<u32> = centers.iter().map(|c| c.spec.id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..centers.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn east_and_west_coast_are_far_apart() {
        let centers = table3_hp12();
        let east = centers
            .iter()
            .find(|c| c.spec.name == "US East (1)")
            .unwrap();
        let west = centers
            .iter()
            .find(|c| c.spec.name == "US West (1)")
            .unwrap();
        let d = east.spec.location.distance_km(&west.spec.location);
        assert!(d > 3500.0, "coast-to-coast {d} km");
        // Within a location, co-located centers are at distance ~0.
        let east2 = centers
            .iter()
            .find(|c| c.spec.name == "US East (2)")
            .unwrap();
        assert!(east.spec.location.distance_km(&east2.spec.location) < 1.0);
    }

    #[test]
    fn custom_policy_selector_sees_names() {
        let mut seen = Vec::new();
        let _ = table3_centers(|i, name| {
            seen.push((i, name.to_string()));
            HostingPolicy::hp(5)
        });
        assert_eq!(seen.len(), 17);
        assert!(seen.iter().any(|(_, n)| n == "Australia (2)"));
        assert!(seen.iter().any(|(_, n)| n == "Canada East"));
    }
}
