//! The request–offer matching mechanism of Sec. II-C.
//!
//! "The resource allocation is realized by a request-offer matching
//! mechanism based on multiple criteria that favor the game operator. …
//! First, the number and the type of resources requested must match with
//! the offer; when they do not match, the matching mechanism ensures
//! that the offer includes at least the requested amounts. Second,
//! depending on the game latency tolerance, the matching mechanism
//! locates the resources closest to the request. Third, to deal with
//! data center policies, the matching mechanism selects first the finer
//! grained resources with the shorter period of reservation time."
//!
//! The matcher therefore (a) filters the centers admissible under the
//! request's distance class, (b) ranks them by policy granularity, then
//! time bulk, then distance, and (c) fills the request greedily across
//! the ranked list, quantising each grant to the center's bulks. The
//! effect seen in Sec. V-E — "the resources of the data centers with
//! unsuitable hosting policies [are] unused when suitable alternatives
//! exist" — emerges from this ranking.

use crate::center::{availability_epoch, Availability, DataCenter, LeaseId};
use crate::request::ResourceRequest;
use crate::resource::ResourceVector;
use crate::topology::Topology;
use mmog_util::geo::{DistanceClass, GeoPoint};
use mmog_util::time::SimTime;
use serde::{Deserialize, Serialize};

/// One grant resulting from a match.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Grant {
    /// Index of the data center in the slice passed to
    /// [`match_request`].
    pub center_index: usize,
    /// The lease created.
    pub lease: LeaseId,
    /// The amounts granted (bulk-rounded).
    pub amounts: ResourceVector,
    /// Distance from the request origin, km.
    pub distance_km: f64,
}

/// Why a particular center contributed nothing to a match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The center lies outside the request's latency tolerance class.
    Distance,
    /// The center was admissible but its free pool could not supply a
    /// single whole bulk of any still-needed resource.
    Exhausted,
    /// The bulk-rounded amounts were computed but the center's ledger
    /// refused the lease.
    GrantFailed,
    /// The center is `Down` (full outage) and was not considered.
    Unavailable,
    /// The center sits on the far side of a network partition from the
    /// request's home region (scenario topology) and was unreachable.
    Partitioned,
}

impl RejectReason {
    /// Stable lower-case label used in trace events and metric names.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Distance => "distance",
            Self::Exhausted => "exhausted",
            Self::GrantFailed => "grant_failed",
            Self::Unavailable => "unavailable",
            Self::Partitioned => "partitioned",
        }
    }
}

/// Rejection counts accumulated across many [`match_request`] calls —
/// the per-run aggregate the simulation report carries so rejection
/// causes are visible without replaying the trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RejectionTotals {
    /// Centers outside the request's latency tolerance class.
    pub distance: u64,
    /// Admissible centers whose free pool could not supply one bulk.
    pub exhausted: u64,
    /// Centers whose ledger refused the computed lease.
    pub grant_failed: u64,
    /// Centers down due to a fault-plane outage.
    pub unavailable: u64,
    /// Centers cut off by a scenario network partition.
    pub partitioned: u64,
}

impl RejectionTotals {
    /// Counts one rejection.
    pub fn add(&mut self, reason: RejectReason) {
        match reason {
            RejectReason::Distance => self.distance += 1,
            RejectReason::Exhausted => self.exhausted += 1,
            RejectReason::GrantFailed => self.grant_failed += 1,
            RejectReason::Unavailable => self.unavailable += 1,
            RejectReason::Partitioned => self.partitioned += 1,
        }
    }

    /// Adds another total into this one.
    pub fn merge(&mut self, other: &RejectionTotals) {
        self.distance += other.distance;
        self.exhausted += other.exhausted;
        self.grant_failed += other.grant_failed;
        self.unavailable += other.unavailable;
        self.partitioned += other.partitioned;
    }

    /// Grand total across all reasons.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.distance + self.exhausted + self.grant_failed + self.unavailable + self.partitioned
    }
}

/// One center that was considered but granted nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rejection {
    /// Index of the data center in the slice passed to
    /// [`match_request`].
    pub center_index: usize,
    /// Why it contributed nothing.
    pub reason: RejectReason,
}

/// Outcome of matching one request.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MatchOutcome {
    /// Grants made, in allocation order.
    pub grants: Vec<Grant>,
    /// Amounts that no admissible center could supply.
    pub unmet: ResourceVector,
    /// Centers considered but granting nothing, in consideration order
    /// (distance rejections first, then ranked-list rejections).
    pub rejections: Vec<Rejection>,
}

impl MatchOutcome {
    /// Total amounts granted across all centers.
    #[must_use]
    pub fn granted(&self) -> ResourceVector {
        self.grants
            .iter()
            .fold(ResourceVector::ZERO, |acc, g| acc + g.amounts)
    }

    /// True when the full request was satisfied.
    #[must_use]
    pub fn fully_met(&self) -> bool {
        self.unmet.is_negligible(1e-9)
    }
}

mod obs {
    //! Semantic matcher instruments. All operations are commutative
    //! integer updates, so recording is deterministic regardless of the
    //! caller's threading.
    use mmog_obs::{counter, histogram, Counter, Domain, Histogram};
    use std::sync::{Arc, OnceLock};

    fn stat(cell: &'static OnceLock<Arc<Counter>>, name: &'static str) -> &'static Arc<Counter> {
        cell.get_or_init(|| counter(name, Domain::Semantic))
    }

    /// Timing stat for one matcher call (`datacenter/match`), interned
    /// once rather than looked up per request.
    pub(super) fn match_timer() -> &'static mmog_obs::SpanStat {
        static T: OnceLock<Arc<mmog_obs::SpanStat>> = OnceLock::new();
        T.get_or_init(|| mmog_obs::timer("datacenter/match"))
    }

    pub(super) fn record(grants: usize, unmet: bool, rejections: &[super::Rejection]) {
        static REQUESTS: OnceLock<Arc<Counter>> = OnceLock::new();
        static GRANTS: OnceLock<Arc<Counter>> = OnceLock::new();
        static UNMET: OnceLock<Arc<Counter>> = OnceLock::new();
        static REJ_DISTANCE: OnceLock<Arc<Counter>> = OnceLock::new();
        static REJ_EXHAUSTED: OnceLock<Arc<Counter>> = OnceLock::new();
        static REJ_GRANT_FAILED: OnceLock<Arc<Counter>> = OnceLock::new();
        static REJ_UNAVAILABLE: OnceLock<Arc<Counter>> = OnceLock::new();
        static REJ_PARTITIONED: OnceLock<Arc<Counter>> = OnceLock::new();
        static PER_REQUEST: OnceLock<Arc<Histogram>> = OnceLock::new();
        stat(&REQUESTS, "match.requests").incr();
        stat(&GRANTS, "match.grants").add(grants as u64);
        if unmet {
            stat(&UNMET, "match.unmet_requests").incr();
        }
        for r in rejections {
            let cell = match r.reason {
                super::RejectReason::Distance => stat(&REJ_DISTANCE, "match.rejections.distance"),
                super::RejectReason::Exhausted => {
                    stat(&REJ_EXHAUSTED, "match.rejections.exhausted")
                }
                super::RejectReason::GrantFailed => {
                    stat(&REJ_GRANT_FAILED, "match.rejections.grant_failed")
                }
                super::RejectReason::Unavailable => {
                    stat(&REJ_UNAVAILABLE, "match.rejections.unavailable")
                }
                super::RejectReason::Partitioned => {
                    stat(&REJ_PARTITIONED, "match.rejections.partitioned")
                }
            };
            cell.incr();
        }
        PER_REQUEST
            .get_or_init(|| {
                histogram(
                    "match.grants_per_request",
                    Domain::Semantic,
                    &[0.5, 1.5, 2.5, 4.5, 8.5],
                )
            })
            .record(grants as f64);
    }
}

/// The offer-preference comparator of Sec. II-C: finer policy
/// granularity first, then shorter time bulk, then closest. Shared by
/// the one-shot matcher and the candidate index so both rank candidates
/// identically.
fn preference_order(
    centers: &[DataCenter],
    (i, di): (usize, f64),
    (j, dj): (usize, f64),
) -> std::cmp::Ordering {
    let (pi, pj) = (&centers[i].spec.policy, &centers[j].spec.policy);
    pi.granularity()
        .partial_cmp(&pj.granularity())
        .expect("granularities are finite")
        .then(pi.time_bulk.cmp(&pj.time_bulk))
        .then(di.partial_cmp(&dj).expect("distances are finite"))
}

/// Greedily fills `request` across the pre-ranked candidate list,
/// quantising each grant to the center's bulks. `rejections` arrives
/// holding the phase-1 (distance/availability) rejections and leaves
/// with the fill-loop (exhausted/grant-failed) rejections appended —
/// exactly the consideration order the one-shot matcher reports.
fn fill_ranked(
    centers: &mut [DataCenter],
    ranked: &[(usize, f64)],
    request: &ResourceRequest,
    now: SimTime,
    rejections: Vec<Rejection>,
) -> MatchOutcome {
    let mut out = MatchOutcome {
        grants: Vec::new(),
        unmet: ResourceVector::ZERO,
        rejections,
    };
    fill_ranked_into(centers, ranked, request, now, &mut out);
    out
}

/// [`fill_ranked`] writing into a caller-owned outcome whose
/// `rejections` have been pre-seeded (grants cleared here): the
/// provisioner's per-tick steady state reuses one outcome's buffers
/// instead of allocating fresh vectors per request.
fn fill_ranked_into(
    centers: &mut [DataCenter],
    ranked: &[(usize, f64)],
    request: &ResourceRequest,
    now: SimTime,
    out: &mut MatchOutcome,
) {
    let mut remaining = request.amounts.clamp_non_negative();
    out.grants.clear();
    for &(idx, distance_km) in ranked {
        if remaining.is_negligible(1e-9) {
            break;
        }
        // The policy and free pool are read under a shared borrow; the
        // ledger is only reborrowed mutably for the grant itself (no
        // per-candidate policy clone).
        let center = &centers[idx];
        let policy = &center.spec.policy;
        let free = center.free();
        // Per resource: round the remaining need up to the bulk grid,
        // but never beyond what the free pool can supply in whole bulks.
        let grant_amounts = remaining.map(|r, want| {
            if want <= 0.0 {
                return 0.0;
            }
            let rounded = policy.round_up(r, want);
            if rounded <= free.get(r) + 1e-9 {
                rounded
            } else {
                policy.round_down(r, free.get(r))
            }
        });
        if grant_amounts.is_negligible(1e-9) {
            out.rejections.push(Rejection {
                center_index: idx,
                reason: RejectReason::Exhausted,
            });
            continue;
        }
        if let Some(lease) = centers[idx].grant(request.operator, grant_amounts, now) {
            remaining = (remaining - grant_amounts).clamp_non_negative();
            out.grants.push(Grant {
                center_index: idx,
                lease,
                amounts: grant_amounts,
                distance_km,
            });
        } else {
            out.rejections.push(Rejection {
                center_index: idx,
                reason: RejectReason::GrantFailed,
            });
        }
    }
    out.unmet = remaining;
    obs::record(
        out.grants.len(),
        !remaining.is_negligible(1e-9),
        &out.rejections,
    );
}

/// The request's backbone ingress: the center nearest its origin by
/// raw great-circle distance (lowest index breaks ties). Partition
/// reachability and link factors are evaluated from this center's
/// vantage point. Returns 0 for an empty platform.
fn home_center(centers: &[DataCenter], origin: &GeoPoint) -> usize {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (i, c) in centers.iter().enumerate() {
        let d = c.distance_km(origin);
        if d < best_d {
            best = i;
            best_d = d;
        }
    }
    best
}

/// Matches one request against a set of data centers, mutating their
/// lease ledgers. See the module docs for the criteria ordering.
///
/// This is the one-shot entry point: it re-ranks the whole platform on
/// every call. A provisioner issuing many requests with a fixed origin
/// and tolerance should hold a [`CandidateIndex`] and call
/// [`match_request_indexed`] instead — same result, without the
/// per-request rescan.
pub fn match_request(
    centers: &mut [DataCenter],
    request: &ResourceRequest,
    now: SimTime,
) -> MatchOutcome {
    match_request_via(None, centers, request, now)
}

/// [`match_request`] under a scenario [`Topology`]. With
/// `topology: None` this is the identical pre-topology code path; with
/// a topology, candidates on the far side of a partition (relative to
/// the request's [`home_center`]) are rejected as
/// [`RejectReason::Partitioned`], and distances are inflated by the
/// per-link factor before the tolerance check and the preference
/// ranking ([`Grant::distance_km`] then carries the effective
/// distance).
pub fn match_request_via(
    topology: Option<&Topology>,
    centers: &mut [DataCenter],
    request: &ResourceRequest,
    now: SimTime,
) -> MatchOutcome {
    mmog_obs::time_stat(obs::match_timer(), || {
        // Rank admissible centers: finer granularity, shorter time bulk,
        // then closest (the Sec. II-C criteria, operator-favouring order).
        let mut rejections = Vec::new();
        let home = topology.map(|_| home_center(centers, &request.origin));
        let mut ranked: Vec<(usize, f64)> = centers
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                if c.availability() == Availability::Down {
                    rejections.push(Rejection {
                        center_index: i,
                        reason: RejectReason::Unavailable,
                    });
                    return None;
                }
                if let (Some(topo), Some(home)) = (topology, home) {
                    if !topo.reachable(home, i) {
                        rejections.push(Rejection {
                            center_index: i,
                            reason: RejectReason::Partitioned,
                        });
                        return None;
                    }
                }
                let mut d = c.distance_km(&request.origin);
                if let (Some(topo), Some(home)) = (topology, home) {
                    d = topo.effective_distance(home, i, d);
                }
                if request.tolerance.admits(d) {
                    Some((i, d))
                } else {
                    rejections.push(Rejection {
                        center_index: i,
                        reason: RejectReason::Distance,
                    });
                    None
                }
            })
            .collect();
        ranked.sort_by(|&a, &b| preference_order(centers, a, b));
        fill_ranked(centers, &ranked, request, now, rejections)
    })
}

/// A per-requester view of the platform that caches everything about
/// candidate ranking that does not change between requests.
///
/// The Sec. II-C ranking depends on three ingredients: center geometry
/// (static), hosting policies (static), and availability (changed only
/// by the fault plane). The index therefore pre-computes the distances
/// and the full offer-preference order once, and re-derives the
/// availability-dependent admissible list and phase-1 rejections only
/// when the global [`availability_epoch`] moves. In an unfaulted run
/// every request after the first skips straight to the fill loop.
///
/// An index is bound to one `(origin, tolerance)` pair — one per server
/// group — and to one center set: it rebuilds itself if the center
/// count changes, but callers must not reorder centers or mutate their
/// locations/policies behind its back (the simulation never does).
#[derive(Debug, Clone)]
pub struct CandidateIndex {
    origin: GeoPoint,
    tolerance: DistanceClass,
    built: bool,
    n_centers: usize,
    epoch: u64,
    /// Topology version the tables were built against (`None` when the
    /// index was built without a topology). A scenario topology
    /// mutation changes effective distances, so a version mismatch
    /// forces a full rebuild, not just a refresh.
    topo_version: Option<u64>,
    /// Per center, in center-index order: whether the center is
    /// partition-unreachable from the requester's home center. Empty
    /// (all reachable) when built without a topology.
    unreachable: Vec<bool>,
    /// Per center, in center-index order: distance from the origin and
    /// whether the tolerance class admits it. Static once built.
    by_center: Vec<(f64, bool)>,
    /// Every center in offer-preference order. Static once built:
    /// availability only filters this list, it never reorders it.
    preference: Vec<(usize, f64)>,
    /// Phase-1 rejections (availability/distance, center-index order)
    /// for the current availability epoch.
    rejections: Vec<Rejection>,
    /// Admissible candidates in preference order for the current
    /// availability epoch.
    ranked: Vec<(usize, f64)>,
}

impl CandidateIndex {
    /// Creates an empty index for one requester. The first
    /// [`match_request_indexed`] call populates it.
    #[must_use]
    pub fn new(origin: GeoPoint, tolerance: DistanceClass) -> Self {
        Self {
            origin,
            tolerance,
            built: false,
            n_centers: 0,
            epoch: 0,
            topo_version: None,
            unreachable: Vec::new(),
            by_center: Vec::new(),
            preference: Vec::new(),
            rejections: Vec::new(),
            ranked: Vec::new(),
        }
    }

    /// Computes the static part: distances, admissibility, preference
    /// order over all centers. Under a topology, distances are the
    /// effective (link-factor-inflated) distances from the requester's
    /// home center, and partition-unreachable centers are flagged.
    fn build(&mut self, centers: &[DataCenter], topology: Option<&Topology>) {
        self.n_centers = centers.len();
        self.unreachable.clear();
        self.by_center.clear();
        match topology {
            None => self.by_center.extend(centers.iter().map(|c| {
                let d = c.distance_km(&self.origin);
                (d, self.tolerance.admits(d))
            })),
            Some(topo) => {
                let home = home_center(centers, &self.origin);
                self.unreachable
                    .extend((0..centers.len()).map(|i| !topo.reachable(home, i)));
                self.by_center
                    .extend(centers.iter().enumerate().map(|(i, c)| {
                        let d = topo.effective_distance(home, i, c.distance_km(&self.origin));
                        (d, self.tolerance.admits(d))
                    }));
            }
        }
        self.preference.clear();
        self.preference
            .extend(self.by_center.iter().enumerate().map(|(i, &(d, _))| (i, d)));
        // Stable sort over the full center list: filtering a stable
        // sort to a subset gives the same relative order as stably
        // sorting the subset, so the fill order matches the one-shot
        // matcher's exactly.
        self.preference
            .sort_by(|&a, &b| preference_order(centers, a, b));
        self.built = true;
    }

    /// Re-derives the availability-dependent part (phase-1 rejections,
    /// admissible ranked list) from the cached static tables — no
    /// distance math, no sorting.
    fn refresh(&mut self, centers: &[DataCenter]) {
        self.rejections.clear();
        self.ranked.clear();
        let cut = |i: usize| self.unreachable.get(i).copied().unwrap_or(false);
        for (i, c) in centers.iter().enumerate() {
            if c.availability() == Availability::Down {
                self.rejections.push(Rejection {
                    center_index: i,
                    reason: RejectReason::Unavailable,
                });
            } else if cut(i) {
                self.rejections.push(Rejection {
                    center_index: i,
                    reason: RejectReason::Partitioned,
                });
            } else if !self.by_center[i].1 {
                self.rejections.push(Rejection {
                    center_index: i,
                    reason: RejectReason::Distance,
                });
            }
        }
        for &(i, d) in &self.preference {
            if self.by_center[i].1 && !cut(i) && centers[i].availability() != Availability::Down {
                self.ranked.push((i, d));
            }
        }
    }
}

/// Memo of a provably no-op adjustment step for one requester group.
///
/// In steady state almost every per-tick adjustment is a no-op: no
/// lease matured into the surplus, no reshape gain cleared its
/// threshold, and the deficit stayed negligible — yet the provisioner
/// still walks its whole release/reshape/request pipeline to find that
/// out. The memo captures the *proof* that a step was a no-op together
/// with every input the proof depended on, so later steps can replay
/// the empty outcome without touching the [`CandidateIndex`] — exactly,
/// not approximately.
///
/// A memo is keyed on:
///
/// - the **demand block**: the target the no-op was proven at. A new
///   target at or above it component-wise only shrinks the surplus, and
///   a no-op proof is monotone under a shrinking surplus (a lease that
///   did not fit the old surplus cannot fit a smaller one; a reshape
///   whose gain was below threshold only loses gain as the re-grant
///   estimate grows). Arming with `any_target` widens the block to
///   every deficit-negligible target — sound only while the ledger
///   holds *no matured lease*, because then there are no release or
///   reshape candidates at all, whatever the surplus;
/// - the global **availability epoch** ([`availability_epoch`]): any
///   fault-plane change (outage, repair, degradation) invalidates;
/// - the **topology version**: any scenario-plane mutation invalidates;
/// - the caller's **lease-ledger generation**, a counter the caller
///   bumps on every grant, release, or revocation-driven drop;
/// - optionally a **validity horizon** (`valid_until`): maturation is
///   the only time-driven input, so the memo expires the instant the
///   first not-yet-matured lease would become a release candidate.
///
/// The memo itself never decides to skip — it only answers whether its
/// keys still cover the current inputs via [`covers`]; the caller owns
/// the remaining step-local checks (deficit negligibility) and the
/// obligations listed at each [`arm`] site.
///
/// [`covers`]: MatchMemo::covers
/// [`arm`]: MatchMemo::arm
#[derive(Debug, Clone, Copy, Default)]
pub struct MatchMemo {
    armed: bool,
    target: ResourceVector,
    epoch: u64,
    topo_version: Option<u64>,
    lease_gen: u64,
    any_target: bool,
    valid_until: Option<SimTime>,
}

impl MatchMemo {
    /// A disarmed memo.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the memo currently holds a no-op proof.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Disarms the memo (the next step must run the full pipeline).
    pub fn invalidate(&mut self) {
        self.armed = false;
    }

    /// Arms the memo after a full step proved itself a no-op at
    /// `target` under the given epoch/topology/ledger keys.
    ///
    /// `any_target` asserts the ledger held no matured lease (so the
    /// proof covers every deficit-negligible target) *and* the ledger
    /// was already start-sorted (so a replayed step skipping phase 1's
    /// sort cannot be observed later). `valid_until` is the earliest
    /// future lease maturation (`None` when nothing can mature).
    pub fn arm(
        &mut self,
        target: ResourceVector,
        epoch: u64,
        topo_version: Option<u64>,
        lease_gen: u64,
        any_target: bool,
        valid_until: Option<SimTime>,
    ) {
        *self = Self {
            armed: true,
            target,
            epoch,
            topo_version,
            lease_gen,
            any_target,
            valid_until,
        };
    }

    /// Whether the memoized no-op proof covers an adjustment at
    /// `target` now, under the given keys. The caller must additionally
    /// check that the deficit against its current allocation is
    /// negligible before replaying.
    #[must_use]
    pub fn covers(
        &self,
        target: &ResourceVector,
        epoch: u64,
        topo_version: Option<u64>,
        lease_gen: u64,
        now: SimTime,
    ) -> bool {
        self.armed
            && self.lease_gen == lease_gen
            && self.epoch == epoch
            && self.topo_version == topo_version
            && self.valid_until.is_none_or(|t| now < t)
            && (self.any_target || self.target.fits_within(target, 0.0))
    }
}

/// [`match_request`] through a [`CandidateIndex`]: byte-identical
/// outcomes (grants, rejection order, unmet amounts), but the
/// enumerate-filter-sort phase runs only when the platform's
/// availability actually changed instead of on every request.
pub fn match_request_indexed(
    index: &mut CandidateIndex,
    centers: &mut [DataCenter],
    request: &ResourceRequest,
    now: SimTime,
) -> MatchOutcome {
    match_request_indexed_via(None, index, centers, request, now)
}

/// [`match_request_indexed`] under a scenario [`Topology`]: the indexed
/// counterpart of [`match_request_via`], with byte-identical outcomes.
/// A topology mutation (version bump) invalidates the cached distance
/// tables and forces a full rebuild; availability-only changes keep
/// using the cheap refresh path. With `topology: None` this is the
/// identical pre-topology code path.
pub fn match_request_indexed_via(
    topology: Option<&Topology>,
    index: &mut CandidateIndex,
    centers: &mut [DataCenter],
    request: &ResourceRequest,
    now: SimTime,
) -> MatchOutcome {
    debug_assert!(
        request.origin == index.origin && request.tolerance == index.tolerance,
        "a CandidateIndex serves one (origin, tolerance) requester"
    );
    let mut out = MatchOutcome::default();
    match_request_indexed_into_via(topology, index, centers, request, now, &mut out);
    out
}

/// [`match_request_indexed_via`] writing into a caller-owned outcome:
/// byte-identical grants/rejections/unmet, but the outcome's vectors
/// are reused across calls, so a steady-state requester pays no
/// allocation for the match itself.
pub fn match_request_indexed_into_via(
    topology: Option<&Topology>,
    index: &mut CandidateIndex,
    centers: &mut [DataCenter],
    request: &ResourceRequest,
    now: SimTime,
    out: &mut MatchOutcome,
) {
    debug_assert!(
        request.origin == index.origin && request.tolerance == index.tolerance,
        "a CandidateIndex serves one (origin, tolerance) requester"
    );
    mmog_obs::time_stat(obs::match_timer(), || {
        let epoch = availability_epoch();
        let topo_version = topology.map(Topology::version);
        if !index.built || index.n_centers != centers.len() || index.topo_version != topo_version {
            index.build(centers, topology);
            index.refresh(centers);
            index.epoch = epoch;
            index.topo_version = topo_version;
        } else if index.epoch != epoch {
            index.refresh(centers);
            index.epoch = epoch;
        }
        out.rejections.clear();
        out.rejections.extend_from_slice(&index.rejections);
        fill_ranked_into(centers, &index.ranked, request, now, out);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::center::{DataCenterId, DataCenterSpec};
    use crate::policy::HostingPolicy;
    use crate::request::OperatorId;
    use mmog_util::geo::{DistanceClass, GeoPoint};

    fn center(id: u32, lat: f64, lon: f64, machines: u32, policy: HostingPolicy) -> DataCenter {
        DataCenter::new(DataCenterSpec {
            id: DataCenterId(id),
            name: format!("dc{id}"),
            country: "X".into(),
            continent: "Y".into(),
            location: GeoPoint::new(lat, lon),
            machines,
            machine_capacity: DataCenterSpec::default_machine_capacity(),
            policy,
        })
    }

    fn cpu_req(amount: f64, tolerance: DistanceClass) -> ResourceRequest {
        ResourceRequest::new(
            OperatorId(1),
            ResourceVector::new(amount, 0.0, 0.0, 0.0),
            GeoPoint::new(50.0, 10.0),
            tolerance,
        )
    }

    #[test]
    fn grants_at_least_the_requested_amount() {
        // Criterion 1: "the offer includes at least the requested
        // amounts" — bulk rounding grants upward.
        let mut centers = vec![center(0, 50.0, 10.0, 10, HostingPolicy::hp(5))];
        let out = match_request(
            &mut centers,
            &cpu_req(1.0, DistanceClass::VeryFar),
            SimTime::ZERO,
        );
        assert!(out.fully_met());
        let granted = out.granted().cpu;
        assert!(granted >= 1.0);
        assert!((granted - 1.11).abs() < 1e-9, "3 bulks of 0.37: {granted}");
    }

    #[test]
    fn distance_filter_respects_tolerance() {
        // One center far away: SameLocation tolerance finds nothing.
        let mut centers = vec![center(0, 0.0, 0.0, 10, HostingPolicy::hp(5))];
        let out = match_request(
            &mut centers,
            &cpu_req(1.0, DistanceClass::SameLocation),
            SimTime::ZERO,
        );
        assert!(out.grants.is_empty());
        assert!((out.unmet.cpu - 1.0).abs() < 1e-9);
        // VeryFar admits it.
        let out = match_request(
            &mut centers,
            &cpu_req(1.0, DistanceClass::VeryFar),
            SimTime::ZERO,
        );
        assert!(out.fully_met());
    }

    #[test]
    fn finer_granularity_preferred_over_distance() {
        // Near center with coarse CPU bulk vs far center with fine bulk:
        // the matcher must pick the fine one first (Sec. V-E's East-coast
        // penalty).
        let mut centers = vec![
            center(0, 50.0, 10.0, 10, HostingPolicy::hp(7)), // near, coarse (1.11)
            center(1, 50.0, 40.0, 10, HostingPolicy::hp(3)), // ~2100km, fine (0.22)
        ];
        let out = match_request(
            &mut centers,
            &cpu_req(0.4, DistanceClass::VeryFar),
            SimTime::ZERO,
        );
        assert_eq!(out.grants.len(), 1);
        assert_eq!(
            out.grants[0].center_index, 1,
            "fine-grained center must win"
        );
    }

    #[test]
    fn shorter_time_bulk_breaks_granularity_ties() {
        let mut centers = vec![
            center(0, 50.0, 10.0, 10, HostingPolicy::hp(9)), // 0.37 / 720 min
            center(1, 50.0, 10.5, 10, HostingPolicy::hp(5)), // 0.37 / 180 min
        ];
        let out = match_request(
            &mut centers,
            &cpu_req(0.3, DistanceClass::VeryFar),
            SimTime::ZERO,
        );
        assert_eq!(out.grants[0].center_index, 1, "shorter lease must win");
    }

    #[test]
    fn closest_breaks_full_ties() {
        let mut centers = vec![
            center(0, 50.0, 20.0, 10, HostingPolicy::hp(5)), // ~700 km
            center(1, 50.0, 10.1, 10, HostingPolicy::hp(5)), // ~7 km
        ];
        let out = match_request(
            &mut centers,
            &cpu_req(0.3, DistanceClass::VeryFar),
            SimTime::ZERO,
        );
        assert_eq!(out.grants[0].center_index, 1, "closest must win ties");
    }

    #[test]
    fn spills_across_centers_when_first_is_full() {
        // First-ranked center too small: remainder goes to the next.
        let mut centers = vec![
            center(0, 50.0, 10.0, 1, HostingPolicy::hp(3)), // fine but tiny (1.2 CPU)
            center(1, 50.0, 11.0, 10, HostingPolicy::hp(5)),
        ];
        let out = match_request(
            &mut centers,
            &cpu_req(3.0, DistanceClass::VeryFar),
            SimTime::ZERO,
        );
        assert!(out.fully_met(), "unmet: {}", out.unmet);
        assert_eq!(out.grants.len(), 2);
        assert_eq!(out.grants[0].center_index, 0);
        assert_eq!(out.grants[1].center_index, 1);
        // The tiny center granted whole bulks only.
        let g0 = out.grants[0].amounts.cpu;
        assert!(
            (g0 / 0.22).fract().abs() < 1e-6,
            "grant {g0} not on bulk grid"
        );
    }

    #[test]
    fn reports_unmet_when_everything_is_full() {
        let mut centers = vec![center(0, 50.0, 10.0, 1, HostingPolicy::hp(5))];
        let out = match_request(
            &mut centers,
            &cpu_req(100.0, DistanceClass::VeryFar),
            SimTime::ZERO,
        );
        assert!(!out.fully_met());
        assert!(out.unmet.cpu > 90.0);
    }

    #[test]
    fn zero_request_matches_nothing() {
        let mut centers = vec![center(0, 50.0, 10.0, 10, HostingPolicy::hp(5))];
        let out = match_request(
            &mut centers,
            &cpu_req(0.0, DistanceClass::VeryFar),
            SimTime::ZERO,
        );
        assert!(out.grants.is_empty());
        assert!(out.fully_met());
    }

    #[test]
    fn multi_resource_request_quantised_per_type() {
        let mut centers = vec![center(0, 50.0, 10.0, 10, HostingPolicy::hp(1))];
        let req = ResourceRequest::new(
            OperatorId(1),
            ResourceVector::new(0.3, 1.0, 1.0, 0.1),
            GeoPoint::new(50.0, 10.0),
            DistanceClass::VeryFar,
        );
        let out = match_request(&mut centers, &req, SimTime::ZERO);
        assert!(out.fully_met());
        let g = out.granted();
        assert!((g.cpu - 0.5).abs() < 1e-9); // 2 × 0.25
        assert!((g.memory - 1.0).abs() < 1e-9); // n/a bulk → exact
        assert!((g.ext_net_in - 6.0).abs() < 1e-9); // one huge inbound bulk
        assert!((g.ext_net_out - 0.33).abs() < 1e-9);
    }

    #[test]
    fn down_center_skipped_with_unavailable_rejection() {
        let mut centers = vec![
            center(0, 50.0, 10.0, 10, HostingPolicy::hp(3)), // finest, but down
            center(1, 50.0, 11.0, 10, HostingPolicy::hp(5)),
        ];
        let _ = centers[0].fail();
        let out = match_request(
            &mut centers,
            &cpu_req(1.0, DistanceClass::VeryFar),
            SimTime::ZERO,
        );
        assert!(out.fully_met(), "the surviving center covers the request");
        assert!(out.grants.iter().all(|g| g.center_index == 1));
        assert!(out
            .rejections
            .iter()
            .any(|r| r.center_index == 0 && r.reason == RejectReason::Unavailable));
        let mut totals = RejectionTotals::default();
        for r in &out.rejections {
            totals.add(r.reason);
        }
        assert_eq!(totals.unavailable, 1);
        assert_eq!(totals.total(), out.rejections.len() as u64);
    }

    /// Runs the same request sequence through the one-shot matcher and
    /// the indexed matcher on cloned platforms and asserts identical
    /// outcomes (grants, rejection order, unmet) and identical end
    /// states.
    fn assert_indexed_matches_oneshot(
        mut centers: Vec<DataCenter>,
        requests: &[ResourceRequest],
        mutate: impl Fn(&mut [DataCenter], usize),
    ) {
        let mut indexed = centers.clone();
        let mut index = CandidateIndex::new(requests[0].origin, requests[0].tolerance);
        for (step, req) in requests.iter().enumerate() {
            mutate(&mut centers, step);
            mutate(&mut indexed, step);
            let now = SimTime::from_minutes(step as u64);
            let a = match_request(&mut centers, req, now);
            let b = match_request_indexed(&mut index, &mut indexed, req, now);
            assert_eq!(a, b, "outcomes diverge at step {step}");
            for (x, y) in centers.iter().zip(&indexed) {
                assert_eq!(x.allocated(), y.allocated(), "ledgers diverge at {step}");
                assert_eq!(x.leases(), y.leases());
            }
        }
    }

    #[test]
    fn indexed_matches_oneshot_over_mixed_platform() {
        let centers = vec![
            center(0, 50.0, 10.0, 3, HostingPolicy::hp(7)),
            center(1, 50.0, 40.0, 2, HostingPolicy::hp(3)),
            center(2, 50.0, 10.5, 2, HostingPolicy::hp(5)),
            center(3, 0.0, 0.0, 10, HostingPolicy::hp(1)), // far away
        ];
        let requests: Vec<ResourceRequest> = [0.4, 1.3, 2.0, 0.1, 5.0, 0.7]
            .iter()
            .map(|&amt| cpu_req(amt, DistanceClass::Far))
            .collect();
        assert_indexed_matches_oneshot(centers, &requests, |_, _| {});
    }

    #[test]
    fn indexed_tracks_availability_changes() {
        let centers = vec![
            center(0, 50.0, 10.0, 4, HostingPolicy::hp(3)),
            center(1, 50.0, 11.0, 4, HostingPolicy::hp(5)),
            center(2, 50.0, 12.0, 4, HostingPolicy::hp(7)),
        ];
        let requests: Vec<ResourceRequest> = (0..6)
            .map(|_| cpu_req(0.5, DistanceClass::VeryFar))
            .collect();
        // Fault plane: fail the best center mid-sequence, degrade
        // another, then repair — the index must follow every change.
        assert_indexed_matches_oneshot(centers, &requests, |cs, step| match step {
            2 => {
                let _ = cs[0].fail();
            }
            3 => cs[1].degrade(0.1),
            4 => {
                cs[0].repair();
                cs[1].repair();
            }
            _ => {}
        });
    }

    #[test]
    fn indexed_rebuilds_when_center_count_changes() {
        let mut centers = vec![center(0, 50.0, 10.0, 4, HostingPolicy::hp(5))];
        let req = cpu_req(0.3, DistanceClass::VeryFar);
        let mut index = CandidateIndex::new(req.origin, req.tolerance);
        let out = match_request_indexed(&mut index, &mut centers, &req, SimTime::ZERO);
        assert!(out.fully_met());
        // A finer-grained center appears: the index must re-rank.
        centers.push(center(1, 50.0, 10.0, 4, HostingPolicy::hp(3)));
        let out = match_request_indexed(&mut index, &mut centers, &req, SimTime::ZERO);
        assert_eq!(out.grants[0].center_index, 1, "new finest center wins");
    }

    #[test]
    fn partitioned_centers_rejected_until_heal() {
        // Origin sits on center 0; center 1 is cut off by a partition.
        let mut centers = vec![
            center(0, 50.0, 10.0, 1, HostingPolicy::hp(5)), // home, tiny
            center(1, 50.0, 11.0, 10, HostingPolicy::hp(3)), // finest, far side
        ];
        let mut topo = Topology::new(2);
        topo.partition(0b10); // {0} | {1}
        let req = cpu_req(5.0, DistanceClass::VeryFar);
        let out = match_request_via(Some(&topo), &mut centers, &req, SimTime::ZERO);
        assert!(out.grants.iter().all(|g| g.center_index == 0));
        assert!(!out.fully_met(), "home center alone cannot cover 5 CPU");
        assert!(out
            .rejections
            .iter()
            .any(|r| r.center_index == 1 && r.reason == RejectReason::Partitioned));
        let mut totals = RejectionTotals::default();
        for r in &out.rejections {
            totals.add(r.reason);
        }
        assert_eq!(totals.partitioned, 1);
        assert_eq!(totals.total(), out.rejections.len() as u64);
        // Heal: the far side becomes reachable and covers the request.
        topo.heal();
        let out = match_request_via(Some(&topo), &mut centers, &req, SimTime::ZERO);
        assert!(out.fully_met());
        assert!(out.grants.iter().any(|g| g.center_index == 1));
    }

    #[test]
    fn link_degradation_inflates_effective_distance() {
        // Both centers inside Close (<2000 km) nominally; a 4× link
        // factor pushes center 1 beyond the tolerance.
        let mut centers = vec![
            center(0, 50.0, 10.0, 10, HostingPolicy::hp(5)), // home
            center(1, 50.0, 20.0, 10, HostingPolicy::hp(3)), // ~714 km, finest
        ];
        let nominal = Topology::new(2);
        let req = cpu_req(0.4, DistanceClass::Close);
        let out = match_request_via(Some(&nominal), &mut centers.clone(), &req, SimTime::ZERO);
        assert_eq!(
            out.grants[0].center_index, 1,
            "finest center wins nominally"
        );
        let mut topo = Topology::new(2);
        topo.set_link_factor(0, 1, 4.0); // 714 km → ~2857 km effective
        let out = match_request_via(Some(&topo), &mut centers, &req, SimTime::ZERO);
        assert!(out.grants.iter().all(|g| g.center_index == 0));
        assert!(out
            .rejections
            .iter()
            .any(|r| r.center_index == 1 && r.reason == RejectReason::Distance));
    }

    #[test]
    fn nominal_topology_matches_no_topology_exactly() {
        let centers = vec![
            center(0, 50.0, 10.0, 3, HostingPolicy::hp(7)),
            center(1, 50.0, 40.0, 2, HostingPolicy::hp(3)),
            center(2, 50.0, 10.5, 2, HostingPolicy::hp(5)),
        ];
        let topo = Topology::new(3);
        for amt in [0.4, 1.3, 5.0] {
            let req = cpu_req(amt, DistanceClass::Far);
            let mut a = centers.clone();
            let mut b = centers.clone();
            let out_a = match_request(&mut a, &req, SimTime::ZERO);
            let out_b = match_request_via(Some(&topo), &mut b, &req, SimTime::ZERO);
            assert_eq!(out_a, out_b, "nominal topology must be transparent");
        }
    }

    /// Topology counterpart of [`assert_indexed_matches_oneshot`]: the
    /// same request sequence through [`match_request_via`] and
    /// [`match_request_indexed_via`] while `mutate` rewires the
    /// topology (and possibly availability) between steps.
    fn assert_indexed_matches_oneshot_via(
        mut centers: Vec<DataCenter>,
        requests: &[ResourceRequest],
        mut topo: Topology,
        mutate: impl Fn(&mut Topology, &mut [DataCenter], usize),
    ) {
        let mut indexed = centers.clone();
        let mut index = CandidateIndex::new(requests[0].origin, requests[0].tolerance);
        for (step, req) in requests.iter().enumerate() {
            mutate(&mut topo, &mut centers, step);
            // Replay availability mutations on the indexed clone with a
            // throwaway topology so both platforms stay in lock-step.
            let mut shadow = topo.clone();
            mutate(&mut shadow, &mut indexed, step);
            let now = SimTime::from_minutes(step as u64);
            let a = match_request_via(Some(&topo), &mut centers, req, now);
            let b = match_request_indexed_via(Some(&topo), &mut index, &mut indexed, req, now);
            assert_eq!(a, b, "outcomes diverge at step {step}");
            for (x, y) in centers.iter().zip(&indexed) {
                assert_eq!(x.allocated(), y.allocated(), "ledgers diverge at {step}");
                assert_eq!(x.leases(), y.leases());
            }
        }
    }

    #[test]
    fn indexed_tracks_topology_mutations() {
        let centers = vec![
            center(0, 50.0, 10.0, 4, HostingPolicy::hp(3)),
            center(1, 50.0, 11.0, 4, HostingPolicy::hp(5)),
            center(2, 50.0, 12.0, 4, HostingPolicy::hp(7)),
        ];
        let requests: Vec<ResourceRequest> = (0..8)
            .map(|_| cpu_req(0.5, DistanceClass::VeryFar))
            .collect();
        // Partition, degrade a link, fail a center, heal, restore — the
        // index must rebuild on every topology version bump and refresh
        // on the availability change.
        assert_indexed_matches_oneshot_via(
            centers,
            &requests,
            Topology::new(3),
            |topo, cs, step| match step {
                1 => topo.partition(0b001),
                2 => topo.set_link_factor(0, 1, 8.0),
                3 => {
                    let _ = cs[2].fail();
                }
                4 => topo.heal(),
                5 => {
                    cs[2].repair();
                    topo.set_link_factor(0, 1, 1.0);
                }
                _ => {}
            },
        );
    }

    #[test]
    fn negative_amounts_treated_as_zero() {
        let mut centers = vec![center(0, 50.0, 10.0, 10, HostingPolicy::hp(5))];
        let req = ResourceRequest::new(
            OperatorId(1),
            ResourceVector::new(-5.0, 0.0, 0.0, 0.0),
            GeoPoint::new(50.0, 10.0),
            DistanceClass::VeryFar,
        );
        let out = match_request(&mut centers, &req, SimTime::ZERO);
        assert!(out.grants.is_empty());
        assert!(out.fully_met());
    }

    #[test]
    fn memo_covers_only_inside_its_band_and_keys() {
        let mut memo = MatchMemo::new();
        let t = ResourceVector::new(1.0, 2.0, 0.5, 0.5);
        let now = SimTime(10);
        assert!(!memo.covers(&t, 3, None, 7, now), "disarmed covers nothing");
        memo.arm(t, 3, None, 7, false, None);
        assert!(memo.is_armed());
        // Exactly the armed target, and any target at or above it.
        assert!(memo.covers(&t, 3, None, 7, now));
        let above = ResourceVector::new(1.5, 2.0, 0.5, 0.5);
        assert!(memo.covers(&above, 3, None, 7, now));
        // Below on any component leaves the monotone band.
        let below = ResourceVector::new(1.0, 1.9, 0.5, 0.5);
        assert!(!memo.covers(&below, 3, None, 7, now));
        // Any key mismatch invalidates: epoch, topology, ledger.
        assert!(!memo.covers(&t, 4, None, 7, now), "epoch moved");
        assert!(!memo.covers(&t, 3, Some(1), 7, now), "topology moved");
        assert!(!memo.covers(&t, 3, None, 8, now), "ledger moved");
        memo.invalidate();
        assert!(!memo.covers(&t, 3, None, 7, now));
    }

    #[test]
    fn memo_any_target_band_and_validity_horizon() {
        let mut memo = MatchMemo::new();
        let t = ResourceVector::new(1.0, 1.0, 1.0, 1.0);
        // No matured leases: the band widens to any target, but only
        // until the first maturation instant.
        memo.arm(t, 0, Some(2), 1, true, Some(SimTime(20)));
        let below = ResourceVector::new(0.1, 0.0, 0.0, 0.0);
        assert!(memo.covers(&below, 0, Some(2), 1, SimTime(19)));
        assert!(
            !memo.covers(&below, 0, Some(2), 1, SimTime(20)),
            "a lease matures at t=20: the proof expires"
        );
        // The horizon also bounds the monotone band.
        memo.arm(t, 0, Some(2), 1, false, Some(SimTime(20)));
        assert!(memo.covers(&t, 0, Some(2), 1, SimTime(19)));
        assert!(!memo.covers(&t, 0, Some(2), 1, SimTime(25)));
    }
}
