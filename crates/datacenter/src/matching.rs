//! The request–offer matching mechanism of Sec. II-C.
//!
//! "The resource allocation is realized by a request-offer matching
//! mechanism based on multiple criteria that favor the game operator. …
//! First, the number and the type of resources requested must match with
//! the offer; when they do not match, the matching mechanism ensures
//! that the offer includes at least the requested amounts. Second,
//! depending on the game latency tolerance, the matching mechanism
//! locates the resources closest to the request. Third, to deal with
//! data center policies, the matching mechanism selects first the finer
//! grained resources with the shorter period of reservation time."
//!
//! The matcher therefore (a) filters the centers admissible under the
//! request's distance class, (b) ranks them by policy granularity, then
//! time bulk, then distance, and (c) fills the request greedily across
//! the ranked list, quantising each grant to the center's bulks. The
//! effect seen in Sec. V-E — "the resources of the data centers with
//! unsuitable hosting policies [are] unused when suitable alternatives
//! exist" — emerges from this ranking.

use crate::center::{Availability, DataCenter, LeaseId};
use crate::request::ResourceRequest;
use crate::resource::ResourceVector;
use mmog_util::time::SimTime;
use serde::{Deserialize, Serialize};

/// One grant resulting from a match.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Grant {
    /// Index of the data center in the slice passed to
    /// [`match_request`].
    pub center_index: usize,
    /// The lease created.
    pub lease: LeaseId,
    /// The amounts granted (bulk-rounded).
    pub amounts: ResourceVector,
    /// Distance from the request origin, km.
    pub distance_km: f64,
}

/// Why a particular center contributed nothing to a match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The center lies outside the request's latency tolerance class.
    Distance,
    /// The center was admissible but its free pool could not supply a
    /// single whole bulk of any still-needed resource.
    Exhausted,
    /// The bulk-rounded amounts were computed but the center's ledger
    /// refused the lease.
    GrantFailed,
    /// The center is `Down` (full outage) and was not considered.
    Unavailable,
}

impl RejectReason {
    /// Stable lower-case label used in trace events and metric names.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Distance => "distance",
            Self::Exhausted => "exhausted",
            Self::GrantFailed => "grant_failed",
            Self::Unavailable => "unavailable",
        }
    }
}

/// Rejection counts accumulated across many [`match_request`] calls —
/// the per-run aggregate the simulation report carries so rejection
/// causes are visible without replaying the trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RejectionTotals {
    /// Centers outside the request's latency tolerance class.
    pub distance: u64,
    /// Admissible centers whose free pool could not supply one bulk.
    pub exhausted: u64,
    /// Centers whose ledger refused the computed lease.
    pub grant_failed: u64,
    /// Centers down due to a fault-plane outage.
    pub unavailable: u64,
}

impl RejectionTotals {
    /// Counts one rejection.
    pub fn add(&mut self, reason: RejectReason) {
        match reason {
            RejectReason::Distance => self.distance += 1,
            RejectReason::Exhausted => self.exhausted += 1,
            RejectReason::GrantFailed => self.grant_failed += 1,
            RejectReason::Unavailable => self.unavailable += 1,
        }
    }

    /// Adds another total into this one.
    pub fn merge(&mut self, other: &RejectionTotals) {
        self.distance += other.distance;
        self.exhausted += other.exhausted;
        self.grant_failed += other.grant_failed;
        self.unavailable += other.unavailable;
    }

    /// Grand total across all reasons.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.distance + self.exhausted + self.grant_failed + self.unavailable
    }
}

/// One center that was considered but granted nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rejection {
    /// Index of the data center in the slice passed to
    /// [`match_request`].
    pub center_index: usize,
    /// Why it contributed nothing.
    pub reason: RejectReason,
}

/// Outcome of matching one request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchOutcome {
    /// Grants made, in allocation order.
    pub grants: Vec<Grant>,
    /// Amounts that no admissible center could supply.
    pub unmet: ResourceVector,
    /// Centers considered but granting nothing, in consideration order
    /// (distance rejections first, then ranked-list rejections).
    pub rejections: Vec<Rejection>,
}

impl MatchOutcome {
    /// Total amounts granted across all centers.
    #[must_use]
    pub fn granted(&self) -> ResourceVector {
        self.grants
            .iter()
            .fold(ResourceVector::ZERO, |acc, g| acc + g.amounts)
    }

    /// True when the full request was satisfied.
    #[must_use]
    pub fn fully_met(&self) -> bool {
        self.unmet.is_negligible(1e-9)
    }
}

mod obs {
    //! Semantic matcher instruments. All operations are commutative
    //! integer updates, so recording is deterministic regardless of the
    //! caller's threading.
    use mmog_obs::{counter, histogram, Counter, Domain, Histogram};
    use std::sync::{Arc, OnceLock};

    fn stat(cell: &'static OnceLock<Arc<Counter>>, name: &'static str) -> &'static Arc<Counter> {
        cell.get_or_init(|| counter(name, Domain::Semantic))
    }

    pub(super) fn record(grants: usize, unmet: bool, rejections: &[super::Rejection]) {
        static REQUESTS: OnceLock<Arc<Counter>> = OnceLock::new();
        static GRANTS: OnceLock<Arc<Counter>> = OnceLock::new();
        static UNMET: OnceLock<Arc<Counter>> = OnceLock::new();
        static REJ_DISTANCE: OnceLock<Arc<Counter>> = OnceLock::new();
        static REJ_EXHAUSTED: OnceLock<Arc<Counter>> = OnceLock::new();
        static REJ_GRANT_FAILED: OnceLock<Arc<Counter>> = OnceLock::new();
        static REJ_UNAVAILABLE: OnceLock<Arc<Counter>> = OnceLock::new();
        static PER_REQUEST: OnceLock<Arc<Histogram>> = OnceLock::new();
        stat(&REQUESTS, "match.requests").incr();
        stat(&GRANTS, "match.grants").add(grants as u64);
        if unmet {
            stat(&UNMET, "match.unmet_requests").incr();
        }
        for r in rejections {
            let cell = match r.reason {
                super::RejectReason::Distance => stat(&REJ_DISTANCE, "match.rejections.distance"),
                super::RejectReason::Exhausted => {
                    stat(&REJ_EXHAUSTED, "match.rejections.exhausted")
                }
                super::RejectReason::GrantFailed => {
                    stat(&REJ_GRANT_FAILED, "match.rejections.grant_failed")
                }
                super::RejectReason::Unavailable => {
                    stat(&REJ_UNAVAILABLE, "match.rejections.unavailable")
                }
            };
            cell.incr();
        }
        PER_REQUEST
            .get_or_init(|| {
                histogram(
                    "match.grants_per_request",
                    Domain::Semantic,
                    &[0.5, 1.5, 2.5, 4.5, 8.5],
                )
            })
            .record(grants as f64);
    }
}

/// Matches one request against a set of data centers, mutating their
/// lease ledgers. See the module docs for the criteria ordering.
pub fn match_request(
    centers: &mut [DataCenter],
    request: &ResourceRequest,
    now: SimTime,
) -> MatchOutcome {
    // Rank admissible centers: finer granularity, shorter time bulk,
    // then closest (the Sec. II-C criteria, operator-favouring order).
    let mut rejections = Vec::new();
    let mut ranked: Vec<(usize, f64)> = centers
        .iter()
        .enumerate()
        .filter_map(|(i, c)| {
            if c.availability() == Availability::Down {
                rejections.push(Rejection {
                    center_index: i,
                    reason: RejectReason::Unavailable,
                });
                return None;
            }
            let d = c.distance_km(&request.origin);
            if request.tolerance.admits(d) {
                Some((i, d))
            } else {
                rejections.push(Rejection {
                    center_index: i,
                    reason: RejectReason::Distance,
                });
                None
            }
        })
        .collect();
    ranked.sort_by(|&(i, di), &(j, dj)| {
        let (pi, pj) = (&centers[i].spec.policy, &centers[j].spec.policy);
        pi.granularity()
            .partial_cmp(&pj.granularity())
            .expect("granularities are finite")
            .then(pi.time_bulk.cmp(&pj.time_bulk))
            .then(di.partial_cmp(&dj).expect("distances are finite"))
    });

    let mut remaining = request.amounts.clamp_non_negative();
    let mut grants = Vec::new();
    for (idx, distance_km) in ranked {
        if remaining.is_negligible(1e-9) {
            break;
        }
        let center = &mut centers[idx];
        let policy = center.spec.policy.clone();
        let free = center.free();
        // Per resource: round the remaining need up to the bulk grid,
        // but never beyond what the free pool can supply in whole bulks.
        let grant_amounts = remaining.map(|r, want| {
            if want <= 0.0 {
                return 0.0;
            }
            let rounded = policy.round_up(r, want);
            if rounded <= free.get(r) + 1e-9 {
                rounded
            } else {
                policy.round_down(r, free.get(r))
            }
        });
        if grant_amounts.is_negligible(1e-9) {
            rejections.push(Rejection {
                center_index: idx,
                reason: RejectReason::Exhausted,
            });
            continue;
        }
        if let Some(lease) = center.grant(request.operator, grant_amounts, now) {
            remaining = (remaining - grant_amounts).clamp_non_negative();
            grants.push(Grant {
                center_index: idx,
                lease,
                amounts: grant_amounts,
                distance_km,
            });
        } else {
            rejections.push(Rejection {
                center_index: idx,
                reason: RejectReason::GrantFailed,
            });
        }
    }
    let unmet = !remaining.is_negligible(1e-9);
    obs::record(grants.len(), unmet, &rejections);
    MatchOutcome {
        grants,
        unmet: remaining,
        rejections,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::center::{DataCenterId, DataCenterSpec};
    use crate::policy::HostingPolicy;
    use crate::request::OperatorId;
    use mmog_util::geo::{DistanceClass, GeoPoint};

    fn center(id: u32, lat: f64, lon: f64, machines: u32, policy: HostingPolicy) -> DataCenter {
        DataCenter::new(DataCenterSpec {
            id: DataCenterId(id),
            name: format!("dc{id}"),
            country: "X".into(),
            continent: "Y".into(),
            location: GeoPoint::new(lat, lon),
            machines,
            machine_capacity: DataCenterSpec::default_machine_capacity(),
            policy,
        })
    }

    fn cpu_req(amount: f64, tolerance: DistanceClass) -> ResourceRequest {
        ResourceRequest::new(
            OperatorId(1),
            ResourceVector::new(amount, 0.0, 0.0, 0.0),
            GeoPoint::new(50.0, 10.0),
            tolerance,
        )
    }

    #[test]
    fn grants_at_least_the_requested_amount() {
        // Criterion 1: "the offer includes at least the requested
        // amounts" — bulk rounding grants upward.
        let mut centers = vec![center(0, 50.0, 10.0, 10, HostingPolicy::hp(5))];
        let out = match_request(
            &mut centers,
            &cpu_req(1.0, DistanceClass::VeryFar),
            SimTime::ZERO,
        );
        assert!(out.fully_met());
        let granted = out.granted().cpu;
        assert!(granted >= 1.0);
        assert!((granted - 1.11).abs() < 1e-9, "3 bulks of 0.37: {granted}");
    }

    #[test]
    fn distance_filter_respects_tolerance() {
        // One center far away: SameLocation tolerance finds nothing.
        let mut centers = vec![center(0, 0.0, 0.0, 10, HostingPolicy::hp(5))];
        let out = match_request(
            &mut centers,
            &cpu_req(1.0, DistanceClass::SameLocation),
            SimTime::ZERO,
        );
        assert!(out.grants.is_empty());
        assert!((out.unmet.cpu - 1.0).abs() < 1e-9);
        // VeryFar admits it.
        let out = match_request(
            &mut centers,
            &cpu_req(1.0, DistanceClass::VeryFar),
            SimTime::ZERO,
        );
        assert!(out.fully_met());
    }

    #[test]
    fn finer_granularity_preferred_over_distance() {
        // Near center with coarse CPU bulk vs far center with fine bulk:
        // the matcher must pick the fine one first (Sec. V-E's East-coast
        // penalty).
        let mut centers = vec![
            center(0, 50.0, 10.0, 10, HostingPolicy::hp(7)), // near, coarse (1.11)
            center(1, 50.0, 40.0, 10, HostingPolicy::hp(3)), // ~2100km, fine (0.22)
        ];
        let out = match_request(
            &mut centers,
            &cpu_req(0.4, DistanceClass::VeryFar),
            SimTime::ZERO,
        );
        assert_eq!(out.grants.len(), 1);
        assert_eq!(
            out.grants[0].center_index, 1,
            "fine-grained center must win"
        );
    }

    #[test]
    fn shorter_time_bulk_breaks_granularity_ties() {
        let mut centers = vec![
            center(0, 50.0, 10.0, 10, HostingPolicy::hp(9)), // 0.37 / 720 min
            center(1, 50.0, 10.5, 10, HostingPolicy::hp(5)), // 0.37 / 180 min
        ];
        let out = match_request(
            &mut centers,
            &cpu_req(0.3, DistanceClass::VeryFar),
            SimTime::ZERO,
        );
        assert_eq!(out.grants[0].center_index, 1, "shorter lease must win");
    }

    #[test]
    fn closest_breaks_full_ties() {
        let mut centers = vec![
            center(0, 50.0, 20.0, 10, HostingPolicy::hp(5)), // ~700 km
            center(1, 50.0, 10.1, 10, HostingPolicy::hp(5)), // ~7 km
        ];
        let out = match_request(
            &mut centers,
            &cpu_req(0.3, DistanceClass::VeryFar),
            SimTime::ZERO,
        );
        assert_eq!(out.grants[0].center_index, 1, "closest must win ties");
    }

    #[test]
    fn spills_across_centers_when_first_is_full() {
        // First-ranked center too small: remainder goes to the next.
        let mut centers = vec![
            center(0, 50.0, 10.0, 1, HostingPolicy::hp(3)), // fine but tiny (1.2 CPU)
            center(1, 50.0, 11.0, 10, HostingPolicy::hp(5)),
        ];
        let out = match_request(
            &mut centers,
            &cpu_req(3.0, DistanceClass::VeryFar),
            SimTime::ZERO,
        );
        assert!(out.fully_met(), "unmet: {}", out.unmet);
        assert_eq!(out.grants.len(), 2);
        assert_eq!(out.grants[0].center_index, 0);
        assert_eq!(out.grants[1].center_index, 1);
        // The tiny center granted whole bulks only.
        let g0 = out.grants[0].amounts.cpu;
        assert!(
            (g0 / 0.22).fract().abs() < 1e-6,
            "grant {g0} not on bulk grid"
        );
    }

    #[test]
    fn reports_unmet_when_everything_is_full() {
        let mut centers = vec![center(0, 50.0, 10.0, 1, HostingPolicy::hp(5))];
        let out = match_request(
            &mut centers,
            &cpu_req(100.0, DistanceClass::VeryFar),
            SimTime::ZERO,
        );
        assert!(!out.fully_met());
        assert!(out.unmet.cpu > 90.0);
    }

    #[test]
    fn zero_request_matches_nothing() {
        let mut centers = vec![center(0, 50.0, 10.0, 10, HostingPolicy::hp(5))];
        let out = match_request(
            &mut centers,
            &cpu_req(0.0, DistanceClass::VeryFar),
            SimTime::ZERO,
        );
        assert!(out.grants.is_empty());
        assert!(out.fully_met());
    }

    #[test]
    fn multi_resource_request_quantised_per_type() {
        let mut centers = vec![center(0, 50.0, 10.0, 10, HostingPolicy::hp(1))];
        let req = ResourceRequest::new(
            OperatorId(1),
            ResourceVector::new(0.3, 1.0, 1.0, 0.1),
            GeoPoint::new(50.0, 10.0),
            DistanceClass::VeryFar,
        );
        let out = match_request(&mut centers, &req, SimTime::ZERO);
        assert!(out.fully_met());
        let g = out.granted();
        assert!((g.cpu - 0.5).abs() < 1e-9); // 2 × 0.25
        assert!((g.memory - 1.0).abs() < 1e-9); // n/a bulk → exact
        assert!((g.ext_net_in - 6.0).abs() < 1e-9); // one huge inbound bulk
        assert!((g.ext_net_out - 0.33).abs() < 1e-9);
    }

    #[test]
    fn down_center_skipped_with_unavailable_rejection() {
        let mut centers = vec![
            center(0, 50.0, 10.0, 10, HostingPolicy::hp(3)), // finest, but down
            center(1, 50.0, 11.0, 10, HostingPolicy::hp(5)),
        ];
        let _ = centers[0].fail();
        let out = match_request(
            &mut centers,
            &cpu_req(1.0, DistanceClass::VeryFar),
            SimTime::ZERO,
        );
        assert!(out.fully_met(), "the surviving center covers the request");
        assert!(out.grants.iter().all(|g| g.center_index == 1));
        assert!(out
            .rejections
            .iter()
            .any(|r| r.center_index == 0 && r.reason == RejectReason::Unavailable));
        let mut totals = RejectionTotals::default();
        for r in &out.rejections {
            totals.add(r.reason);
        }
        assert_eq!(totals.unavailable, 1);
        assert_eq!(totals.total(), out.rejections.len() as u64);
    }

    #[test]
    fn negative_amounts_treated_as_zero() {
        let mut centers = vec![center(0, 50.0, 10.0, 10, HostingPolicy::hp(5))];
        let req = ResourceRequest::new(
            OperatorId(1),
            ResourceVector::new(-5.0, 0.0, 0.0, 0.0),
            GeoPoint::new(50.0, 10.0),
            DistanceClass::VeryFar,
        );
        let out = match_request(&mut centers, &req, SimTime::ZERO);
        assert!(out.grants.is_empty());
        assert!(out.fully_met());
    }
}
