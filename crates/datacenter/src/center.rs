//! Data centers: machine pools, capacity accounting and lease ledgers.
//!
//! Sec. II-B: "each data center consists of a single cluster of
//! computing resources, and … a resource owner (hoster) possesses only
//! one data center. … The allocated resources are reserved for MMOG
//! execution for the whole duration of the game operator's request,
//! i.e., task preemption or migration are not supported." The time bulk
//! of the hosting policy sets the earliest release: Sec. V-B notes "the
//! deallocation of resources was allowed only at least six hours after
//! the start of the allocation".

use crate::policy::HostingPolicy;
use crate::request::OperatorId;
use crate::resource::ResourceVector;
use mmog_util::geo::GeoPoint;
use mmog_util::time::SimTime;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide availability-change epoch. Bumped whenever any center's
/// availability state changes ([`DataCenter::fail`],
/// [`DataCenter::repair`], [`DataCenter::degrade`]), so cached matcher
/// views ([`crate::matching::CandidateIndex`]) know when their
/// availability-dependent filtering is stale. The epoch is a pure
/// invalidation signal: a spurious bump (e.g. from an unrelated center
/// set in another test) only costs a redundant refresh, never changes a
/// match result, so determinism is unaffected. It does move the
/// memo-replay *counts* (a spuriously invalidated step runs the full
/// no-op walk instead of replaying), which is why skip counters and the
/// `match_skip_rate` series are classified as timing, never semantic.
static AVAIL_EPOCH: AtomicU64 = AtomicU64::new(0);

/// Current value of the global availability epoch.
#[must_use]
pub fn availability_epoch() -> u64 {
    AVAIL_EPOCH.load(Ordering::Relaxed)
}

fn bump_availability_epoch() {
    AVAIL_EPOCH.fetch_add(1, Ordering::Relaxed);
}

/// Identifier of a data center (hoster).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DataCenterId(pub u32);

/// Identifier of a lease within one data center.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LeaseId(pub u64);

/// Static description of one data center.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataCenterSpec {
    /// Identifier.
    pub id: DataCenterId,
    /// Display name (e.g. "US East (1)").
    pub name: String,
    /// Country, for the Table III inventory.
    pub country: String,
    /// Continent, for the Table III inventory.
    pub continent: String,
    /// Geographic location (drives the latency-tolerance matching).
    pub location: GeoPoint,
    /// Machine count.
    pub machines: u32,
    /// Per-machine capacity in units. Sec. V-A: "Each machine … is
    /// capable of handling at least one game server at full load."
    pub machine_capacity: ResourceVector,
    /// The hosting policy in force.
    pub policy: HostingPolicy,
}

impl DataCenterSpec {
    /// Total capacity: machines × per-machine capacity.
    #[must_use]
    pub fn capacity(&self) -> ResourceVector {
        self.machine_capacity * f64::from(self.machines)
    }

    /// The default per-machine capacity: one game-server unit of CPU
    /// and outbound bandwidth with headroom, plus the memory and
    /// inbound bandwidth a full server needs.
    #[must_use]
    pub fn default_machine_capacity() -> ResourceVector {
        ResourceVector::new(1.2, 4.0, 6.0, 1.2)
    }
}

/// A granted lease.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lease {
    /// Lease identifier (unique within the center).
    pub id: LeaseId,
    /// The operator holding the lease.
    pub operator: OperatorId,
    /// Amounts granted (already bulk-rounded).
    pub amounts: ResourceVector,
    /// Grant time.
    pub start: SimTime,
    /// Earliest release time (`start + time bulk`).
    pub earliest_release: SimTime,
}

/// Availability state of a data center (the fault plane's state
/// machine). With fault injection disabled every center stays [`Up`]
/// forever and the accounting below is exactly the pre-fault-plane
/// arithmetic.
///
/// [`Up`]: Availability::Up
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum Availability {
    /// Fully operational at nominal capacity.
    #[default]
    Up,
    /// Operational at a fraction of nominal capacity. Existing leases
    /// keep running (even if they now exceed the usable pool — the free
    /// pool just clamps to zero); new grants see the reduced capacity.
    Degraded {
        /// Usable fraction of nominal capacity in `[0, 1]`.
        fraction: f64,
    },
    /// Full outage: zero usable capacity, no grants, all leases revoked
    /// when the outage struck.
    Down,
}

/// A data center with live allocation state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataCenter {
    /// Static description.
    pub spec: DataCenterSpec,
    allocated: ResourceVector,
    leases: Vec<Lease>,
    /// Compact `(operator, cpu)` mirror of `leases`, index-for-index:
    /// the engine's per-tick usage-attribution walk streams 16 bytes
    /// per lease from here instead of pulling whole `Lease` records
    /// through the cache. Every `leases` mutation updates both.
    lease_cpu: Vec<(u32, f64)>,
    next_lease: u64,
    availability: Availability,
}

impl DataCenter {
    /// Wraps a spec with empty allocation state.
    #[must_use]
    pub fn new(spec: DataCenterSpec) -> Self {
        Self {
            spec,
            allocated: ResourceVector::ZERO,
            leases: Vec::new(),
            lease_cpu: Vec::new(),
            next_lease: 0,
            availability: Availability::Up,
        }
    }

    /// Currently allocated totals.
    #[must_use]
    pub fn allocated(&self) -> ResourceVector {
        self.allocated
    }

    /// Current availability state.
    #[must_use]
    pub fn availability(&self) -> Availability {
        self.availability
    }

    /// Whether the center is in full outage ([`Availability::Down`]).
    /// The live telemetry tap counts down centers with this instead of
    /// matching on the state machine at every call site.
    #[must_use]
    pub fn is_down(&self) -> bool {
        matches!(self.availability, Availability::Down)
    }

    /// Capacity usable in the current availability state.
    #[must_use]
    pub fn effective_capacity(&self) -> ResourceVector {
        match self.availability {
            // `Up` returns nominal capacity directly (not `× 1.0`) so
            // unfaulted runs reproduce the historical float math
            // bit-for-bit.
            Availability::Up => self.spec.capacity(),
            Availability::Degraded { fraction } => self.spec.capacity() * fraction,
            Availability::Down => ResourceVector::ZERO,
        }
    }

    /// Remaining free capacity (under the effective, not nominal,
    /// capacity — a degraded center offers less, a down center nothing).
    #[must_use]
    pub fn free(&self) -> ResourceVector {
        (self.effective_capacity() - self.allocated).clamp_non_negative()
    }

    /// Full outage: the center goes [`Availability::Down`] and every
    /// lease is revoked (leases are center-local and cannot migrate out
    /// of a failed cluster). Returns the revoked leases so callers can
    /// notify their holders; the ids are retired and will never be
    /// reissued or release-able again.
    pub fn fail(&mut self) -> Vec<Lease> {
        self.availability = Availability::Down;
        self.allocated = ResourceVector::ZERO;
        bump_availability_epoch();
        self.lease_cpu.clear();
        std::mem::take(&mut self.leases)
    }

    /// Repair: the center returns to [`Availability::Up`] at nominal
    /// capacity. Leases revoked by a prior [`fail`] stay revoked.
    ///
    /// [`fail`]: Self::fail
    pub fn repair(&mut self) {
        self.availability = Availability::Up;
        bump_availability_epoch();
    }

    /// Partial degradation to `fraction` of nominal capacity (clamped
    /// to `[0, 1]`). Existing leases keep running.
    pub fn degrade(&mut self, fraction: f64) {
        self.availability = Availability::Degraded {
            fraction: fraction.clamp(0.0, 1.0),
        };
        bump_availability_epoch();
    }

    /// Force-revokes one lease regardless of its earliest-release time
    /// (the fault plane's mid-term reclamation). Returns the revoked
    /// lease, or `None` when the id is not live — so a revoked or
    /// released lease can never be double-released.
    pub fn revoke(&mut self, lease: LeaseId) -> Option<Lease> {
        let idx = self.leases.iter().position(|l| l.id == lease)?;
        let l = self.leases.swap_remove(idx);
        self.lease_cpu.swap_remove(idx);
        self.allocated = (self.allocated - l.amounts).clamp_non_negative();
        Some(l)
    }

    /// Revokes the oldest active lease (ties broken by id). Returns
    /// `None` when the center holds no leases.
    pub fn revoke_oldest(&mut self) -> Option<Lease> {
        let oldest = self
            .leases
            .iter()
            .min_by_key(|l| (l.start, l.id))
            .map(|l| l.id)?;
        self.revoke(oldest)
    }

    /// Active leases.
    #[must_use]
    pub fn leases(&self) -> &[Lease] {
        &self.leases
    }

    /// Compact `(operator id, cpu)` view of the active leases, in the
    /// same order as [`leases`] — the hot input of the engine's
    /// per-tick usage attribution.
    ///
    /// [`leases`]: Self::leases
    #[must_use]
    pub fn lease_cpu(&self) -> &[(u32, f64)] {
        &self.lease_cpu
    }

    /// Grants a lease for exactly `amounts` (caller must have
    /// bulk-rounded; [`crate::matching`] does). Returns `None` when the
    /// amounts do not fit the free capacity or are all zero.
    pub fn grant(
        &mut self,
        operator: OperatorId,
        amounts: ResourceVector,
        now: SimTime,
    ) -> Option<LeaseId> {
        if self.availability == Availability::Down {
            return None;
        }
        if amounts.is_negligible(1e-9) {
            return None;
        }
        if !amounts.fits_within(&self.free(), 1e-9) {
            return None;
        }
        let id = LeaseId(self.next_lease);
        self.next_lease += 1;
        self.allocated += amounts;
        self.leases.push(Lease {
            id,
            operator,
            amounts,
            start: now,
            earliest_release: now + self.spec.policy.time_bulk,
        });
        self.lease_cpu.push((operator.0, amounts.cpu));
        Some(id)
    }

    /// Releases one lease. Fails (returns `false`, leaving the lease in
    /// place) before its earliest release time — the time bulk is a
    /// contractual minimum.
    pub fn release(&mut self, lease: LeaseId, now: SimTime) -> bool {
        let Some(idx) = self.leases.iter().position(|l| l.id == lease) else {
            return false;
        };
        if now < self.leases[idx].earliest_release {
            return false;
        }
        let l = self.leases.swap_remove(idx);
        self.lease_cpu.swap_remove(idx);
        self.allocated = (self.allocated - l.amounts).clamp_non_negative();
        true
    }

    /// Leases of one operator that may be released at `now`, sorted by
    /// grant time (oldest first).
    #[must_use]
    pub fn releasable(&self, operator: OperatorId, now: SimTime) -> Vec<Lease> {
        let mut out: Vec<Lease> = self
            .leases
            .iter()
            .filter(|l| l.operator == operator && now >= l.earliest_release)
            .copied()
            .collect();
        out.sort_by_key(|l| l.start);
        out
    }

    /// Total amounts held by one operator.
    #[must_use]
    pub fn held_by(&self, operator: OperatorId) -> ResourceVector {
        self.leases
            .iter()
            .filter(|l| l.operator == operator)
            .fold(ResourceVector::ZERO, |acc, l| acc + l.amounts)
    }

    /// Distance to a point, km.
    #[must_use]
    pub fn distance_km(&self, from: &GeoPoint) -> f64 {
        self.spec.location.distance_km(from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmog_util::time::SimDuration;

    fn spec(machines: u32, policy: HostingPolicy) -> DataCenterSpec {
        DataCenterSpec {
            id: DataCenterId(0),
            name: "test".into(),
            country: "NL".into(),
            continent: "Europe".into(),
            location: GeoPoint::new(52.37, 4.9),
            machines,
            machine_capacity: DataCenterSpec::default_machine_capacity(),
            policy,
        }
    }

    fn dc() -> DataCenter {
        DataCenter::new(spec(10, HostingPolicy::hp(5)))
    }

    #[test]
    fn capacity_scales_with_machines() {
        let c = dc();
        let cap = c.spec.capacity();
        assert!((cap.cpu - 12.0).abs() < 1e-9);
        assert!((cap.memory - 40.0).abs() < 1e-9);
        assert_eq!(c.free(), cap);
    }

    #[test]
    fn grant_reduces_free_capacity() {
        let mut c = dc();
        let amounts = ResourceVector::new(1.11, 2.0, 0.0, 0.0);
        let lease = c.grant(OperatorId(1), amounts, SimTime::ZERO).unwrap();
        assert!((c.free().cpu - (12.0 - 1.11)).abs() < 1e-9);
        assert_eq!(c.leases().len(), 1);
        assert_eq!(c.leases()[0].id, lease);
        assert_eq!(c.held_by(OperatorId(1)), amounts);
        assert_eq!(c.held_by(OperatorId(2)), ResourceVector::ZERO);
    }

    #[test]
    fn grant_rejects_over_capacity() {
        let mut c = dc();
        let too_much = ResourceVector::new(1000.0, 0.0, 0.0, 0.0);
        assert!(c.grant(OperatorId(1), too_much, SimTime::ZERO).is_none());
        assert!(c
            .grant(OperatorId(1), ResourceVector::ZERO, SimTime::ZERO)
            .is_none());
        assert!(c.leases().is_empty());
    }

    #[test]
    fn release_respects_time_bulk() {
        let mut c = dc(); // HP-5: 180-minute time bulk
        let amounts = ResourceVector::new(0.37, 2.0, 0.0, 0.0);
        let lease = c.grant(OperatorId(1), amounts, SimTime::ZERO).unwrap();
        // Too early: one minute before the bulk expires.
        let early = SimTime::from_minutes(178);
        assert!(!c.release(lease, early));
        assert_eq!(c.leases().len(), 1);
        // On time.
        let due = SimTime::from_minutes(180);
        assert!(c.release(lease, due));
        assert!(c.leases().is_empty());
        assert_eq!(c.free(), c.spec.capacity());
    }

    #[test]
    fn release_unknown_lease_is_false() {
        let mut c = dc();
        assert!(!c.release(LeaseId(77), SimTime::from_days(10)));
    }

    #[test]
    fn releasable_filters_by_operator_and_time() {
        let mut c = dc();
        let a = ResourceVector::new(0.37, 2.0, 0.0, 0.0);
        let l1 = c.grant(OperatorId(1), a, SimTime::ZERO).unwrap();
        let _l2 = c.grant(OperatorId(2), a, SimTime::ZERO).unwrap();
        let l3 = c
            .grant(OperatorId(1), a, SimTime::ZERO + SimDuration::from_hours(1))
            .unwrap();
        let now = SimTime::from_hours(3);
        let rel = c.releasable(OperatorId(1), now);
        // Only the first lease of operator 1 has matured at t=3h.
        assert_eq!(rel.len(), 1);
        assert_eq!(rel[0].id, l1);
        let later = SimTime::from_hours(4);
        let rel = c.releasable(OperatorId(1), later);
        assert_eq!(rel.len(), 2);
        assert_eq!(rel[0].id, l1, "oldest first");
        assert_eq!(rel[1].id, l3);
    }

    #[test]
    fn outage_revokes_leases_and_blocks_grants() {
        let mut c = dc();
        let a = ResourceVector::new(0.37, 2.0, 0.0, 0.0);
        let l1 = c.grant(OperatorId(1), a, SimTime::ZERO).unwrap();
        let _l2 = c.grant(OperatorId(2), a, SimTime::ZERO).unwrap();
        let lost = c.fail();
        assert_eq!(lost.len(), 2);
        assert_eq!(c.availability(), Availability::Down);
        assert_eq!(c.allocated(), ResourceVector::ZERO);
        assert_eq!(c.free(), ResourceVector::ZERO, "down center offers nothing");
        // Down centers never grant.
        assert!(c.grant(OperatorId(1), a, SimTime::ZERO).is_none());
        // Revoked leases can never be double-released or re-revoked.
        assert!(!c.release(l1, SimTime::from_days(10)));
        assert!(c.revoke(l1).is_none());
        // Repair restores capacity but not the revoked leases.
        c.repair();
        assert_eq!(c.availability(), Availability::Up);
        assert_eq!(c.free(), c.spec.capacity());
        assert!(c.leases().is_empty());
        // Fresh grants get fresh ids: no id reuse after an outage.
        let l3 = c.grant(OperatorId(1), a, SimTime::ZERO).unwrap();
        assert!(l3 != l1);
    }

    #[test]
    fn degradation_shrinks_free_pool_but_keeps_leases() {
        let mut c = dc(); // capacity 12 CPU
        let a = ResourceVector::new(7.4, 2.0, 0.0, 0.0);
        let lease = c.grant(OperatorId(1), a, SimTime::ZERO).unwrap();
        c.degrade(0.5); // effective 6 CPU < 7.4 allocated
        assert_eq!(c.availability(), Availability::Degraded { fraction: 0.5 });
        assert_eq!(c.leases().len(), 1, "existing leases keep running");
        assert_eq!(c.free().cpu, 0.0, "free clamps at zero, never negative");
        // A new grant cannot fit the degraded pool.
        assert!(c.grant(OperatorId(2), a, SimTime::ZERO).is_none());
        // Matured release still works while degraded.
        assert!(c.release(lease, SimTime::from_days(1)));
        assert!((c.free().cpu - 6.0).abs() < 1e-9);
        c.repair();
        assert_eq!(c.free(), c.spec.capacity());
        // The clamp keeps pathological fractions inside [0, 1].
        c.degrade(7.0);
        assert_eq!(c.availability(), Availability::Degraded { fraction: 1.0 });
    }

    #[test]
    fn revoke_oldest_ignores_time_bulk() {
        let mut c = dc(); // HP-5: 180-minute time bulk
        let a = ResourceVector::new(0.37, 2.0, 0.0, 0.0);
        let l1 = c.grant(OperatorId(1), a, SimTime::ZERO).unwrap();
        let _l2 = c.grant(OperatorId(2), a, SimTime::from_minutes(2)).unwrap();
        // Well before earliest_release, revocation still removes it.
        let revoked = c.revoke_oldest().unwrap();
        assert_eq!(revoked.id, l1, "oldest lease goes first");
        assert_eq!(c.leases().len(), 1);
        assert_eq!(c.held_by(OperatorId(1)), ResourceVector::ZERO);
        // Empty center: nothing to revoke.
        let mut empty = dc();
        assert!(empty.revoke_oldest().is_none());
    }

    #[test]
    fn many_grants_fill_capacity_exactly() {
        let mut c = DataCenter::new(spec(1, HostingPolicy::hp(5)));
        let unit = ResourceVector::new(0.37, 2.0, 0.0, 0.0);
        let mut granted = 0;
        while c.grant(OperatorId(1), unit, SimTime::ZERO).is_some() {
            granted += 1;
        }
        // 1.2 CPU / 0.37 = 3 grants (memory: 4/2 = 2 → binding at 2).
        assert_eq!(granted, 2, "memory should bind first");
        assert!(c.free().memory < 2.0);
    }
}
