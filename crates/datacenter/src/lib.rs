//! The data-center model of Sections II-B/II-C and V-A.
//!
//! "The hosting platform considered in our work consists of data centers
//! scattered around the world. … The game operators submit resource
//! requests to the data center, specifying the type and number of
//! resources desired, and the duration for which the resources are
//! needed."
//!
//! - [`resource`] — the four resource types (CPU, memory, ExtNet[in],
//!   ExtNet[out]) and dense resource vectors measured in the paper's
//!   abstract "units" (one unit = the requirement of a fully loaded
//!   RuneScape game server).
//! - [`policy`] — hosting policies: the resource bulk ("the minimum
//!   number of resources that can be allocated for one request") and the
//!   time bulk ("the minimum duration for which a resource allocation
//!   can be made"), including the HP-1…HP-11 presets of Table IV.
//! - [`center`] — data centers: geo-located machine pools with lease
//!   ledgers enforcing the time bulk (no early release), plus the
//!   fault plane's availability state machine (`Up`/`Degraded`/`Down`)
//!   and revocation-safe lease bookkeeping.
//! - [`locations`] — the Table III experimental platform: ten data
//!   centers over four continents and seven countries.
//! - [`request`] — operator resource requests with latency tolerance.
//! - [`matching`] — the request–offer matching mechanism with the three
//!   criteria of Sec. II-C: sufficient amounts, closest admissible
//!   location, finest-grained/shortest-lease policies first.
//! - [`topology`] — the scenario engine's mutable network view:
//!   center↔center partitions and per-link distance inflation layered
//!   on top of the static geometry (PR 8).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod center;
pub mod locations;
pub mod matching;
pub mod policy;
pub mod request;
pub mod resource;
pub mod topology;

pub use center::{Availability, DataCenter, DataCenterId, DataCenterSpec, Lease, LeaseId};
pub use locations::table3_centers;
pub use matching::{match_request, MatchOutcome, RejectReason, Rejection, RejectionTotals};
pub use policy::HostingPolicy;
pub use request::{OperatorId, ResourceRequest};
pub use resource::{ResourceType, ResourceVector};
pub use topology::Topology;
