//! Hosting policies — resource and time bulks (Sec. II-B, Table IV).
//!
//! "We define the **resource bulk** as the minimum number of resources
//! that can be allocated for one request, expressed as the multiple of a
//! minimal resource size. Similarly, we define the **time bulk** as the
//! minimum duration for which a resource allocation can be made. … A
//! space-time policy expresses the sizes for the resource and of the
//! time bulks."
//!
//! Table IV lists the eleven policies used in Section V. An `n/a` bulk
//! means the data center does not quantise that resource type — requests
//! for it are granted exactly.

use crate::resource::{ResourceType, ResourceVector};
use mmog_util::time::SimDuration;
use serde::{Deserialize, Serialize};

/// A data center's space-time renting policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostingPolicy {
    /// Policy name ("HP-1" … "HP-11" or custom).
    pub name: String,
    /// Resource bulk per type (`None` = not quantised / exact grants).
    pub bulks: [Option<f64>; 4],
    /// Minimum lease duration.
    pub time_bulk: SimDuration,
}

impl HostingPolicy {
    /// Creates a custom policy.
    ///
    /// # Panics
    /// Panics if any bulk is non-positive or the time bulk is zero.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        cpu: Option<f64>,
        memory: Option<f64>,
        ext_net_in: Option<f64>,
        ext_net_out: Option<f64>,
        time_bulk: SimDuration,
    ) -> Self {
        let bulks = [cpu, memory, ext_net_in, ext_net_out];
        assert!(
            bulks.iter().flatten().all(|b| *b > 0.0),
            "resource bulks must be positive"
        );
        assert!(!time_bulk.is_zero(), "time bulk must be positive");
        Self {
            name: name.into(),
            bulks,
            time_bulk,
        }
    }

    /// The Table IV policy `HP-n` for `n` in `1..=11`.
    ///
    /// # Panics
    /// Panics for `n` outside `1..=11`.
    #[must_use]
    pub fn hp(n: usize) -> Self {
        let minutes = |m: u64| SimDuration::from_minutes_ceil(m);
        match n {
            1 => Self::new(
                "HP-1",
                Some(0.25),
                None,
                Some(6.0),
                Some(0.33),
                minutes(360),
            ),
            2 => Self::new("HP-2", Some(0.25), None, Some(4.0), Some(0.5), minutes(360)),
            3 => Self::new("HP-3", Some(0.22), Some(2.0), None, None, minutes(180)),
            4 => Self::new("HP-4", Some(0.28), Some(2.0), None, None, minutes(180)),
            5 => Self::new("HP-5", Some(0.37), Some(2.0), None, None, minutes(180)),
            6 => Self::new("HP-6", Some(0.56), Some(2.0), None, None, minutes(180)),
            7 => Self::new("HP-7", Some(1.11), Some(2.0), None, None, minutes(180)),
            8 => Self::new("HP-8", Some(0.37), Some(2.0), None, None, minutes(360)),
            9 => Self::new("HP-9", Some(0.37), Some(2.0), None, None, minutes(720)),
            10 => Self::new("HP-10", Some(0.37), Some(2.0), None, None, minutes(1440)),
            11 => Self::new("HP-11", Some(0.37), Some(2.0), None, None, minutes(2880)),
            _ => panic!("Table IV defines HP-1..HP-11, got HP-{n}"),
        }
    }

    /// All eleven Table IV policies.
    #[must_use]
    pub fn table4() -> Vec<Self> {
        (1..=11).map(Self::hp).collect()
    }

    /// Bulk for one resource type.
    #[must_use]
    pub fn bulk(&self, r: ResourceType) -> Option<f64> {
        let idx = ResourceType::ALL
            .iter()
            .position(|t| *t == r)
            .expect("ALL is complete");
        self.bulks[idx]
    }

    /// Rounds one amount **up** to the bulk grid (requests can only be
    /// granted in whole bulks).
    #[must_use]
    pub fn round_up(&self, r: ResourceType, amount: f64) -> f64 {
        if amount <= 0.0 {
            return 0.0;
        }
        match self.bulk(r) {
            None => amount,
            Some(b) => (amount / b).ceil() * b,
        }
    }

    /// Rounds one amount **down** to the bulk grid (what can be carved
    /// out of a limited free pool).
    #[must_use]
    pub fn round_down(&self, r: ResourceType, amount: f64) -> f64 {
        if amount <= 0.0 {
            return 0.0;
        }
        match self.bulk(r) {
            None => amount,
            Some(b) => (amount / b + 1e-9).floor() * b,
        }
    }

    /// Rounds a whole request up to the bulk grid.
    #[must_use]
    pub fn round_request(&self, req: &ResourceVector) -> ResourceVector {
        req.map(|r, v| self.round_up(r, v))
    }

    /// Granularity score used by the matching mechanism's third
    /// criterion ("selects first the finer grained resources"): the CPU
    /// bulk, with non-quantised CPU counting as perfectly fine (0).
    #[must_use]
    pub fn granularity(&self) -> f64 {
        self.bulk(ResourceType::Cpu).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_matches_paper_values() {
        let hp1 = HostingPolicy::hp(1);
        assert_eq!(hp1.bulk(ResourceType::Cpu), Some(0.25));
        assert_eq!(hp1.bulk(ResourceType::Memory), None);
        assert_eq!(hp1.bulk(ResourceType::ExtNetIn), Some(6.0));
        assert_eq!(hp1.bulk(ResourceType::ExtNetOut), Some(0.33));
        assert_eq!(hp1.time_bulk.minutes(), 360);

        let hp7 = HostingPolicy::hp(7);
        assert_eq!(hp7.bulk(ResourceType::Cpu), Some(1.11));
        assert_eq!(hp7.time_bulk.minutes(), 180);

        let hp11 = HostingPolicy::hp(11);
        assert_eq!(hp11.time_bulk.minutes(), 2880);
        assert_eq!(HostingPolicy::table4().len(), 11);
    }

    #[test]
    #[should_panic(expected = "HP-1..HP-11")]
    fn hp_out_of_range_panics() {
        let _ = HostingPolicy::hp(12);
    }

    #[test]
    fn round_up_quantises_to_bulk() {
        let hp5 = HostingPolicy::hp(5); // CPU bulk 0.37
        assert!((hp5.round_up(ResourceType::Cpu, 1.0) - 1.11).abs() < 1e-9);
        assert!((hp5.round_up(ResourceType::Cpu, 0.37) - 0.37).abs() < 1e-9);
        assert_eq!(hp5.round_up(ResourceType::Cpu, 0.0), 0.0);
        assert_eq!(hp5.round_up(ResourceType::Cpu, -3.0), 0.0);
        // Non-quantised type passes through.
        assert_eq!(hp5.round_up(ResourceType::ExtNetIn, 1.234), 1.234);
    }

    #[test]
    fn round_down_never_exceeds() {
        let hp3 = HostingPolicy::hp(3); // CPU bulk 0.22
        let down = hp3.round_down(ResourceType::Cpu, 1.0);
        assert!(down <= 1.0);
        assert!((down - 0.88).abs() < 1e-9);
        // Exact multiples survive (floating-point slack).
        assert!((hp3.round_down(ResourceType::Cpu, 0.66) - 0.66).abs() < 1e-9);
        assert_eq!(hp3.round_down(ResourceType::Cpu, -1.0), 0.0);
    }

    #[test]
    fn round_request_whole_vector() {
        let hp1 = HostingPolicy::hp(1);
        let req = ResourceVector::new(0.3, 1.5, 1.0, 0.1);
        let rounded = hp1.round_request(&req);
        assert!((rounded.cpu - 0.5).abs() < 1e-9);
        assert_eq!(rounded.memory, 1.5); // n/a bulk
        assert!((rounded.ext_net_in - 6.0).abs() < 1e-9);
        assert!((rounded.ext_net_out - 0.33).abs() < 1e-9);
        // Rounding is idempotent.
        let again = hp1.round_request(&rounded);
        assert!((again.cpu - rounded.cpu).abs() < 1e-9);
        assert!((again.ext_net_in - rounded.ext_net_in).abs() < 1e-9);
    }

    #[test]
    fn granularity_orders_hp3_to_hp7() {
        // HP-3 (0.22) finest … HP-7 (1.11) coarsest — the Figure 11 axis.
        let g: Vec<f64> = (3..=7)
            .map(|n| HostingPolicy::hp(n).granularity())
            .collect();
        for w in g.windows(2) {
            assert!(w[0] < w[1], "{w:?}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bulk_rejected() {
        let _ = HostingPolicy::new(
            "bad",
            Some(0.0),
            None,
            None,
            None,
            SimDuration::from_hours(1),
        );
    }

    #[test]
    #[should_panic(expected = "time bulk")]
    fn zero_time_bulk_rejected() {
        let _ = HostingPolicy::new("bad", Some(1.0), None, None, None, SimDuration::ZERO);
    }
}
