//! Property-based tests for policies, centers and matching.

use mmog_datacenter::center::{DataCenter, DataCenterId, DataCenterSpec};
use mmog_datacenter::matching::match_request;
use mmog_datacenter::policy::HostingPolicy;
use mmog_datacenter::request::{OperatorId, ResourceRequest};
use mmog_datacenter::resource::{ResourceType, ResourceVector};
use mmog_util::geo::{DistanceClass, GeoPoint};
use mmog_util::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn any_policy() -> impl Strategy<Value = HostingPolicy> {
    (
        prop::option::of(0.05f64..2.0),
        prop::option::of(0.5f64..4.0),
        prop::option::of(0.5f64..8.0),
        prop::option::of(0.05f64..1.0),
        1u64..3000,
    )
        .prop_map(|(cpu, mem, ni, no, mins)| {
            HostingPolicy::new(
                "prop",
                cpu,
                mem,
                ni,
                no,
                SimDuration::from_minutes_ceil(mins),
            )
        })
}

fn any_amounts() -> impl Strategy<Value = ResourceVector> {
    (0.0f64..20.0, 0.0f64..20.0, 0.0f64..20.0, 0.0f64..20.0)
        .prop_map(|(c, m, i, o)| ResourceVector::new(c, m, i, o))
}

fn center(machines: u32, policy: HostingPolicy) -> DataCenter {
    DataCenter::new(DataCenterSpec {
        id: DataCenterId(0),
        name: "prop".into(),
        country: "X".into(),
        continent: "Y".into(),
        location: GeoPoint::new(50.0, 10.0),
        machines,
        machine_capacity: DataCenterSpec::default_machine_capacity(),
        policy,
    })
}

proptest! {
    #[test]
    fn round_up_is_cover_and_grid_aligned(policy in any_policy(), amount in 0.0f64..50.0) {
        for r in ResourceType::ALL {
            let rounded = policy.round_up(r, amount);
            prop_assert!(rounded + 1e-9 >= amount, "{r}: {rounded} < {amount}");
            if let Some(bulk) = policy.bulk(r) {
                let ratio = rounded / bulk;
                prop_assert!((ratio - ratio.round()).abs() < 1e-6, "{r}: {rounded} off-grid");
                // Never over-covers by a full bulk.
                prop_assert!(rounded < amount + bulk + 1e-9);
            } else {
                prop_assert_eq!(rounded, amount.max(0.0));
            }
        }
    }

    #[test]
    fn round_down_never_exceeds(policy in any_policy(), amount in 0.0f64..50.0) {
        for r in ResourceType::ALL {
            let down = policy.round_down(r, amount);
            prop_assert!(down <= amount + 1e-6);
            prop_assert!(down >= 0.0);
        }
    }

    #[test]
    fn grants_never_exceed_capacity(
        policy in any_policy(),
        machines in 1u32..20,
        requests in prop::collection::vec(any_amounts(), 1..20),
    ) {
        let mut c = center(machines, policy);
        let cap = c.spec.capacity();
        for (i, amounts) in requests.into_iter().enumerate() {
            let _ = c.grant(OperatorId(i as u32), amounts, SimTime::ZERO);
            prop_assert!(c.allocated().fits_within(&cap, 1e-6));
        }
    }

    #[test]
    fn allocation_equals_sum_of_leases(
        policy in any_policy(),
        machines in 1u32..20,
        requests in prop::collection::vec(any_amounts(), 1..15),
    ) {
        let mut c = center(machines, policy);
        for (i, amounts) in requests.into_iter().enumerate() {
            let _ = c.grant(OperatorId(i as u32), amounts, SimTime::ZERO);
        }
        let lease_sum = c
            .leases()
            .iter()
            .fold(ResourceVector::ZERO, |acc, l| acc + l.amounts);
        for r in ResourceType::ALL {
            prop_assert!((lease_sum.get(r) - c.allocated().get(r)).abs() < 1e-6);
        }
    }

    #[test]
    fn release_restores_capacity(
        policy in any_policy(),
        machines in 1u32..20,
        amounts in any_amounts(),
    ) {
        let mut c = center(machines, policy);
        let before = c.free();
        if let Some(lease) = c.grant(OperatorId(0), amounts, SimTime::ZERO) {
            // Wait out any time bulk, then release.
            let later = SimTime::from_days(10);
            prop_assert!(c.release(lease, later));
            for r in ResourceType::ALL {
                prop_assert!((c.free().get(r) - before.get(r)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn matching_covers_request_or_reports_unmet(
        policy in any_policy(),
        machines in 1u32..30,
        amounts in any_amounts(),
    ) {
        let mut centers = vec![center(machines, policy)];
        let req = ResourceRequest::new(
            OperatorId(1),
            amounts,
            GeoPoint::new(50.0, 10.0),
            DistanceClass::VeryFar,
        );
        let out = match_request(&mut centers, &req, SimTime::ZERO);
        let granted = out.granted();
        for r in ResourceType::ALL {
            // granted + unmet >= requested (the offer covers at least the
            // request; bulk rounding may exceed it).
            prop_assert!(
                granted.get(r) + out.unmet.get(r) + 1e-6 >= amounts.get(r),
                "{r}: granted {} + unmet {} < requested {}",
                granted.get(r),
                out.unmet.get(r),
                amounts.get(r)
            );
            // And the grant never exceeds the center's capacity.
            prop_assert!(granted.get(r) <= centers[0].spec.capacity().get(r) + 1e-6);
        }
    }

    /// Lease-ledger invariants under arbitrary fault/repair sequences.
    ///
    /// Ops are integer-coded: 0 grant, 1 fail (outage), 2 repair,
    /// 3 degrade, 4 revoke oldest, 5 release everything releasable.
    /// After every op: the free pool is non-negative, the allocated
    /// total equals the sum of live leases and fits nominal capacity,
    /// a down center never grants, and retired lease ids (revoked,
    /// failed away, or released) can never be released or revoked again.
    #[test]
    fn lease_ledger_survives_fault_sequences(
        policy in any_policy(),
        machines in 1u32..20,
        ops in prop::collection::vec((0u8..6, any_amounts(), 0.05f64..1.2), 1..40),
    ) {
        let mut c = center(machines, policy);
        let nominal = c.spec.capacity();
        let mut retired: Vec<mmog_datacenter::center::LeaseId> = Vec::new();
        let mut seen: Vec<mmog_datacenter::center::LeaseId> = Vec::new();
        let far_future = SimTime::from_days(100);
        for (i, &(code, amounts, fraction)) in ops.iter().enumerate() {
            match code {
                0 => {
                    let down =
                        c.availability() == mmog_datacenter::center::Availability::Down;
                    let granted = c.grant(OperatorId(i as u32), amounts, SimTime::ZERO);
                    if down {
                        prop_assert!(granted.is_none(), "down center granted a lease");
                    }
                    if let Some(id) = granted {
                        prop_assert!(!seen.contains(&id), "lease id {id:?} reissued");
                        seen.push(id);
                    }
                }
                1 => retired.extend(c.fail().iter().map(|l| l.id)),
                2 => c.repair(),
                3 => c.degrade(fraction),
                4 => {
                    if let Some(l) = c.revoke_oldest() {
                        retired.push(l.id);
                    }
                }
                _ => {
                    for l in c.leases().to_vec() {
                        if c.release(l.id, far_future) {
                            retired.push(l.id);
                        }
                    }
                }
            }
            // Free pool never negative, allocation = Σ live leases ≤ nominal.
            let lease_sum = c
                .leases()
                .iter()
                .fold(ResourceVector::ZERO, |acc, l| acc + l.amounts);
            for r in ResourceType::ALL {
                prop_assert!(c.free().get(r) >= 0.0, "negative free {r}");
                prop_assert!(
                    (lease_sum.get(r) - c.allocated().get(r)).abs() < 1e-6,
                    "{r}: ledger {} != allocated {}",
                    lease_sum.get(r),
                    c.allocated().get(r)
                );
            }
            prop_assert!(c.allocated().fits_within(&nominal, 1e-6));
            // Retired ids are dead forever.
            for &id in &retired {
                prop_assert!(!c.release(id, far_future), "retired {id:?} released");
                prop_assert!(c.revoke(id).is_none(), "retired {id:?} re-revoked");
            }
        }
    }

    /// Scenario-plane invariant: after ANY sequence of partitions
    /// (interleaved with link degradations), a single `heal` restores
    /// full pairwise reachability — partitions are component labels,
    /// not destroyed state. Link factors are orthogonal: they survive
    /// the heal and stay symmetric and clamped ≥ 1.0 throughout.
    #[test]
    fn heal_restores_full_reachability_after_any_partition_sequence(
        n in 1usize..12,
        masks in prop::collection::vec(0u64..4096, 1..16),
        links in prop::collection::vec((0usize..12, 0usize..12, 0.25f64..8.0), 0..8),
    ) {
        use mmog_datacenter::topology::Topology;
        let mut topo = Topology::new(n);
        for &mask in &masks {
            topo.partition(mask);
        }
        for &(a, b, f) in &links {
            topo.set_link_factor(a, b, f);
        }
        let components_before = topo.components();
        prop_assert!(components_before >= 1 && components_before <= n);
        let version_before = topo.version();
        topo.heal();
        prop_assert!(topo.version() > version_before);
        prop_assert!(topo.fully_connected());
        prop_assert_eq!(topo.components(), 1);
        for a in 0..n {
            for b in 0..n {
                prop_assert!(topo.reachable(a, b), "heal must reconnect {a}<->{b}");
                // Degradations are not partitions: factors persist
                // through heal, symmetric and never below nominal.
                let f = topo.link_factor(a, b);
                prop_assert!(f >= 1.0, "factor {f} below nominal");
                prop_assert_eq!(f, topo.link_factor(b, a));
            }
        }
    }

    #[test]
    fn matching_prefers_finer_granularity(
        fine_bulk in 0.05f64..0.3,
        coarse_extra in 0.1f64..1.0,
        cpu in 0.05f64..5.0,
    ) {
        let fine = HostingPolicy::new(
            "fine", Some(fine_bulk), None, None, None, SimDuration::from_hours(3));
        let coarse = HostingPolicy::new(
            "coarse", Some(fine_bulk + coarse_extra), None, None, None, SimDuration::from_hours(3));
        // Coarse center is closer; fine must still win.
        let mut centers = vec![center(50, coarse), center(50, fine)];
        centers[1].spec.location = GeoPoint::new(40.0, 30.0);
        let req = ResourceRequest::new(
            OperatorId(1),
            ResourceVector::new(cpu, 0.0, 0.0, 0.0),
            GeoPoint::new(50.0, 10.0),
            DistanceClass::VeryFar,
        );
        let out = match_request(&mut centers, &req, SimTime::ZERO);
        prop_assert!(!out.grants.is_empty());
        prop_assert_eq!(out.grants[0].center_index, 1);
    }

    #[test]
    fn memoized_replay_equals_full_indexed_walk(
        policy in any_policy(),
        machines in 5u32..40,
        demands in prop::collection::vec((any_amounts(), 0u8..4), 1..24),
    ) {
        // The memo's exactness claim, replayed at the matching layer:
        // on byte-identical inputs (same ledger, same availability
        // epoch, same index state) the full CandidateIndex walk is a
        // pure function, so replaying a recorded outcome instead of
        // re-walking can never be observed — grant for grant, ledger
        // for ledger. Random demand/fault sequences drive the pair.
        use mmog_datacenter::matching::{match_request_indexed, CandidateIndex};
        let origin = GeoPoint::new(50.0, 10.0);
        let mut live = vec![center(machines, policy.clone())];
        let mut replay = live.clone();
        let mut live_index = CandidateIndex::new(origin, DistanceClass::VeryFar);
        let mut replay_index = live_index.clone();
        for (i, (amounts, fault)) in demands.iter().enumerate() {
            match fault {
                1 => {
                    let _ = live[0].fail();
                    let _ = replay[0].fail();
                }
                2 => {
                    live[0].repair();
                    replay[0].repair();
                }
                _ => {}
            }
            let req = ResourceRequest::new(
                OperatorId(1),
                *amounts,
                origin,
                DistanceClass::VeryFar,
            );
            let now = SimTime(i as u64);
            let out = match_request_indexed(&mut live_index, &mut live, &req, now);
            let replayed = match_request_indexed(&mut replay_index, &mut replay, &req, now);
            prop_assert_eq!(&out, &replayed, "walk diverged on identical inputs");
            prop_assert_eq!(
                format!("{:?}", live[0].leases()),
                format!("{:?}", replay[0].leases()),
                "ledgers diverged structurally"
            );
        }
    }

    #[test]
    fn match_memo_key_discipline_under_random_sequences(
        t_memo in any_amounts(),
        t_query in any_amounts(),
        epoch in 0u64..4,
        d_epoch in 0u64..3,
        lease_gen in 0u64..4,
        d_gen in 0u64..3,
        topo in prop::option::of(0u64..3),
        d_topo in prop::option::of(0u64..3),
        any_target in any::<bool>(),
        horizon in prop::option::of(1u64..50),
        now in 0u64..60,
    ) {
        // covers() may say yes ONLY when every key matches, the clock
        // is inside the validity horizon, and (unless the memo is
        // any-target) the queried target sits inside the monotone band.
        use mmog_datacenter::matching::MatchMemo;
        let mut memo = MatchMemo::new();
        prop_assert!(!memo.covers(&t_query, epoch, topo, lease_gen, SimTime(now)));
        memo.arm(
            t_memo,
            epoch,
            topo,
            lease_gen,
            any_target,
            horizon.map(SimTime),
        );
        let q_epoch = epoch + d_epoch;
        let q_gen = lease_gen + d_gen;
        let q_topo = d_topo;
        let covered = memo.covers(&t_query, q_epoch, q_topo, q_gen, SimTime(now));
        let keys_match = q_epoch == epoch && q_gen == lease_gen && q_topo == topo;
        let in_horizon = horizon.is_none_or(|h| now < h);
        let in_band = any_target || t_memo.fits_within(&t_query, 0.0);
        prop_assert_eq!(covered, keys_match && in_horizon && in_band);
        // Any invalidation is final until the next arm.
        memo.invalidate();
        prop_assert!(!memo.covers(&t_query, epoch, topo, lease_gen, SimTime(now)));
    }
}
