//! The metrics registry: counters, gauges and fixed-bucket histograms.
//!
//! Recording is lock-free after the first lookup (plain atomic
//! read-modify-writes), so instruments can be hit from inside the
//! `mmog-par` worker pool without serialising the fan-out. Call sites
//! cache the `Arc` handle in a `OnceLock` so the name lookup happens
//! once per process, not once per record.
//!
//! # Determinism contract
//!
//! Exported *semantic* values must be byte-identical for any `--jobs`
//! setting. Every instrument therefore only offers operations that are
//! commutative and associative over integers, so the result is
//! independent of thread interleaving:
//!
//! - counters add unsigned integers (saturating at `u64::MAX`);
//! - gauges are only deterministic through [`Gauge::set_max`] /
//!   [`Gauge::set_min`]; plain [`Gauge::set`] is last-write-wins and
//!   belongs in the [`Domain::Timing`] section only;
//! - histograms count observations into fixed buckets and accumulate
//!   the sum/min/max in integer **micro-units** (`round(v × 1e6)`), so
//!   no float addition order can leak into the export.
//!
//! Wall-clock measurements are inherently non-deterministic; register
//! them under [`Domain::Timing`] so exports and determinism tests can
//! mask them out as one block.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Which export section an instrument belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Deterministic values: byte-identical across runs and `--jobs`.
    Semantic,
    /// Wall-clock / scheduling-dependent values, masked by determinism
    /// tests.
    Timing,
}

/// A monotonically increasing counter (saturating at `u64::MAX`).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`, saturating at `u64::MAX` instead of wrapping.
    pub fn add(&self, n: u64) {
        if n == 0 {
            return;
        }
        let mut current = self.value.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_add(n);
            match self.value.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current total.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// An integer gauge.
#[derive(Debug)]
pub struct Gauge {
    value: AtomicI64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            value: AtomicI64::new(0),
        }
    }
}

impl Gauge {
    /// Sets the value (last write wins — only deterministic from serial
    /// code; use [`Self::set_max`] from parallel regions).
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if larger (commutative, so deterministic
    /// from any thread).
    pub fn set_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Lowers the gauge to `v` if smaller (commutative).
    pub fn set_min(&self, v: i64) {
        self.value.fetch_min(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Converts a float observation to integer micro-units, the histogram's
/// internal accumulation domain.
#[must_use]
pub fn to_micros(v: f64) -> i64 {
    let scaled = (v * 1e6).round();
    if scaled >= i64::MAX as f64 {
        i64::MAX
    } else if scaled <= i64::MIN as f64 {
        i64::MIN
    } else {
        scaled as i64
    }
}

/// A fixed-bucket histogram.
///
/// `bounds` are inclusive upper bounds in ascending order; an implicit
/// final bucket catches everything above the last bound, so a histogram
/// with `n` bounds has `n + 1` buckets.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    sum_micros: AtomicI64,
    min_micros: AtomicI64,
    max_micros: AtomicI64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_micros: AtomicI64::new(0),
            min_micros: AtomicI64::new(i64::MAX),
            max_micros: AtomicI64::new(i64::MIN),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: f64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        let m = to_micros(v);
        self.sum_micros.fetch_add(m, Ordering::Relaxed);
        self.min_micros.fetch_min(m, Ordering::Relaxed);
        self.max_micros.fetch_max(m, Ordering::Relaxed);
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The bucket upper bounds this histogram was registered with.
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// A consistent copy of the histogram state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = counts.iter().sum();
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            count,
            counts,
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
            min_micros: (count > 0).then(|| self.min_micros.load(Ordering::Relaxed)),
            max_micros: (count > 0).then(|| self.max_micros.load(Ordering::Relaxed)),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum_micros.store(0, Ordering::Relaxed);
        self.min_micros.store(i64::MAX, Ordering::Relaxed);
        self.max_micros.store(i64::MIN, Ordering::Relaxed);
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (ascending; the last bucket is unbounded).
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations in micro-units.
    pub sum_micros: i64,
    /// Smallest observation in micro-units (`None` when empty).
    pub min_micros: Option<i64>,
    /// Largest observation in micro-units (`None` when empty).
    pub max_micros: Option<i64>,
}

impl HistogramSnapshot {
    /// Mean observation value (in the original unit), `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_micros as f64 / 1e6 / self.count as f64)
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, (Domain, Arc<Counter>)>,
    gauges: BTreeMap<String, (Domain, Arc<Gauge>)>,
    histograms: BTreeMap<String, (Domain, Arc<Histogram>)>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn lock() -> std::sync::MutexGuard<'static, Registry> {
    registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Interns a counter by name. The first registration fixes the domain.
#[must_use]
pub fn counter(name: &str, domain: Domain) -> Arc<Counter> {
    let mut reg = lock();
    let (_, handle) = reg
        .counters
        .entry(name.to_string())
        .or_insert_with(|| (domain, Arc::new(Counter::default())));
    Arc::clone(handle)
}

/// Interns a gauge by name. The first registration fixes the domain.
#[must_use]
pub fn gauge(name: &str, domain: Domain) -> Arc<Gauge> {
    let mut reg = lock();
    let (_, handle) = reg
        .gauges
        .entry(name.to_string())
        .or_insert_with(|| (domain, Arc::new(Gauge::default())));
    Arc::clone(handle)
}

/// Interns a histogram by name. The first registration fixes the domain
/// and the bucket bounds; later registrations return the existing
/// instrument unchanged.
#[must_use]
pub fn histogram(name: &str, domain: Domain, bounds: &[f64]) -> Arc<Histogram> {
    let mut reg = lock();
    let (_, handle) = reg
        .histograms
        .entry(name.to_string())
        .or_insert_with(|| (domain, Arc::new(Histogram::new(bounds))));
    Arc::clone(handle)
}

/// Zeroes every registered instrument. Registrations (names, domains,
/// bucket bounds) survive, so `Arc` handles cached in `OnceLock`s at
/// call sites stay valid — tests can reset between scenarios.
pub fn reset_metrics() {
    let reg = lock();
    for (_, c) in reg.counters.values() {
        c.reset();
    }
    for (_, g) in reg.gauges.values() {
        g.reset();
    }
    for (_, h) in reg.histograms.values() {
        h.reset();
    }
}

/// Point-in-time copy of the whole registry, sorted by name within each
/// instrument kind.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter totals.
    pub counters: Vec<(String, Domain, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, Domain, i64)>,
    /// Histogram states.
    pub histograms: Vec<(String, Domain, HistogramSnapshot)>,
}

/// Snapshots every registered instrument (sorted by name, so rendering
/// the snapshot is deterministic).
#[must_use]
pub fn snapshot_metrics() -> MetricsSnapshot {
    let reg = lock();
    MetricsSnapshot {
        counters: reg
            .counters
            .iter()
            .map(|(n, (d, c))| (n.clone(), *d, c.get()))
            .collect(),
        gauges: reg
            .gauges
            .iter()
            .map(|(n, (d, g))| (n.clone(), *d, g.get()))
            .collect(),
        histograms: reg
            .histograms
            .iter()
            .map(|(n, (d, h))| (n.clone(), *d, h.snapshot()))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_and_saturates() {
        let c = Counter::default();
        c.add(5);
        c.incr();
        assert_eq!(c.get(), 6);
        c.add(u64::MAX - 3);
        assert_eq!(c.get(), u64::MAX, "must saturate, not wrap");
        c.incr();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn gauge_max_min_and_add() {
        let g = Gauge::default();
        g.set_max(7);
        g.set_max(3);
        assert_eq!(g.get(), 7);
        g.set(-2);
        g.set_min(-5);
        g.set_min(0);
        assert_eq!(g.get(), -5);
        g.add(15);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let h = Histogram::new(&[1.0, 2.0, 5.0]);
        // Exactly on a bound lands in that bound's bucket.
        for v in [0.5, 1.0, 1.5, 2.0, 4.9, 5.0, 5.1, 100.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 2, 2, 2]);
        assert_eq!(s.count, 8);
        assert_eq!(s.min_micros, Some(500_000));
        assert_eq!(s.max_micros, Some(100_000_000));
    }

    #[test]
    fn histogram_sum_is_integer_micros() {
        let h = Histogram::new(&[10.0]);
        h.record(0.1);
        h.record(0.2);
        h.record(0.3);
        // 0.1 + 0.2 + 0.3 is not 0.6 in f64, but it is in micro-units.
        assert_eq!(h.snapshot().sum_micros, 600_000);
        assert!((h.snapshot().mean().unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_has_no_extremes() {
        let h = Histogram::new(&[1.0]);
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min_micros, None);
        assert_eq!(s.max_micros, None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_rejected() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn micros_conversion_clamps() {
        assert_eq!(to_micros(1.5), 1_500_000);
        assert_eq!(to_micros(-2.25), -2_250_000);
        assert_eq!(to_micros(f64::MAX), i64::MAX);
        assert_eq!(to_micros(f64::MIN), i64::MIN);
    }

    #[test]
    fn registry_interns_and_resets() {
        let a = counter("test.registry.interns", Domain::Semantic);
        let b = counter("test.registry.interns", Domain::Semantic);
        a.add(4);
        assert_eq!(b.get(), 4, "same name must be the same instrument");
        let h = histogram("test.registry.hist", Domain::Semantic, &[1.0, 2.0]);
        h.record(1.5);
        reset_metrics();
        assert_eq!(a.get(), 0);
        assert_eq!(h.count(), 0);
        // Handles stay usable after reset.
        a.incr();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let _ = counter("test.snap.b", Domain::Semantic);
        let _ = counter("test.snap.a", Domain::Timing);
        let snap = snapshot_metrics();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }
}
