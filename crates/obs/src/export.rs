//! Summary export: `OBS_summary.json` and the human-readable table.
//!
//! The JSON document has exactly two data sections:
//!
//! - `semantic` — counters, gauges and histograms registered under
//!   [`Domain::Semantic`]. Byte-identical across runs and `--jobs`
//!   values; determinism tests compare this section verbatim.
//! - `timing` — wall-clock data: the span tree plus every instrument
//!   registered under [`Domain::Timing`]. Varies run to run;
//!   determinism tests drop this key before comparing.

use crate::flight::{FlightConfig, FlightRecorder};
use crate::json::Value;
use crate::latency::{snapshot_latency, LatencyHisto, LatencySnapshot};
use crate::registry::{snapshot_metrics, Domain, HistogramSnapshot, MetricsSnapshot};
use crate::span::snapshot_spans;
use std::fmt::Write as _;

/// Schema identifier written into (and checked against) the summary.
pub const SUMMARY_SCHEMA: &str = "mmog-obs/v1";

fn histogram_value(h: &HistogramSnapshot) -> Value {
    Value::Obj(vec![
        (
            "bounds".to_string(),
            Value::Arr(h.bounds.iter().map(|&b| Value::Num(b)).collect()),
        ),
        (
            "counts".to_string(),
            Value::Arr(h.counts.iter().map(|&c| Value::UInt(c)).collect()),
        ),
        ("count".to_string(), Value::UInt(h.count)),
        ("sum_micros".to_string(), Value::Int(h.sum_micros)),
        (
            "min_micros".to_string(),
            h.min_micros.map_or(Value::Null, Value::Int),
        ),
        (
            "max_micros".to_string(),
            h.max_micros.map_or(Value::Null, Value::Int),
        ),
    ])
}

fn section(snap: &MetricsSnapshot, domain: Domain) -> Vec<(String, Value)> {
    let counters: Vec<(String, Value)> = snap
        .counters
        .iter()
        .filter(|(_, d, _)| *d == domain)
        .map(|(n, _, v)| (n.clone(), Value::UInt(*v)))
        .collect();
    let gauges: Vec<(String, Value)> = snap
        .gauges
        .iter()
        .filter(|(_, d, _)| *d == domain)
        .map(|(n, _, v)| (n.clone(), Value::Int(*v)))
        .collect();
    let histograms: Vec<(String, Value)> = snap
        .histograms
        .iter()
        .filter(|(_, d, _)| *d == domain)
        .map(|(n, _, h)| (n.clone(), histogram_value(h)))
        .collect();
    vec![
        ("counters".to_string(), Value::Obj(counters)),
        ("gauges".to_string(), Value::Obj(gauges)),
        ("histograms".to_string(), Value::Obj(histograms)),
    ]
}

/// Builds the summary document from the live registry and span tree.
#[must_use]
pub fn summary_value() -> Value {
    let snap = snapshot_metrics();
    let spans: Vec<Value> = snapshot_spans()
        .into_iter()
        .map(|(path, s)| {
            Value::Obj(vec![
                ("path".to_string(), Value::Str(path)),
                ("calls".to_string(), Value::UInt(s.calls)),
                ("total_ns".to_string(), Value::UInt(s.total_ns)),
                ("max_ns".to_string(), Value::UInt(s.max_ns)),
            ])
        })
        .collect();
    let mut timing = section(&snap, Domain::Timing);
    timing.push(("spans".to_string(), Value::Arr(spans)));
    let latency: Vec<(String, Value)> = snapshot_latency()
        .into_iter()
        .map(|(path, s)| (path, s.to_value()))
        .collect();
    timing.push(("latency".to_string(), Value::Obj(latency)));
    timing.push(("obs/self".to_string(), obs_self_value()));
    Value::Obj(vec![
        ("schema".to_string(), Value::Str(SUMMARY_SCHEMA.to_string())),
        (
            "semantic".to_string(),
            Value::Obj(section(&snap, Domain::Semantic)),
        ),
        ("timing".to_string(), Value::Obj(timing)),
    ])
}

/// Renders the summary document as pretty-printed JSON.
#[must_use]
pub fn summary_json() -> String {
    summary_value().render_pretty()
}

/// Records the suite's wall-clock duration so [`summary_value`] can
/// report the observability plane's overhead as a percentage. Runners
/// (e.g. `all_experiments`) call this right before writing the summary.
pub fn note_wall_seconds(seconds: f64) {
    crate::registry::gauge("obs.wall_ms", Domain::Timing).set((seconds * 1e3).round() as i64);
}

/// Times `op()` repeated `n` times, returning mean nanoseconds per
/// iteration.
fn per_op_ns(n: u64, mut op: impl FnMut(u64)) -> f64 {
    let start = std::time::Instant::now();
    for i in 0..n {
        op(i);
    }
    start.elapsed().as_nanos() as f64 / n as f64
}

/// The `obs/self` report: what the latency plane itself costs. Record
/// and push counts come from the live instruments; per-operation cost
/// is measured by a short calibration loop at export time (scratch
/// instruments, so the calibration never pollutes the report), and the
/// product is the estimated overhead. `overhead_pct` is reported
/// against the wall-clock installed via [`note_wall_seconds`] (`null`
/// until a runner installs one).
fn obs_self_value() -> Value {
    let _span = crate::span::span("obs/self/export");
    let latency_records: u64 = snapshot_latency().iter().map(|(_, s)| s.count).sum();
    let own = |name: &str| crate::registry::counter(name, Domain::Timing).get();
    let flight_pushes = own("obs.self.flight_pushes");
    let flight_dropped = own("obs.self.flight_dropped");
    let flight_dumps = own("obs.self.flight_dumps");
    let flight_suppressed = own("obs.self.flight_suppressed");
    let ts_samples = own("obs.self.ts_samples");
    let live_writes = own("obs.self.live_writes");
    // Live-snapshot publishing is file IO, so the engine measures it
    // directly (accumulated nanoseconds) instead of relying on a
    // calibration loop.
    let live_write_ns = own("obs.self.live_write_ns");

    const CAL_ITERS: u64 = 16_384;
    let scratch = LatencyHisto::new();
    let per_record_ns = per_op_ns(CAL_ITERS, |i| scratch.record(i.wrapping_mul(2654435761)));
    std::hint::black_box(scratch.snapshot().count);
    let mut cfg = FlightConfig::new(64);
    cfg.records_capacity = 1024;
    let mut ring = FlightRecorder::new(cfg);
    let per_push_ns = per_op_ns(CAL_ITERS, |i| {
        ring.begin_tick(i);
        ring.push("tick_latency", i, &[1.0, 2.0, 3.0, 6.0]);
    });
    std::hint::black_box(ring.retained());
    let mut series = crate::timeseries::RingSeries::new(crate::timeseries::TS_DEFAULT_CAPACITY);
    let per_ts_sample_ns = per_op_ns(CAL_ITERS, |i| series.push(i as f64 * 0.5));
    std::hint::black_box(series.samples());

    let overhead_ms = (latency_records as f64 * per_record_ns
        + flight_pushes as f64 * per_push_ns
        + ts_samples as f64 * per_ts_sample_ns
        + live_write_ns as f64)
        / 1e6;
    let wall_ms = crate::registry::gauge("obs.wall_ms", Domain::Timing).get();
    let overhead_pct = (wall_ms > 0).then(|| overhead_ms / wall_ms as f64 * 100.0);
    Value::Obj(vec![
        ("latency_records".into(), Value::UInt(latency_records)),
        ("flight_pushes".into(), Value::UInt(flight_pushes)),
        ("flight_dropped".into(), Value::UInt(flight_dropped)),
        ("flight_dumps".into(), Value::UInt(flight_dumps)),
        ("flight_suppressed".into(), Value::UInt(flight_suppressed)),
        ("ts_samples".into(), Value::UInt(ts_samples)),
        ("live_writes".into(), Value::UInt(live_writes)),
        ("live_write_ns".into(), Value::UInt(live_write_ns)),
        ("per_record_ns".into(), Value::Num(per_record_ns)),
        ("per_push_ns".into(), Value::Num(per_push_ns)),
        ("per_ts_sample_ns".into(), Value::Num(per_ts_sample_ns)),
        ("estimated_overhead_ms".into(), Value::Num(overhead_ms)),
        (
            "wall_ms".into(),
            if wall_ms > 0 {
                Value::Int(wall_ms)
            } else {
                Value::Null
            },
        ),
        (
            "overhead_pct".into(),
            overhead_pct.map_or(Value::Null, Value::Num),
        ),
    ])
}

/// The `semantic` section of a parsed summary, re-rendered compactly —
/// the canonical bytes determinism tests compare.
///
/// # Errors
/// Returns a message when `text` is not a valid summary document.
pub fn semantic_section(text: &str) -> Result<String, String> {
    let doc = crate::json::parse(text)?;
    let semantic = doc.get("semantic").ok_or("missing semantic section")?;
    Ok(semantic.render())
}

/// Validates a summary document against the `mmog-obs/v1` schema.
///
/// # Errors
/// Returns a message describing the first violation found.
pub fn validate_summary(text: &str) -> Result<(), String> {
    let doc = crate::json::parse(text)?;
    match doc.get("schema").and_then(Value::as_str) {
        Some(SUMMARY_SCHEMA) => {}
        Some(other) => return Err(format!("unknown schema {other:?}")),
        None => return Err("missing schema field".to_string()),
    }
    for key in ["semantic", "timing"] {
        let sec = doc
            .get(key)
            .ok_or_else(|| format!("missing {key} section"))?;
        for sub in ["counters", "gauges", "histograms"] {
            let obj = sec
                .get(sub)
                .and_then(Value::as_obj)
                .ok_or_else(|| format!("{key}.{sub} must be an object"))?;
            for (name, value) in obj {
                match sub {
                    "counters" => {
                        value
                            .as_u64()
                            .ok_or_else(|| format!("{key}.{sub}.{name} must be a u64"))?;
                    }
                    "gauges" => {
                        value
                            .as_i64()
                            .ok_or_else(|| format!("{key}.{sub}.{name} must be an i64"))?;
                    }
                    _ => validate_histogram(name, value)
                        .map_err(|e| format!("{key}.histograms.{name}: {e}"))?,
                }
            }
        }
    }
    let spans = doc
        .get("timing")
        .and_then(|t| t.get("spans"))
        .and_then(Value::as_arr)
        .ok_or("timing.spans must be an array")?;
    for span in spans {
        for field in ["calls", "total_ns", "max_ns"] {
            span.get(field)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("span field {field} must be a u64"))?;
        }
        span.get("path")
            .and_then(Value::as_str)
            .ok_or("span field path must be a string")?;
    }
    // Latency and self-instrumentation sections are additive (absent in
    // summaries written before the latency plane existed) but must be
    // well-formed when present.
    let timing = doc.get("timing").expect("checked above");
    if let Some(latency) = timing.get("latency") {
        let entries = latency.as_obj().ok_or("timing.latency must be an object")?;
        for (path, entry) in entries {
            LatencySnapshot::from_value(entry)
                .map_err(|e| format!("timing.latency.{path}: {e}"))?;
        }
    }
    if let Some(own) = timing.get("obs/self") {
        for field in ["latency_records", "flight_pushes", "flight_dumps"] {
            own.get(field)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("timing.obs/self.{field} must be a u64"))?;
        }
        own.get("estimated_overhead_ms")
            .and_then(Value::as_f64)
            .ok_or("timing.obs/self.estimated_overhead_ms must be numeric")?;
        // Time-series / live-tap accounting is additive (absent before
        // the live plane existed) but must be u64 counts when present.
        for field in ["ts_samples", "live_writes", "live_write_ns"] {
            if let Some(v) = own.get(field) {
                v.as_u64()
                    .ok_or_else(|| format!("timing.obs/self.{field} must be a u64"))?;
            }
        }
    }
    Ok(())
}

fn validate_histogram(_name: &str, value: &Value) -> Result<(), String> {
    let bounds = value
        .get("bounds")
        .and_then(Value::as_arr)
        .ok_or("bounds must be an array")?;
    let counts = value
        .get("counts")
        .and_then(Value::as_arr)
        .ok_or("counts must be an array")?;
    if counts.len() != bounds.len() + 1 {
        return Err(format!(
            "counts must have bounds+1 entries ({} vs {})",
            counts.len(),
            bounds.len()
        ));
    }
    let count = value
        .get("count")
        .and_then(Value::as_u64)
        .ok_or("count must be a u64")?;
    let sum: u64 = counts.iter().filter_map(Value::as_u64).sum();
    if sum != count {
        return Err(format!("count {count} != bucket sum {sum}"));
    }
    value
        .get("sum_micros")
        .and_then(Value::as_i64)
        .ok_or("sum_micros must be an i64")?;
    Ok(())
}

fn push_rows(out: &mut String, title: &str, rows: &[(String, String)]) {
    if rows.is_empty() {
        return;
    }
    let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    let _ = writeln!(out, "{title}");
    for (name, value) in rows {
        let _ = writeln!(out, "  {name:<width$}  {value}");
    }
}

/// Renders the live registry and span tree as a human-readable table
/// (the `--metrics` console output). The timing half is wrapped in the
/// standard masking markers.
#[must_use]
pub fn render_summary_table() -> String {
    let snap = snapshot_metrics();
    let mut out = String::from("Observability summary (mmog-obs)\n\n");
    let rows =
        |domain: Domain| -> Vec<(String, String)> {
            let mut rows: Vec<(String, String)> = snap
                .counters
                .iter()
                .filter(|(_, d, _)| *d == domain)
                .map(|(n, _, v)| (n.clone(), v.to_string()))
                .collect();
            rows.extend(
                snap.gauges
                    .iter()
                    .filter(|(_, d, _)| *d == domain)
                    .map(|(n, _, v)| (n.clone(), v.to_string())),
            );
            rows.extend(snap.histograms.iter().filter(|(_, d, _)| *d == domain).map(
                |(n, _, h)| {
                    let mean = h.mean().map_or("-".to_string(), |m| format!("{m:.4}"));
                    (n.clone(), format!("count {}  mean {mean}", h.count))
                },
            ));
            rows
        };
    push_rows(
        &mut out,
        "Semantic counters/gauges/histograms:",
        &rows(Domain::Semantic),
    );
    let mut timing = String::new();
    push_rows(&mut timing, "Timing instruments:", &rows(Domain::Timing));
    let spans = snapshot_spans();
    if !spans.is_empty() {
        let width = spans.iter().map(|(p, _)| p.len()).max().unwrap_or(0);
        let _ = writeln!(timing, "Span tree (total ms / calls / mean us):");
        for (path, s) in &spans {
            let _ = writeln!(
                timing,
                "  {path:<width$}  {:>10.3}  {:>8}  {:>10.2}",
                s.total_ns as f64 / 1e6,
                s.calls,
                s.mean_us()
            );
        }
    }
    if !timing.is_empty() {
        out.push('\n');
        out.push_str(&crate::timing_block(&timing));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    #[test]
    fn summary_validates_against_own_schema() {
        let c = registry::counter("test.export.counter", Domain::Semantic);
        c.add(3);
        let h = registry::histogram("test.export.hist", Domain::Semantic, &[1.0, 2.0]);
        h.record(0.5);
        let _g = registry::gauge("test.export.gauge", Domain::Timing);
        let _span = crate::span::timer("test.export/span");
        let text = summary_json();
        validate_summary(&text).expect("self-produced summary must validate");
    }

    #[test]
    fn semantic_section_extracts_deterministic_bytes() {
        let c = registry::counter("test.export.sem", Domain::Semantic);
        c.incr();
        let a = semantic_section(&summary_json()).unwrap();
        let b = semantic_section(&summary_json()).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("test.export.sem"));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_summary("{}").is_err());
        assert!(validate_summary(r#"{"schema":"other/v9"}"#).is_err());
        let missing_timing =
            r#"{"schema":"mmog-obs/v1","semantic":{"counters":{},"gauges":{},"histograms":{}}}"#;
        assert!(validate_summary(missing_timing).is_err());
        let bad_counter = r#"{"schema":"mmog-obs/v1","semantic":{"counters":{"x":-1},"gauges":{},"histograms":{}},"timing":{"counters":{},"gauges":{},"histograms":{},"spans":[]}}"#;
        assert!(validate_summary(bad_counter).is_err());
        let bad_hist = r#"{"schema":"mmog-obs/v1","semantic":{"counters":{},"gauges":{},"histograms":{"h":{"bounds":[1],"counts":[1],"count":1,"sum_micros":0,"min_micros":null,"max_micros":null}}},"timing":{"counters":{},"gauges":{},"histograms":{},"spans":[]}}"#;
        assert!(validate_summary(bad_hist).is_err());
        let bad_latency = r#"{"schema":"mmog-obs/v1","semantic":{"counters":{},"gauges":{},"histograms":{}},"timing":{"counters":{},"gauges":{},"histograms":{},"spans":[],"latency":{"p":{"count":2,"mean_ns":1,"p50_ns":1,"p90_ns":1,"p99_ns":1,"p999_ns":1,"min_ns":1,"max_ns":1,"buckets":[[1,1]]}}}}"#;
        let err = validate_summary(bad_latency).unwrap_err();
        assert!(err.contains("timing.latency.p"), "{err}");
    }

    #[test]
    fn summary_reports_latency_and_self_overhead() {
        let h = crate::latency::latency("test.export.latency");
        for v in [100u64, 200, 50_000] {
            h.record(v);
        }
        note_wall_seconds(1.5);
        let doc = summary_value();
        let timing = doc.get("timing").unwrap();
        let lat = timing
            .get("latency")
            .and_then(|l| l.get("test.export.latency"))
            .expect("latency section carries interned histograms");
        assert!(lat.get("count").unwrap().as_u64().unwrap() >= 3);
        let own = timing.get("obs/self").expect("obs/self section");
        assert!(own.get("latency_records").unwrap().as_u64().unwrap() >= 3);
        assert!(own.get("per_record_ns").unwrap().as_f64().unwrap() > 0.0);
        assert!(own.get("overhead_pct").unwrap().as_f64().is_some());
        validate_summary(&summary_json()).expect("extended summary must validate");
    }

    #[test]
    fn table_masks_timing_half() {
        let c = registry::counter("test.export.table", Domain::Semantic);
        c.incr();
        let _ = crate::span::span("test.export.table/span");
        let table = render_summary_table();
        let masked = crate::mask_timing(&table).expect("table timing block is well-formed");
        assert!(masked.contains("test.export.table"));
        assert!(!masked.contains("Span tree"));
    }
}
