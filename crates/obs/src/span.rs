//! The span layer: a hierarchical wall-clock timing tree.
//!
//! Spans are named by `/`-separated paths (`"engine/tick/match"`); each
//! path accumulates a call count and total/max elapsed nanoseconds, so
//! a hot loop (the simulator records three spans per two-minute tick)
//! costs two `Instant::now()` reads and three relaxed atomic adds per
//! span — no allocation after the first lookup. The per-path
//! accumulation *is* the per-tick timing tree folded over the run:
//! siblings compare wall-clock within a tick, parents contain children
//! by path prefix.
//!
//! Everything here is wall-clock and therefore **non-deterministic** —
//! exports place span data in the `timing` section, and report text
//! derived from spans must be wrapped in [`crate::timing_block`] so
//! determinism tests can mask it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Accumulated timing for one span path.
#[derive(Debug, Default)]
pub struct SpanStat {
    calls: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl SpanStat {
    /// Folds one measured duration into the accumulator.
    pub fn record_ns(&self, ns: u64) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Point-in-time copy.
    #[must_use]
    pub fn snapshot(&self) -> SpanSnapshot {
        SpanSnapshot {
            calls: self.calls.load(Ordering::Relaxed),
            total_ns: self.total_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time copy of one span's accumulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanSnapshot {
    /// Number of completed spans on this path.
    pub calls: u64,
    /// Total elapsed nanoseconds across all calls.
    pub total_ns: u64,
    /// Longest single call, nanoseconds.
    pub max_ns: u64,
}

impl SpanSnapshot {
    /// Mean call duration in microseconds (`0` when never called).
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_ns as f64 / 1e3 / self.calls as f64
        }
    }
}

fn tree() -> &'static Mutex<BTreeMap<String, Arc<SpanStat>>> {
    static TREE: OnceLock<Mutex<BTreeMap<String, Arc<SpanStat>>>> = OnceLock::new();
    TREE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn lock() -> std::sync::MutexGuard<'static, BTreeMap<String, Arc<SpanStat>>> {
    tree()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Interns a span path and returns its accumulator. Hot call sites
/// should cache the handle in a `OnceLock` and time through
/// [`SpanStat::record_ns`] or [`time_stat`].
#[must_use]
pub fn timer(path: &str) -> Arc<SpanStat> {
    Arc::clone(
        lock()
            .entry(path.to_string())
            .or_insert_with(|| Arc::new(SpanStat::default())),
    )
}

/// Starts a span on `path`; the elapsed time records when the returned
/// guard drops.
#[must_use]
pub fn span(path: &str) -> SpanGuard {
    SpanGuard {
        stat: timer(path),
        start: Instant::now(),
    }
}

/// Times a closure against an already-interned span accumulator (the
/// zero-lookup hot path).
pub fn time_stat<R>(stat: &SpanStat, f: impl FnOnce() -> R) -> R {
    let start = Instant::now();
    let out = f();
    stat.record_ns(elapsed_ns(start));
    out
}

fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// An in-flight span; records its elapsed time into the tree on drop.
#[derive(Debug)]
pub struct SpanGuard {
    stat: Arc<SpanStat>,
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.stat.record_ns(elapsed_ns(self.start));
    }
}

/// Snapshots the whole timing tree, sorted by path (parents precede
/// children because a path is a prefix of its descendants).
#[must_use]
pub fn snapshot_spans() -> Vec<(String, SpanSnapshot)> {
    lock()
        .iter()
        .map(|(path, stat)| (path.clone(), stat.snapshot()))
        .collect()
}

/// Zeroes every span accumulator; interned paths and cached handles
/// stay valid.
pub fn reset_spans() {
    for stat in lock().values() {
        stat.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_records_on_drop() {
        let stat = timer("test.span.guard");
        let before = stat.snapshot().calls;
        {
            let _g = span("test.span.guard");
            std::hint::black_box(42);
        }
        let after = stat.snapshot();
        assert_eq!(after.calls, before + 1);
    }

    #[test]
    fn record_accumulates_totals_and_max() {
        let stat = SpanStat::default();
        stat.record_ns(10);
        stat.record_ns(30);
        stat.record_ns(20);
        let s = stat.snapshot();
        assert_eq!(s.calls, 3);
        assert_eq!(s.total_ns, 60);
        assert_eq!(s.max_ns, 30);
        assert!((s.mean_us() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn snapshot_sorted_parents_before_children() {
        let _ = timer("test.tree/a/b");
        let _ = timer("test.tree/a");
        let _ = timer("test.tree");
        let snap = snapshot_spans();
        let paths: Vec<&str> = snap
            .iter()
            .map(|(p, _)| p.as_str())
            .filter(|p| p.starts_with("test.tree"))
            .collect();
        assert_eq!(paths, vec!["test.tree", "test.tree/a", "test.tree/a/b"]);
    }

    #[test]
    fn mean_of_empty_span_is_zero() {
        assert_eq!(SpanSnapshot::default().mean_us(), 0.0);
    }
}
