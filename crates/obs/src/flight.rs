//! The flight recorder: a bounded ring buffer of full-detail per-tick
//! records that only materialises a `FLIGHT_<run>.jsonl` artifact when
//! something goes wrong.
//!
//! Always-on JSONL tracing is unusable at 1M/10M-player scale (PR 6's
//! streaming path), but *post-hoc* detail is exactly what a tail-latency
//! incident needs. The recorder squares that: the engine pushes
//! fixed-size [`FlightRecord`]s (no allocation, no formatting) into a
//! preallocated ring retaining the last N ticks, and only a **trigger**
//! — a fault event, a tick-deadline overrun, a gate breach, or an
//! explicit `--flight-dump` — renders the ring to disk. The first
//! trigger per run wins; later triggers are counted and suppressed so a
//! fault storm cannot write the same window a thousand times.
//!
//! Dumped lines reuse the trace event schema ([`crate::event`]): the
//! first line is a `flight_meta` event describing the window and
//! trigger, every following line is a regular event (`tick`,
//! `tick_latency`, `provision`) with the standard `seq`/`scope`
//! envelope, so `obs_check` and the trace tooling parse flight dumps
//! with the machinery they already have.
//!
//! # Determinism
//!
//! The recorder is configured process-globally (like the trace path)
//! and disabled by default, so runs without a flight config are
//! byte-for-byte unaffected. Fault and explicit triggers depend only on
//! the seed-driven schedule — *which* tick range dumps is deterministic
//! for a fixed seed. Deadline triggers are wall-clock by nature and are
//! opt-in via [`FlightConfig::deadline_ns`]. All recorder accounting
//! exports under `obs.self.*` in the timing section.

use crate::event::{event_fields, FieldType};
use crate::json::Value;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

/// Maximum number of numeric payload fields (after `tick`) a flight
/// record can carry — sized for the widest recorded kind (`provision`).
pub const FLIGHT_MAX_VALUES: usize = 6;

/// One fixed-size ring entry: an event kind, its tick, and up to
/// [`FLIGHT_MAX_VALUES`] numeric field values in schema order. Strings
/// are excluded by construction (kinds with string fields cannot be
/// recorded), which is what keeps the push path allocation-free.
#[derive(Debug, Clone, Copy)]
pub struct FlightRecord {
    /// Simulation tick the record belongs to.
    pub tick: u64,
    /// Event kind (must be in [`crate::event::KNOWN_EVENT_KINDS`]).
    pub kind: &'static str,
    /// Field values after `tick`, in the kind's schema order.
    pub values: [f64; FLIGHT_MAX_VALUES],
    /// How many of `values` are in use.
    pub len: u8,
}

const EMPTY_RECORD: FlightRecord = FlightRecord {
    tick: 0,
    kind: "",
    values: [0.0; FLIGHT_MAX_VALUES],
    len: 0,
};

/// Why a flight dump fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightTrigger {
    /// A fault-plane event was applied this tick (seed-deterministic).
    Fault,
    /// A scenario network partition was applied this tick
    /// (seed-deterministic).
    Partition,
    /// A scenario zone migration (or region failover) was applied this
    /// tick (seed-deterministic).
    Migration,
    /// The whole-tick wall-clock exceeded [`FlightConfig::deadline_ns`].
    DeadlineOverrun,
    /// A regression gate reported a breach (wired by gate harnesses).
    GateBreach,
    /// `--flight-dump`: dump the final window unconditionally.
    Explicit,
}

impl FlightTrigger {
    /// Stable label used in `flight_meta` and file reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FlightTrigger::Fault => "fault",
            FlightTrigger::Partition => "partition",
            FlightTrigger::Migration => "migration",
            FlightTrigger::DeadlineOverrun => "deadline_overrun",
            FlightTrigger::GateBreach => "gate_breach",
            FlightTrigger::Explicit => "explicit",
        }
    }
}

/// Flight recorder configuration, installed process-globally with
/// [`set_flight_config`].
#[derive(Debug, Clone)]
pub struct FlightConfig {
    /// How many most-recent ticks the ring retains.
    pub retain_ticks: u64,
    /// Ring capacity in records; pushes beyond it evict the oldest
    /// record regardless of tick age.
    pub records_capacity: usize,
    /// Whole-tick wall-clock deadline; exceeding it triggers a dump.
    /// `None` disables deadline triggering (the deterministic default).
    pub deadline_ns: Option<u64>,
    /// Directory `FLIGHT_<run>.jsonl` artifacts are written to.
    pub dump_dir: PathBuf,
    /// Dump at run end even without a trigger (`--flight-dump`).
    pub dump_at_end: bool,
}

impl FlightConfig {
    /// A config retaining `retain_ticks` ticks with a capacity of 64
    /// records per retained tick (clamped to `[256, 1 << 20]`), no
    /// deadline, dumping into `results/`.
    #[must_use]
    pub fn new(retain_ticks: u64) -> Self {
        let cap = usize::try_from(retain_ticks.saturating_mul(64))
            .unwrap_or(usize::MAX)
            .clamp(256, 1 << 20);
        Self {
            retain_ticks,
            records_capacity: cap,
            deadline_ns: None,
            dump_dir: PathBuf::from("results"),
            dump_at_end: false,
        }
    }
}

/// Description of a dump that happened (also mirrored into the
/// simulation report so harnesses can assert on trigger decisions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDumpInfo {
    /// Trigger label ([`FlightTrigger::label`]).
    pub trigger: &'static str,
    /// Tick the trigger fired on.
    pub trigger_tick: u64,
    /// Oldest tick in the dumped window.
    pub tick_from: u64,
    /// Newest tick in the dumped window.
    pub tick_to: u64,
    /// Number of event records dumped (excluding the meta line).
    pub records: u64,
    /// Artifact path.
    pub path: PathBuf,
}

/// A per-run flight recorder. Build one via [`flight_recorder`] at run
/// start; it is single-owner mutable state, pushed to from the engine's
/// serial sections only.
#[derive(Debug)]
pub struct FlightRecorder {
    cfg: FlightConfig,
    ring: Vec<FlightRecord>,
    head: usize,
    len: usize,
    pushed: u64,
    dropped: u64,
    suppressed: u64,
    dump: Option<FlightDumpInfo>,
}

impl FlightRecorder {
    /// A recorder with its ring fully preallocated (steady-state pushes
    /// never allocate).
    #[must_use]
    pub fn new(cfg: FlightConfig) -> Self {
        let cap = cfg.records_capacity.max(1);
        Self {
            cfg,
            ring: vec![EMPTY_RECORD; cap],
            head: 0,
            len: 0,
            pushed: 0,
            dropped: 0,
            suppressed: 0,
            dump: None,
        }
    }

    /// The configured tick-deadline, if any.
    #[must_use]
    pub fn deadline_ns(&self) -> Option<u64> {
        self.cfg.deadline_ns
    }

    /// Records pushed over the recorder's lifetime.
    #[must_use]
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Records evicted before their tick aged out (capacity pressure).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Triggers suppressed because a dump already happened.
    #[must_use]
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Number of records currently retained.
    #[must_use]
    pub fn retained(&self) -> usize {
        self.len
    }

    /// The dump that happened this run, if any.
    #[must_use]
    pub fn dump_info(&self) -> Option<&FlightDumpInfo> {
        self.dump.as_ref()
    }

    /// Consumes the recorder, returning its dump info.
    #[must_use]
    pub fn into_dump_info(self) -> Option<FlightDumpInfo> {
        self.dump
    }

    /// Advances the retention window to tick `t`, evicting records older
    /// than `retain_ticks`. Allocation-free.
    pub fn begin_tick(&mut self, t: u64) {
        let cutoff = t.saturating_sub(self.cfg.retain_ticks.saturating_sub(1));
        while self.len > 0 && self.ring[self.head].tick < cutoff {
            self.head = (self.head + 1) % self.ring.len();
            self.len -= 1;
        }
    }

    /// Pushes one record. Allocation-free: when the ring is full the
    /// oldest record is evicted. `values` beyond [`FLIGHT_MAX_VALUES`]
    /// are truncated (debug builds assert instead).
    pub fn push(&mut self, kind: &'static str, tick: u64, values: &[f64]) {
        debug_assert!(values.len() <= FLIGHT_MAX_VALUES, "flight record too wide");
        debug_assert!(
            event_fields(kind).is_some_and(|f| f.first().is_some_and(|(n, _)| *n == "tick")),
            "flight records must use a known tick-first event kind"
        );
        let cap = self.ring.len();
        if self.len == cap {
            self.head = (self.head + 1) % cap;
            self.len -= 1;
            self.dropped += 1;
        }
        let slot = (self.head + self.len) % cap;
        let rec = &mut self.ring[slot];
        rec.tick = tick;
        rec.kind = kind;
        rec.len = values.len().min(FLIGHT_MAX_VALUES) as u8;
        rec.values[..usize::from(rec.len)].copy_from_slice(&values[..usize::from(rec.len)]);
        self.len += 1;
        self.pushed += 1;
    }

    /// The `(oldest, newest)` tick currently retained.
    #[must_use]
    pub fn window(&self) -> Option<(u64, u64)> {
        (self.len > 0).then(|| {
            let newest = (self.head + self.len - 1) % self.ring.len();
            (self.ring[self.head].tick, self.ring[newest].tick)
        })
    }

    /// Fires a trigger: dumps the retained window to
    /// `FLIGHT_<run>.jsonl` unless a dump already happened this run (the
    /// first trigger wins; later ones are counted as suppressed).
    /// Returns the artifact path when a dump was written.
    ///
    /// # Errors
    /// Propagates the file-write error (the engine reports and
    /// continues — a failed dump must never fail the run).
    pub fn trigger(
        &mut self,
        trigger: FlightTrigger,
        tick: u64,
        run_label: &str,
    ) -> std::io::Result<Option<PathBuf>> {
        if self.dump.is_some() {
            self.suppressed += 1;
            return Ok(None);
        }
        let (tick_from, tick_to) = self.window().unwrap_or((tick, tick));
        let path = self
            .cfg
            .dump_dir
            .join(format!("FLIGHT_{}.jsonl", sanitize_label(run_label)));
        let body = self.render_dump(trigger, tick, run_label, tick_from, tick_to);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(&path, body)?;
        self.dump = Some(FlightDumpInfo {
            trigger: trigger.label(),
            trigger_tick: tick,
            tick_from,
            tick_to,
            records: self.len as u64,
            path: path.clone(),
        });
        Ok(Some(path))
    }

    /// Run-end hook: dumps the final window when
    /// [`FlightConfig::dump_at_end`] is set and nothing triggered yet.
    ///
    /// # Errors
    /// Propagates the file-write error.
    pub fn finish(&mut self, final_tick: u64, run_label: &str) -> std::io::Result<Option<PathBuf>> {
        if self.cfg.dump_at_end && self.dump.is_none() {
            return self.trigger(FlightTrigger::Explicit, final_tick, run_label);
        }
        Ok(None)
    }

    /// Renders the dump body: a `flight_meta` line followed by every
    /// retained record, all carrying the standard trace envelope. The
    /// output is bounded by the ring capacity — dumping never grows with
    /// run length.
    fn render_dump(
        &self,
        trigger: FlightTrigger,
        trigger_tick: u64,
        run_label: &str,
        tick_from: u64,
        tick_to: u64,
    ) -> String {
        let scope = Value::Str(run_label.to_string()).render();
        // ~96 bytes per line is a comfortable upper estimate; one
        // reservation keeps the dump path to a handful of allocations.
        let mut out = String::with_capacity(128 * (self.len + 1));
        let meta = Value::Obj(vec![
            ("kind".into(), Value::Str("flight_meta".into())),
            ("run".into(), Value::Str(run_label.to_string())),
            ("trigger".into(), Value::Str(trigger.label().into())),
            ("trigger_tick".into(), Value::UInt(trigger_tick)),
            ("retain_ticks".into(), Value::UInt(self.cfg.retain_ticks)),
            ("tick_from".into(), Value::UInt(tick_from)),
            ("tick_to".into(), Value::UInt(tick_to)),
            ("records".into(), Value::UInt(self.len as u64)),
        ]);
        push_line(&mut out, 0, &scope, &meta.render());
        for i in 0..self.len {
            let rec = &self.ring[(self.head + i) % self.ring.len()];
            push_line(&mut out, (i + 1) as u64, &scope, &render_record(rec));
        }
        out
    }
}

/// Splices the flush-style `seq`/`scope` envelope in front of a
/// rendered `{"kind":...}` object, mirroring `render_trace`.
fn push_line(out: &mut String, seq: u64, scope: &str, body: &str) {
    use std::fmt::Write as _;
    let body = body.strip_prefix('{').expect("rendered line is an object");
    let _ = writeln!(out, "{{\"seq\":{seq},\"scope\":{scope},{body}");
}

/// Renders one ring record against its kind's schema: field names come
/// from [`crate::event::EVENT_FIELDS`], values from the record, typed
/// per the schema (`U64` casts, `Bool` is non-zero, `Num` stays float).
fn render_record(rec: &FlightRecord) -> String {
    let fields = event_fields(rec.kind).expect("flight records use known kinds");
    let mut members = Vec::with_capacity(fields.len() + 1);
    members.push(("kind".to_string(), Value::Str(rec.kind.to_string())));
    members.push(("tick".to_string(), Value::UInt(rec.tick)));
    for (i, (name, ty)) in fields.iter().skip(1).enumerate() {
        let v = rec
            .values
            .get(i)
            .copied()
            .filter(|_| i < usize::from(rec.len));
        let value = match (v, ty) {
            (Some(v), FieldType::U64) => Value::UInt(v.max(0.0) as u64),
            (Some(v), FieldType::Bool) => Value::Bool(v != 0.0),
            (Some(v), _) => Value::Num(v),
            (None, _) => Value::Null,
        };
        members.push(((*name).to_string(), value));
    }
    Value::Obj(members).render()
}

/// Maps a run label to a filesystem-safe artifact stem: alphanumerics,
/// `.`, `_` and `-` pass through, everything else becomes `-`, bounded
/// to 96 characters with a stable hash suffix so distinct labels never
/// collide after truncation.
#[must_use]
pub fn sanitize_label(label: &str) -> String {
    // FNV-1a: tiny, deterministic, good enough to disambiguate stems.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in label.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut stem: String = label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '-'
            }
        })
        .collect();
    stem.truncate(96);
    let tag = (hash ^ (hash >> 32)) as u32;
    format!("{stem}-{tag:08x}")
}

fn config_cell() -> &'static Mutex<Option<FlightConfig>> {
    static CONFIG: OnceLock<Mutex<Option<FlightConfig>>> = OnceLock::new();
    CONFIG.get_or_init(|| Mutex::new(None))
}

fn config_lock() -> std::sync::MutexGuard<'static, Option<FlightConfig>> {
    config_cell()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Installs (or removes, with `None`) the process-global flight
/// configuration. Like the trace path, this gates the recorder: with no
/// config installed [`flight_recorder`] returns `None` and runs are
/// byte-for-byte unaffected.
pub fn set_flight_config(cfg: Option<FlightConfig>) {
    *config_lock() = cfg;
}

/// The installed flight configuration, if any.
#[must_use]
pub fn flight_config() -> Option<FlightConfig> {
    config_lock().clone()
}

/// A fresh per-run recorder when flight recording is configured.
#[must_use]
pub fn flight_recorder() -> Option<FlightRecorder> {
    flight_config().map(FlightRecorder::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{parse_trace_line, validate_event_fields};
    use std::path::Path;

    fn test_cfg(retain: u64, cap: usize, dir: &Path) -> FlightConfig {
        FlightConfig {
            retain_ticks: retain,
            records_capacity: cap,
            deadline_ns: None,
            dump_dir: dir.to_path_buf(),
            dump_at_end: false,
        }
    }

    #[test]
    fn ring_retains_last_n_ticks() {
        let mut rec = FlightRecorder::new(test_cfg(3, 64, Path::new("unused")));
        for t in 0..10u64 {
            rec.begin_tick(t);
            rec.push("tick", t, &[1.0, 2.0, 0.0]);
            rec.push("tick_latency", t, &[5.0, 6.0, 7.0, 20.0]);
        }
        assert_eq!(rec.window(), Some((7, 9)));
        assert_eq!(rec.retained(), 6, "3 ticks x 2 records");
        assert_eq!(rec.pushed(), 20);
        assert_eq!(rec.dropped(), 0, "eviction by age is not a drop");
    }

    #[test]
    fn capacity_pressure_evicts_oldest() {
        let mut rec = FlightRecorder::new(test_cfg(100, 4, Path::new("unused")));
        for t in 0..6u64 {
            rec.begin_tick(t);
            rec.push("tick", t, &[0.0, 0.0, 0.0]);
        }
        assert_eq!(rec.retained(), 4);
        assert_eq!(rec.dropped(), 2);
        assert_eq!(rec.window(), Some((2, 5)));
    }

    #[test]
    fn dump_reuses_trace_schema_and_first_trigger_wins() {
        let dir = std::env::temp_dir().join("mmog_flight_test");
        let mut rec = FlightRecorder::new(test_cfg(4, 64, &dir));
        for t in 0..8u64 {
            rec.begin_tick(t);
            rec.push("tick", t, &[3.0, 2.5, 0.5]);
            rec.push("tick_latency", t, &[100.0, 200.0, 300.0, 700.0]);
            rec.push("provision", t, &[1.0, 2.0, 0.0, 1.0, 4.5, 4.0]);
        }
        let path = rec
            .trigger(FlightTrigger::Fault, 7, "unit/flight run")
            .expect("dump io")
            .expect("first trigger dumps");
        let body = std::fs::read_to_string(&path).expect("read dump");
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 1 + 12, "meta line + 4 ticks x 3 records");
        let mut last_tick = 0u64;
        for (i, line) in lines.iter().enumerate() {
            let (seq, scope, kind, value) = parse_trace_line(line).expect("parseable");
            assert_eq!(seq, i as u64, "seq must be contiguous");
            assert_eq!(scope, "unit/flight run");
            validate_event_fields(&kind, &value).expect("schema reuse");
            if i == 0 {
                assert_eq!(kind, "flight_meta");
                assert_eq!(value.get("trigger").unwrap().as_str(), Some("fault"));
                assert_eq!(value.get("tick_from").unwrap().as_u64(), Some(4));
                assert_eq!(value.get("tick_to").unwrap().as_u64(), Some(7));
            } else {
                let t = value.get("tick").unwrap().as_u64().unwrap();
                assert!(t >= last_tick, "ticks must be monotone");
                last_tick = t;
            }
        }
        // Second trigger is suppressed.
        let again = rec
            .trigger(FlightTrigger::DeadlineOverrun, 7, "unit/flight run")
            .expect("dump io");
        assert!(again.is_none());
        assert_eq!(rec.suppressed(), 1);
        let info = rec.dump_info().expect("recorded");
        assert_eq!(info.trigger, "fault");
        assert_eq!(info.records, 12);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn finish_dumps_only_when_configured() {
        let dir = std::env::temp_dir().join("mmog_flight_test_end");
        let mut cfg = test_cfg(4, 64, &dir);
        let mut rec = FlightRecorder::new(cfg.clone());
        rec.push("tick", 0, &[0.0, 0.0, 0.0]);
        assert!(rec.finish(0, "no-dump").expect("io").is_none());
        cfg.dump_at_end = true;
        let mut rec = FlightRecorder::new(cfg);
        rec.push("tick", 0, &[0.0, 0.0, 0.0]);
        let path = rec.finish(0, "end-dump").expect("io").expect("dumps");
        assert_eq!(rec.dump_info().unwrap().trigger, "explicit");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn sanitize_label_is_safe_and_collision_resistant() {
        let a = sanitize_label("scale/10k seed=7");
        assert!(a
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')));
        assert_ne!(
            sanitize_label("a/b"),
            sanitize_label("a b"),
            "distinct labels keep distinct stems via the hash suffix"
        );
        let long = "x".repeat(200);
        assert!(sanitize_label(&long).len() <= 96 + 9);
    }

    #[test]
    fn global_config_gates_recorder_construction() {
        // Default state: no config, no recorder. (Process-global, so
        // only assert when unset — parallel tests may install one.)
        if flight_config().is_none() {
            assert!(flight_recorder().is_none());
        }
    }
}
