//! `mmog-obs` — the deterministic observability plane of the `mmog-dc`
//! workspace.
//!
//! The paper's evaluation hinges on interior quantities the simulator
//! computes but never used to expose: per-tick predicted vs. actual
//! load, request–offer matching outcomes, over/under-allocation per
//! data center. This crate makes them first-class, in the spirit of the
//! autonomic monitoring/accounting plane of Buyya et al.'s
//! energy-efficient data-center architecture, without pulling in any
//! external dependency:
//!
//! - [`registry`] — counters, gauges and fixed-bucket histograms with
//!   cheap atomic recording, safe to hit from inside the `mmog-par`
//!   worker pool.
//! - [`span`] — a hierarchical wall-clock timing tree for the
//!   predict → demand → request → match → settle pipeline stages.
//! - [`event`] — a structured JSONL event log (provisioning decisions,
//!   match accept/reject with reason, prediction error per group, bulk
//!   waste per center), gated behind `--trace` / `MMOG_TRACE`.
//! - [`export`] — the `OBS_summary.json` document plus a human-readable
//!   table, and the schema validator CI runs against it.
//! - [`json`] — the dependency-free JSON layer underneath (the
//!   workspace's serde is an offline no-op shim).
//!
//! # The determinism rule
//!
//! Every *semantic* quantity (counts, loads, decisions) must be
//! byte-identical across `--jobs` values and repeated runs; wall-clock
//! timing is isolated in a clearly separated `timing` section that
//! determinism tests mask out. Concretely:
//!
//! - instruments declare a [`Domain`]; exports split on it;
//! - semantic instruments only use commutative integer operations (see
//!   [`registry`]), so parallel recording cannot reorder results;
//! - events are buffered per run and flushed in a configuration-derived
//!   order (see [`event`]), never in completion order;
//! - report text derived from wall clocks is wrapped in
//!   [`timing_block`] so [`mask_timing`] can cut it out for comparison.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod event;
pub mod export;
pub mod json;
pub mod registry;
pub mod span;

pub use event::{
    apply_trace_env, flush_trace, parse_trace_line, render_trace, set_trace_path, trace_enabled,
    EventSink, Field, KNOWN_EVENT_KINDS,
};
pub use export::{
    render_summary_table, semantic_section, summary_json, summary_value, validate_summary,
    SUMMARY_SCHEMA,
};
pub use registry::{
    counter, gauge, histogram, reset_metrics, snapshot_metrics, Counter, Domain, Gauge, Histogram,
    HistogramSnapshot, MetricsSnapshot,
};
pub use span::{
    reset_spans, snapshot_spans, span, time_stat, timer, SpanGuard, SpanSnapshot, SpanStat,
};

/// Marks the start of a non-deterministic (wall-clock) region inside
/// report text.
pub const TIMING_BEGIN: &str = "<<obs:timing>>";

/// Marks the end of a region opened by [`TIMING_BEGIN`].
pub const TIMING_END: &str = "<<obs:timing:end>>";

/// Replacement text [`mask_timing`] substitutes for a masked region.
pub const TIMING_MASKED: &str = "<<obs:timing masked>>";

/// Wraps report text in the timing markers. Reports embedding any
/// wall-clock-derived content must route it through this wrapper so the
/// determinism suite can compare everything else byte-for-byte.
#[must_use]
pub fn timing_block(body: &str) -> String {
    let sep = if body.ends_with('\n') || body.is_empty() {
        ""
    } else {
        "\n"
    };
    format!("{TIMING_BEGIN}\n{body}{sep}{TIMING_END}\n")
}

/// Replaces every `TIMING_BEGIN … TIMING_END` region (markers included)
/// with [`TIMING_MASKED`]. An unterminated region masks to the end of
/// the text.
#[must_use]
pub fn mask_timing(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(start) = rest.find(TIMING_BEGIN) {
        out.push_str(&rest[..start]);
        out.push_str(TIMING_MASKED);
        let after_begin = &rest[start + TIMING_BEGIN.len()..];
        match after_begin.find(TIMING_END) {
            Some(end) => rest = &after_begin[end + TIMING_END.len()..],
            None => return out,
        }
    }
    out.push_str(rest);
    out
}

/// Resets every process-global accumulator (metrics and spans) while
/// keeping registrations and cached handles valid. The trace
/// destination and its buffered chunks are untouched.
pub fn reset() {
    reset_metrics();
    reset_spans();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_block_round_trips_through_mask() {
        let report = format!(
            "semantic head\n{}semantic tail\n",
            timing_block("wall clock: 12.3ms")
        );
        let masked = mask_timing(&report);
        assert_eq!(
            masked,
            format!("semantic head\n{TIMING_MASKED}\nsemantic tail\n")
        );
    }

    #[test]
    fn mask_handles_multiple_and_unterminated_regions() {
        let text = format!("a {b}1{e} b {b}2{e} c", b = TIMING_BEGIN, e = TIMING_END);
        assert_eq!(
            mask_timing(&text),
            format!("a {TIMING_MASKED} b {TIMING_MASKED} c")
        );
        let unterminated = format!("head {TIMING_BEGIN} tail without end");
        assert_eq!(mask_timing(&unterminated), format!("head {TIMING_MASKED}"));
    }

    #[test]
    fn mask_of_clean_text_is_identity() {
        assert_eq!(mask_timing("no markers here\n"), "no markers here\n");
    }
}
