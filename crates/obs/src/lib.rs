//! `mmog-obs` — the deterministic observability plane of the `mmog-dc`
//! workspace.
//!
//! The paper's evaluation hinges on interior quantities the simulator
//! computes but never used to expose: per-tick predicted vs. actual
//! load, request–offer matching outcomes, over/under-allocation per
//! data center. This crate makes them first-class, in the spirit of the
//! autonomic monitoring/accounting plane of Buyya et al.'s
//! energy-efficient data-center architecture, without pulling in any
//! external dependency:
//!
//! - [`registry`] — counters, gauges and fixed-bucket histograms with
//!   cheap atomic recording, safe to hit from inside the `mmog-par`
//!   worker pool.
//! - [`span`] — a hierarchical wall-clock timing tree for the
//!   predict → demand → request → match → settle pipeline stages.
//! - [`latency`] — log-bucketed (HDR-style) latency histograms with
//!   0-alloc recording and p50/p90/p99/p999 estimation, the tail-latency
//!   layer span totals cannot provide.
//! - [`flight`] — a bounded ring-buffer flight recorder that dumps the
//!   last N ticks of full-detail events (`FLIGHT_<run>.jsonl`) only when
//!   a trigger fires, so detail survives scales where always-on tracing
//!   cannot.
//! - [`event`] — a structured JSONL event log (provisioning decisions,
//!   match accept/reject with reason, prediction error per group, bulk
//!   waste per center, and the causal lease lifecycle chain
//!   request → grant → mature → release), gated behind `--trace` /
//!   `MMOG_TRACE`.
//! - [`timeseries`] — fixed-memory, deterministically-downsampled
//!   per-metric ring series exported as `TS_<run>.json`.
//! - [`live`] — the live telemetry tap: an atomically-rewritten
//!   `OBS_live.json` snapshot (`--live` / `MMOG_LIVE`) that `mmog_top`
//!   renders while a run executes.
//! - [`export`] — the `OBS_summary.json` document plus a human-readable
//!   table, and the schema validator CI runs against it.
//! - [`json`] — the dependency-free JSON layer underneath (the
//!   workspace's serde is an offline no-op shim).
//!
//! # The determinism rule
//!
//! Every *semantic* quantity (counts, loads, decisions) must be
//! byte-identical across `--jobs` values and repeated runs; wall-clock
//! timing is isolated in a clearly separated `timing` section that
//! determinism tests mask out. Concretely:
//!
//! - instruments declare a [`Domain`]; exports split on it;
//! - semantic instruments only use commutative integer operations (see
//!   [`registry`]), so parallel recording cannot reorder results;
//! - events are buffered per run and flushed in a configuration-derived
//!   order (see [`event`]), never in completion order;
//! - report text derived from wall clocks is wrapped in
//!   [`timing_block`] so [`mask_timing`] can cut it out for comparison.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod event;
pub mod export;
pub mod flight;
pub mod json;
pub mod latency;
pub mod live;
pub mod registry;
pub mod span;
pub mod timeseries;

pub use event::{
    apply_trace_env, event_fields, flush_trace, parse_trace_line, render_trace, set_trace_path,
    trace_enabled, validate_event_fields, EventSink, Field, FieldType, EVENT_FIELDS,
    KNOWN_EVENT_KINDS,
};
pub use export::{
    note_wall_seconds, render_summary_table, semantic_section, summary_json, summary_value,
    validate_summary, SUMMARY_SCHEMA,
};
pub use flight::{
    flight_config, flight_recorder, sanitize_label, set_flight_config, FlightConfig,
    FlightDumpInfo, FlightRecord, FlightRecorder, FlightTrigger, FLIGHT_MAX_VALUES,
};
pub use latency::{
    latency, reset_latency, snapshot_latency, LatencyHisto, LatencySnapshot, LATENCY_BUCKETS,
};
pub use live::{
    apply_live_env, live_config, live_enabled, set_live_config, validate_live, write_live,
    LiveCenter, LiveConfig, LiveSnapshot, LIVE_SCHEMA,
};
pub use registry::{
    counter, gauge, histogram, reset_metrics, snapshot_metrics, Counter, Domain, Gauge, Histogram,
    HistogramSnapshot, MetricsSnapshot,
};
pub use span::{
    reset_spans, snapshot_spans, span, time_stat, timer, SpanGuard, SpanSnapshot, SpanStat,
};
pub use timeseries::{
    flush_ts, set_ts_dir, submit_ts, ts_enabled, validate_ts, RingSeries, TimeSeries,
    TS_DEFAULT_CAPACITY, TS_SCHEMA,
};

/// Marks the start of a non-deterministic (wall-clock) region inside
/// report text.
pub const TIMING_BEGIN: &str = "<<obs:timing>>";

/// Marks the end of a region opened by [`TIMING_BEGIN`].
pub const TIMING_END: &str = "<<obs:timing:end>>";

/// Replacement text [`mask_timing`] substitutes for a masked region.
pub const TIMING_MASKED: &str = "<<obs:timing masked>>";

/// Wraps report text in the timing markers. Reports embedding any
/// wall-clock-derived content must route it through this wrapper so the
/// determinism suite can compare everything else byte-for-byte.
#[must_use]
pub fn timing_block(body: &str) -> String {
    let sep = if body.ends_with('\n') || body.is_empty() {
        ""
    } else {
        "\n"
    };
    format!("{TIMING_BEGIN}\n{body}{sep}{TIMING_END}\n")
}

/// Replaces every `TIMING_BEGIN … TIMING_END` region (markers included)
/// with [`TIMING_MASKED`].
///
/// # Errors
/// A malformed report is an error, never a silently partial mask: an
/// open marker without a close marker (which would otherwise swallow
/// every semantic byte to the end of the text) and a stray close marker
/// without an open one both fail, naming the byte offset. Determinism
/// tests surface this instead of comparing half-masked text.
pub fn mask_timing(text: &str) -> Result<String, String> {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    let mut offset = 0usize;
    while let Some(start) = rest.find(TIMING_BEGIN) {
        let head = &rest[..start];
        if let Some(stray) = head.find(TIMING_END) {
            return Err(format!(
                "stray timing close marker at byte {} with no open marker",
                offset + stray
            ));
        }
        out.push_str(head);
        out.push_str(TIMING_MASKED);
        let after_begin = &rest[start + TIMING_BEGIN.len()..];
        match after_begin.find(TIMING_END) {
            Some(end) => {
                let consumed = start + TIMING_BEGIN.len() + end + TIMING_END.len();
                offset += consumed;
                rest = &after_begin[end + TIMING_END.len()..];
            }
            None => {
                return Err(format!(
                    "unterminated timing block opened at byte {}",
                    offset + start
                ))
            }
        }
    }
    if let Some(stray) = rest.find(TIMING_END) {
        return Err(format!(
            "stray timing close marker at byte {} with no open marker",
            offset + stray
        ));
    }
    out.push_str(rest);
    Ok(out)
}

/// Resets every process-global accumulator (metrics, spans and latency
/// histograms) while keeping registrations and cached handles valid.
/// The trace destination and its buffered chunks are untouched.
pub fn reset() {
    reset_metrics();
    reset_spans();
    reset_latency();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_block_round_trips_through_mask() {
        let report = format!(
            "semantic head\n{}semantic tail\n",
            timing_block("wall clock: 12.3ms")
        );
        let masked = mask_timing(&report).expect("well-formed block");
        assert_eq!(
            masked,
            format!("semantic head\n{TIMING_MASKED}\nsemantic tail\n")
        );
    }

    #[test]
    fn mask_handles_multiple_regions() {
        let text = format!("a {b}1{e} b {b}2{e} c", b = TIMING_BEGIN, e = TIMING_END);
        assert_eq!(
            mask_timing(&text).expect("well-formed blocks"),
            format!("a {TIMING_MASKED} b {TIMING_MASKED} c")
        );
    }

    #[test]
    fn mask_rejects_malformed_marker_structure() {
        let unterminated = format!("head {TIMING_BEGIN} tail without end");
        let err = mask_timing(&unterminated).expect_err("must not half-mask");
        assert!(err.contains("unterminated timing block"), "{err}");
        assert!(err.contains("byte 5"), "{err}");

        let stray = format!("head {TIMING_END} tail");
        let err = mask_timing(&stray).expect_err("stray close must fail");
        assert!(err.contains("stray timing close marker"), "{err}");

        let stray_after = format!("a {b}1{e} b {e}", b = TIMING_BEGIN, e = TIMING_END);
        assert!(mask_timing(&stray_after).is_err());
    }

    #[test]
    fn mask_of_clean_text_is_identity() {
        assert_eq!(
            mask_timing("no markers here\n").expect("clean text"),
            "no markers here\n"
        );
    }
}
