//! Fixed-memory, deterministically-downsampled per-metric time series.
//!
//! A [`RingSeries`] holds at most `capacity` points. Every sample is a
//! per-tick value; while fewer than `capacity` buckets exist each point
//! is one tick. When the ring fills, adjacent point pairs are merged
//! (arithmetic mean) into `capacity / 2` points and the bucket stride
//! doubles — so memory is fixed no matter how long the run, and the
//! downsampling decision depends only on the number of samples pushed,
//! never on wall-clock or thread schedule. Pushing the same sample
//! sequence always yields the same points, which is what lets the
//! determinism suite compare exported series byte-for-byte across
//! `--jobs` values.
//!
//! A [`TimeSeries`] groups named series into the same semantic/timing
//! split the rest of the crate uses: semantic series (demand,
//! allocation, shortfall) must be byte-identical across runs, timing
//! series (per-stage p99s, the memo skip rate) are execution-dependent
//! and excluded from determinism comparison. The skip rate sits on the
//! timing side for the same reason `sim.match.skips` is a timing
//! counter: memo replays key on the process-wide availability epoch,
//! so concurrent runs can spuriously demote a replay to an (equally
//! no-op) full walk without changing any semantic output.
//!
//! The export document (`TS_<run>.json`, schema [`TS_SCHEMA`]) is
//! collected through a process-global sink mirroring the trace path:
//! [`set_ts_dir`] configures (or disables, with `None`) the output
//! directory, runs submit their finished series under a deterministic
//! label, and [`flush_ts`] writes one file per run in label order.

use crate::flight::sanitize_label;
use crate::json::Value;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

/// Schema identifier stamped into every exported time-series document.
pub const TS_SCHEMA: &str = "mmog-obs-ts/v1";

/// Default per-series point capacity.
pub const TS_DEFAULT_CAPACITY: usize = 512;

/// One fixed-memory series: per-tick samples, merged pairwise whenever
/// the ring fills so the stride doubles and memory stays bounded.
#[derive(Debug, Clone)]
pub struct RingSeries {
    capacity: usize,
    stride: u64,
    points: Vec<f64>,
    pending_sum: f64,
    pending_count: u64,
    samples: u64,
}

impl RingSeries {
    /// A series holding at most `capacity` points (clamped to an even
    /// number ≥ 2 so pair-merging is always exact).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = (capacity.max(2)) & !1;
        Self {
            capacity,
            stride: 1,
            points: Vec::new(),
            pending_sum: 0.0,
            pending_count: 0,
            samples: 0,
        }
    }

    /// Appends one per-tick sample.
    pub fn push(&mut self, value: f64) {
        self.samples += 1;
        self.pending_sum += value;
        self.pending_count += 1;
        if self.pending_count == self.stride {
            if self.points.len() == self.capacity {
                // Merge adjacent pairs: capacity points become
                // capacity/2, the stride doubles, and the bucket we
                // just filled is now only half of a (new-stride)
                // bucket, so it stays pending.
                self.points = self
                    .points
                    .chunks(2)
                    .map(|pair| (pair[0] + pair[1]) / 2.0)
                    .collect();
                self.stride *= 2;
            }
            if self.pending_count == self.stride {
                self.points.push(self.pending_sum / self.stride as f64);
                self.pending_sum = 0.0;
                self.pending_count = 0;
            }
        }
    }

    /// Ticks per exported point.
    #[must_use]
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Completed points (mean value per stride-sized bucket).
    #[must_use]
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// Total samples pushed (including any trailing partial bucket).
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The series as a JSON object (`stride`, `samples`, `points`).
    #[must_use]
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("stride".to_string(), Value::UInt(self.stride)),
            ("samples".to_string(), Value::UInt(self.samples)),
            (
                "points".to_string(),
                Value::Arr(self.points.iter().map(|&p| Value::Num(p)).collect()),
            ),
        ])
    }
}

/// A named collection of ring series, split into the crate's semantic
/// (deterministic) and timing (wall-clock) domains.
#[derive(Debug)]
pub struct TimeSeries {
    capacity: usize,
    semantic: Vec<(String, RingSeries)>,
    timing: Vec<(String, RingSeries)>,
}

impl TimeSeries {
    /// A collection whose series each hold at most `capacity` points.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            semantic: Vec::new(),
            timing: Vec::new(),
        }
    }

    fn series<'a>(
        table: &'a mut Vec<(String, RingSeries)>,
        capacity: usize,
        name: &str,
    ) -> &'a mut RingSeries {
        if let Some(i) = table.iter().position(|(n, _)| n == name) {
            return &mut table[i].1;
        }
        table.push((name.to_string(), RingSeries::new(capacity)));
        &mut table.last_mut().expect("just pushed").1
    }

    /// Records one per-tick sample of a semantic (deterministic) metric.
    pub fn record_semantic(&mut self, name: &str, value: f64) {
        Self::series(&mut self.semantic, self.capacity, name).push(value);
    }

    /// Records one per-tick sample of a timing (wall-clock) metric.
    pub fn record_timing(&mut self, name: &str, value: f64) {
        Self::series(&mut self.timing, self.capacity, name).push(value);
    }

    /// The semantic subtree alone — what determinism tests compare.
    #[must_use]
    pub fn semantic_value(&self) -> Value {
        Value::Obj(
            self.semantic
                .iter()
                .map(|(n, s)| (n.clone(), s.to_value()))
                .collect(),
        )
    }

    /// The full export document for one run.
    #[must_use]
    pub fn to_value(&self, run: &str, ticks: u64) -> Value {
        Value::Obj(vec![
            ("schema".to_string(), Value::Str(TS_SCHEMA.to_string())),
            ("run".to_string(), Value::Str(run.to_string())),
            ("ticks".to_string(), Value::UInt(ticks)),
            ("capacity".to_string(), Value::UInt(self.capacity as u64)),
            ("semantic".to_string(), self.semantic_value()),
            (
                "timing".to_string(),
                Value::Obj(
                    self.timing
                        .iter()
                        .map(|(n, s)| (n.clone(), s.to_value()))
                        .collect(),
                ),
            ),
        ])
    }
}

fn validate_series(section: &str, name: &str, value: &Value, capacity: u64) -> Result<(), String> {
    let stride = value
        .get("stride")
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("{section}.{name}: missing stride"))?;
    if stride == 0 || (stride & (stride - 1)) != 0 {
        return Err(format!(
            "{section}.{name}: stride {stride} is not a power of two"
        ));
    }
    let samples = value
        .get("samples")
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("{section}.{name}: missing samples"))?;
    let points = value
        .get("points")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("{section}.{name}: missing points array"))?;
    if points.len() as u64 > capacity {
        return Err(format!(
            "{section}.{name}: {} points exceed declared capacity {capacity}",
            points.len()
        ));
    }
    for (i, p) in points.iter().enumerate() {
        if p.as_f64().is_none() {
            return Err(format!("{section}.{name}: point {i} is not a number"));
        }
    }
    let covered = stride * points.len() as u64;
    if samples < covered || samples - covered >= stride {
        return Err(format!(
            "{section}.{name}: {samples} samples inconsistent with {} points of stride {stride}",
            points.len()
        ));
    }
    Ok(())
}

/// Validates a parsed `TS_<run>.json` document against [`TS_SCHEMA`]:
/// envelope fields, and for every series a power-of-two stride, numeric
/// points within capacity, and a sample count consistent with the
/// stride/point accounting.
///
/// # Errors
/// Returns a message naming the first violation.
pub fn validate_ts(value: &Value) -> Result<(), String> {
    let schema = value
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing schema field")?;
    if schema != TS_SCHEMA {
        return Err(format!("schema is `{schema}`, expected `{TS_SCHEMA}`"));
    }
    value
        .get("run")
        .and_then(Value::as_str)
        .ok_or("missing run label")?;
    value
        .get("ticks")
        .and_then(Value::as_u64)
        .ok_or("missing ticks")?;
    let capacity = value
        .get("capacity")
        .and_then(Value::as_u64)
        .ok_or("missing capacity")?;
    for section in ["semantic", "timing"] {
        let table = value
            .get(section)
            .and_then(Value::as_obj)
            .ok_or_else(|| format!("missing {section} section"))?;
        for (name, series) in table {
            validate_series(section, name, series, capacity)?;
        }
    }
    Ok(())
}

struct TsState {
    dir: PathBuf,
    docs: Vec<(String, String)>,
}

fn ts_cell() -> &'static Mutex<Option<TsState>> {
    static TS: OnceLock<Mutex<Option<TsState>>> = OnceLock::new();
    TS.get_or_init(|| Mutex::new(None))
}

fn ts_lock() -> std::sync::MutexGuard<'static, Option<TsState>> {
    ts_cell()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Configures (or disables, with `None`) the directory `TS_<run>.json`
/// documents are flushed into. Discards documents buffered for a
/// previous destination. `None` (the default) keeps runs byte-identical
/// to a build without the time-series plane at all.
pub fn set_ts_dir(dir: Option<&Path>) {
    *ts_lock() = dir.map(|d| TsState {
        dir: d.to_path_buf(),
        docs: Vec::new(),
    });
}

/// Whether a time-series output directory is configured.
#[must_use]
pub fn ts_enabled() -> bool {
    ts_lock().is_some()
}

/// Hands one run's rendered export document to the global collector.
/// `label` must be deterministic for the work performed (same contract
/// as trace-chunk labels).
pub fn submit_ts(label: &str, doc: &Value) {
    let mut state = ts_lock();
    if let Some(state) = state.as_mut() {
        state.docs.push((label.to_string(), doc.render_pretty()));
    }
}

/// Writes every buffered document as `TS_<sanitized-label>.json` in the
/// configured directory, in label order, and clears the buffer (the
/// destination stays configured). Returns the paths written (empty when
/// disabled).
///
/// Two runs can share one label (the same configuration reached from
/// different experiments — trace chunks face the same collision and
/// sort by content), so documents are ordered by (label, semantic
/// section) — never by the wall-clock `timing` section, which would
/// make the ordering jobs-dependent — and later same-label documents
/// get a deterministic `-2`, `-3`, … filename suffix instead of
/// silently overwriting the first.
///
/// # Errors
/// Propagates the first file-write error, leaving the buffer intact.
pub fn flush_ts() -> std::io::Result<Vec<PathBuf>> {
    let mut state = ts_lock();
    let Some(state) = state.as_mut() else {
        return Ok(Vec::new());
    };
    fn semantic_of(doc: &str) -> String {
        crate::json::parse(doc)
            .ok()
            .and_then(|v| v.get("semantic").map(crate::json::Value::render))
            .unwrap_or_default()
    }
    state
        .docs
        .sort_by_cached_key(|(label, doc)| (label.clone(), semantic_of(doc)));
    if !state.docs.is_empty() {
        std::fs::create_dir_all(&state.dir)?;
    }
    let mut written: Vec<PathBuf> = Vec::with_capacity(state.docs.len());
    let mut prev: Option<(&String, u32)> = None;
    for (label, doc) in &state.docs {
        let ordinal = match prev {
            Some((p, n)) if p == label => n + 1,
            _ => 1,
        };
        prev = Some((label, ordinal));
        let stem = sanitize_label(label);
        let name = if ordinal == 1 {
            format!("TS_{stem}.json")
        } else {
            format!("TS_{stem}-{ordinal}.json")
        };
        let path = state.dir.join(name);
        std::fs::write(&path, doc)?;
        written.push(path);
    }
    state.docs.clear();
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn stride_doubles_when_the_ring_fills() {
        let mut s = RingSeries::new(4);
        for i in 0..4 {
            s.push(i as f64);
        }
        assert_eq!(s.stride(), 1);
        assert_eq!(s.points(), &[0.0, 1.0, 2.0, 3.0]);
        // The fifth sample forces a merge: [0.5, 2.5] at stride 2, with
        // the new sample pending in a half-full bucket.
        s.push(10.0);
        assert_eq!(s.stride(), 2);
        assert_eq!(s.points(), &[0.5, 2.5]);
        assert_eq!(s.samples(), 5);
        s.push(20.0);
        assert_eq!(s.points(), &[0.5, 2.5, 15.0]);
    }

    #[test]
    fn downsampling_is_a_pure_function_of_the_sample_sequence() {
        let mut a = RingSeries::new(8);
        let mut b = RingSeries::new(8);
        for i in 0..1000 {
            let v = (i % 17) as f64 * 0.25;
            a.push(v);
            b.push(v);
        }
        assert_eq!(a.stride(), b.stride());
        assert_eq!(a.points(), b.points());
        assert!(a.points().len() <= 8);
        // 1000 samples at the final stride cover every point exactly.
        let covered = a.stride() * a.points().len() as u64;
        assert!(covered <= 1000 && 1000 - covered < a.stride());
    }

    #[test]
    fn export_document_round_trips_through_the_validator() {
        let mut ts = TimeSeries::new(4);
        for i in 0..10 {
            ts.record_semantic("demand_cpu", i as f64);
            ts.record_semantic("alloc_cpu", i as f64 + 1.0);
            ts.record_timing("tick_p99_us", 12.5);
        }
        let doc = ts.to_value("quick seed=7", 10);
        validate_ts(&doc).expect("self-rendered doc must validate");
        let reparsed = json::parse(&doc.render()).unwrap();
        validate_ts(&reparsed).expect("doc must survive a parse round-trip");
    }

    #[test]
    fn validator_names_the_first_violation() {
        let bad_schema = json::parse(r#"{"schema":"nope"}"#).unwrap();
        assert!(validate_ts(&bad_schema).unwrap_err().contains("schema"));

        let bad_stride = json::parse(
            r#"{"schema":"mmog-obs-ts/v1","run":"r","ticks":3,"capacity":4,
               "semantic":{"x":{"stride":3,"samples":3,"points":[1,2,3]}},"timing":{}}"#,
        )
        .unwrap();
        let err = validate_ts(&bad_stride).unwrap_err();
        assert!(err.contains("power of two"), "{err}");

        let bad_count = json::parse(
            r#"{"schema":"mmog-obs-ts/v1","run":"r","ticks":9,"capacity":4,
               "semantic":{"x":{"stride":2,"samples":9,"points":[1,2]}},"timing":{}}"#,
        )
        .unwrap();
        let err = validate_ts(&bad_count).unwrap_err();
        assert!(err.contains("inconsistent"), "{err}");
    }

    #[test]
    fn ts_sink_collects_and_flushes_in_label_order() {
        // The sink is process-global; this test owns it briefly and
        // restores the disabled default before returning.
        let dir = std::env::temp_dir().join("mmog-ts-test");
        std::fs::create_dir_all(&dir).unwrap();
        set_ts_dir(Some(&dir));
        assert!(ts_enabled());
        let mut ts = TimeSeries::new(4);
        ts.record_semantic("demand_cpu", 1.0);
        submit_ts("b run", &ts.to_value("b run", 1));
        submit_ts("a run", &ts.to_value("a run", 1));
        let written = flush_ts().unwrap();
        assert_eq!(written.len(), 2);
        assert!(
            written[0].file_name().unwrap().to_str().unwrap()
                < written[1].file_name().unwrap().to_str().unwrap()
        );
        for path in &written {
            let doc = json::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
            validate_ts(&doc).unwrap();
            std::fs::remove_file(path).unwrap();
        }
        // Duplicate labels: two runs share a label but differ
        // semantically; submission order is reversed relative to
        // semantic order to prove the sort — not arrival — assigns
        // filenames. (Same global sink, so this stays in one #[test].)
        let mut hi = TimeSeries::new(4);
        hi.record_semantic("demand_cpu", 9.0);
        let mut lo = TimeSeries::new(4);
        lo.record_semantic("demand_cpu", 1.0);
        submit_ts("same run", &hi.to_value("same run", 1));
        submit_ts("same run", &lo.to_value("same run", 1));
        let written = flush_ts().unwrap();
        assert_eq!(written.len(), 2);
        let names: Vec<&str> = written
            .iter()
            .map(|p| p.file_name().unwrap().to_str().unwrap())
            .collect();
        assert!(
            names[0].ends_with(".json") && !names[0].contains("-2"),
            "{names:?}"
        );
        assert!(names[1].ends_with("-2.json"), "{names:?}");
        // The unsuffixed file holds the semantically-smaller document.
        let first = std::fs::read_to_string(&written[0]).unwrap();
        let second = std::fs::read_to_string(&written[1]).unwrap();
        assert!(first.contains("1"), "semantic sort puts 1.0 first: {first}");
        assert!(second.contains("9"), "{second}");
        for path in &written {
            validate_ts(&json::parse(&std::fs::read_to_string(path).unwrap()).unwrap()).unwrap();
            std::fs::remove_file(path).unwrap();
        }
        set_ts_dir(None);
    }
}
