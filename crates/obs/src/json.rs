//! A minimal, dependency-free JSON value, writer and parser.
//!
//! The workspace's `serde` is an offline no-op shim (the derives mark
//! types but serialise nothing), so the observability plane carries its
//! own JSON layer: [`Value`] for building documents, [`Value::render`]
//! / [`Value::render_pretty`] for deterministic output, and [`parse`]
//! for reading documents back (the event-log round-trip and the
//! `OBS_summary.json` schema checker).
//!
//! Determinism rules:
//! - Object member order is preserved exactly as inserted (a `Vec`, not
//!   a hash map), so rendering is byte-stable.
//! - Integers render through the decimal `Display` of `i64`/`u64`;
//!   floats through Rust's shortest round-trip formatting. Identical
//!   bit patterns always render to identical bytes.
//! - Non-finite floats render as `null` (JSON has no NaN/∞).

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (renders without a decimal point).
    Int(i64),
    /// An unsigned integer (renders without a decimal point).
    UInt(u64),
    /// A double-precision number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; member order is preserved and meaningful for output.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks a key up in an object (`None` for other node kinds).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string node.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if losslessly representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// The value as a signed integer, if losslessly representable.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// The value as a float (integers widen).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Num(x) => Some(x),
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            _ => None,
        }
    }

    /// The array elements, if this is an array node.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if this is an object node.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Renders the value compactly (no whitespace).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders the value with two-space indentation.
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => write_i64(out, *i),
            Value::UInt(u) => write_u64(out, *u),
            Value::Num(x) => write_f64(out, *x),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Value::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Value::Obj(members) if !members.is_empty() => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Writes a decimal `u64` without going through `core::fmt` — event
/// emission formats millions of small integers per traced run, and the
/// formatting machinery dominates at that volume.
pub(crate) fn write_u64(out: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("decimal digits are ASCII"));
}

/// Signed companion of [`write_u64`].
pub(crate) fn write_i64(out: &mut String, v: i64) {
    if v < 0 {
        out.push('-');
    }
    write_u64(out, v.unsigned_abs());
}

/// Writes a float in valid JSON: shortest round-trip decimal for finite
/// values, `null` otherwise.
///
/// Quarter-integer multiples (the vast majority of traced values —
/// lease amounts are bulk-rounded) take a manual path that matches the
/// `Display` rendering exactly without the shortest-round-trip search.
pub(crate) fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let quarters = x * 4.0;
    // Exactness bound: below 2^52 every quarter multiple is exact in
    // f64 and `x != 0.0` keeps `-0.0` (which Display renders "-0") on
    // the general path.
    if x != 0.0 && quarters == quarters.trunc() && quarters.abs() < 4.503_599_627_370_496e15 {
        if x < 0.0 {
            out.push('-');
        }
        let q = quarters.abs() as u64;
        write_u64(out, q / 4);
        match q % 4 {
            1 => out.push_str(".25"),
            2 => out.push_str(".5"),
            3 => out.push_str(".75"),
            _ => {}
        }
        return;
    }
    let _ = write!(out, "{x}");
}

pub(crate) fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    // Fast path: copy maximal runs that need no escaping in one
    // `push_str` instead of pushing char-by-char (event emission
    // renders millions of short strings per traced run).
    let mut start = 0;
    for (i, c) in s.char_indices() {
        if c != '"' && c != '\\' && (c as u32) >= 0x20 {
            continue;
        }
        out.push_str(&s[start..i]);
        start = i + c.len_utf8();
        write_escape_code(out, c);
    }
    out.push_str(&s[start..]);
    out.push('"');
}

fn write_escape_code(out: &mut String, c: char) {
    match c {
        '"' => out.push_str("\\\""),
        '\\' => out.push_str("\\\\"),
        '\n' => out.push_str("\\n"),
        '\r' => out.push_str("\\r"),
        '\t' => out.push_str("\\t"),
        c => {
            let _ = write!(out, "\\u{:04x}", c as u32);
        }
    }
}

/// Parses one JSON document. Trailing whitespace is allowed; trailing
/// content is an error.
///
/// # Errors
/// Returns a message naming the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    if !float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let code = if (0xD800..0xDC00).contains(&hi)
                            && bytes.get(*pos + 1..*pos + 3) == Some(b"\\u")
                        {
                            let lo = parse_hex4(bytes, *pos + 3)?;
                            *pos += 6;
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always on a character boundary).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8".to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let slice = bytes
        .get(at..at + 4)
        .ok_or_else(|| "truncated \\u escape".to_string())?;
    let text = std::str::from_utf8(slice).map_err(|_| "invalid \\u escape".to_string())?;
    u32::from_str_radix(text, 16).map_err(|_| "invalid \\u escape".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_documents() {
        let v = Value::Obj(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Arr(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::Str("x\"y\n".into())),
        ]);
        assert_eq!(v.render(), r#"{"a":1,"b":[true,null],"c":"x\"y\n"}"#);
    }

    #[test]
    fn floats_render_shortest_and_nonfinite_as_null() {
        assert_eq!(Value::Num(0.1).render(), "0.1");
        assert_eq!(Value::Num(2.0).render(), "2");
        assert_eq!(Value::Num(f64::NAN).render(), "null");
        assert_eq!(Value::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn parse_round_trips_documents() {
        let text = r#"{"a":1,"b":[true,null,-7,3.5],"c":"x\"y\n","d":{"e":"é"}}"#;
        let v = parse(text).unwrap();
        assert_eq!(parse(&v.render()).unwrap(), v);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(
            v.get("b").and_then(Value::as_arr).map(<[Value]>::len),
            Some(4)
        );
        assert_eq!(
            v.get("d").and_then(|d| d.get("e")).unwrap().as_str(),
            Some("é")
        );
    }

    #[test]
    fn parse_handles_surrogate_pairs() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn pretty_rendering_is_parseable() {
        let v = Value::Obj(vec![
            ("empty".into(), Value::Obj(vec![])),
            (
                "list".into(),
                Value::Arr(vec![Value::Int(-1), Value::UInt(2)]),
            ),
        ]);
        let pretty = v.render_pretty();
        assert_eq!(parse(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  \"list\""));
    }

    #[test]
    fn integer_widths_round_trip() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v, Value::UInt(u64::MAX));
        let v = parse("-9223372036854775808").unwrap();
        assert_eq!(v.as_i64(), Some(i64::MIN));
    }
}
