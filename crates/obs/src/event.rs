//! The structured JSONL event log.
//!
//! Simulations emit semantic events — provisioning decisions, matching
//! accept/reject outcomes, per-group prediction error, per-center bulk
//! waste — as one JSON object per line. The log is gated: when no trace
//! path is configured ([`set_trace_path`] / the `MMOG_TRACE`
//! environment variable, wired through `--trace` in the bench CLI),
//! [`EventSink::if_enabled`] returns `None` and emission costs one
//! branch.
//!
//! # Determinism
//!
//! Events carry **no wall-clock fields**, and the log is byte-identical
//! for any `--jobs` value by construction:
//!
//! 1. Each simulation buffers its events in a private [`EventSink`] and
//!    only ever emits from its own serial sections, so within-run order
//!    is the deterministic program order.
//! 2. A finished sink submits its lines as one *chunk* under a
//!    deterministic label derived from the run's configuration.
//! 3. [`flush_trace`] sorts chunks by `(label, content)` — not by
//!    completion time — assigns global sequence numbers, and writes the
//!    file. Concurrent experiments can finish in any order without
//!    perturbing a single output byte.

use crate::json::{self, Value};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

/// Every event kind the simulation engine emits, including the fault
/// plane's. Trace validators (`obs_check`) reject kinds outside this
/// list, so adding an emitter means extending it.
pub const KNOWN_EVENT_KINDS: &[&str] = &[
    "run_start",
    "tick",
    "provision",
    "match_reject",
    "prediction_group",
    "center_tick",
    "center_usage",
    "run_end",
    // Fault plane (only present when a fault schedule is installed).
    "center_down",
    "center_up",
    "center_degraded",
    "lease_revoked",
    "predictor_dropout",
    "reprovision",
    "fault_recovery",
    "fault_summary",
    // Flight recorder (only present in `FLIGHT_*.jsonl` dumps).
    "flight_meta",
    "tick_latency",
    // Scenario engine (only present when a scenario timeline is
    // installed).
    "topology_change",
    "partition",
    "heal",
    "migration",
    "flash_crowd",
    // Lease lifecycle (causal chain request → grant → mature →
    // release). `lease_revoked` above is the fault-plane terminal of
    // the same chain; every granted lease ends in exactly one
    // `lease_release` or `lease_revoked`.
    "lease_request",
    "lease_grant",
    "lease_mature",
    "lease_release",
];

/// The type an event field must carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldType {
    /// An unsigned integer (`Value::as_u64` succeeds).
    U64,
    /// Any JSON number — floats render shortest-round-trip, so a whole
    /// `f64` like `2.0` reads back as an integer node and must still
    /// pass.
    Num,
    /// A string.
    Str,
    /// A boolean.
    Bool,
}

impl FieldType {
    /// Whether `value` satisfies this type.
    #[must_use]
    pub fn admits(self, value: &Value) -> bool {
        match self {
            FieldType::U64 => value.as_u64().is_some(),
            FieldType::Num => value.as_f64().is_some(),
            FieldType::Str => value.as_str().is_some(),
            FieldType::Bool => matches!(value, Value::Bool(_)),
        }
    }
}

/// The exact field set (name, type, order) each event kind carries —
/// the write-side contract of every emitter in the workspace. Trace
/// validators (`obs_check`, the analytics reader) check events against
/// this table, so adding or changing an emitter means extending it in
/// lock-step with [`KNOWN_EVENT_KINDS`].
pub const EVENT_FIELDS: &[(&str, &[(&str, FieldType)])] = &[
    (
        "run_start",
        &[
            ("mode", FieldType::Str),
            ("groups", FieldType::U64),
            ("centers", FieldType::U64),
            ("ticks", FieldType::U64),
            ("warmup", FieldType::U64),
        ],
    ),
    (
        "tick",
        &[
            ("tick", FieldType::U64),
            ("demand_cpu", FieldType::Num),
            ("alloc_cpu", FieldType::Num),
            ("shortfall_cpu", FieldType::Num),
        ],
    ),
    (
        "provision",
        &[
            ("tick", FieldType::U64),
            ("operator", FieldType::U64),
            ("granted", FieldType::U64),
            ("released", FieldType::U64),
            ("unmet", FieldType::Bool),
            ("target_cpu", FieldType::Num),
            ("alloc_cpu", FieldType::Num),
        ],
    ),
    (
        "match_reject",
        &[
            ("tick", FieldType::U64),
            ("operator", FieldType::U64),
            ("center", FieldType::U64),
            ("reason", FieldType::Str),
        ],
    ),
    (
        "prediction_group",
        &[
            ("group", FieldType::U64),
            ("operator", FieldType::U64),
            ("game", FieldType::Str),
            ("error_pct", FieldType::Num),
        ],
    ),
    (
        "center_tick",
        &[
            ("tick", FieldType::U64),
            ("center", FieldType::U64),
            ("alloc_cpu", FieldType::Num),
            ("free_cpu", FieldType::Num),
        ],
    ),
    (
        "center_usage",
        &[
            ("name", FieldType::Str),
            ("capacity_cpu", FieldType::Num),
            ("cpu_unit_ticks", FieldType::Num),
            ("cpu_free_unit_ticks", FieldType::Num),
        ],
    ),
    (
        "run_end",
        &[
            ("ticks", FieldType::U64),
            ("unmet_steps", FieldType::U64),
            ("leases_granted", FieldType::U64),
            ("leases_released", FieldType::U64),
        ],
    ),
    (
        "center_down",
        &[
            ("tick", FieldType::U64),
            ("center", FieldType::U64),
            ("name", FieldType::Str),
            ("leases_lost", FieldType::U64),
        ],
    ),
    (
        "center_up",
        &[
            ("tick", FieldType::U64),
            ("center", FieldType::U64),
            ("name", FieldType::Str),
        ],
    ),
    (
        "center_degraded",
        &[
            ("tick", FieldType::U64),
            ("center", FieldType::U64),
            ("fraction", FieldType::Num),
        ],
    ),
    (
        "lease_revoked",
        &[
            ("tick", FieldType::U64),
            ("center", FieldType::U64),
            ("lease", FieldType::U64),
            ("operator", FieldType::U64),
            ("cpu", FieldType::Num),
        ],
    ),
    ("predictor_dropout", &[("tick", FieldType::U64)]),
    (
        "reprovision",
        &[
            ("tick", FieldType::U64),
            ("operator", FieldType::U64),
            ("granted", FieldType::U64),
            ("lost_cpu", FieldType::Num),
        ],
    ),
    (
        "fault_recovery",
        &[
            ("tick", FieldType::U64),
            ("center", FieldType::U64),
            ("down_ticks", FieldType::U64),
        ],
    ),
    (
        "fault_summary",
        &[
            ("events", FieldType::U64),
            ("leases_revoked", FieldType::U64),
            ("reprovisions", FieldType::U64),
            ("unserved_player_ticks", FieldType::Num),
            ("recovered", FieldType::U64),
            ("unrecovered", FieldType::U64),
        ],
    ),
    (
        // First line of every flight dump: the retention window and the
        // trigger that fired it.
        "flight_meta",
        &[
            ("run", FieldType::Str),
            ("trigger", FieldType::Str),
            ("trigger_tick", FieldType::U64),
            ("retain_ticks", FieldType::U64),
            ("tick_from", FieldType::U64),
            ("tick_to", FieldType::U64),
            ("records", FieldType::U64),
        ],
    ),
    (
        // Per-tick stage timings in the flight ring (wall-clock — these
        // never appear in the semantic trace, only in flight dumps).
        "tick_latency",
        &[
            ("tick", FieldType::U64),
            ("predict_ns", FieldType::U64),
            ("reduce_ns", FieldType::U64),
            ("settle_ns", FieldType::U64),
            ("tick_ns", FieldType::U64),
        ],
    ),
    (
        // A backbone link's distance factor changed (degrade or
        // restore; restore carries factor 1).
        "topology_change",
        &[
            ("tick", FieldType::U64),
            ("a", FieldType::U64),
            ("b", FieldType::U64),
            ("factor", FieldType::Num),
        ],
    ),
    (
        // The federation split along `mask` into `components` parts.
        "partition",
        &[
            ("tick", FieldType::U64),
            ("mask", FieldType::U64),
            ("components", FieldType::U64),
        ],
    ),
    (
        // All partitions healed; `components` is 1 again.
        "heal",
        &[("tick", FieldType::U64), ("components", FieldType::U64)],
    ),
    (
        // One group migrated away from `center`, dropping `leases`
        // leases and charging `cost` unserved player-ticks.
        "migration",
        &[
            ("tick", FieldType::U64),
            ("group", FieldType::U64),
            ("center", FieldType::U64),
            ("leases", FieldType::U64),
            ("cost", FieldType::Num),
        ],
    ),
    (
        // A region's demand multiplier changed (begin carries the peak
        // factor, end carries 1); `groups` is the number of groups
        // homed in the region.
        "flash_crowd",
        &[
            ("tick", FieldType::U64),
            ("region", FieldType::U64),
            ("factor", FieldType::Num),
            ("groups", FieldType::U64),
        ],
    ),
    (
        // A provisioner asked the matcher for capacity. `request` is
        // the stable causal id (group index in the high 32 bits, a
        // per-group sequence number in the low 32); every grant the
        // request produced carries the same id.
        "lease_request",
        &[
            ("tick", FieldType::U64),
            ("request", FieldType::U64),
            ("group", FieldType::U64),
            ("operator", FieldType::U64),
            ("cpu", FieldType::Num),
        ],
    ),
    (
        // The matcher granted a lease against `request`. The causal
        // lease id is the `(center, lease)` pair — centers never reuse
        // lease ids, so the pair is unique for the whole run.
        "lease_grant",
        &[
            ("tick", FieldType::U64),
            ("request", FieldType::U64),
            ("center", FieldType::U64),
            ("lease", FieldType::U64),
            ("operator", FieldType::U64),
            ("cpu", FieldType::Num),
        ],
    ),
    (
        // A held lease passed its earliest-release tick and became
        // releasable. Emitted the first tick the owning provisioner
        // observes maturity, so the stage is present wherever the
        // provisioner adjusts every tick (dynamic mode).
        "lease_mature",
        &[
            ("tick", FieldType::U64),
            ("center", FieldType::U64),
            ("lease", FieldType::U64),
            ("operator", FieldType::U64),
        ],
    ),
    (
        // A lease left its holder for any non-fault reason; `cause` is
        // one of surplus / reshape / center_down / migration /
        // failover / run_end. Fault-plane revocations keep emitting
        // `lease_revoked` instead — the two kinds together are the
        // terminal set of the lifecycle chain.
        "lease_release",
        &[
            ("tick", FieldType::U64),
            ("center", FieldType::U64),
            ("lease", FieldType::U64),
            ("operator", FieldType::U64),
            ("cpu", FieldType::Num),
            ("cause", FieldType::Str),
        ],
    ),
];

/// The expected field set for `kind`, if it is a known event kind.
#[must_use]
pub fn event_fields(kind: &str) -> Option<&'static [(&'static str, FieldType)]> {
    EVENT_FIELDS
        .iter()
        .find(|(k, _)| *k == kind)
        .map(|(_, fields)| *fields)
}

/// Validates a parsed trace event against [`EVENT_FIELDS`]: after the
/// `seq`/`scope`/`kind` envelope, the event must carry exactly the
/// declared fields, in declaration order, each with the declared type.
/// Emission order is deterministic, so the order check costs nothing
/// and catches emitter/schema skew exactly.
///
/// # Errors
/// Returns a message naming the first violation: unknown kind, missing
/// or unexpected field, order skew, or type mismatch.
pub fn validate_event_fields(kind: &str, value: &Value) -> Result<(), String> {
    let Some(expected) = event_fields(kind) else {
        return Err(format!("unknown event kind `{kind}`"));
    };
    let members = value.as_obj().ok_or("event is not a JSON object")?;
    let payload: Vec<&(String, Value)> = members
        .iter()
        .filter(|(name, _)| !matches!(name.as_str(), "seq" | "scope" | "kind"))
        .collect();
    if payload.len() != expected.len() {
        let actual: Vec<&str> = payload.iter().map(|(n, _)| n.as_str()).collect();
        let wanted: Vec<&str> = expected.iter().map(|(n, _)| *n).collect();
        return Err(format!(
            "`{kind}` carries fields {actual:?}, expected {wanted:?}"
        ));
    }
    for ((name, value), (want_name, want_type)) in payload.iter().zip(expected) {
        if name != want_name {
            return Err(format!(
                "`{kind}` field order skew: found `{name}` where `{want_name}` was expected"
            ));
        }
        if !want_type.admits(value) {
            return Err(format!(
                "`{kind}` field `{name}` has the wrong type (expected {want_type:?})"
            ));
        }
    }
    Ok(())
}

/// One typed field value of an event.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (rendered shortest round-trip; non-finite becomes `null`).
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for Field {
    fn from(v: u64) -> Self {
        Field::U64(v)
    }
}
impl From<usize> for Field {
    fn from(v: usize) -> Self {
        Field::U64(v as u64)
    }
}
impl From<u32> for Field {
    fn from(v: u32) -> Self {
        Field::U64(u64::from(v))
    }
}
impl From<i64> for Field {
    fn from(v: i64) -> Self {
        Field::I64(v)
    }
}
impl From<f64> for Field {
    fn from(v: f64) -> Self {
        Field::F64(v)
    }
}
impl From<&str> for Field {
    fn from(v: &str) -> Self {
        Field::Str(v.to_string())
    }
}
impl From<String> for Field {
    fn from(v: String) -> Self {
        Field::Str(v)
    }
}
impl From<bool> for Field {
    fn from(v: bool) -> Self {
        Field::Bool(v)
    }
}

impl Field {
    /// Writes the field's JSON rendering, byte-identical to what the
    /// equivalent [`Value`] node would produce.
    fn write(&self, out: &mut String) {
        match self {
            Field::U64(v) => crate::json::write_u64(out, *v),
            Field::I64(v) => crate::json::write_i64(out, *v),
            Field::F64(v) => crate::json::write_f64(out, *v),
            Field::Str(v) => crate::json::write_escaped(out, v),
            Field::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        }
    }
}

/// A per-run event buffer. Create one per simulation (or other traced
/// unit of work), emit from serial sections only, and [`submit`] the
/// finished buffer under a deterministic label.
///
/// Events are buffered as one newline-separated string rather than a
/// `Vec<String>`: traced suite runs emit millions of events, and one
/// geometric buffer keeps emission at a plain byte append instead of a
/// per-event heap allocation.
///
/// [`submit`]: EventSink::submit
#[derive(Debug, Default)]
pub struct EventSink {
    /// Newline-terminated JSON lines, concatenated.
    buf: String,
    /// Number of buffered events.
    count: usize,
}

impl EventSink {
    /// An unconditional sink (tests and tools).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A sink only when a trace path is configured — the gate that
    /// makes tracing zero-cost when off.
    #[must_use]
    pub fn if_enabled() -> Option<Self> {
        trace_enabled().then(Self::new)
    }

    /// Appends one event. `kind` names the event type; fields follow in
    /// the given order.
    ///
    /// Renders the JSON line directly rather than building a [`Value`]
    /// tree: lease lifecycles emit millions of events per suite run,
    /// and the per-event key/kind allocations of the tree path showed
    /// up as a multiple of the whole settle stage. The output is
    /// byte-identical to `Value::Obj(..).render()` over the same
    /// members.
    pub fn emit(&mut self, kind: &str, fields: &[(&str, Field)]) {
        self.buf.push_str("{\"kind\":");
        crate::json::write_escaped(&mut self.buf, kind);
        for (name, field) in fields {
            self.buf.push(',');
            crate::json::write_escaped(&mut self.buf, name);
            self.buf.push(':');
            field.write(&mut self.buf);
        }
        self.buf.push_str("}\n");
        self.count += 1;
    }

    /// Number of buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether no events have been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The buffered JSON lines (without `seq`/`scope`, which are
    /// assigned at flush time).
    pub fn lines(&self) -> impl Iterator<Item = &str> {
        self.buf.lines()
    }

    /// Hands the buffered events to the global trace collector as one
    /// chunk. `label` must be deterministic for the work performed
    /// (derive it from the run's configuration, never from wall-clock,
    /// thread ids or completion order).
    pub fn submit(self, label: &str) {
        if self.count == 0 {
            return;
        }
        let mut state = trace_lock();
        if let Some(state) = state.as_mut() {
            state.chunks.push((label.to_string(), self.buf));
        }
    }
}

struct TraceState {
    path: PathBuf,
    /// `(label, newline-terminated lines)` per submitted sink.
    chunks: Vec<(String, String)>,
}

fn trace_cell() -> &'static Mutex<Option<TraceState>> {
    static TRACE: OnceLock<Mutex<Option<TraceState>>> = OnceLock::new();
    TRACE.get_or_init(|| Mutex::new(None))
}

fn trace_lock() -> std::sync::MutexGuard<'static, Option<TraceState>> {
    trace_cell()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Configures (or disables, with `None`) the JSONL trace destination.
/// Discards any chunks buffered for a previous destination.
pub fn set_trace_path(path: Option<&Path>) {
    *trace_lock() = path.map(|p| TraceState {
        path: p.to_path_buf(),
        chunks: Vec::new(),
    });
}

/// Applies the `MMOG_TRACE` environment variable if set (and non-empty)
/// and no destination is configured yet.
pub fn apply_trace_env() {
    if trace_enabled() {
        return;
    }
    if let Ok(path) = std::env::var("MMOG_TRACE") {
        if !path.is_empty() {
            set_trace_path(Some(Path::new(&path)));
        }
    }
}

/// Whether a trace destination is configured.
#[must_use]
pub fn trace_enabled() -> bool {
    trace_lock().is_some()
}

/// Renders the trace body that [`flush_trace`] would write: chunks
/// sorted by `(label, content)`, each line prefixed with its global
/// sequence number and scope label.
#[must_use]
pub fn render_trace() -> String {
    let mut state = trace_lock();
    let Some(state) = state.as_mut() else {
        return String::new();
    };
    state.chunks.sort();
    let total: usize = state.chunks.iter().map(|(_, lines)| lines.len()).sum();
    let mut out = String::with_capacity(total + total / 2);
    let mut seq = 0u64;
    for (label, lines) in &state.chunks {
        let scope = Value::Str(label.clone()).render();
        for line in lines.lines() {
            // Buffered lines are complete objects `{"kind":...}`; splice
            // the flush-time fields in front of the first member.
            let body = line.strip_prefix('{').expect("buffered line is an object");
            out.push_str("{\"seq\":");
            json::write_u64(&mut out, seq);
            out.push_str(",\"scope\":");
            out.push_str(&scope);
            out.push(',');
            out.push_str(body);
            out.push('\n');
            seq += 1;
        }
    }
    out
}

/// Sorts the buffered chunks deterministically, writes the JSONL file,
/// and clears the buffer (the destination stays configured). Returns
/// the path written, or `None` when tracing is off.
///
/// # Errors
/// Propagates the file-write error, leaving the buffer intact.
pub fn flush_trace() -> std::io::Result<Option<PathBuf>> {
    let body = render_trace();
    let mut state = trace_lock();
    let Some(state) = state.as_mut() else {
        return Ok(None);
    };
    std::fs::write(&state.path, body)?;
    state.chunks.clear();
    Ok(Some(state.path.clone()))
}

/// Parses one trace line back into `(seq, scope, kind, fields)` — the
/// read half of the event-log round-trip.
///
/// # Errors
/// Returns a message when the line is not a JSON object or misses one
/// of the three envelope fields.
pub fn parse_trace_line(line: &str) -> Result<(u64, String, String, Value), String> {
    let value = json::parse(line)?;
    let seq = value
        .get("seq")
        .and_then(Value::as_u64)
        .ok_or("missing seq")?;
    let scope = value
        .get("scope")
        .and_then(Value::as_str)
        .ok_or("missing scope")?
        .to_string();
    let kind = value
        .get("kind")
        .and_then(Value::as_str)
        .ok_or("missing kind")?
        .to_string();
    Ok((seq, scope, kind, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_builds_json_lines_in_field_order() {
        let mut sink = EventSink::new();
        sink.emit(
            "provision",
            &[
                ("tick", 7u64.into()),
                ("target_cpu", 1.5.into()),
                ("unmet", false.into()),
                ("name", "g\"0".into()),
            ],
        );
        assert_eq!(
            sink.lines().next().unwrap(),
            r#"{"kind":"provision","tick":7,"target_cpu":1.5,"unmet":false,"name":"g\"0"}"#
        );
    }

    #[test]
    fn lines_round_trip_through_the_parser() {
        let mut sink = EventSink::new();
        sink.emit(
            "tick",
            &[("tick", 3u64.into()), ("demand_cpu", 0.25.into())],
        );
        let line = sink.lines().next().unwrap().to_string();
        let parsed = json::parse(&line).unwrap();
        assert_eq!(parsed.get("kind").unwrap().as_str(), Some("tick"));
        assert_eq!(parsed.get("tick").unwrap().as_u64(), Some(3));
        assert_eq!(parsed.get("demand_cpu").unwrap().as_f64(), Some(0.25));
        // Re-rendering reproduces the exact bytes.
        assert_eq!(parsed.render(), line);
    }

    #[test]
    fn sink_disabled_without_trace_path() {
        // The trace cell is process-global; this test only asserts the
        // "off" behaviour which is the default state.
        if !trace_enabled() {
            assert!(EventSink::if_enabled().is_none());
        }
    }

    #[test]
    fn every_known_kind_has_a_field_schema() {
        for kind in KNOWN_EVENT_KINDS {
            assert!(
                event_fields(kind).is_some(),
                "kind `{kind}` missing from EVENT_FIELDS"
            );
        }
        assert_eq!(EVENT_FIELDS.len(), KNOWN_EVENT_KINDS.len());
    }

    #[test]
    fn field_validation_accepts_real_emitter_output() {
        let mut sink = EventSink::new();
        sink.emit(
            "tick",
            &[
                ("tick", 3u64.into()),
                ("demand_cpu", 0.25.into()),
                ("alloc_cpu", 2.0.into()),
                ("shortfall_cpu", 0.0.into()),
            ],
        );
        sink.emit(
            "center_tick",
            &[
                ("tick", 3u64.into()),
                ("center", 1u64.into()),
                ("alloc_cpu", 2.0.into()),
                ("free_cpu", 6.0.into()),
            ],
        );
        for line in sink.lines() {
            let value = json::parse(line).unwrap();
            let kind = value.get("kind").and_then(Value::as_str).unwrap();
            validate_event_fields(kind, &value).expect("emitter output must match its schema");
        }
    }

    #[test]
    fn field_validation_names_the_first_violation() {
        // Whole floats render as integers and must still satisfy Num
        // fields; the parse-back path exercises exactly that collapse.
        let ok = json::parse(
            r#"{"seq":0,"kind":"tick","tick":1,"demand_cpu":2,"alloc_cpu":2.5,"shortfall_cpu":0}"#,
        )
        .unwrap();
        validate_event_fields("tick", &ok).unwrap();

        let err = validate_event_fields("nope", &ok).unwrap_err();
        assert!(err.contains("unknown event kind"), "{err}");

        let missing =
            json::parse(r#"{"kind":"tick","tick":1,"demand_cpu":2,"alloc_cpu":2}"#).unwrap();
        let err = validate_event_fields("tick", &missing).unwrap_err();
        assert!(err.contains("shortfall_cpu"), "{err}");

        let reordered = json::parse(
            r#"{"kind":"tick","demand_cpu":2,"tick":1,"alloc_cpu":2,"shortfall_cpu":0}"#,
        )
        .unwrap();
        let err = validate_event_fields("tick", &reordered).unwrap_err();
        assert!(err.contains("order skew"), "{err}");

        let wrong_type = json::parse(
            r#"{"kind":"tick","tick":"one","demand_cpu":2,"alloc_cpu":2,"shortfall_cpu":0}"#,
        )
        .unwrap();
        let err = validate_event_fields("tick", &wrong_type).unwrap_err();
        assert!(err.contains("wrong type"), "{err}");
    }

    #[test]
    fn scenario_event_schemas_accept_canonical_lines() {
        let lines = [
            (
                "topology_change",
                r#"{"seq":0,"scope":"s","kind":"topology_change","tick":4,"a":0,"b":3,"factor":3.5}"#,
            ),
            (
                "partition",
                r#"{"seq":1,"scope":"s","kind":"partition","tick":5,"mask":9,"components":2}"#,
            ),
            (
                "heal",
                r#"{"seq":2,"scope":"s","kind":"heal","tick":9,"components":1}"#,
            ),
            (
                "migration",
                r#"{"seq":3,"scope":"s","kind":"migration","tick":6,"group":2,"center":1,"leases":3,"cost":84.5}"#,
            ),
            (
                "flash_crowd",
                r#"{"seq":4,"scope":"s","kind":"flash_crowd","tick":7,"region":1,"factor":2.5,"groups":4}"#,
            ),
        ];
        for (kind, line) in lines {
            let value = json::parse(line).unwrap();
            validate_event_fields(kind, &value)
                .unwrap_or_else(|e| panic!("canonical `{kind}` line rejected: {e}"));
        }
    }

    #[test]
    fn lifecycle_event_schemas_accept_canonical_lines() {
        let lines = [
            (
                "lease_request",
                r#"{"seq":0,"scope":"s","kind":"lease_request","tick":4,"request":4294967296,"group":1,"operator":7,"cpu":2.5}"#,
            ),
            (
                "lease_grant",
                r#"{"seq":1,"scope":"s","kind":"lease_grant","tick":4,"request":4294967296,"center":2,"lease":9,"operator":7,"cpu":2.5}"#,
            ),
            (
                "lease_mature",
                r#"{"seq":2,"scope":"s","kind":"lease_mature","tick":10,"center":2,"lease":9,"operator":7}"#,
            ),
            (
                "lease_release",
                r#"{"seq":3,"scope":"s","kind":"lease_release","tick":30,"center":2,"lease":9,"operator":7,"cpu":2.5,"cause":"surplus"}"#,
            ),
        ];
        for (kind, line) in lines {
            let value = json::parse(line).unwrap();
            validate_event_fields(kind, &value)
                .unwrap_or_else(|e| panic!("canonical `{kind}` line rejected: {e}"));
        }
    }

    #[test]
    fn lifecycle_event_schemas_reject_tampering() {
        // Dropped field.
        let missing = json::parse(
            r#"{"kind":"lease_grant","tick":4,"request":1,"center":2,"lease":9,"operator":7}"#,
        )
        .unwrap();
        let err = validate_event_fields("lease_grant", &missing).unwrap_err();
        assert!(err.contains("cpu"), "{err}");
        // Wrong type for the cause string.
        let wrong_type = json::parse(
            r#"{"kind":"lease_release","tick":30,"center":2,"lease":9,"operator":7,"cpu":2.5,"cause":3}"#,
        )
        .unwrap();
        let err = validate_event_fields("lease_release", &wrong_type).unwrap_err();
        assert!(err.contains("wrong type"), "{err}");
    }

    #[test]
    fn scenario_event_schemas_reject_tampering() {
        // Dropped field.
        let missing = json::parse(r#"{"kind":"partition","tick":5,"mask":9}"#).unwrap();
        let err = validate_event_fields("partition", &missing).unwrap_err();
        assert!(err.contains("components"), "{err}");
        // Reordered fields.
        let reordered = json::parse(
            r#"{"kind":"migration","tick":6,"center":1,"group":2,"leases":3,"cost":84.5}"#,
        )
        .unwrap();
        let err = validate_event_fields("migration", &reordered).unwrap_err();
        assert!(err.contains("order skew"), "{err}");
        // Wrong type.
        let wrong_type =
            json::parse(r#"{"kind":"flash_crowd","tick":7,"region":1,"factor":"big","groups":4}"#)
                .unwrap();
        let err = validate_event_fields("flash_crowd", &wrong_type).unwrap_err();
        assert!(err.contains("wrong type"), "{err}");
        // Extra field.
        let extra = json::parse(r#"{"kind":"heal","tick":9,"components":1,"bonus":1}"#).unwrap();
        let err = validate_event_fields("heal", &extra).unwrap_err();
        assert!(err.contains("bonus") || err.contains("expected"), "{err}");
        // Negative tick (U64 field must reject signed values).
        let negative =
            json::parse(r#"{"kind":"topology_change","tick":-1,"a":0,"b":3,"factor":3.5}"#)
                .unwrap();
        let err = validate_event_fields("topology_change", &negative).unwrap_err();
        assert!(err.contains("wrong type"), "{err}");
    }
}
