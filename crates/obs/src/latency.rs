//! Log-bucketed latency histograms: HDR-style percentile estimation
//! for soft-real-time stage timing.
//!
//! A [`LatencyHisto`] covers every `u64` nanosecond duration with a
//! fixed array of [`LATENCY_BUCKETS`] atomic counters at **two buckets
//! per octave** (each power-of-two range is split once at its
//! midpoint), so the range spans sub-nanosecond noise to centuries
//! without configuration. Steady-state [`LatencyHisto::record`] is
//! allocation-free and lock-free: one bucket index computation (a
//! leading-zeros instruction plus shifts) and four relaxed atomic
//! read-modify-writes.
//!
//! # Error bound
//!
//! A bucket for octave `k ≥ 1` covers `[lo, lo + 2^(k-1))` with
//! `lo ∈ {2^k, 2^k + 2^(k-1)}`. Quantile estimates return the bucket's
//! inclusive upper bound clamped to the recorded maximum, so for the
//! true quantile value `q`:
//!
//! ```text
//! q ≤ estimate ≤ ⌈1.5 × q⌉    (exact for q < 4, where buckets are
//!                              at most one nanosecond wide... see
//!                              tests/latency_props.rs for the
//!                              property check)
//! ```
//!
//! i.e. estimates never under-report and over-report by at most 50%,
//! one sub-octave step. That is deliberately coarser than HDRHistogram
//! defaults — 128 counters keep the whole instrument in two cache
//! lines' worth of hot state so the engine can afford one histogram
//! per stage per tick at 10M-player scale.
//!
//! # Determinism contract
//!
//! Latency values are wall-clock and therefore **non-deterministic**;
//! every histogram registered through [`latency`] lives in the export's
//! `timing` section ([`crate::Domain::Timing`] semantics) and is masked
//! by determinism tests. Counts of *recordings* are deterministic, but
//! the bucket a sample lands in never is — nothing from this module may
//! feed a semantic export.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::Value;

/// Number of buckets: 64 octaves × 2 sub-buckets.
pub const LATENCY_BUCKETS: usize = 128;

/// Maps a nanosecond duration to its bucket index.
///
/// Values `0` and `1` occupy buckets `0` and `1` (octave 0 has width-1
/// "sub-buckets"); every larger value lands in
/// `2 × octave + high-sub-bit`, where `octave = floor(log2(v))`.
#[must_use]
pub fn bucket_index(ns: u64) -> usize {
    if ns < 2 {
        return ns as usize;
    }
    let octave = 63 - ns.leading_zeros() as usize;
    let sub = ((ns >> (octave - 1)) & 1) as usize;
    2 * octave + sub
}

/// Inclusive lower bound of bucket `idx`.
#[must_use]
pub fn bucket_lower(idx: usize) -> u64 {
    assert!(idx < LATENCY_BUCKETS, "bucket index out of range");
    if idx < 2 {
        return idx as u64;
    }
    let octave = idx / 2;
    let base = 1u64 << octave;
    base + (idx as u64 % 2) * (base >> 1)
}

/// Inclusive upper bound of bucket `idx` (saturating at `u64::MAX` for
/// the last bucket, whose true upper bound is `2^64 - 1`).
#[must_use]
pub fn bucket_upper(idx: usize) -> u64 {
    if idx + 1 < LATENCY_BUCKETS {
        bucket_lower(idx + 1) - 1
    } else {
        u64::MAX
    }
}

/// A log-bucketed latency histogram (see module docs for the bucket
/// scheme and error bound).
pub struct LatencyHisto {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl std::fmt::Debug for LatencyHisto {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHisto")
            .field("count", &self.snapshot().count)
            .finish_non_exhaustive()
    }
}

impl Default for LatencyHisto {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHisto {
    /// An empty histogram (detached from the registry; use [`latency`]
    /// for the interned, exported instruments).
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one duration. Allocation-free and lock-free; safe from
    /// any worker thread (all updates are commutative).
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        // Saturating CAS add: a run long enough to overflow u64 total
        // nanoseconds must pin the sum rather than wrap the mean.
        let mut sum = self.sum_ns.load(Ordering::Relaxed);
        loop {
            let next = sum.saturating_add(ns);
            match self
                .sum_ns
                .compare_exchange_weak(sum, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => sum = seen,
            }
        }
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Point-in-time copy of the histogram state.
    #[must_use]
    pub fn snapshot(&self) -> LatencySnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        LatencySnapshot {
            counts,
            count,
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            min_ns: (count > 0).then(|| self.min_ns.load(Ordering::Relaxed)),
            max_ns: (count > 0).then(|| self.max_ns.load(Ordering::Relaxed)),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time copy of one latency histogram. Snapshots merge, so
/// per-worker or per-run distributions combine into fleet aggregates
/// without re-recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Per-bucket counts ([`LATENCY_BUCKETS`] entries).
    pub counts: Vec<u64>,
    /// Total recorded durations.
    pub count: u64,
    /// Sum of durations in nanoseconds (saturating).
    pub sum_ns: u64,
    /// Smallest recorded duration (`None` when empty).
    pub min_ns: Option<u64>,
    /// Largest recorded duration (`None` when empty).
    pub max_ns: Option<u64>,
}

impl Default for LatencySnapshot {
    fn default() -> Self {
        Self {
            counts: vec![0; LATENCY_BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: None,
            max_ns: None,
        }
    }
}

impl LatencySnapshot {
    /// Merges two snapshots; equivalent to one histogram having
    /// recorded the union of both sample sets (counts add, extremes
    /// combine, sums add saturating).
    #[must_use]
    pub fn merge(&self, other: &Self) -> Self {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .zip(&other.counts)
            .map(|(a, b)| a.saturating_add(*b))
            .collect();
        let count: u64 = counts.iter().sum();
        Self {
            counts,
            count,
            sum_ns: self.sum_ns.saturating_add(other.sum_ns),
            min_ns: match (self.min_ns, other.min_ns) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
            max_ns: match (self.max_ns, other.max_ns) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            },
        }
    }

    /// Estimates the `p`-quantile (`0 < p ≤ 1`) in nanoseconds: the
    /// inclusive upper bound of the bucket holding the rank-`⌈p·n⌉`
    /// sample, clamped to the recorded maximum. `None` when empty.
    ///
    /// The estimate never under-reports the true quantile and
    /// over-reports by at most 50% (module docs).
    #[must_use]
    pub fn quantile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = bucket_upper(idx);
                return Some(self.max_ns.map_or(upper, |m| upper.min(m)));
            }
        }
        self.max_ns
    }

    /// Median estimate (nanoseconds).
    #[must_use]
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 90th percentile estimate (nanoseconds).
    #[must_use]
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.90)
    }

    /// 99th percentile estimate (nanoseconds).
    #[must_use]
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// 99.9th percentile estimate (nanoseconds).
    #[must_use]
    pub fn p999(&self) -> Option<u64> {
        self.quantile(0.999)
    }

    /// Mean duration in nanoseconds (`None` when empty; saturated sums
    /// make this a floor, not a lie).
    #[must_use]
    pub fn mean_ns(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_ns as f64 / self.count as f64)
    }

    /// Renders the snapshot as the JSON object embedded in summaries
    /// and `BENCH_scale.json` stage records: counts, percentile
    /// estimates, extremes and the sparse non-zero `[index, count]`
    /// bucket list.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let pct = |q: Option<u64>| q.map_or(Value::Null, Value::UInt);
        let buckets: Vec<Value> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Value::Arr(vec![Value::UInt(i as u64), Value::UInt(c)]))
            .collect();
        Value::Obj(vec![
            ("count".into(), Value::UInt(self.count)),
            (
                "mean_ns".into(),
                self.mean_ns().map_or(Value::Null, Value::Num),
            ),
            ("p50_ns".into(), pct(self.p50())),
            ("p90_ns".into(), pct(self.p90())),
            ("p99_ns".into(), pct(self.p99())),
            ("p999_ns".into(), pct(self.p999())),
            ("min_ns".into(), pct(self.min_ns)),
            ("max_ns".into(), pct(self.max_ns)),
            ("buckets".into(), Value::Arr(buckets)),
        ])
    }

    /// Parses a snapshot back out of [`Self::to_value`]'s JSON shape
    /// (analyzers reconstruct distributions from artifacts). Percentile
    /// fields are re-derived from the bucket list, so a hand-edited
    /// artifact cannot smuggle in inconsistent estimates.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let obj = v.as_obj().ok_or("latency entry must be an object")?;
        let field = |name: &str| {
            obj.iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("latency entry missing {name:?}"))
        };
        let count = field("count")?
            .as_u64()
            .ok_or("latency count must be a u64")?;
        let pairs = field("buckets")?
            .as_arr()
            .ok_or("latency buckets must be an array")?;
        let mut counts = vec![0u64; LATENCY_BUCKETS];
        let mut from_buckets = 0u64;
        for pair in pairs {
            let pair = pair
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or("latency bucket entries must be [index, count] pairs")?;
            let idx = pair[0].as_u64().ok_or("bucket index must be a u64")? as usize;
            let c = pair[1].as_u64().ok_or("bucket count must be a u64")?;
            if idx >= LATENCY_BUCKETS {
                return Err(format!("bucket index {idx} out of range"));
            }
            counts[idx] = counts[idx].saturating_add(c);
            from_buckets = from_buckets.saturating_add(c);
        }
        if from_buckets != count {
            return Err(format!(
                "latency bucket counts sum to {from_buckets}, count says {count}"
            ));
        }
        let opt = |name: &str| -> Result<Option<u64>, String> {
            Ok(match field(name)? {
                Value::Null => None,
                v => Some(v.as_u64().ok_or_else(|| format!("{name} must be a u64"))?),
            })
        };
        let mean = field("mean_ns")?;
        let sum_ns = match mean {
            Value::Null => 0,
            v => {
                let m = v.as_f64().ok_or("mean_ns must be numeric")?;
                (m * count as f64).round().min(u64::MAX as f64).max(0.0) as u64
            }
        };
        Ok(Self {
            counts,
            count,
            sum_ns,
            min_ns: opt("min_ns")?,
            max_ns: opt("max_ns")?,
        })
    }
}

fn registry() -> &'static Mutex<BTreeMap<String, Arc<LatencyHisto>>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Arc<LatencyHisto>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn lock() -> std::sync::MutexGuard<'static, BTreeMap<String, Arc<LatencyHisto>>> {
    registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Interns a latency histogram by path. Hot call sites cache the `Arc`
/// handle; all interned histograms export under the summary's `timing`
/// section (latency is wall-clock by definition).
#[must_use]
pub fn latency(path: &str) -> Arc<LatencyHisto> {
    Arc::clone(
        lock()
            .entry(path.to_string())
            .or_insert_with(|| Arc::new(LatencyHisto::new())),
    )
}

/// Snapshots every interned latency histogram, sorted by path.
#[must_use]
pub fn snapshot_latency() -> Vec<(String, LatencySnapshot)> {
    lock()
        .iter()
        .map(|(path, h)| (path.clone(), h.snapshot()))
        .collect()
}

/// Zeroes every interned latency histogram; paths and cached handles
/// stay valid. Sweep harnesses reset between points so each point
/// reports its own distribution.
pub fn reset_latency() {
    for h in lock().values() {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_bounds_are_consistent() {
        for idx in 0..LATENCY_BUCKETS {
            let lo = bucket_lower(idx);
            let hi = bucket_upper(idx);
            assert!(lo <= hi, "bucket {idx}: lo {lo} > hi {hi}");
            assert_eq!(bucket_index(lo), idx, "lower bound of bucket {idx}");
            assert_eq!(bucket_index(hi), idx, "upper bound of bucket {idx}");
            if idx > 0 {
                assert_eq!(bucket_upper(idx - 1), lo - 1, "buckets must tile");
            }
        }
        assert_eq!(bucket_index(u64::MAX), LATENCY_BUCKETS - 1);
        assert_eq!(bucket_upper(LATENCY_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn two_buckets_per_octave() {
        // Octave 4 is [16, 32): split at 24.
        assert_eq!(bucket_index(16), 8);
        assert_eq!(bucket_index(23), 8);
        assert_eq!(bucket_index(24), 9);
        assert_eq!(bucket_index(31), 9);
        assert_eq!(bucket_index(32), 10);
    }

    #[test]
    fn quantiles_bound_true_values() {
        let h = LatencyHisto::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        for (p, exact) in [(0.5, 500u64), (0.9, 900), (0.99, 990), (0.999, 999)] {
            let est = s.quantile(p).unwrap();
            assert!(est >= exact, "p{p}: {est} < exact {exact}");
            assert!(est <= exact * 3 / 2 + 1, "p{p}: {est} > 1.5x {exact}");
        }
    }

    #[test]
    fn empty_and_single_sample() {
        let s = LatencySnapshot::default();
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean_ns(), None);
        let h = LatencyHisto::new();
        h.record(700);
        let s = h.snapshot();
        // Clamped to the recorded max: a single sample reports itself.
        assert_eq!(s.p50(), Some(700));
        assert_eq!(s.p999(), Some(700));
        assert_eq!(s.min_ns, Some(700));
    }

    #[test]
    fn overflow_values_saturate() {
        let h = LatencyHisto::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.counts[LATENCY_BUCKETS - 1], 2);
        assert_eq!(s.sum_ns, u64::MAX, "sum must saturate, not wrap");
        assert_eq!(s.p50(), Some(u64::MAX));
    }

    #[test]
    fn merge_equals_union() {
        let a = LatencyHisto::new();
        let b = LatencyHisto::new();
        let all = LatencyHisto::new();
        for v in [3u64, 17, 17, 250, 9_000, 1_000_000] {
            all.record(v);
            if v < 100 {
                a.record(v)
            } else {
                b.record(v)
            }
        }
        assert_eq!(a.snapshot().merge(&b.snapshot()), all.snapshot());
        assert_eq!(b.snapshot().merge(&a.snapshot()), all.snapshot());
    }

    #[test]
    fn value_round_trip() {
        let h = LatencyHisto::new();
        for v in [5u64, 80, 80, 4096, 123_456_789] {
            h.record(v);
        }
        let snap = h.snapshot();
        let parsed = LatencySnapshot::from_value(&snap.to_value()).expect("round trip");
        assert_eq!(parsed.counts, snap.counts);
        assert_eq!(parsed.count, snap.count);
        assert_eq!(parsed.min_ns, snap.min_ns);
        assert_eq!(parsed.max_ns, snap.max_ns);
        assert_eq!(parsed.p99(), snap.p99());
    }

    #[test]
    fn from_value_rejects_inconsistent_counts() {
        let h = LatencyHisto::new();
        h.record(10);
        let mut v = h.snapshot().to_value();
        if let Value::Obj(fields) = &mut v {
            fields[0].1 = Value::UInt(99);
        }
        assert!(LatencySnapshot::from_value(&v)
            .unwrap_err()
            .contains("sum to"));
    }

    #[test]
    fn registry_interns_and_resets() {
        let a = latency("test.latency.interns");
        let b = latency("test.latency.interns");
        a.record(42);
        assert_eq!(b.snapshot().count, 1, "same path must be the same histo");
        reset_latency();
        assert_eq!(a.snapshot().count, 0);
        a.record(7);
        assert_eq!(b.snapshot().count, 1, "handles stay usable after reset");
    }
}
