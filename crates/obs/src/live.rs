//! The live telemetry tap: a compact `OBS_live.json` snapshot the
//! engine atomically rewrites every N ticks so an operator (or the
//! `mmog_top` dashboard) can watch a long run while it executes.
//!
//! Like the trace and flight paths, the tap is configured
//! process-globally and disabled by default — with no [`LiveConfig`]
//! installed, runs are byte-for-byte unaffected. When enabled, the
//! engine builds a [`LiveSnapshot`] inside its serial sections (so the
//! semantic half is byte-identical across `--jobs` values at any given
//! tick) and [`write_live`] publishes it with a write-to-temp + rename,
//! so a concurrent reader never observes a torn file.
//!
//! The document (schema [`LIVE_SCHEMA`]) keeps the crate's
//! semantic/timing split: allocation state, shortfall and per-center
//! utilization are semantic; tick rate, stage p99s and the memo skip
//! rate are execution-dependent and live in the `timing` section that
//! determinism comparisons drop (the skip rate keys on the
//! process-wide availability epoch, so it moves with `--jobs` even
//! though the run's semantic output does not).

use crate::json::Value;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

/// Schema identifier stamped into every live snapshot.
pub const LIVE_SCHEMA: &str = "mmog-obs-live/v1";

/// Live tap configuration, installed process-globally with
/// [`set_live_config`].
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Snapshot path (conventionally `results/OBS_live.json`).
    pub path: PathBuf,
    /// Rewrite interval in ticks (clamped to ≥ 1 on use).
    pub every_ticks: u64,
}

impl LiveConfig {
    /// A config rewriting `path` every 64 ticks.
    #[must_use]
    pub fn new(path: &Path) -> Self {
        Self {
            path: path.to_path_buf(),
            every_ticks: 64,
        }
    }

    /// The rewrite interval, never zero.
    #[must_use]
    pub fn interval(&self) -> u64 {
        self.every_ticks.max(1)
    }
}

/// Per-center utilization line of a snapshot.
#[derive(Debug, Clone)]
pub struct LiveCenter {
    /// Center name.
    pub name: String,
    /// CPU currently allocated to leases.
    pub alloc_cpu: f64,
    /// Nominal CPU capacity (0 while the center is down).
    pub capacity_cpu: f64,
}

/// One snapshot of a running simulation. Semantic fields must be
/// derived from engine state inside a serial section; timing fields are
/// wall-clock and excluded from determinism comparison.
#[derive(Debug, Clone)]
pub struct LiveSnapshot {
    /// Run label (same label the trace chunk uses).
    pub run: String,
    /// Current tick.
    pub tick: u64,
    /// Total ticks the run will execute.
    pub ticks_total: u64,
    /// Whether this is the final snapshot of the run.
    pub done: bool,
    /// Platform-wide CPU demand this tick.
    pub demand_cpu: f64,
    /// Platform-wide CPU allocation this tick.
    pub alloc_cpu: f64,
    /// Unmet CPU demand this tick.
    pub shortfall_cpu: f64,
    /// Fraction of groups whose match was memo-skipped this tick
    /// (timing: replay eligibility keys on the process-wide
    /// availability epoch, so the fraction is execution-dependent).
    pub match_skip_rate: f64,
    /// Leases currently held across all groups.
    pub leases_held: u64,
    /// Fault-plane events applied so far.
    pub fault_events: u64,
    /// Scenario events applied so far.
    pub scenario_events: u64,
    /// Centers currently down.
    pub centers_down: u64,
    /// Per-center utilization.
    pub centers: Vec<LiveCenter>,
    /// Ticks per wall-clock second since run start (timing).
    pub tick_rate: f64,
    /// Per-stage p99 latency in microseconds (timing), in stable
    /// path order.
    pub stage_p99_us: Vec<(String, f64)>,
}

impl LiveSnapshot {
    /// Renders the snapshot document.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let centers = self
            .centers
            .iter()
            .map(|c| {
                Value::Obj(vec![
                    ("name".to_string(), Value::Str(c.name.clone())),
                    ("alloc_cpu".to_string(), Value::Num(c.alloc_cpu)),
                    ("capacity_cpu".to_string(), Value::Num(c.capacity_cpu)),
                ])
            })
            .collect();
        let semantic = Value::Obj(vec![
            ("demand_cpu".to_string(), Value::Num(self.demand_cpu)),
            ("alloc_cpu".to_string(), Value::Num(self.alloc_cpu)),
            ("shortfall_cpu".to_string(), Value::Num(self.shortfall_cpu)),
            ("leases_held".to_string(), Value::UInt(self.leases_held)),
            ("fault_events".to_string(), Value::UInt(self.fault_events)),
            (
                "scenario_events".to_string(),
                Value::UInt(self.scenario_events),
            ),
            ("centers_down".to_string(), Value::UInt(self.centers_down)),
            ("centers".to_string(), Value::Arr(centers)),
        ]);
        let timing = Value::Obj(vec![
            ("tick_rate".to_string(), Value::Num(self.tick_rate)),
            (
                "match_skip_rate".to_string(),
                Value::Num(self.match_skip_rate),
            ),
            (
                "stage_p99_us".to_string(),
                Value::Obj(
                    self.stage_p99_us
                        .iter()
                        .map(|(p, v)| (p.clone(), Value::Num(*v)))
                        .collect(),
                ),
            ),
        ]);
        Value::Obj(vec![
            ("schema".to_string(), Value::Str(LIVE_SCHEMA.to_string())),
            ("run".to_string(), Value::Str(self.run.clone())),
            ("tick".to_string(), Value::UInt(self.tick)),
            ("ticks_total".to_string(), Value::UInt(self.ticks_total)),
            ("done".to_string(), Value::Bool(self.done)),
            ("semantic".to_string(), semantic),
            ("timing".to_string(), timing),
        ])
    }
}

/// Validates a parsed `OBS_live.json` document against [`LIVE_SCHEMA`]:
/// envelope fields, the semantic gauge set with correct types, and the
/// per-center array shape.
///
/// # Errors
/// Returns a message naming the first violation.
pub fn validate_live(value: &Value) -> Result<(), String> {
    let schema = value
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing schema field")?;
    if schema != LIVE_SCHEMA {
        return Err(format!("schema is `{schema}`, expected `{LIVE_SCHEMA}`"));
    }
    value
        .get("run")
        .and_then(Value::as_str)
        .ok_or("missing run label")?;
    let tick = value
        .get("tick")
        .and_then(Value::as_u64)
        .ok_or("missing tick")?;
    let total = value
        .get("ticks_total")
        .and_then(Value::as_u64)
        .ok_or("missing ticks_total")?;
    if tick > total {
        return Err(format!("tick {tick} exceeds ticks_total {total}"));
    }
    if !matches!(value.get("done"), Some(Value::Bool(_))) {
        return Err("missing done flag".to_string());
    }
    let semantic = value
        .get("semantic")
        .and_then(Value::as_obj)
        .ok_or("missing semantic section")?;
    for gauge in ["demand_cpu", "alloc_cpu", "shortfall_cpu"] {
        let v = semantic
            .iter()
            .find(|(n, _)| n == gauge)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("semantic.{gauge} missing"))?;
        if v.as_f64().is_none() {
            return Err(format!("semantic.{gauge} is not a number"));
        }
    }
    for count in [
        "leases_held",
        "fault_events",
        "scenario_events",
        "centers_down",
    ] {
        let v = semantic
            .iter()
            .find(|(n, _)| n == count)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("semantic.{count} missing"))?;
        if v.as_u64().is_none() {
            return Err(format!("semantic.{count} is not an unsigned integer"));
        }
    }
    let centers = semantic
        .iter()
        .find(|(n, _)| n == "centers")
        .and_then(|(_, v)| v.as_arr())
        .ok_or("semantic.centers missing or not an array")?;
    for (i, c) in centers.iter().enumerate() {
        if c.get("name").and_then(Value::as_str).is_none()
            || c.get("alloc_cpu").and_then(Value::as_f64).is_none()
            || c.get("capacity_cpu").and_then(Value::as_f64).is_none()
        {
            return Err(format!("semantic.centers[{i}] is malformed"));
        }
    }
    let timing = value
        .get("timing")
        .and_then(Value::as_obj)
        .ok_or("missing timing section")?;
    for rate in ["tick_rate", "match_skip_rate"] {
        if !timing.iter().any(|(n, _)| n == rate) {
            return Err(format!("timing.{rate} missing"));
        }
    }
    Ok(())
}

/// Atomically publishes a snapshot: the document is written to a
/// sibling temp file and renamed over `path`, so readers only ever see
/// a complete document.
///
/// # Errors
/// Propagates the file-write or rename error (the engine reports and
/// continues — a failed live write must never fail the run).
pub fn write_live(path: &Path, doc: &Value) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, doc.render_pretty())?;
    std::fs::rename(&tmp, path)
}

fn live_cell() -> &'static Mutex<Option<LiveConfig>> {
    static LIVE: OnceLock<Mutex<Option<LiveConfig>>> = OnceLock::new();
    LIVE.get_or_init(|| Mutex::new(None))
}

fn live_lock() -> std::sync::MutexGuard<'static, Option<LiveConfig>> {
    live_cell()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Installs (or removes, with `None`) the process-global live tap
/// configuration. `None` (the default) keeps runs byte-identical, the
/// same contract the trace and flight paths honour.
pub fn set_live_config(cfg: Option<LiveConfig>) {
    *live_lock() = cfg;
}

/// The installed live tap configuration, if any.
#[must_use]
pub fn live_config() -> Option<LiveConfig> {
    live_lock().clone()
}

/// Whether a live tap is configured.
#[must_use]
pub fn live_enabled() -> bool {
    live_lock().is_some()
}

/// Applies the `MMOG_LIVE` environment variable if set (and non-empty)
/// and no live tap is configured yet.
pub fn apply_live_env() {
    if live_enabled() {
        return;
    }
    if let Ok(path) = std::env::var("MMOG_LIVE") {
        if !path.is_empty() {
            set_live_config(Some(LiveConfig::new(Path::new(&path))));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn snapshot() -> LiveSnapshot {
        LiveSnapshot {
            run: "quick seed=7".to_string(),
            tick: 40,
            ticks_total: 96,
            done: false,
            demand_cpu: 12.5,
            alloc_cpu: 14.0,
            shortfall_cpu: 0.0,
            match_skip_rate: 0.75,
            leases_held: 9,
            fault_events: 1,
            scenario_events: 0,
            centers_down: 1,
            centers: vec![
                LiveCenter {
                    name: "us-east".to_string(),
                    alloc_cpu: 8.0,
                    capacity_cpu: 16.0,
                },
                LiveCenter {
                    name: "eu-west".to_string(),
                    alloc_cpu: 6.0,
                    capacity_cpu: 0.0,
                },
            ],
            tick_rate: 1234.5,
            stage_p99_us: vec![("sim/run/tick".to_string(), 850.25)],
        }
    }

    #[test]
    fn snapshot_round_trips_through_the_validator() {
        let doc = snapshot().to_value();
        validate_live(&doc).expect("self-rendered snapshot must validate");
        let reparsed = json::parse(&doc.render()).unwrap();
        validate_live(&reparsed).expect("snapshot must survive a parse round-trip");
    }

    #[test]
    fn validator_names_the_first_violation() {
        let bad = json::parse(r#"{"schema":"nope"}"#).unwrap();
        assert!(validate_live(&bad).unwrap_err().contains("schema"));

        let mut snap = snapshot();
        snap.tick = 200;
        let err = validate_live(&snap.to_value()).unwrap_err();
        assert!(err.contains("exceeds ticks_total"), "{err}");
    }

    #[test]
    fn write_live_is_atomic_and_leaves_no_temp_file() {
        let dir = std::env::temp_dir().join("mmog-live-test");
        let path = dir.join("OBS_live.json");
        let doc = snapshot().to_value();
        write_live(&path, &doc).expect("publish");
        let read = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        validate_live(&read).unwrap();
        assert!(
            !path.with_extension("json.tmp").exists(),
            "temp file must be renamed away"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn global_config_gates_the_tap() {
        // Process-global cell: only assert the default "off" state, and
        // restore it after the set/get round-trip.
        if live_config().is_none() {
            assert!(!live_enabled());
            set_live_config(Some(LiveConfig::new(Path::new("results/OBS_live.json"))));
            let cfg = live_config().expect("installed");
            assert_eq!(cfg.interval(), 64);
            set_live_config(None);
            assert!(!live_enabled());
        }
    }
}
