//! Edge-case and property tests for `mmog_obs::json`: escape
//! sequences, surrogate-free unicode, extreme numbers, exponent
//! literals, deep nesting, and render/parse round-trip stability.
//!
//! The round-trip invariant the rest of the workspace leans on is
//! *render stability*, not node-type identity: a whole float like
//! `Num(2.0)` renders as `2` and re-parses as `UInt(2)`, but rendering
//! the re-parsed tree reproduces the original bytes exactly. Every
//! byte-compared artifact (traces, summaries, baselines) relies on
//! that fixed point.

use mmog_obs::json::{self, Value};
use proptest::prelude::*;

/// Strategy: a string of arbitrary scalar values (surrogate code
/// points can't occur — `char::from_u32` rejects them), with a bias
/// toward ASCII, the escape-relevant control range, and the astral
/// planes.
fn unicode_string() -> impl Strategy<Value = String> {
    prop::collection::vec((0u32..=0x10_FFFF, 0u32..4), 0..64).prop_map(|points| {
        points
            .into_iter()
            .filter_map(|(cp, bias)| {
                let cp = match bias {
                    0 => cp % 0x80,            // ASCII incl. controls and quotes
                    1 => cp % 0x20,            // the \u-escaped control range
                    2 => 0x1F300 + cp % 0x100, // astral plane
                    _ => cp,
                };
                char::from_u32(cp)
            })
            .collect()
    })
}

/// Builds a composite document from drawn scalars: an object holding
/// strings, ints, floats and a nested array, exercising every node
/// kind the writer emits.
fn composite(strings: Vec<String>, ints: Vec<i64>, floats: Vec<f64>) -> Value {
    let arr = Value::Arr(
        ints.iter()
            .map(|&i| Value::Int(i))
            .chain(floats.iter().map(|&x| Value::Num(x)))
            .chain(strings.iter().cloned().map(Value::Str))
            .collect(),
    );
    Value::Obj(vec![
        ("null".to_string(), Value::Null),
        ("flag".to_string(), Value::Bool(true)),
        ("items".to_string(), arr),
        (
            "nested".to_string(),
            Value::Obj(
                strings
                    .into_iter()
                    .enumerate()
                    .map(|(i, s)| (format!("k{i}"), Value::Str(s)))
                    .collect(),
            ),
        ),
    ])
}

proptest! {
    #[test]
    fn strings_round_trip(s in unicode_string()) {
        let rendered = Value::Str(s.clone()).render();
        let parsed = json::parse(&rendered).expect("rendered string parses");
        prop_assert_eq!(parsed, Value::Str(s));
    }

    #[test]
    fn unsigned_integers_round_trip(u in any::<u64>()) {
        let rendered = Value::UInt(u).render();
        let parsed = json::parse(&rendered).expect("rendered u64 parses");
        prop_assert_eq!(parsed.as_u64(), Some(u));
        prop_assert_eq!(parsed.render(), rendered);
    }

    #[test]
    fn signed_integers_round_trip(i in i64::MIN..=i64::MAX) {
        let rendered = Value::Int(i).render();
        let parsed = json::parse(&rendered).expect("rendered i64 parses");
        prop_assert_eq!(parsed.as_i64(), Some(i));
        prop_assert_eq!(parsed.render(), rendered);
    }

    #[test]
    fn finite_floats_round_trip(x in -1e300f64..1e300) {
        // Shortest round-trip formatting guarantees the parsed float is
        // bit-identical; whole floats may come back as integer nodes
        // but `as_f64` widens them losslessly.
        let rendered = Value::Num(x).render();
        let parsed = json::parse(&rendered).expect("rendered float parses");
        prop_assert_eq!(parsed.as_f64(), Some(x));
        prop_assert_eq!(parsed.render(), rendered);
    }

    #[test]
    fn composite_documents_reach_a_render_fixed_point(
        strings in prop::collection::vec(unicode_string(), 0..6),
        ints in prop::collection::vec(i64::MIN..=i64::MAX, 0..6),
        floats in prop::collection::vec(-1e12f64..1e12, 0..6),
    ) {
        let doc = composite(strings, ints, floats);
        let first = doc.render();
        let reparsed = json::parse(&first).expect("composite parses");
        // Render is a fixed point: one parse/render cycle is stable.
        prop_assert_eq!(reparsed.render(), first.clone());
        let pretty = reparsed.render_pretty();
        let from_pretty = json::parse(&pretty).expect("pretty form parses");
        prop_assert_eq!(from_pretty.render(), first);
    }

    #[test]
    fn deep_nesting_round_trips(depth in 1usize..=120, use_obj in any::<bool>()) {
        let mut v = Value::UInt(7);
        for _ in 0..depth {
            v = if use_obj {
                Value::Obj(vec![("k".to_string(), v)])
            } else {
                Value::Arr(vec![v])
            };
        }
        let rendered = v.render();
        let parsed = json::parse(&rendered).expect("deep document parses");
        prop_assert_eq!(parsed, v);
    }
}

#[test]
fn escape_sequences_render_exactly() {
    let s = "quote:\" backslash:\\ nl:\n cr:\r tab:\t ctl:\u{1}";
    let rendered = Value::Str(s.to_string()).render();
    assert_eq!(
        rendered,
        "\"quote:\\\" backslash:\\\\ nl:\\n cr:\\r tab:\\t ctl:\\u0001\""
    );
    assert_eq!(json::parse(&rendered), Ok(Value::Str(s.to_string())));
}

#[test]
fn parser_accepts_escapes_the_writer_never_emits() {
    // \/ \b \f and \uXXXX are legal JSON input even though the writer
    // prefers literal slashes and only \u-escapes control characters.
    let parsed = json::parse("\"\\u0041\\b\\f\\/\\u00e9\"").expect("escape forms parse");
    assert_eq!(parsed, Value::Str("A\u{8}\u{c}/\u{e9}".to_string()));
}

#[test]
fn parser_accepts_exponent_literals() {
    // The writer never emits exponent notation, but external JSON may.
    for (text, expect) in [
        ("1e10", 1e10),
        ("2.5E-3", 2.5e-3),
        ("-1.25e+5", -1.25e5),
        ("1e308", 1e308),
        ("-1e-300", -1e-300),
    ] {
        let parsed = json::parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
        assert_eq!(parsed.as_f64(), Some(expect), "literal {text}");
    }
}

#[test]
fn integers_beyond_u64_fall_back_to_float() {
    // 2^64 doesn't fit any integer node; the parser degrades to f64.
    let parsed = json::parse("18446744073709551616").expect("big literal parses");
    assert_eq!(parsed.as_f64(), Some(18_446_744_073_709_551_616.0));
    // i64::MIN and u64::MAX sit exactly on the integer-node boundaries.
    assert_eq!(
        json::parse("-9223372036854775808")
            .expect("i64::MIN")
            .as_i64(),
        Some(i64::MIN)
    );
    assert_eq!(
        json::parse("18446744073709551615")
            .expect("u64::MAX")
            .as_u64(),
        Some(u64::MAX)
    );
}

#[test]
fn non_finite_floats_render_as_null() {
    assert_eq!(Value::Num(f64::NAN).render(), "null");
    assert_eq!(Value::Num(f64::INFINITY).render(), "null");
    assert_eq!(Value::Num(f64::NEG_INFINITY).render(), "null");
}

#[test]
fn whole_floats_collapse_to_integer_nodes_stably() {
    let rendered = Value::Num(2.0).render();
    assert_eq!(rendered, "2");
    let reparsed = json::parse(&rendered).expect("parses");
    assert_eq!(reparsed, Value::UInt(2));
    assert_eq!(reparsed.as_f64(), Some(2.0));
    assert_eq!(reparsed.render(), rendered);
}
