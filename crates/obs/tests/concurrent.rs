//! Cross-thread contracts of the observability plane: recording from
//! inside the `mmog-par` pool must produce the same totals as serial
//! recording, and the JSONL event log must round-trip through the
//! parser byte-for-byte.
//!
//! One test function: the jobs setting and the trace destination are
//! process-global, so separate `#[test]`s would race under the parallel
//! test harness.

use mmog_obs::{counter, gauge, histogram, parse_trace_line, Domain, EventSink};

const ITEMS: usize = 4096;

/// Records one batch of counter/gauge/histogram traffic from a
/// (possibly parallel) `par_map` sweep and returns the semantic
/// snapshot bytes.
fn record_batch(tag: &str) -> (u64, i64, u64, i64) {
    let c = counter(&format!("test.cc.count.{tag}"), Domain::Semantic);
    let g = gauge(&format!("test.cc.gauge.{tag}"), Domain::Semantic);
    let h = histogram(
        &format!("test.cc.hist.{tag}"),
        Domain::Semantic,
        &[10.0, 100.0, 1000.0],
    );
    let items: Vec<usize> = (0..ITEMS).collect();
    let _: Vec<()> = mmog_par::par_map(&items, |&i| {
        c.add(i as u64);
        g.set_max(i as i64);
        h.record(i as f64);
    });
    let snap = h.snapshot();
    (c.get(), g.get(), snap.count, snap.sum_micros)
}

#[test]
fn pool_recording_and_event_round_trip() {
    let baseline_jobs = mmog_par::jobs();

    // --- Concurrent recording: serial and 4-way totals must agree. ---
    mmog_par::set_jobs(1);
    let serial = record_batch("serial");
    mmog_par::set_jobs(4);
    let parallel = record_batch("parallel");
    assert_eq!(
        serial, parallel,
        "commutative instruments must not depend on thread count"
    );
    let expected_sum: u64 = (0..ITEMS as u64).sum();
    assert_eq!(serial.0, expected_sum);
    assert_eq!(serial.1, ITEMS as i64 - 1);
    assert_eq!(serial.2, ITEMS as u64);
    // Integer micro-units: the histogram sum is exact, not a float fold.
    assert_eq!(serial.3, (expected_sum as i64) * 1_000_000);
    mmog_par::set_jobs(baseline_jobs);

    // --- JSONL round-trip through the global trace collector. ---
    let path = std::env::temp_dir().join(format!("mmog_obs_rt_{}.jsonl", std::process::id()));
    mmog_obs::set_trace_path(Some(&path));
    // Chunks submitted in "wrong" (completion) order: flush must order
    // them by label, then assign contiguous sequence numbers.
    let mut late = EventSink::new();
    late.emit("tick", &[("tick", 9u64.into()), ("demand_cpu", 2.5.into())]);
    late.submit("run B");
    let mut early = EventSink::new();
    early.emit("run_start", &[("groups", 10u64.into())]);
    early.emit(
        "provision",
        &[("unmet", true.into()), ("reason", "distance".into())],
    );
    early.submit("run A");
    let written = mmog_obs::flush_trace()
        .expect("flush must succeed")
        .expect("tracing is enabled");
    assert_eq!(written, path);

    let text = std::fs::read_to_string(&path).expect("trace file exists");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3);
    for (i, line) in lines.iter().enumerate() {
        let (seq, scope, kind, value) = parse_trace_line(line).expect("line parses");
        assert_eq!(seq, i as u64, "sequence numbers are contiguous");
        // "run A" sorts before "run B" regardless of submission order.
        let expected_scope = if i < 2 { "run A" } else { "run B" };
        assert_eq!(scope, expected_scope);
        match i {
            0 => {
                assert_eq!(kind, "run_start");
                assert_eq!(value.get("groups").and_then(|v| v.as_u64()), Some(10));
            }
            1 => {
                assert_eq!(kind, "provision");
                assert_eq!(
                    value.get("reason").and_then(|v| v.as_str()),
                    Some("distance")
                );
            }
            _ => {
                assert_eq!(kind, "tick");
                assert_eq!(value.get("demand_cpu").and_then(|v| v.as_f64()), Some(2.5));
            }
        }
    }
    // Flush cleared the buffer but kept the destination: a second flush
    // writes an empty file.
    mmog_obs::flush_trace().expect("second flush succeeds");
    assert_eq!(std::fs::read_to_string(&path).unwrap(), "");
    mmog_obs::set_trace_path(None);
    let _ = std::fs::remove_file(&path);
}
