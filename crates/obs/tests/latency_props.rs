//! Property tests for `mmog_obs::latency`: quantile estimates against
//! exact sorted-sample quantiles, the documented per-bucket error
//! bound, and snapshot merging.
//!
//! The contract under test (see the module docs): for the true
//! `p`-quantile `q` of the recorded sample set, the estimate `e`
//! satisfies `q ≤ e ≤ 1.5·q + 1` — never an under-report, at most one
//! sub-octave step of over-report — and `merge(a, b)` is
//! indistinguishable from having recorded the union into one histogram.

use mmog_obs::latency::{bucket_index, bucket_lower, bucket_upper, LatencyHisto, LATENCY_BUCKETS};
use proptest::prelude::*;

/// Strategy: a latency sample with a bias toward realistic tick-stage
/// scales (ns..s) but covering the full `u64` range including the
/// saturating top octave.
fn sample() -> impl Strategy<Value = u64> {
    (any::<u64>(), 0u32..6).prop_map(|(raw, bias)| match bias {
        0 => raw % 1_000,            // sub-microsecond
        1 => raw % 1_000_000,        // sub-millisecond
        2 => raw % 1_000_000_000,    // sub-second
        3 => raw % 60_000_000_000,   // up to a minute
        4 => u64::MAX - raw % 1_000, // saturating top buckets
        _ => raw,                    // anywhere
    })
}

/// Exact quantile by the same rank rule the histogram documents:
/// the rank-`⌈p·n⌉` smallest sample (1-based).
fn exact_quantile(sorted: &[u64], p: f64) -> u64 {
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #[test]
    fn quantiles_stay_within_the_bucket_error_bound(
        values in prop::collection::vec(sample(), 1..200),
    ) {
        let h = LatencyHisto::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        let mut sorted = values;
        sorted.sort_unstable();
        prop_assert_eq!(snap.min_ns, sorted.first().copied());
        prop_assert_eq!(snap.max_ns, sorted.last().copied());
        for p in [0.5, 0.9, 0.99, 0.999] {
            let exact = exact_quantile(&sorted, p);
            let est = snap.quantile(p).expect("non-empty");
            prop_assert!(est >= exact, "p{p}: estimate {est} under-reports {exact}");
            // 1.5x + 1 admits the integer bucket bounds at tiny values;
            // widened arithmetic keeps the top octave comparable.
            prop_assert!(
                u128::from(est) <= u128::from(exact) * 3 / 2 + 1,
                "p{p}: estimate {est} over-reports {exact} beyond the bucket bound"
            );
        }
    }

    #[test]
    fn merge_is_indistinguishable_from_recording_the_union(
        left in prop::collection::vec(sample(), 0..100),
        right in prop::collection::vec(sample(), 0..100),
    ) {
        let a = LatencyHisto::new();
        let b = LatencyHisto::new();
        let union = LatencyHisto::new();
        for &v in &left {
            a.record(v);
            union.record(v);
        }
        for &v in &right {
            b.record(v);
            union.record(v);
        }
        let merged = a.snapshot().merge(&b.snapshot());
        prop_assert_eq!(&merged, &union.snapshot());
        // Merge is commutative, like recording order.
        prop_assert_eq!(&b.snapshot().merge(&a.snapshot()), &merged);
    }

    #[test]
    fn every_value_lands_in_a_bucket_that_contains_it(v in sample()) {
        let idx = bucket_index(v);
        prop_assert!(idx < LATENCY_BUCKETS);
        prop_assert!(bucket_lower(idx) <= v && v <= bucket_upper(idx));
        // The bucket is narrow enough for the documented bound: its
        // inclusive upper bound is at most 1.5x the lower bound.
        let lo = bucket_lower(idx).max(1);
        prop_assert!(bucket_upper(idx) / lo <= 1, "width must stay sub-octave");
    }

    #[test]
    fn single_sample_reports_itself_at_every_percentile(v in sample()) {
        let h = LatencyHisto::new();
        h.record(v);
        let snap = h.snapshot();
        for p in [0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(snap.quantile(p), Some(v));
        }
    }

    #[test]
    fn value_encoding_round_trips(values in prop::collection::vec(sample(), 0..60)) {
        let h = LatencyHisto::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let parsed = mmog_obs::LatencySnapshot::from_value(&snap.to_value())
            .expect("own encoding parses");
        prop_assert_eq!(parsed.counts, snap.counts);
        prop_assert_eq!(parsed.count, snap.count);
        prop_assert_eq!(parsed.min_ns, snap.min_ns);
        prop_assert_eq!(parsed.max_ns, snap.max_ns);
        prop_assert_eq!(parsed.quantile(0.99), snap.quantile(0.99));
    }
}

#[test]
fn empty_histogram_has_no_quantiles() {
    let snap = LatencyHisto::new().snapshot();
    assert_eq!(snap.count, 0);
    for p in [0.5, 0.99, 1.0] {
        assert_eq!(snap.quantile(p), None);
    }
    assert_eq!(snap.mean_ns(), None);
    assert_eq!(snap.merge(&snap).count, 0, "merging empties stays empty");
}

#[test]
fn saturating_overflow_is_exact_at_the_top() {
    let h = LatencyHisto::new();
    h.record(u64::MAX);
    h.record(u64::MAX - 1);
    h.record(1);
    let snap = h.snapshot();
    assert_eq!(snap.sum_ns, u64::MAX, "sum saturates instead of wrapping");
    assert_eq!(snap.max_ns, Some(u64::MAX));
    assert_eq!(snap.quantile(1.0), Some(u64::MAX));
    assert_eq!(snap.quantile(0.01), Some(1), "clamped by bucket 1's bound");
}
