//! Emulator configuration and the eight Table I trace presets.
//!
//! Table I of the paper parameterises each emulated data set by the
//! profile mix (Aggr./Scout/Team/Camp. percentages), whether peak hours
//! are modelled, the peak load, and two dynamics levels. The magnitude
//! columns of Table I are qualitative; Sec. IV-D.1 classifies the
//! resulting signals as **Type I** (high instantaneous, medium overall
//! dynamics — sets 2, 3, 4), **Type II** (low instantaneous — sets 6, 7,
//! 8) and **Type III** (medium instantaneous — sets 1 and 5), which is
//! what we encode here.

use crate::profile::{ProfileMix, ProfileSwitching};
use serde::{Deserialize, Serialize};

/// Qualitative dynamics level (drives speed / relocation / noise knobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DynamicsLevel {
    /// Stable signal (MMORPG-like).
    Low,
    /// In-between.
    Medium,
    /// Fast-paced (FPS-like) — "a large difference in the entity
    /// interaction over a short period of time".
    High,
}

impl DynamicsLevel {
    /// Entity-speed multiplier (instantaneous dynamics).
    #[must_use]
    pub fn speed_factor(self) -> f64 {
        match self {
            Self::Low => 0.5,
            Self::Medium => 1.5,
            Self::High => 4.0,
        }
    }

    /// Per-tick probability that a hotspot relocates (instantaneous
    /// dynamics: hotspot churn shuffles the entity distribution fast).
    #[must_use]
    pub fn hotspot_relocation_prob(self) -> f64 {
        match self {
            Self::Low => 0.01,
            Self::Medium => 0.05,
            Self::High => 0.20,
        }
    }

    /// Relative σ of the per-tick population noise (instantaneous).
    #[must_use]
    pub fn population_noise(self) -> f64 {
        match self {
            Self::Low => 0.01,
            Self::Medium => 0.03,
            Self::High => 0.08,
        }
    }

    /// Amplitude of the day-scale population variation (overall
    /// dynamics): the population floor is `1 − amplitude` of the peak.
    #[must_use]
    pub fn daily_amplitude(self) -> f64 {
        match self {
            Self::Low => 0.2,
            Self::Medium => 0.5,
            Self::High => 0.8,
        }
    }
}

/// The three signal types of Sec. IV-D.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SignalType {
    /// High instantaneous, medium overall dynamics (sets 2, 3, 4).
    TypeI,
    /// Low instantaneous dynamics (sets 6, 7, 8).
    TypeII,
    /// Medium instantaneous dynamics (sets 1, 5).
    TypeIII,
}

/// Full parameter set for one emulator run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmulatorConfig {
    /// World edge length in world units.
    pub world_size: f64,
    /// Sub-zones per world edge (the paper's sub-zone partitioning).
    pub grid: u32,
    /// Peak number of concurrent entities ("peak load" in Table I).
    pub peak_entities: usize,
    /// Behaviour profile mix (a Table I row).
    pub profile_mix: ProfileMix,
    /// Whether to model peak hours ("the periods with high player count
    /// in online gaming such as late afternoon").
    pub peak_hours: bool,
    /// Day-scale variability of the entity interaction.
    pub overall_dynamics: DynamicsLevel,
    /// Two-minute-scale variability of the entity interaction.
    pub instantaneous_dynamics: DynamicsLevel,
    /// Dynamic profile-switching parameters.
    pub switching: ProfileSwitching,
    /// Number of roaming interaction hotspots that attract aggressive
    /// players.
    pub hotspots: usize,
    /// Number of teams for team players.
    pub teams: u32,
    /// Area-of-interest radius in world units.
    pub aoi_radius: f64,
    /// Non-player characters maintained per avatar (Sec. II-A's bots:
    /// "mobile entities that have the ability to act independently").
    /// NPCs wander like scouts and contribute to the entity counts the
    /// predictors see. 0 disables them (the Table I experiments use
    /// avatars only).
    pub npc_ratio: f64,
}

impl Default for EmulatorConfig {
    fn default() -> Self {
        Self {
            world_size: 1000.0,
            grid: 16,
            peak_entities: 2000, // one fully loaded RuneScape server (Sec. V-A)
            profile_mix: ProfileMix::from_percent(25.0, 25.0, 25.0, 25.0),
            peak_hours: true,
            overall_dynamics: DynamicsLevel::Medium,
            instantaneous_dynamics: DynamicsLevel::Medium,
            switching: ProfileSwitching::default(),
            hotspots: 5,
            teams: 8,
            aoi_radius: 30.0,
            npc_ratio: 0.0,
        }
    }
}

impl EmulatorConfig {
    /// Validates internal consistency; returns a message for the first
    /// violation found.
    pub fn validate(&self) -> Result<(), String> {
        if self.world_size <= 0.0 {
            return Err("world_size must be positive".into());
        }
        if self.grid == 0 {
            return Err("grid must be at least 1".into());
        }
        if self.peak_entities == 0 {
            return Err("peak_entities must be at least 1".into());
        }
        if self.aoi_radius < 0.0 {
            return Err("aoi_radius must be non-negative".into());
        }
        if self.npc_ratio < 0.0 {
            return Err("npc_ratio must be non-negative".into());
        }
        if self.hotspots == 0 {
            return Err("at least one hotspot is required".into());
        }
        if self.teams == 0 {
            return Err("at least one team is required".into());
        }
        Ok(())
    }
}

/// The eight emulated trace data sets of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceSet {
    /// 80/10/0/10, no peak hours — Type III.
    Set1,
    /// 60/10/0/20, no peak hours — Type I.
    Set2,
    /// 70/20/0/10, no peak hours — Type I.
    Set3,
    /// 70/30/0/0, no peak hours — Type I.
    Set4,
    /// 30/40/30/0, peak hours — Type III.
    Set5,
    /// 10/80/10/0, peak hours — Type II.
    Set6,
    /// 20/40/40/0, peak hours — Type II.
    Set7,
    /// 20/80/0/0, peak hours — Type II.
    Set8,
}

impl TraceSet {
    /// All eight sets in Table I order.
    pub const ALL: [Self; 8] = [
        Self::Set1,
        Self::Set2,
        Self::Set3,
        Self::Set4,
        Self::Set5,
        Self::Set6,
        Self::Set7,
        Self::Set8,
    ];

    /// Display name ("Set 1" … "Set 8").
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Set1 => "Set 1",
            Self::Set2 => "Set 2",
            Self::Set3 => "Set 3",
            Self::Set4 => "Set 4",
            Self::Set5 => "Set 5",
            Self::Set6 => "Set 6",
            Self::Set7 => "Set 7",
            Self::Set8 => "Set 8",
        }
    }

    /// Profile mix percentages (Aggr., Scout, Team, Camp.) — Table I.
    #[must_use]
    pub fn mix_percent(self) -> [f64; 4] {
        match self {
            Self::Set1 => [80.0, 10.0, 0.0, 10.0],
            Self::Set2 => [60.0, 10.0, 0.0, 20.0],
            Self::Set3 => [70.0, 20.0, 0.0, 10.0],
            Self::Set4 => [70.0, 30.0, 0.0, 0.0],
            Self::Set5 => [30.0, 40.0, 30.0, 0.0],
            Self::Set6 => [10.0, 80.0, 10.0, 0.0],
            Self::Set7 => [20.0, 40.0, 40.0, 0.0],
            Self::Set8 => [20.0, 80.0, 0.0, 0.0],
        }
    }

    /// Whether the set models peak hours — Table I.
    #[must_use]
    pub fn peak_hours(self) -> bool {
        matches!(self, Self::Set5 | Self::Set6 | Self::Set7 | Self::Set8)
    }

    /// The Sec. IV-D.1 signal classification.
    #[must_use]
    pub fn signal_type(self) -> SignalType {
        match self {
            Self::Set2 | Self::Set3 | Self::Set4 => SignalType::TypeI,
            Self::Set6 | Self::Set7 | Self::Set8 => SignalType::TypeII,
            Self::Set1 | Self::Set5 => SignalType::TypeIII,
        }
    }

    /// The full emulator configuration for this set.
    #[must_use]
    pub fn config(self) -> EmulatorConfig {
        let [a, s, t, c] = self.mix_percent();
        let (inst, overall) = match self.signal_type() {
            SignalType::TypeI => (DynamicsLevel::High, DynamicsLevel::Medium),
            SignalType::TypeII => (DynamicsLevel::Low, DynamicsLevel::Medium),
            SignalType::TypeIII => (DynamicsLevel::Medium, DynamicsLevel::Medium),
        };
        EmulatorConfig {
            profile_mix: ProfileMix::from_percent(a, s, t, c),
            peak_hours: self.peak_hours(),
            overall_dynamics: overall,
            instantaneous_dynamics: inst,
            ..EmulatorConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        for set in TraceSet::ALL {
            let cfg = set.config();
            assert!(cfg.validate().is_ok(), "{}", set.name());
        }
    }

    #[test]
    fn mixes_sum_to_table1_totals() {
        // Table I as printed: every set sums to 100 except Set 2, whose
        // row (60/10/0/20) totals 90. Sampling normalises regardless.
        for set in TraceSet::ALL {
            let sum: f64 = set.mix_percent().iter().sum();
            let expected = if set == TraceSet::Set2 { 90.0 } else { 100.0 };
            assert!((sum - expected).abs() < 1e-9, "{}: {sum}", set.name());
        }
    }

    #[test]
    fn peak_hours_split_matches_table1() {
        assert!(!TraceSet::Set1.peak_hours());
        assert!(!TraceSet::Set4.peak_hours());
        assert!(TraceSet::Set5.peak_hours());
        assert!(TraceSet::Set8.peak_hours());
    }

    #[test]
    fn signal_types_match_section_4d1() {
        use SignalType::*;
        assert_eq!(TraceSet::Set2.signal_type(), TypeI);
        assert_eq!(TraceSet::Set3.signal_type(), TypeI);
        assert_eq!(TraceSet::Set4.signal_type(), TypeI);
        assert_eq!(TraceSet::Set6.signal_type(), TypeII);
        assert_eq!(TraceSet::Set7.signal_type(), TypeII);
        assert_eq!(TraceSet::Set8.signal_type(), TypeII);
        assert_eq!(TraceSet::Set1.signal_type(), TypeIII);
        assert_eq!(TraceSet::Set5.signal_type(), TypeIII);
    }

    #[test]
    fn dynamics_levels_are_ordered() {
        assert!(DynamicsLevel::Low.speed_factor() < DynamicsLevel::High.speed_factor());
        assert!(
            DynamicsLevel::Low.hotspot_relocation_prob()
                < DynamicsLevel::High.hotspot_relocation_prob()
        );
        assert!(DynamicsLevel::Low.population_noise() < DynamicsLevel::High.population_noise());
        assert!(DynamicsLevel::Low.daily_amplitude() < DynamicsLevel::High.daily_amplitude());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = EmulatorConfig::default();
        cfg.grid = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = EmulatorConfig::default();
        cfg.peak_entities = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = EmulatorConfig::default();
        cfg.world_size = -1.0;
        assert!(cfg.validate().is_err());
        let mut cfg = EmulatorConfig::default();
        cfg.aoi_radius = -0.1;
        assert!(cfg.validate().is_err());
        let mut cfg = EmulatorConfig::default();
        cfg.npc_ratio = -0.5;
        assert!(cfg.validate().is_err());
        let mut cfg = EmulatorConfig::default();
        cfg.hotspots = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = EmulatorConfig::default();
        cfg.teams = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn set_names_unique() {
        let mut names: Vec<&str> = TraceSet::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }
}
