//! The sub-zone grid.
//!
//! Sec. IV-B: "The game world is partitioned into sub-zones; when the
//! size of the sub-zones is small, the load imposed by the sub-zone can
//! be characterized by using only their entity count. The overall entity
//! distribution in the entire game world consists of a map of entity
//! counts for each sub-zone."
//!
//! [`ZoneGrid`] partitions a square world into `grid × grid` equal
//! sub-zones and offers the spatial queries the emulator and the
//! interaction counters need (cell lookup, neighbourhoods, bucketing).

use crate::entity::Position;
use serde::{Deserialize, Serialize};

/// Index of a sub-zone in row-major order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SubZoneId(pub u32);

/// A square world partitioned into a regular grid of sub-zones.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZoneGrid {
    /// World edge length in world units.
    world_size: f64,
    /// Sub-zones per edge.
    grid: u32,
}

impl ZoneGrid {
    /// Creates a grid of `grid × grid` sub-zones over a
    /// `world_size × world_size` world.
    ///
    /// # Panics
    /// Panics if `grid == 0` or `world_size <= 0`.
    #[must_use]
    pub fn new(world_size: f64, grid: u32) -> Self {
        assert!(grid > 0, "grid must have at least one sub-zone per edge");
        assert!(world_size > 0.0, "world size must be positive");
        Self { world_size, grid }
    }

    /// World edge length.
    #[must_use]
    pub fn world_size(&self) -> f64 {
        self.world_size
    }

    /// Sub-zones per edge.
    #[must_use]
    pub fn grid(&self) -> u32 {
        self.grid
    }

    /// Total number of sub-zones.
    #[must_use]
    pub fn sub_zone_count(&self) -> usize {
        (self.grid as usize) * (self.grid as usize)
    }

    /// Edge length of one sub-zone.
    #[must_use]
    pub fn cell_size(&self) -> f64 {
        self.world_size / f64::from(self.grid)
    }

    /// Sub-zone containing a position (positions outside the world are
    /// clamped to the border cells).
    #[must_use]
    pub fn locate(&self, pos: &Position) -> SubZoneId {
        let cs = self.cell_size();
        let gx = ((pos.x / cs) as i64).clamp(0, i64::from(self.grid) - 1) as u32;
        let gy = ((pos.y / cs) as i64).clamp(0, i64::from(self.grid) - 1) as u32;
        SubZoneId(gy * self.grid + gx)
    }

    /// Sub-zone containing the point `(x, y)` — the coordinate variant
    /// of [`Self::locate`] for struct-of-arrays callers that keep x and
    /// y in separate columns.
    #[must_use]
    pub fn locate_xy(&self, x: f64, y: f64) -> SubZoneId {
        let cs = self.cell_size();
        let gx = ((x / cs) as i64).clamp(0, i64::from(self.grid) - 1) as u32;
        let gy = ((y / cs) as i64).clamp(0, i64::from(self.grid) - 1) as u32;
        SubZoneId(gy * self.grid + gx)
    }

    /// Grid coordinates `(col, row)` of a sub-zone.
    #[must_use]
    pub fn coords(&self, z: SubZoneId) -> (u32, u32) {
        (z.0 % self.grid, z.0 / self.grid)
    }

    /// Centre position of a sub-zone.
    #[must_use]
    pub fn center(&self, z: SubZoneId) -> Position {
        let (gx, gy) = self.coords(z);
        let cs = self.cell_size();
        Position::new((f64::from(gx) + 0.5) * cs, (f64::from(gy) + 0.5) * cs)
    }

    /// Sub-zones within `radius_cells` Chebyshev distance of `z`
    /// (including `z` itself), clipped at the world border. The union of
    /// these cells covers the area of interest around any point in `z`.
    pub fn neighborhood(&self, z: SubZoneId, radius_cells: u32) -> Vec<SubZoneId> {
        let mut out = Vec::new();
        self.neighborhood_into(z, radius_cells, &mut out);
        out
    }

    /// Like [`Self::neighborhood`] but reuses `out` (cleared first) so
    /// sweep loops stay allocation-free.
    pub fn neighborhood_into(&self, z: SubZoneId, radius_cells: u32, out: &mut Vec<SubZoneId>) {
        let (gx, gy) = self.coords(z);
        let r = i64::from(radius_cells);
        let g = i64::from(self.grid);
        out.clear();
        out.reserve(((2 * r + 1) * (2 * r + 1)) as usize);
        for dy in -r..=r {
            for dx in -r..=r {
                let nx = i64::from(gx) + dx;
                let ny = i64::from(gy) + dy;
                if (0..g).contains(&nx) && (0..g).contains(&ny) {
                    out.push(SubZoneId((ny * g + nx) as u32));
                }
            }
        }
    }

    /// Buckets positions by sub-zone, returning per-sub-zone index lists.
    /// Reused buffers can be passed in for allocation-free hot loops via
    /// [`Self::bucket_into`].
    #[must_use]
    pub fn bucket(&self, positions: &[Position]) -> Vec<Vec<usize>> {
        let mut buckets = vec![Vec::new(); self.sub_zone_count()];
        self.bucket_into(positions, &mut buckets);
        buckets
    }

    /// Like [`Self::bucket`] but reuses `buckets` (cleared, resized).
    pub fn bucket_into(&self, positions: &[Position], buckets: &mut Vec<Vec<usize>>) {
        buckets.resize(self.sub_zone_count(), Vec::new());
        for b in buckets.iter_mut() {
            b.clear();
        }
        for (i, p) in positions.iter().enumerate() {
            buckets[self.locate(p).0 as usize].push(i);
        }
    }

    /// Entity count per sub-zone from a position list — the "map of
    /// entity counts for each sub-zone" the predictors consume.
    #[must_use]
    pub fn count_map(&self, positions: &[Position]) -> Vec<u32> {
        let mut counts = vec![0u32; self.sub_zone_count()];
        for p in positions {
            counts[self.locate(p).0 as usize] += 1;
        }
        counts
    }

    /// Accumulates the count map from paired coordinate columns into a
    /// reusable buffer (cleared and resized first), so struct-of-arrays
    /// hot loops build the Sec. IV-B map with no allocation and two
    /// purely sequential column scans.
    ///
    /// # Panics
    /// Panics if the columns differ in length.
    pub fn count_into(&self, xs: &[f64], ys: &[f64], counts: &mut Vec<u32>) {
        assert_eq!(xs.len(), ys.len(), "coordinate columns must pair up");
        counts.clear();
        counts.resize(self.sub_zone_count(), 0);
        for (&x, &y) in xs.iter().zip(ys) {
            counts[self.locate_xy(x, y).0 as usize] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_corners_and_center() {
        let g = ZoneGrid::new(100.0, 4);
        assert_eq!(g.locate(&Position::new(0.0, 0.0)), SubZoneId(0));
        assert_eq!(g.locate(&Position::new(99.9, 0.0)), SubZoneId(3));
        assert_eq!(g.locate(&Position::new(0.0, 99.9)), SubZoneId(12));
        assert_eq!(g.locate(&Position::new(99.9, 99.9)), SubZoneId(15));
        assert_eq!(g.locate(&Position::new(50.0, 50.0)), SubZoneId(10));
    }

    #[test]
    fn locate_clamps_out_of_world() {
        let g = ZoneGrid::new(100.0, 4);
        assert_eq!(g.locate(&Position::new(-10.0, -10.0)), SubZoneId(0));
        assert_eq!(g.locate(&Position::new(500.0, 500.0)), SubZoneId(15));
    }

    #[test]
    fn coords_center_round_trip() {
        let g = ZoneGrid::new(80.0, 8);
        for i in 0..g.sub_zone_count() as u32 {
            let z = SubZoneId(i);
            let c = g.center(z);
            assert_eq!(g.locate(&c), z, "center of {z:?} must map back");
        }
    }

    #[test]
    fn neighborhood_interior_and_corner() {
        let g = ZoneGrid::new(100.0, 5);
        let interior = g.neighborhood(SubZoneId(12), 1); // centre cell
        assert_eq!(interior.len(), 9);
        let corner = g.neighborhood(SubZoneId(0), 1);
        assert_eq!(corner.len(), 4);
        let zero_radius = g.neighborhood(SubZoneId(7), 0);
        assert_eq!(zero_radius, vec![SubZoneId(7)]);
    }

    #[test]
    fn neighborhood_covers_whole_grid_with_large_radius() {
        let g = ZoneGrid::new(10.0, 3);
        let all = g.neighborhood(SubZoneId(4), 10);
        assert_eq!(all.len(), 9);
    }

    #[test]
    fn count_map_totals_match() {
        let g = ZoneGrid::new(100.0, 10);
        let positions: Vec<Position> = (0..50)
            .map(|i| Position::new((i * 7 % 100) as f64, (i * 13 % 100) as f64))
            .collect();
        let counts = g.count_map(&positions);
        assert_eq!(counts.iter().map(|c| u64::from(*c)).sum::<u64>(), 50);
        assert_eq!(counts.len(), 100);
    }

    #[test]
    fn bucket_matches_count_map() {
        let g = ZoneGrid::new(100.0, 6);
        let positions: Vec<Position> = (0..40)
            .map(|i| Position::new((i * 11 % 100) as f64, (i * 17 % 100) as f64))
            .collect();
        let buckets = g.bucket(&positions);
        let counts = g.count_map(&positions);
        for (b, &c) in buckets.iter().zip(&counts) {
            assert_eq!(b.len() as u32, c);
        }
        // Every index appears exactly once.
        let mut seen: Vec<usize> = buckets.into_iter().flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn locate_xy_agrees_with_locate() {
        let g = ZoneGrid::new(100.0, 7);
        for i in 0..60 {
            let p = Position::new((i * 13 % 110) as f64 - 5.0, (i * 29 % 110) as f64 - 5.0);
            assert_eq!(g.locate_xy(p.x, p.y), g.locate(&p));
        }
    }

    #[test]
    fn count_into_matches_count_map() {
        let g = ZoneGrid::new(100.0, 9);
        let positions: Vec<Position> = (0..70)
            .map(|i| Position::new((i * 19 % 100) as f64, (i * 23 % 100) as f64))
            .collect();
        let xs: Vec<f64> = positions.iter().map(|p| p.x).collect();
        let ys: Vec<f64> = positions.iter().map(|p| p.y).collect();
        let mut counts = vec![99; 3]; // stale buffer must be reset
        g.count_into(&xs, &ys, &mut counts);
        assert_eq!(counts, g.count_map(&positions));
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn count_into_rejects_mismatched_columns() {
        let g = ZoneGrid::new(10.0, 2);
        let mut counts = Vec::new();
        g.count_into(&[1.0, 2.0], &[1.0], &mut counts);
    }

    #[test]
    #[should_panic(expected = "at least one sub-zone")]
    fn zero_grid_rejected() {
        let _ = ZoneGrid::new(10.0, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_world_rejected() {
        let _ = ZoneGrid::new(0.0, 4);
    }

    #[test]
    fn cell_size() {
        let g = ZoneGrid::new(160.0, 16);
        assert!((g.cell_size() - 10.0).abs() < 1e-12);
    }
}
