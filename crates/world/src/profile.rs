//! The AI behaviour profiles of Sec. IV-D.1.
//!
//! "The emulated players are driven by several Artificial Intelligence
//! (AI) profiles which determine their behavior during a simulation: the
//! *aggressive* profile determines the player to seek and interact with
//! opponents; the *team player* profile causes the player to act in a
//! group together with its teammates; the *scout* profile leads the
//! entity for discovering uncharted zones of the game world (not
//! guaranteeing any interaction); and the *camper* player simulates a
//! well-known tactic in FPS games to hide and wait for the opponent."
//!
//! The four profiles match "the four behavioral profiles most encountered
//! in MMOGs: the achiever, the explorer, the socializer, and the killer".

use mmog_util::rng::Rng64;
use serde::{Deserialize, Serialize};

/// One of the four behaviour profiles driving an emulated player.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AiProfile {
    /// Seeks and interacts with opponents (Bartle's *killer*): steers
    /// toward interaction hotspots, producing dense clusters.
    Aggressive,
    /// Discovers uncharted zones (Bartle's *explorer*): wanders toward
    /// low-density areas, "not guaranteeing any interaction".
    Scout,
    /// Acts in a group with teammates (Bartle's *socializer*): follows
    /// the team centroid, producing mid-size co-moving groups.
    TeamPlayer,
    /// Hides and waits (the FPS camping tactic, Bartle's *achiever* in
    /// the paper's mapping): mostly stationary.
    Camper,
}

impl AiProfile {
    /// All four profiles, in the column order of Table I
    /// (Aggr., Scout, Team, Camp.).
    pub const ALL: [Self; 4] = [
        Self::Aggressive,
        Self::Scout,
        Self::TeamPlayer,
        Self::Camper,
    ];

    /// Baseline movement speed in world-units per tick, before the
    /// instantaneous-dynamics multiplier. Aggressive players chase, team
    /// players keep formation, scouts roam steadily, campers creep.
    #[must_use]
    pub fn base_speed(self) -> f64 {
        match self {
            Self::Aggressive => 8.0,
            Self::Scout => 5.0,
            Self::TeamPlayer => 4.0,
            Self::Camper => 0.5,
        }
    }

    /// Relative propensity to generate player-to-player interactions;
    /// used by the interaction-weighted load model.
    #[must_use]
    pub fn interactivity(self) -> f64 {
        match self {
            Self::Aggressive => 1.0,
            Self::TeamPlayer => 0.7,
            Self::Camper => 0.3,
            Self::Scout => 0.1,
        }
    }

    /// Short label used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Aggressive => "aggressive",
            Self::Scout => "scout",
            Self::TeamPlayer => "team",
            Self::Camper => "camper",
        }
    }
}

/// A probability mix over the four profiles — one row of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileMix {
    /// Weights in Table I column order (Aggr., Scout, Team, Camp.).
    /// They need not sum to 1; sampling normalises.
    pub weights: [f64; 4],
}

impl ProfileMix {
    /// Creates a mix from percentage weights (the Table I convention).
    ///
    /// # Panics
    /// Panics if all weights are zero or any is negative.
    #[must_use]
    pub fn from_percent(aggressive: f64, scout: f64, team: f64, camper: f64) -> Self {
        let weights = [aggressive, scout, team, camper];
        assert!(weights.iter().all(|w| *w >= 0.0), "negative profile weight");
        assert!(
            weights.iter().sum::<f64>() > 0.0,
            "profile mix must be non-empty"
        );
        Self { weights }
    }

    /// Samples a profile according to the weights.
    pub fn sample(&self, rng: &mut Rng64) -> AiProfile {
        let idx = rng
            .weighted_index(&self.weights)
            .expect("constructor guarantees positive total weight");
        AiProfile::ALL[idx]
    }

    /// Fraction of the mix assigned to `profile`, in `[0,1]`.
    #[must_use]
    pub fn fraction(&self, profile: AiProfile) -> f64 {
        let total: f64 = self.weights.iter().sum();
        let idx = AiProfile::ALL
            .iter()
            .position(|p| *p == profile)
            .expect("ALL is complete");
        self.weights[idx] / total
    }
}

/// Governs the "mixed behavior encountered in deployed MMOGs": each tick
/// an entity may temporarily switch away from its preferred profile, and
/// switched entities revert with a fixed probability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileSwitching {
    /// Per-tick probability that an entity playing its preferred profile
    /// temporarily adopts a random other profile.
    pub switch_prob: f64,
    /// Per-tick probability that a switched entity reverts.
    pub revert_prob: f64,
}

impl Default for ProfileSwitching {
    fn default() -> Self {
        Self {
            switch_prob: 0.02,
            revert_prob: 0.25,
        }
    }
}

impl ProfileSwitching {
    /// Applies one tick of switching dynamics, returning the next active
    /// profile for an entity currently at `active` preferring `preferred`.
    pub fn step(&self, preferred: AiProfile, active: AiProfile, rng: &mut Rng64) -> AiProfile {
        if active == preferred {
            if rng.chance(self.switch_prob) {
                // Pick uniformly among the other three profiles.
                let others: Vec<AiProfile> = AiProfile::ALL
                    .iter()
                    .copied()
                    .filter(|p| *p != preferred)
                    .collect();
                others[rng.index(others.len())]
            } else {
                active
            }
        } else if rng.chance(self.revert_prob) {
            preferred
        } else {
            active
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_sampling_matches_weights() {
        // Table I, Set 1: 80/10/0/10.
        let mix = ProfileMix::from_percent(80.0, 10.0, 0.0, 10.0);
        let mut rng = Rng64::seed_from(1);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            let p = mix.sample(&mut rng);
            let idx = AiProfile::ALL.iter().position(|q| *q == p).unwrap();
            counts[idx] += 1;
        }
        assert_eq!(counts[2], 0, "zero-weight profile must never be sampled");
        let frac_aggr = counts[0] as f64 / 40_000.0;
        assert!(
            (frac_aggr - 0.8).abs() < 0.02,
            "aggressive fraction {frac_aggr}"
        );
    }

    #[test]
    fn fraction_normalises() {
        let mix = ProfileMix::from_percent(2.0, 1.0, 1.0, 0.0);
        assert!((mix.fraction(AiProfile::Aggressive) - 0.5).abs() < 1e-12);
        assert_eq!(mix.fraction(AiProfile::Camper), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_mix_rejected() {
        let _ = ProfileMix::from_percent(0.0, 0.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_weight_rejected() {
        let _ = ProfileMix::from_percent(-1.0, 2.0, 0.0, 0.0);
    }

    #[test]
    fn switching_eventually_switches_and_reverts() {
        let sw = ProfileSwitching {
            switch_prob: 0.5,
            revert_prob: 0.5,
        };
        let mut rng = Rng64::seed_from(2);
        let mut switched = false;
        let mut reverted = false;
        let preferred = AiProfile::Scout;
        let mut active = preferred;
        for _ in 0..200 {
            let next = sw.step(preferred, active, &mut rng);
            if next != preferred {
                switched = true;
            }
            if active != preferred && next == preferred {
                reverted = true;
            }
            active = next;
        }
        assert!(switched, "never switched");
        assert!(reverted, "never reverted");
    }

    #[test]
    fn switching_never_yields_preferred_as_switch_target() {
        let sw = ProfileSwitching {
            switch_prob: 1.0,
            revert_prob: 0.0,
        };
        let mut rng = Rng64::seed_from(3);
        for _ in 0..50 {
            let next = sw.step(AiProfile::Camper, AiProfile::Camper, &mut rng);
            assert_ne!(next, AiProfile::Camper);
        }
    }

    #[test]
    fn zero_probabilities_freeze_state() {
        let sw = ProfileSwitching {
            switch_prob: 0.0,
            revert_prob: 0.0,
        };
        let mut rng = Rng64::seed_from(4);
        assert_eq!(
            sw.step(AiProfile::Scout, AiProfile::Scout, &mut rng),
            AiProfile::Scout
        );
        assert_eq!(
            sw.step(AiProfile::Scout, AiProfile::Aggressive, &mut rng),
            AiProfile::Aggressive
        );
    }

    #[test]
    fn profile_speed_ordering() {
        assert!(AiProfile::Aggressive.base_speed() > AiProfile::Scout.base_speed());
        assert!(AiProfile::Scout.base_speed() > AiProfile::Camper.base_speed());
    }

    #[test]
    fn interactivity_ordering_matches_paper() {
        // Aggressive seeks interaction; scouts guarantee none.
        assert!(AiProfile::Aggressive.interactivity() > AiProfile::TeamPlayer.interactivity());
        assert!(AiProfile::TeamPlayer.interactivity() > AiProfile::Scout.interactivity());
    }
}
