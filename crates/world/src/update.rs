//! Update-cost models.
//!
//! Sec. II-A: "Assuming the number of entities is n, the update model for
//! the various interaction types may range from O(n) for games in which
//! players are mostly solitary …, to O(n²) for games in which many
//! players acting individually are interacting, or to O(n³) for games in
//! which groups of many players each are interacting. … When using such
//! [area-of-interest] techniques, the update model may become
//! O(n × log n) from O(n²), and O(n² × log n) from O(n³)."
//!
//! [`UpdateModel::cost`] evaluates the (unnormalised) state-update work a
//! server performs for `n` co-located interacting entities; the
//! provisioning simulator normalises it against a reference server
//! capacity to obtain resource units.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The five update models evaluated in Sections V-C and V-F.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UpdateModel {
    /// `O(n)` — mostly-solitary players.
    Linear,
    /// `O(n·log n)` — pairwise interaction reduced by area-of-interest.
    NLogN,
    /// `O(n²)` — many individually interacting players.
    Quadratic,
    /// `O(n²·log n)` — group interaction reduced by area-of-interest.
    QuadraticLog,
    /// `O(n³)` — groups of many players each interacting.
    Cubic,
}

impl UpdateModel {
    /// All models in increasing complexity order — the series of
    /// Figures 9 and 10.
    pub const ALL: [Self; 5] = [
        Self::Linear,
        Self::NLogN,
        Self::Quadratic,
        Self::QuadraticLog,
        Self::Cubic,
    ];

    /// Unnormalised update cost for `n` entities. Uses `log2(n + 1)` so
    /// the cost is zero at `n = 0` and finite everywhere; negative inputs
    /// clamp to zero.
    #[must_use]
    pub fn cost(self, n: f64) -> f64 {
        let n = n.max(0.0);
        let lg = (n + 1.0).log2();
        match self {
            Self::Linear => n,
            Self::NLogN => n * lg,
            Self::Quadratic => n * n,
            Self::QuadraticLog => n * n * lg,
            Self::Cubic => n * n * n,
        }
    }

    /// The model obtained by applying area-of-interest filtering
    /// (Sec. II-A's reduction); models without a stated reduction are
    /// returned unchanged.
    #[must_use]
    pub fn aoi_reduced(self) -> Self {
        match self {
            Self::Quadratic => Self::NLogN,
            Self::Cubic => Self::QuadraticLog,
            other => other,
        }
    }

    /// Label used in the paper's figures (e.g. `O(n^2 x log(n))`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Linear => "O(n)",
            Self::NLogN => "O(n x log(n))",
            Self::Quadratic => "O(n^2)",
            Self::QuadraticLog => "O(n^2 x log(n))",
            Self::Cubic => "O(n^3)",
        }
    }

    /// Complexity rank (0 = cheapest) for ordering assertions.
    #[must_use]
    pub fn rank(self) -> usize {
        Self::ALL
            .iter()
            .position(|m| *m == self)
            .expect("ALL is complete")
    }
}

impl fmt::Display for UpdateModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_at_zero_is_zero() {
        for m in UpdateModel::ALL {
            assert_eq!(m.cost(0.0), 0.0, "{m}");
            assert_eq!(m.cost(-5.0), 0.0, "{m} must clamp negatives");
        }
    }

    #[test]
    fn costs_ordered_by_complexity_for_large_n() {
        let n = 1000.0;
        for w in UpdateModel::ALL.windows(2) {
            assert!(
                w[0].cost(n) < w[1].cost(n),
                "{} should cost less than {} at n={n}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn cost_monotone_in_n() {
        for m in UpdateModel::ALL {
            let mut prev = 0.0;
            for i in 1..100 {
                let c = m.cost(f64::from(i));
                assert!(c > prev, "{m} not monotone at n={i}");
                prev = c;
            }
        }
    }

    #[test]
    fn quadratic_cost_exact() {
        assert_eq!(UpdateModel::Quadratic.cost(50.0), 2500.0);
        assert_eq!(UpdateModel::Linear.cost(50.0), 50.0);
        assert_eq!(UpdateModel::Cubic.cost(10.0), 1000.0);
    }

    #[test]
    fn aoi_reduction_matches_paper() {
        assert_eq!(UpdateModel::Quadratic.aoi_reduced(), UpdateModel::NLogN);
        assert_eq!(UpdateModel::Cubic.aoi_reduced(), UpdateModel::QuadraticLog);
        assert_eq!(UpdateModel::Linear.aoi_reduced(), UpdateModel::Linear);
        assert_eq!(UpdateModel::NLogN.aoi_reduced(), UpdateModel::NLogN);
    }

    #[test]
    fn aoi_reduction_lowers_cost() {
        let n = 500.0;
        assert!(UpdateModel::Quadratic.aoi_reduced().cost(n) < UpdateModel::Quadratic.cost(n));
        assert!(UpdateModel::Cubic.aoi_reduced().cost(n) < UpdateModel::Cubic.cost(n));
    }

    #[test]
    fn ranks_are_total_order() {
        let ranks: Vec<usize> = UpdateModel::ALL.iter().map(|m| m.rank()).collect();
        assert_eq!(ranks, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(UpdateModel::QuadraticLog.to_string(), "O(n^2 x log(n))");
        assert_eq!(UpdateModel::Linear.to_string(), "O(n)");
    }
}
