//! Game-world emulator for MMOG workload generation.
//!
//! This crate is the reproduction of the paper's "distributed game
//! emulator" (Sec. IV-D.1): the authors had no access to the RuneScape
//! server code, so they built an emulator that "supports the concept of
//! sub-zones and realistically emulates the behavior of the game players",
//! and used it to generate the eight trace data sets of Table I on which
//! the predictors of Section IV are compared.
//!
//! The pieces:
//!
//! - [`entity`] — game entities: avatars, NPCs, mobiles and decor
//!   (Sec. II-A's entity taxonomy), with position and motion state.
//! - [`profile`] — the four AI profiles (aggressive / scout / team player
//!   / camper) matching Bartle's achiever / explorer / socializer /
//!   killer archetypes, including the dynamic profile switching the paper
//!   describes ("each entity has its own preferred profile, but can
//!   change the profiles dynamically during the emulation").
//! - [`zone`] — the game world partitioned into a grid of sub-zones with
//!   entity-count maps ("the overall entity distribution in the entire
//!   game world consists of a map of entity counts for each sub-zone",
//!   Sec. IV-B) and area-of-interest neighbourhood queries.
//! - [`interaction`] — interaction counting between entities, exact
//!   (radius-based, via the zone grid) and per-sub-zone approximations.
//! - [`update`] — the update-cost models `O(n)` … `O(n³)` and their
//!   area-of-interest-reduced variants (Sec. II-A).
//! - [`emulator`] — the time-stepped emulator producing entity-count
//!   distributions every two simulated minutes.
//! - [`config`] — emulator parameters, including the eight Table I
//!   presets.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod emulator;
pub mod entity;
pub mod interaction;
pub mod profile;
pub mod update;
pub mod zone;

pub use config::{DynamicsLevel, EmulatorConfig, TraceSet};
pub use emulator::{EmulatorOutput, GameEmulator, WorldSnapshot};
pub use entity::{Entity, EntityId, EntityKind, EntityStore};
pub use profile::{AiProfile, ProfileMix};
pub use update::UpdateModel;
pub use zone::{SubZoneId, ZoneGrid};
