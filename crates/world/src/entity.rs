//! Game entities.
//!
//! Section II-A of the paper describes game worlds as "comprising various
//! game objects (entities): in-game representation of the players
//! (avatars), mobile entities that have the ability to act independently
//! (bots or non-player characters (NPCs)), other entities that can be
//! interacted with (mobiles), and immutable entities (decor)".

use crate::profile::AiProfile;
use serde::{Deserialize, Serialize};

/// Stable identifier of an entity within one emulated game world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EntityId(pub u64);

/// The entity taxonomy of Sec. II-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntityKind {
    /// In-game representation of a human player.
    Avatar,
    /// Bot / non-player character able to act independently.
    Npc,
    /// Interactable object (loot, vendor stand, resource node, …).
    Mobile,
    /// Immutable scenery. Decor never moves and never interacts, but it
    /// still occupies simulation state.
    Decor,
}

impl EntityKind {
    /// Whether entities of this kind move around the world.
    #[must_use]
    pub fn is_mobile(self) -> bool {
        matches!(self, Self::Avatar | Self::Npc)
    }

    /// Whether entities of this kind participate in interactions (and
    /// thus contribute to the interaction-driven load of Sec. III-D).
    #[must_use]
    pub fn interacts(self) -> bool {
        !matches!(self, Self::Decor)
    }
}

/// A 2-D position in world coordinates (the world is a `size × size`
/// square; see [`crate::zone::ZoneGrid`]).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Position {
    /// Horizontal coordinate in `[0, world_size)`.
    pub x: f64,
    /// Vertical coordinate in `[0, world_size)`.
    pub y: f64,
}

impl Position {
    /// Creates a position.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another position.
    #[must_use]
    pub fn distance(&self, other: &Self) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Steps `frac` of the way towards `target` (0 = stay, 1 = arrive).
    #[must_use]
    pub fn lerp_towards(&self, target: &Self, frac: f64) -> Self {
        let f = frac.clamp(0.0, 1.0);
        Self {
            x: self.x + (target.x - self.x) * f,
            y: self.y + (target.y - self.y) * f,
        }
    }

    /// Moves up to `step` world units towards `target`, stopping exactly
    /// on it when closer than `step`.
    #[must_use]
    pub fn step_towards(&self, target: &Self, step: f64) -> Self {
        let d = self.distance(target);
        if d <= step || d == 0.0 {
            *target
        } else {
            self.lerp_towards(target, step / d)
        }
    }

    /// Clamps both coordinates into `[0, size)`.
    #[must_use]
    pub fn clamped(&self, size: f64) -> Self {
        // Relative nudge: `size - EPSILON` equals `size` for size ≥ 2.
        let hi = if size > 0.0 {
            size * (1.0 - 1e-12)
        } else {
            0.0
        };
        Self {
            x: self.x.clamp(0.0, hi),
            y: self.y.clamp(0.0, hi),
        }
    }
}

/// A live entity in the emulated world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Entity {
    /// Stable identifier.
    pub id: EntityId,
    /// Taxonomy kind.
    pub kind: EntityKind,
    /// Current position.
    pub pos: Position,
    /// The profile the entity prefers to play.
    pub preferred_profile: AiProfile,
    /// The profile currently in effect (entities switch dynamically).
    pub active_profile: AiProfile,
    /// Current movement target, if any.
    pub target: Option<Position>,
    /// Team index for team players (`None` otherwise).
    pub team: Option<u32>,
}

impl Entity {
    /// Creates an avatar with the given preferred profile at a position.
    #[must_use]
    pub fn avatar(id: EntityId, pos: Position, profile: AiProfile) -> Self {
        Self {
            id,
            kind: EntityKind::Avatar,
            pos,
            preferred_profile: profile,
            active_profile: profile,
            target: None,
            team: None,
        }
    }

    /// Returns to the preferred profile (after a temporary switch).
    pub fn revert_profile(&mut self) {
        self.active_profile = self.preferred_profile;
    }
}

/// Sentinel in the team column marking an entity without a team.
const NO_TEAM: u32 = u32::MAX;

/// Struct-of-arrays storage for the live entity population.
///
/// Each per-tick emulator loop touches only a slice of an entity's
/// fields — the count map wants positions, profile switching wants the
/// two profile columns, population churn wants kinds. Keeping every
/// field in its own contiguous column turns those loops into linear
/// scans over exactly the bytes they read, instead of striding over
/// whole [`Entity`] records. The columns always have equal length; row
/// `i` across all columns is one entity.
#[derive(Debug, Clone, Default)]
pub struct EntityStore {
    ids: Vec<u64>,
    kinds: Vec<EntityKind>,
    xs: Vec<f64>,
    ys: Vec<f64>,
    preferred: Vec<AiProfile>,
    active: Vec<AiProfile>,
    target_xs: Vec<f64>,
    target_ys: Vec<f64>,
    has_target: Vec<bool>,
    teams: Vec<u32>,
}

impl EntityStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored entities.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no entities are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Appends an entity, scattering its fields into the columns.
    pub fn push(&mut self, e: Entity) {
        self.ids.push(e.id.0);
        self.kinds.push(e.kind);
        self.xs.push(e.pos.x);
        self.ys.push(e.pos.y);
        self.preferred.push(e.preferred_profile);
        self.active.push(e.active_profile);
        let t = e.target.unwrap_or_default();
        self.target_xs.push(t.x);
        self.target_ys.push(t.y);
        self.has_target.push(e.target.is_some());
        self.teams.push(e.team.map_or(NO_TEAM, |t| t));
    }

    /// Reassembles row `i` into an [`Entity`] record.
    #[must_use]
    pub fn get(&self, i: usize) -> Entity {
        Entity {
            id: EntityId(self.ids[i]),
            kind: self.kinds[i],
            pos: Position::new(self.xs[i], self.ys[i]),
            preferred_profile: self.preferred[i],
            active_profile: self.active[i],
            target: self.target(i),
            team: self.team(i),
        }
    }

    /// Removes row `i` by swapping in the last row ([`Vec::swap_remove`]
    /// semantics, applied to every column).
    pub fn swap_remove(&mut self, i: usize) {
        self.ids.swap_remove(i);
        self.kinds.swap_remove(i);
        self.xs.swap_remove(i);
        self.ys.swap_remove(i);
        self.preferred.swap_remove(i);
        self.active.swap_remove(i);
        self.target_xs.swap_remove(i);
        self.target_ys.swap_remove(i);
        self.has_target.swap_remove(i);
        self.teams.swap_remove(i);
    }

    /// Taxonomy kind of row `i`.
    #[must_use]
    pub fn kind(&self, i: usize) -> EntityKind {
        self.kinds[i]
    }

    /// Number of rows of the given kind (one linear scan of the kind
    /// column).
    #[must_use]
    pub fn count_kind(&self, kind: EntityKind) -> usize {
        self.kinds.iter().filter(|&&k| k == kind).count()
    }

    /// Position of row `i`.
    #[must_use]
    pub fn pos(&self, i: usize) -> Position {
        Position::new(self.xs[i], self.ys[i])
    }

    /// Overwrites the position of row `i`.
    pub fn set_pos(&mut self, i: usize, pos: Position) {
        self.xs[i] = pos.x;
        self.ys[i] = pos.y;
    }

    /// The x-coordinate column (paired elementwise with [`Self::ys`]).
    #[must_use]
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The y-coordinate column (paired elementwise with [`Self::xs`]).
    #[must_use]
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Preferred AI profile of row `i`.
    #[must_use]
    pub fn preferred_profile(&self, i: usize) -> AiProfile {
        self.preferred[i]
    }

    /// Currently active AI profile of row `i`.
    #[must_use]
    pub fn active_profile(&self, i: usize) -> AiProfile {
        self.active[i]
    }

    /// Switches the active AI profile of row `i`.
    pub fn set_active_profile(&mut self, i: usize, profile: AiProfile) {
        self.active[i] = profile;
    }

    /// Movement target of row `i`, if any.
    #[must_use]
    pub fn target(&self, i: usize) -> Option<Position> {
        self.has_target[i].then(|| Position::new(self.target_xs[i], self.target_ys[i]))
    }

    /// Sets the movement target of row `i`.
    pub fn set_target(&mut self, i: usize, target: Position) {
        self.target_xs[i] = target.x;
        self.target_ys[i] = target.y;
        self.has_target[i] = true;
    }

    /// Team index of row `i` (team players only).
    #[must_use]
    pub fn team(&self, i: usize) -> Option<u32> {
        (self.teams[i] != NO_TEAM).then_some(self.teams[i])
    }

    /// Iterates over reassembled [`Entity`] records (for inspection and
    /// tests; hot loops should read the columns directly).
    pub fn iter(&self) -> impl Iterator<Item = Entity> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }
}

impl<'a> IntoIterator for &'a EntityStore {
    type Item = Entity;
    type IntoIter = Box<dyn Iterator<Item = Entity> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(EntityKind::Avatar.is_mobile());
        assert!(EntityKind::Npc.is_mobile());
        assert!(!EntityKind::Mobile.is_mobile());
        assert!(!EntityKind::Decor.is_mobile());
        assert!(EntityKind::Avatar.interacts());
        assert!(EntityKind::Mobile.interacts());
        assert!(!EntityKind::Decor.interacts());
    }

    #[test]
    fn distance_and_lerp() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        let mid = a.lerp_towards(&b, 0.5);
        assert!((mid.x - 1.5).abs() < 1e-12 && (mid.y - 2.0).abs() < 1e-12);
        // Clamped fractions.
        assert_eq!(a.lerp_towards(&b, -1.0), a);
        assert_eq!(a.lerp_towards(&b, 2.0), b);
    }

    #[test]
    fn step_towards_arrives_exactly() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        let stepped = a.step_towards(&b, 10.0);
        assert_eq!(stepped, b);
        let partial = a.step_towards(&b, 2.5);
        assert!((a.distance(&partial) - 2.5).abs() < 1e-12);
        // Zero distance: no NaN.
        let same = b.step_towards(&b, 1.0);
        assert_eq!(same, b);
    }

    #[test]
    fn clamp_keeps_position_in_world() {
        let p = Position::new(-5.0, 150.0).clamped(100.0);
        assert_eq!(p.x, 0.0);
        assert!(p.y < 100.0);
    }

    #[test]
    fn avatar_starts_with_preferred_profile() {
        let e = Entity::avatar(EntityId(1), Position::new(1.0, 2.0), AiProfile::Scout);
        assert_eq!(e.active_profile, AiProfile::Scout);
        assert_eq!(e.kind, EntityKind::Avatar);
        assert!(e.team.is_none());
    }

    #[test]
    fn revert_profile_restores_preference() {
        let mut e = Entity::avatar(EntityId(1), Position::default(), AiProfile::Camper);
        e.active_profile = AiProfile::Aggressive;
        e.revert_profile();
        assert_eq!(e.active_profile, AiProfile::Camper);
    }

    fn sample_entity(id: u64, team: Option<u32>) -> Entity {
        let mut e = Entity::avatar(
            EntityId(id),
            Position::new(id as f64, 2.0 * id as f64),
            AiProfile::Scout,
        );
        e.team = team;
        e.target = (id % 2 == 0).then(|| Position::new(9.0, 9.0));
        e
    }

    #[test]
    fn store_round_trips_entities() {
        let mut store = EntityStore::new();
        store.push(sample_entity(0, None));
        store.push(sample_entity(1, Some(3)));
        assert_eq!(store.len(), 2);
        for i in 0..store.len() {
            let original = sample_entity(i as u64, if i == 1 { Some(3) } else { None });
            let got = store.get(i);
            assert_eq!(got.id, original.id);
            assert_eq!(got.kind, original.kind);
            assert_eq!(got.pos, original.pos);
            assert_eq!(got.preferred_profile, original.preferred_profile);
            assert_eq!(got.active_profile, original.active_profile);
            assert_eq!(got.target, original.target);
            assert_eq!(got.team, original.team);
        }
        assert_eq!(store.iter().count(), 2);
    }

    #[test]
    fn store_swap_remove_matches_vec_semantics() {
        let mut store = EntityStore::new();
        let mut mirror: Vec<Entity> = Vec::new();
        for id in 0..5 {
            let e = sample_entity(id, (id == 2).then_some(1));
            store.push(e.clone());
            mirror.push(e);
        }
        store.swap_remove(1);
        mirror.swap_remove(1);
        store.swap_remove(2);
        mirror.swap_remove(2);
        assert_eq!(store.len(), mirror.len());
        for (i, m) in mirror.iter().enumerate() {
            assert_eq!(store.get(i).id, m.id);
            assert_eq!(store.pos(i), m.pos);
            assert_eq!(store.target(i), m.target);
            assert_eq!(store.team(i), m.team);
        }
    }

    #[test]
    fn store_columns_stay_paired_through_mutation() {
        let mut store = EntityStore::new();
        for id in 0..4 {
            store.push(sample_entity(id, None));
        }
        store.set_pos(2, Position::new(7.5, 8.5));
        store.set_target(3, Position::new(1.0, 2.0));
        store.set_active_profile(0, AiProfile::Camper);
        assert_eq!(store.pos(2), Position::new(7.5, 8.5));
        assert_eq!(store.target(3), Some(Position::new(1.0, 2.0)));
        assert_eq!(store.active_profile(0), AiProfile::Camper);
        assert_eq!(store.preferred_profile(0), AiProfile::Scout);
        assert_eq!(store.xs().len(), store.ys().len());
        assert_eq!(store.count_kind(EntityKind::Avatar), 4);
        assert_eq!(store.count_kind(EntityKind::Npc), 0);
    }
}
