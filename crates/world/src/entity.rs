//! Game entities.
//!
//! Section II-A of the paper describes game worlds as "comprising various
//! game objects (entities): in-game representation of the players
//! (avatars), mobile entities that have the ability to act independently
//! (bots or non-player characters (NPCs)), other entities that can be
//! interacted with (mobiles), and immutable entities (decor)".

use crate::profile::AiProfile;
use serde::{Deserialize, Serialize};

/// Stable identifier of an entity within one emulated game world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EntityId(pub u64);

/// The entity taxonomy of Sec. II-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntityKind {
    /// In-game representation of a human player.
    Avatar,
    /// Bot / non-player character able to act independently.
    Npc,
    /// Interactable object (loot, vendor stand, resource node, …).
    Mobile,
    /// Immutable scenery. Decor never moves and never interacts, but it
    /// still occupies simulation state.
    Decor,
}

impl EntityKind {
    /// Whether entities of this kind move around the world.
    #[must_use]
    pub fn is_mobile(self) -> bool {
        matches!(self, Self::Avatar | Self::Npc)
    }

    /// Whether entities of this kind participate in interactions (and
    /// thus contribute to the interaction-driven load of Sec. III-D).
    #[must_use]
    pub fn interacts(self) -> bool {
        !matches!(self, Self::Decor)
    }
}

/// A 2-D position in world coordinates (the world is a `size × size`
/// square; see [`crate::zone::ZoneGrid`]).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Position {
    /// Horizontal coordinate in `[0, world_size)`.
    pub x: f64,
    /// Vertical coordinate in `[0, world_size)`.
    pub y: f64,
}

impl Position {
    /// Creates a position.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another position.
    #[must_use]
    pub fn distance(&self, other: &Self) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Steps `frac` of the way towards `target` (0 = stay, 1 = arrive).
    #[must_use]
    pub fn lerp_towards(&self, target: &Self, frac: f64) -> Self {
        let f = frac.clamp(0.0, 1.0);
        Self {
            x: self.x + (target.x - self.x) * f,
            y: self.y + (target.y - self.y) * f,
        }
    }

    /// Moves up to `step` world units towards `target`, stopping exactly
    /// on it when closer than `step`.
    #[must_use]
    pub fn step_towards(&self, target: &Self, step: f64) -> Self {
        let d = self.distance(target);
        if d <= step || d == 0.0 {
            *target
        } else {
            self.lerp_towards(target, step / d)
        }
    }

    /// Clamps both coordinates into `[0, size)`.
    #[must_use]
    pub fn clamped(&self, size: f64) -> Self {
        // Relative nudge: `size - EPSILON` equals `size` for size ≥ 2.
        let hi = if size > 0.0 {
            size * (1.0 - 1e-12)
        } else {
            0.0
        };
        Self {
            x: self.x.clamp(0.0, hi),
            y: self.y.clamp(0.0, hi),
        }
    }
}

/// A live entity in the emulated world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Entity {
    /// Stable identifier.
    pub id: EntityId,
    /// Taxonomy kind.
    pub kind: EntityKind,
    /// Current position.
    pub pos: Position,
    /// The profile the entity prefers to play.
    pub preferred_profile: AiProfile,
    /// The profile currently in effect (entities switch dynamically).
    pub active_profile: AiProfile,
    /// Current movement target, if any.
    pub target: Option<Position>,
    /// Team index for team players (`None` otherwise).
    pub team: Option<u32>,
}

impl Entity {
    /// Creates an avatar with the given preferred profile at a position.
    #[must_use]
    pub fn avatar(id: EntityId, pos: Position, profile: AiProfile) -> Self {
        Self {
            id,
            kind: EntityKind::Avatar,
            pos,
            preferred_profile: profile,
            active_profile: profile,
            target: None,
            team: None,
        }
    }

    /// Returns to the preferred profile (after a temporary switch).
    pub fn revert_profile(&mut self) {
        self.active_profile = self.preferred_profile;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(EntityKind::Avatar.is_mobile());
        assert!(EntityKind::Npc.is_mobile());
        assert!(!EntityKind::Mobile.is_mobile());
        assert!(!EntityKind::Decor.is_mobile());
        assert!(EntityKind::Avatar.interacts());
        assert!(EntityKind::Mobile.interacts());
        assert!(!EntityKind::Decor.interacts());
    }

    #[test]
    fn distance_and_lerp() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        let mid = a.lerp_towards(&b, 0.5);
        assert!((mid.x - 1.5).abs() < 1e-12 && (mid.y - 2.0).abs() < 1e-12);
        // Clamped fractions.
        assert_eq!(a.lerp_towards(&b, -1.0), a);
        assert_eq!(a.lerp_towards(&b, 2.0), b);
    }

    #[test]
    fn step_towards_arrives_exactly() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        let stepped = a.step_towards(&b, 10.0);
        assert_eq!(stepped, b);
        let partial = a.step_towards(&b, 2.5);
        assert!((a.distance(&partial) - 2.5).abs() < 1e-12);
        // Zero distance: no NaN.
        let same = b.step_towards(&b, 1.0);
        assert_eq!(same, b);
    }

    #[test]
    fn clamp_keeps_position_in_world() {
        let p = Position::new(-5.0, 150.0).clamped(100.0);
        assert_eq!(p.x, 0.0);
        assert!(p.y < 100.0);
    }

    #[test]
    fn avatar_starts_with_preferred_profile() {
        let e = Entity::avatar(EntityId(1), Position::new(1.0, 2.0), AiProfile::Scout);
        assert_eq!(e.active_profile, AiProfile::Scout);
        assert_eq!(e.kind, EntityKind::Avatar);
        assert!(e.team.is_none());
    }

    #[test]
    fn revert_profile_restores_preference() {
        let mut e = Entity::avatar(EntityId(1), Position::default(), AiProfile::Camper);
        e.active_profile = AiProfile::Aggressive;
        e.revert_profile();
        assert_eq!(e.active_profile, AiProfile::Camper);
    }
}
