//! Interaction counting.
//!
//! "A fundamental premise of this work is that the workload of MMOGs
//! depends on the interactions between players" (Sec. III-D). The
//! emulator therefore has to measure how much its entities interact.
//! Two counters are provided:
//!
//! - [`count_pairs_exact`] — the ground truth: pairs of entities within
//!   an area-of-interest radius, computed with a grid-bucket sweep so the
//!   cost is `O(n · k)` (k = neighbourhood occupancy) instead of `O(n²)`.
//! - [`count_pairs_subzone`] — the sub-zone approximation the predictors
//!   rely on ("the entity interaction can be inferred in practice from
//!   the entity distribution in the simulated environment", Sec. IV-B):
//!   all entity pairs co-located in a sub-zone count as interacting.

use crate::entity::Position;
use crate::zone::{SubZoneId, ZoneGrid};

/// Reusable buffers for the exact pair sweep: per-sub-zone index
/// buckets and the neighbourhood list. One scratch serves any number of
/// [`count_pairs_exact_scratch`] calls (buffers grow to fit), so
/// repeated sweeps over a moving world allocate nothing per tick.
#[derive(Debug, Clone, Default)]
pub struct PairScratch {
    buckets: Vec<Vec<usize>>,
    neighborhood: Vec<SubZoneId>,
}

/// Counts unordered entity pairs within `radius` of each other (exact,
/// grid-accelerated). Entities at exactly `radius` distance count.
///
/// Convenience wrapper allocating fresh buffers; hot loops should hold
/// a [`PairScratch`] and call [`count_pairs_exact_scratch`].
#[must_use]
pub fn count_pairs_exact(grid: &ZoneGrid, positions: &[Position], radius: f64) -> u64 {
    let mut scratch = PairScratch::default();
    count_pairs_exact_scratch(grid, positions, radius, &mut scratch)
}

/// Allocation-free [`count_pairs_exact`]: buckets and neighbourhoods
/// live in `scratch` and are recycled sweep to sweep. The zone visiting
/// order and distance arithmetic are identical, so the count matches
/// exactly.
#[must_use]
pub fn count_pairs_exact_scratch(
    grid: &ZoneGrid,
    positions: &[Position],
    radius: f64,
    scratch: &mut PairScratch,
) -> u64 {
    debug_assert!(radius >= 0.0);
    grid.bucket_into(positions, &mut scratch.buckets);
    let buckets = &scratch.buckets;
    // The neighbourhood must cover the interaction radius.
    let radius_cells = (radius / grid.cell_size()).ceil() as u32;
    let mut pairs = 0u64;
    let r2 = radius * radius;
    for (zi, bucket) in buckets.iter().enumerate() {
        if bucket.is_empty() {
            continue;
        }
        let zone = SubZoneId(zi as u32);
        grid.neighborhood_into(zone, radius_cells, &mut scratch.neighborhood);
        for &nz in &scratch.neighborhood {
            // Visit each unordered zone pair once; within a zone, count
            // index-ordered pairs.
            if (nz.0 as usize) < zi {
                continue;
            }
            let other = &buckets[nz.0 as usize];
            if nz.0 as usize == zi {
                for (a, &ia) in bucket.iter().enumerate() {
                    for &ib in &bucket[a + 1..] {
                        let (pa, pb) = (&positions[ia], &positions[ib]);
                        let dx = pa.x - pb.x;
                        let dy = pa.y - pb.y;
                        if dx * dx + dy * dy <= r2 {
                            pairs += 1;
                        }
                    }
                }
            } else {
                for &ia in bucket {
                    for &ib in other {
                        let (pa, pb) = (&positions[ia], &positions[ib]);
                        let dx = pa.x - pb.x;
                        let dy = pa.y - pb.y;
                        if dx * dx + dy * dy <= r2 {
                            pairs += 1;
                        }
                    }
                }
            }
        }
    }
    pairs
}

/// Sub-zone interaction approximation: Σ_z n_z·(n_z−1)/2 over the entity
/// count map. This is the quantity a game operator can compute from the
/// entity distribution alone, without pairwise distance checks.
#[must_use]
pub fn count_pairs_subzone(counts: &[u32]) -> u64 {
    counts
        .iter()
        .map(|&c| {
            let c = u64::from(c);
            c * (c - c.min(1)) / 2
        })
        .sum()
}

/// Interaction density: average interacting pairs per entity (0 when the
/// world is empty). Rises sharply when players cluster in hotspots.
#[must_use]
pub fn interaction_density(pairs: u64, entities: usize) -> f64 {
    if entities == 0 {
        0.0
    } else {
        pairs as f64 / entities as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::Position;
    use mmog_util::rng::Rng64;

    /// Brute-force reference for the exact counter.
    fn brute_force(positions: &[Position], radius: f64) -> u64 {
        let r2 = radius * radius;
        let mut pairs = 0;
        for i in 0..positions.len() {
            for j in i + 1..positions.len() {
                let dx = positions[i].x - positions[j].x;
                let dy = positions[i].y - positions[j].y;
                if dx * dx + dy * dy <= r2 {
                    pairs += 1;
                }
            }
        }
        pairs
    }

    #[test]
    fn exact_matches_brute_force_random() {
        let grid = ZoneGrid::new(100.0, 8);
        let mut rng = Rng64::seed_from(5);
        let positions: Vec<Position> = (0..200)
            .map(|_| Position::new(rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 100.0)))
            .collect();
        for radius in [0.5, 3.0, 12.5, 40.0] {
            assert_eq!(
                count_pairs_exact(&grid, &positions, radius),
                brute_force(&positions, radius),
                "radius {radius}"
            );
        }
    }

    #[test]
    fn exact_zero_radius_counts_coincident_only() {
        let grid = ZoneGrid::new(10.0, 2);
        let positions = vec![
            Position::new(1.0, 1.0),
            Position::new(1.0, 1.0),
            Position::new(5.0, 5.0),
        ];
        assert_eq!(count_pairs_exact(&grid, &positions, 0.0), 1);
    }

    #[test]
    fn exact_empty_and_single() {
        let grid = ZoneGrid::new(10.0, 2);
        assert_eq!(count_pairs_exact(&grid, &[], 5.0), 0);
        assert_eq!(count_pairs_exact(&grid, &[Position::new(1.0, 1.0)], 5.0), 0);
    }

    #[test]
    fn exact_cross_cell_pairs_found() {
        // Two entities straddling a cell border, well within radius.
        let grid = ZoneGrid::new(100.0, 10);
        let positions = vec![Position::new(9.9, 5.0), Position::new(10.1, 5.0)];
        assert_eq!(count_pairs_exact(&grid, &positions, 1.0), 1);
    }

    #[test]
    fn subzone_pairs_formula() {
        assert_eq!(count_pairs_subzone(&[0, 1, 2, 3]), 0 + 0 + 1 + 3);
        assert_eq!(count_pairs_subzone(&[]), 0);
        assert_eq!(count_pairs_subzone(&[10]), 45);
    }

    #[test]
    fn clustering_raises_subzone_pairs() {
        // Same population, spread vs. clustered: clustered interacts more.
        let spread = vec![1u32; 100];
        let clustered = {
            let mut v = vec![0u32; 100];
            v[0] = 100;
            v
        };
        assert!(count_pairs_subzone(&clustered) > count_pairs_subzone(&spread) * 100);
    }

    #[test]
    fn density_empty_world() {
        assert_eq!(interaction_density(0, 0), 0.0);
        assert_eq!(interaction_density(10, 5), 2.0);
    }

    #[test]
    fn exact_radius_larger_than_world() {
        let grid = ZoneGrid::new(10.0, 4);
        let positions: Vec<Position> = (0..10).map(|i| Position::new(i as f64, i as f64)).collect();
        // Every pair is within radius: 10*9/2 = 45.
        assert_eq!(count_pairs_exact(&grid, &positions, 100.0), 45);
    }
}
