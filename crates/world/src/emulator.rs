//! The time-stepped game emulator.
//!
//! Reproduces the paper's emulator (Sec. IV-D.1): entities driven by the
//! four AI profiles move through a sub-zone grid; interaction hotspots
//! attract aggressive players; team anchors keep team players grouped;
//! scouts head for the least-visited zones; campers sit still. Population
//! follows a diurnal curve when peak hours are modelled, a slow random
//! walk otherwise, with instantaneous noise on top. Each tick (two
//! simulated minutes) yields a [`WorldSnapshot`]: the entity-count map
//! that Sec. IV-B's predictors consume, plus interaction counts.

use crate::config::EmulatorConfig;
use crate::entity::{Entity, EntityId, EntityStore, Position};
use crate::interaction::count_pairs_subzone;
use crate::profile::AiProfile;
use crate::zone::{SubZoneId, ZoneGrid};
use mmog_util::memo::Memo;
use mmog_util::rng::Rng64;
use mmog_util::series::TimeSeries;
use mmog_util::time::SimTime;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Interned observability handles for the per-tick kernel (looked up
/// once, not per tick).
mod obs {
    use std::sync::{Arc, OnceLock};

    /// Timing stat for one emulator tick (`world/emulator/step`).
    pub(super) fn step_timer() -> &'static mmog_obs::SpanStat {
        static T: OnceLock<Arc<mmog_obs::SpanStat>> = OnceLock::new();
        T.get_or_init(|| mmog_obs::timer("world/emulator/step"))
    }
}

/// State of the world at one tick, reduced to what the provisioning
/// pipeline needs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldSnapshot {
    /// Simulation time of the snapshot.
    pub time: SimTime,
    /// Entity count per sub-zone (row-major; the Sec. IV-B "map of
    /// entity counts").
    pub counts: Vec<u32>,
    /// Total entity count.
    pub total: u32,
    /// Interacting entity pairs under the sub-zone approximation.
    pub interaction_pairs: u64,
}

/// A complete emulator run: the grid plus one snapshot per tick.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmulatorOutput {
    /// The sub-zone grid the snapshots refer to.
    pub grid: ZoneGrid,
    /// One snapshot per tick, in time order.
    pub snapshots: Vec<WorldSnapshot>,
}

impl EmulatorOutput {
    /// Total entity count over time (the signal Figure 5's predictors
    /// are scored on, aggregated over sub-zones).
    #[must_use]
    pub fn total_series(&self) -> TimeSeries {
        self.snapshots.iter().map(|s| f64::from(s.total)).collect()
    }

    /// Entity count of one sub-zone over time.
    #[must_use]
    pub fn subzone_series(&self, z: SubZoneId) -> TimeSeries {
        self.snapshots
            .iter()
            .map(|s| f64::from(s.counts[z.0 as usize]))
            .collect()
    }

    /// Interaction pairs over time.
    #[must_use]
    pub fn interaction_series(&self) -> TimeSeries {
        self.snapshots
            .iter()
            .map(|s| s.interaction_pairs as f64)
            .collect()
    }

    /// Number of ticks in the run.
    #[must_use]
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// True when the run produced no snapshots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }
}

/// The emulator itself. Construct with [`GameEmulator::new`], then call
/// [`GameEmulator::step`] per tick or [`GameEmulator::run`] for a whole
/// window.
#[derive(Debug, Clone)]
pub struct GameEmulator {
    cfg: EmulatorConfig,
    grid: ZoneGrid,
    rng: Rng64,
    /// Live entities in struct-of-arrays layout: the per-tick loops
    /// (churn, movement, count map) each scan only the columns they
    /// touch instead of striding over whole [`Entity`] records.
    entities: EntityStore,
    next_id: u64,
    /// Roaming interaction hotspots (attract aggressive players).
    hotspots: Vec<Position>,
    /// Per-team rally points (attract team players).
    team_anchors: Vec<Position>,
    /// Waypoints the anchors drift towards.
    anchor_waypoints: Vec<Position>,
    /// Visit counter per sub-zone (scouts seek the least visited).
    visits: Vec<u64>,
    /// Slow population factor for non-peak-hours worlds, in `[0,1]`.
    slow_walk: f64,
    time: SimTime,
    /// Per-tick count-map scratch, recycled so [`step`] performs no
    /// steady-state allocation beyond the snapshot it returns.
    ///
    /// [`step`]: Self::step
    counts_scratch: Vec<u32>,
    /// The previous tick's count map (swapped with the scratch each
    /// tick) and its pair count: when entity/sub-zone membership is
    /// unchanged between ticks the pair sum is reused, not recomputed.
    last_counts: Vec<u32>,
    last_pairs: u64,
}

impl GameEmulator {
    /// Creates an emulator with a deterministic seed.
    ///
    /// # Panics
    /// Panics if the configuration fails [`EmulatorConfig::validate`].
    #[must_use]
    pub fn new(cfg: EmulatorConfig, seed: u64) -> Self {
        cfg.validate().expect("invalid emulator config");
        let grid = ZoneGrid::new(cfg.world_size, cfg.grid);
        let mut rng = Rng64::seed_from(seed);
        let hotspots = (0..cfg.hotspots)
            .map(|_| Self::random_pos(&mut rng, cfg.world_size))
            .collect();
        let team_anchors: Vec<Position> = (0..cfg.teams)
            .map(|_| Self::random_pos(&mut rng, cfg.world_size))
            .collect();
        let anchor_waypoints = team_anchors.clone();
        let visits = vec![0u64; grid.sub_zone_count()];
        Self {
            cfg,
            grid,
            rng,
            entities: EntityStore::new(),
            next_id: 0,
            hotspots,
            team_anchors,
            anchor_waypoints,
            visits,
            slow_walk: 0.5,
            time: SimTime::ZERO,
            counts_scratch: Vec::new(),
            last_counts: Vec::new(),
            last_pairs: 0,
        }
    }

    fn random_pos(rng: &mut Rng64, size: f64) -> Position {
        Position::new(rng.range_f64(0.0, size), rng.range_f64(0.0, size))
    }

    /// Current entities (for inspection and tests; hot loops read the
    /// store's columns directly).
    #[must_use]
    pub fn entities(&self) -> &EntityStore {
        &self.entities
    }

    /// The sub-zone grid.
    #[must_use]
    pub fn grid(&self) -> &ZoneGrid {
        &self.grid
    }

    /// Current simulation time.
    #[must_use]
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// Target population at the current tick: peak load × diurnal (or
    /// slow-walk) factor × instantaneous noise.
    fn target_population(&mut self) -> usize {
        let amp = self.cfg.overall_dynamics.daily_amplitude();
        let base_factor = if self.cfg.peak_hours {
            // Diurnal curve peaking at 19:00 (the "late afternoon" of
            // Sec. IV-D.1), dipping at 07:00.
            let h = self.time.hour_of_day();
            let diurnal = 0.5 * (1.0 - (2.0 * std::f64::consts::PI * (h - 7.0) / 24.0).cos());
            (1.0 - amp) + amp * diurnal
        } else {
            // Mean-reverting random walk: day-scale wandering without a
            // clock-driven shape.
            let noise = self.rng.normal() * 0.02;
            self.slow_walk =
                (self.slow_walk + 0.005 * (0.5 - self.slow_walk) + noise).clamp(0.0, 1.0);
            (1.0 - amp) + amp * self.slow_walk
        };
        let noise = 1.0 + self.cfg.instantaneous_dynamics.population_noise() * self.rng.normal();
        let target = self.cfg.peak_entities as f64 * base_factor * noise;
        (target.round().max(1.0) as usize).min(self.cfg.peak_entities * 2)
    }

    /// Spawns one entity: profile from the mix, position biased towards
    /// a hotspot half of the time (new players join the action).
    fn spawn(&mut self) {
        let profile = self.cfg.profile_mix.sample(&mut self.rng);
        let team = (profile == AiProfile::TeamPlayer)
            .then(|| self.rng.below(u64::from(self.cfg.teams)) as u32);
        let spread = self.cfg.world_size * 0.02;
        let pos = if let Some(t) = team {
            // Team players log in where their group plays.
            let anchor = self.team_anchors[t as usize % self.team_anchors.len()];
            Position::new(
                anchor.x + self.rng.normal() * spread,
                anchor.y + self.rng.normal() * spread,
            )
            .clamped(self.cfg.world_size)
        } else if self.rng.chance(0.5) {
            // Others often join the action at a hotspot.
            let h = self.hotspots[self.rng.index(self.hotspots.len())];
            Position::new(
                h.x + self.rng.normal() * spread,
                h.y + self.rng.normal() * spread,
            )
            .clamped(self.cfg.world_size)
        } else {
            Self::random_pos(&mut self.rng, self.cfg.world_size)
        };
        let mut e = Entity::avatar(EntityId(self.next_id), pos, profile);
        self.next_id += 1;
        e.team = team;
        self.entities.push(e);
    }

    /// Spawns one wandering NPC ("mobile entities that have the ability
    /// to act independently", Sec. II-A). NPCs reuse the scout movement.
    fn spawn_npc(&mut self) {
        let pos = Self::random_pos(&mut self.rng, self.cfg.world_size);
        let mut e = Entity::avatar(EntityId(self.next_id), pos, AiProfile::Scout);
        e.kind = crate::entity::EntityKind::Npc;
        self.next_id += 1;
        self.entities.push(e);
    }

    /// Adjusts the live population towards the target by spawning or
    /// despawning (random eviction keeps churn realistic). NPCs track
    /// the avatar count through `npc_ratio`.
    fn churn_population(&mut self, target: usize) {
        use crate::entity::EntityKind;
        let mut avatars = self.entities.count_kind(EntityKind::Avatar);
        let mut npcs = self.entities.len() - avatars;
        while avatars < target {
            self.spawn();
            avatars += 1;
        }
        while avatars > target {
            // Evict a random avatar.
            let idx = self.rng.index(self.entities.len());
            if self.entities.kind(idx) == EntityKind::Avatar {
                self.entities.swap_remove(idx);
                avatars -= 1;
            }
        }
        let npc_target = (target as f64 * self.cfg.npc_ratio).round() as usize;
        while npcs < npc_target {
            self.spawn_npc();
            npcs += 1;
        }
        while npcs > npc_target {
            let idx = self.rng.index(self.entities.len());
            if self.entities.kind(idx) == EntityKind::Npc {
                self.entities.swap_remove(idx);
                npcs -= 1;
            }
        }
    }

    /// Moves the hotspots and team anchors for one tick.
    fn move_attractors(&mut self) {
        let relocation = self.cfg.instantaneous_dynamics.hotspot_relocation_prob();
        let size = self.cfg.world_size;
        for i in 0..self.hotspots.len() {
            if self.rng.chance(relocation) {
                self.hotspots[i] = Self::random_pos(&mut self.rng, size);
            }
        }
        // Anchors drift towards waypoints slower than the team players
        // chase them, so formations can actually assemble.
        let speed = 0.4
            * AiProfile::TeamPlayer.base_speed()
            * self.cfg.instantaneous_dynamics.speed_factor();
        for i in 0..self.team_anchors.len() {
            let anchor = self.team_anchors[i];
            let wp = self.anchor_waypoints[i];
            if anchor.distance(&wp) < speed {
                self.anchor_waypoints[i] = Self::random_pos(&mut self.rng, size);
            }
            self.team_anchors[i] = anchor.step_towards(&wp, speed);
        }
    }

    /// Picks a scout destination: the least-visited of a few sampled
    /// sub-zones ("discovering uncharted zones of the game world").
    fn scout_destination(&mut self) -> Position {
        let zones = self.grid.sub_zone_count();
        let mut best = SubZoneId(self.rng.index(zones) as u32);
        for _ in 0..3 {
            let cand = SubZoneId(self.rng.index(zones) as u32);
            if self.visits[cand.0 as usize] < self.visits[best.0 as usize] {
                best = cand;
            }
        }
        let c = self.grid.center(best);
        let cs = self.grid.cell_size();
        Position::new(
            c.x + self.rng.range_f64(-0.4, 0.4) * cs,
            c.y + self.rng.range_f64(-0.4, 0.4) * cs,
        )
        .clamped(self.cfg.world_size)
    }

    /// Advances every entity by one tick of behaviour.
    fn move_entities(&mut self) {
        let speed_factor = self.cfg.instantaneous_dynamics.speed_factor();
        let size = self.cfg.world_size;
        let switching = self.cfg.switching;
        for i in 0..self.entities.len() {
            // Profile switching first (may change this tick's behaviour).
            let (preferred, active) = (
                self.entities.preferred_profile(i),
                self.entities.active_profile(i),
            );
            let next_profile = switching.step(preferred, active, &mut self.rng);
            self.entities.set_active_profile(i, next_profile);

            let pos = self.entities.pos(i);
            let step = next_profile.base_speed() * speed_factor;
            let new_pos = match next_profile {
                AiProfile::Aggressive => {
                    // Chase the nearest hotspot, mill around when there.
                    let nearest = self
                        .hotspots
                        .iter()
                        .copied()
                        .min_by(|a, b| {
                            pos.distance(a)
                                .partial_cmp(&pos.distance(b))
                                .expect("distances are finite")
                        })
                        .expect("config guarantees >=1 hotspot");
                    if pos.distance(&nearest) < size * 0.015 {
                        Position::new(
                            pos.x + self.rng.normal() * step,
                            pos.y + self.rng.normal() * step,
                        )
                    } else {
                        pos.step_towards(&nearest, step)
                    }
                }
                AiProfile::Scout => {
                    let need_new = match self.entities.target(i) {
                        None => true,
                        Some(t) => pos.distance(&t) < step.max(1.0),
                    };
                    if need_new {
                        let dest = self.scout_destination();
                        self.entities.set_target(i, dest);
                    }
                    let t = self.entities.target(i).expect("just set");
                    pos.step_towards(&t, step)
                }
                AiProfile::TeamPlayer => {
                    let team =
                        self.entities.team(i).unwrap_or(0) as usize % self.team_anchors.len();
                    let anchor = self.team_anchors[team];
                    // Hold a loose formation around the rally point.
                    let jitter = self.grid.cell_size() * 0.15;
                    let goal = Position::new(
                        anchor.x + self.rng.normal() * jitter,
                        anchor.y + self.rng.normal() * jitter,
                    );
                    pos.step_towards(&goal, step)
                }
                AiProfile::Camper => {
                    // Rarely relocate; otherwise hold position.
                    if self.rng.chance(0.005) {
                        let dest = Self::random_pos(&mut self.rng, size);
                        self.entities.set_target(i, dest);
                    }
                    match self.entities.target(i) {
                        Some(t) if pos.distance(&t) > step => pos.step_towards(&t, step),
                        _ => pos,
                    }
                }
            };
            self.entities.set_pos(i, new_pos.clamped(size));
        }
    }

    /// Advances the world one tick and returns the snapshot. The count
    /// map is built in a persistent scratch (the only steady-state
    /// allocation is the snapshot's own copy), and the pair sum is
    /// reused from the previous tick whenever sub-zone membership is
    /// unchanged.
    pub fn step(&mut self) -> WorldSnapshot {
        mmog_obs::time_stat(obs::step_timer(), || {
            let target = self.target_population();
            self.churn_population(target);
            self.move_attractors();
            self.move_entities();

            // Record visits and build the count map in one fused pass
            // over the two coordinate columns (purely sequential reads).
            self.counts_scratch.clear();
            self.counts_scratch.resize(self.grid.sub_zone_count(), 0);
            for (&x, &y) in self.entities.xs().iter().zip(self.entities.ys()) {
                let z = self.grid.locate_xy(x, y);
                self.counts_scratch[z.0 as usize] += 1;
                self.visits[z.0 as usize] += 1;
            }
            let interaction_pairs = if self.counts_scratch == self.last_counts {
                self.last_pairs
            } else {
                let pairs = count_pairs_subzone(&self.counts_scratch);
                self.last_pairs = pairs;
                pairs
            };
            // The scratch becomes this tick's reference map; the old
            // reference buffer is recycled next tick.
            std::mem::swap(&mut self.counts_scratch, &mut self.last_counts);
            let snapshot = WorldSnapshot {
                time: self.time,
                total: self.entities.len() as u32,
                interaction_pairs,
                counts: self.last_counts.clone(),
            };
            self.time = self.time.next();
            snapshot
        })
    }

    /// Runs `ticks` steps from a fresh world, collecting every snapshot.
    #[must_use]
    pub fn run(cfg: EmulatorConfig, seed: u64, ticks: usize) -> EmulatorOutput {
        let _span = mmog_obs::span("world/emulator/run");
        mmog_obs::counter("world.emulator.runs", mmog_obs::Domain::Semantic).incr();
        mmog_obs::counter("world.emulator.ticks", mmog_obs::Domain::Semantic).add(ticks as u64);
        let mut emu = Self::new(cfg, seed);
        let mut snapshots = Vec::with_capacity(ticks);
        for _ in 0..ticks {
            snapshots.push(emu.step());
        }
        EmulatorOutput {
            grid: emu.grid,
            snapshots,
        }
    }

    /// Like [`run`], but memoised process-wide: the eight Table I data
    /// sets feed several experiments each, and a run is a pure function
    /// of `(cfg, seed, ticks)`, so later requests share the first
    /// result instead of re-simulating the world.
    ///
    /// [`run`]: Self::run
    #[must_use]
    pub fn run_cached(cfg: EmulatorConfig, seed: u64, ticks: usize) -> Arc<EmulatorOutput> {
        static RUNS: Memo<EmulatorOutput> = Memo::new();
        // The key carries the generation mode (this path materialises
        // every snapshot): a hit can never hand a materialized run to a
        // caller expecting streamed output, or vice versa, even if a
        // streaming emulator entry point shares this memo later.
        RUNS.get_or_build(&format!("materialized|{seed}|{ticks}|{cfg:?}"), || {
            Self::run(cfg, seed, ticks)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TraceSet;
    use crate::profile::ProfileMix;
    use mmog_util::time::TICKS_PER_DAY;

    fn small_cfg() -> EmulatorConfig {
        EmulatorConfig {
            peak_entities: 200,
            ..EmulatorConfig::default()
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = GameEmulator::run(small_cfg(), 42, 50);
        let b = GameEmulator::run(small_cfg(), 42, 50);
        for (sa, sb) in a.snapshots.iter().zip(&b.snapshots) {
            assert_eq!(sa.counts, sb.counts);
            assert_eq!(sa.interaction_pairs, sb.interaction_pairs);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = GameEmulator::run(small_cfg(), 1, 50);
        let b = GameEmulator::run(small_cfg(), 2, 50);
        assert_ne!(a.total_series().values(), b.total_series().values());
    }

    #[test]
    fn snapshot_counts_sum_to_total() {
        let out = GameEmulator::run(small_cfg(), 7, 30);
        for s in &out.snapshots {
            let sum: u32 = s.counts.iter().sum();
            assert_eq!(sum, s.total);
        }
    }

    #[test]
    fn population_stays_within_bounds() {
        let out = GameEmulator::run(small_cfg(), 3, 200);
        for s in &out.snapshots {
            assert!(s.total >= 1);
            assert!(s.total <= 400, "total {} exceeds 2x peak", s.total);
        }
    }

    #[test]
    fn peak_hours_produce_diurnal_swing() {
        let cfg = EmulatorConfig {
            peak_entities: 500,
            peak_hours: true,
            ..EmulatorConfig::default()
        };
        let out = GameEmulator::run(cfg, 11, TICKS_PER_DAY as usize);
        let series = out.total_series();
        let max = series.max().unwrap();
        let min = series.min().unwrap();
        // Medium overall dynamics: floor is ~50% of peak.
        assert!(min < 0.75 * max, "no diurnal swing: min {min} max {max}");
    }

    #[test]
    fn aggressive_world_clusters_more_than_scout_world() {
        let mk = |mix: ProfileMix| EmulatorConfig {
            peak_entities: 300,
            peak_hours: false,
            profile_mix: mix,
            ..EmulatorConfig::default()
        };
        let aggressive =
            GameEmulator::run(mk(ProfileMix::from_percent(100.0, 0.0, 0.0, 0.0)), 5, 120);
        let scouts = GameEmulator::run(mk(ProfileMix::from_percent(0.0, 100.0, 0.0, 0.0)), 5, 120);
        // Compare steady-state interaction levels (skip warm-up).
        let mean = |o: &EmulatorOutput| {
            o.snapshots[40..]
                .iter()
                .map(|s| s.interaction_pairs as f64)
                .sum::<f64>()
                / (o.snapshots.len() - 40) as f64
        };
        let ia = mean(&aggressive);
        let is_ = mean(&scouts);
        assert!(
            ia > 2.0 * is_,
            "aggressive pairs {ia} should far exceed scout pairs {is_}"
        );
    }

    #[test]
    fn team_players_form_groups() {
        let cfg = EmulatorConfig {
            peak_entities: 200,
            peak_hours: false,
            profile_mix: ProfileMix::from_percent(0.0, 0.0, 100.0, 0.0),
            teams: 4,
            ..EmulatorConfig::default()
        };
        let mut emu = GameEmulator::new(cfg, 9);
        for _ in 0..100 {
            emu.step();
        }
        // Every team player should sit close to its team anchor.
        let mut near = 0usize;
        let mut total = 0usize;
        for e in emu.entities() {
            if let Some(team) = e.team {
                total += 1;
                let anchor = emu.team_anchors[team as usize % emu.team_anchors.len()];
                if e.pos.distance(&anchor) < emu.grid().cell_size() * 3.0 {
                    near += 1;
                }
            }
        }
        assert!(total > 0);
        // Some entities are temporarily switched to other profiles, so a
        // strict 100% is not expected.
        assert!(
            near as f64 / total as f64 > 0.6,
            "only {near}/{total} team players near their anchor"
        );
    }

    #[test]
    fn all_trace_sets_run() {
        for set in TraceSet::ALL {
            let mut cfg = set.config();
            cfg.peak_entities = 100; // keep the test fast
            let out = GameEmulator::run(cfg, 13, 20);
            assert_eq!(out.len(), 20, "{}", set.name());
            assert!(!out.is_empty());
        }
    }

    #[test]
    fn subzone_series_extracts_one_zone() {
        let out = GameEmulator::run(small_cfg(), 21, 25);
        let z = SubZoneId(0);
        let series = out.subzone_series(z);
        assert_eq!(series.len(), 25);
        for (t, v) in series.iter() {
            assert_eq!(v, f64::from(out.snapshots[t.tick() as usize].counts[0]));
        }
    }

    #[test]
    fn entities_stay_in_world() {
        let out = {
            let mut emu = GameEmulator::new(small_cfg(), 31);
            for _ in 0..60 {
                emu.step();
            }
            emu
        };
        for e in out.entities() {
            assert!(e.pos.x >= 0.0 && e.pos.x < out.cfg.world_size);
            assert!(e.pos.y >= 0.0 && e.pos.y < out.cfg.world_size);
        }
    }

    #[test]
    fn npc_ratio_maintains_background_population() {
        use crate::entity::EntityKind;
        let cfg = EmulatorConfig {
            peak_entities: 200,
            peak_hours: false,
            npc_ratio: 0.5,
            ..EmulatorConfig::default()
        };
        let mut emu = GameEmulator::new(cfg, 23);
        for _ in 0..50 {
            emu.step();
        }
        let avatars = emu
            .entities()
            .iter()
            .filter(|e| e.kind == EntityKind::Avatar)
            .count();
        let npcs = emu
            .entities()
            .iter()
            .filter(|e| e.kind == EntityKind::Npc)
            .count();
        assert!(avatars > 0);
        let ratio = npcs as f64 / avatars as f64;
        assert!((ratio - 0.5).abs() < 0.1, "npc/avatar ratio {ratio}");
        // Snapshot totals include the NPCs.
        let snap = emu.step();
        assert_eq!(snap.total as usize, emu.entities().len());
    }

    #[test]
    fn zero_npc_ratio_means_avatars_only() {
        use crate::entity::EntityKind;
        let out = {
            let mut emu = GameEmulator::new(small_cfg(), 29);
            for _ in 0..20 {
                emu.step();
            }
            emu
        };
        assert!(out.entities().iter().all(|e| e.kind == EntityKind::Avatar));
    }

    #[test]
    fn high_dynamics_moves_population_faster() {
        use crate::config::DynamicsLevel;
        let mk = |inst: DynamicsLevel| EmulatorConfig {
            peak_entities: 300,
            peak_hours: false,
            instantaneous_dynamics: inst,
            profile_mix: ProfileMix::from_percent(100.0, 0.0, 0.0, 0.0),
            ..EmulatorConfig::default()
        };
        // Measure tick-to-tick change of the count map (L1 distance).
        let churn = |out: &EmulatorOutput| {
            out.snapshots
                .windows(2)
                .map(|w| {
                    w[0].counts
                        .iter()
                        .zip(&w[1].counts)
                        .map(|(&a, &b)| (i64::from(a) - i64::from(b)).unsigned_abs())
                        .sum::<u64>()
                })
                .sum::<u64>()
        };
        let low = GameEmulator::run(mk(DynamicsLevel::Low), 17, 80);
        let high = GameEmulator::run(mk(DynamicsLevel::High), 17, 80);
        assert!(
            churn(&high) > churn(&low),
            "high dynamics should churn the distribution more"
        );
    }
}
