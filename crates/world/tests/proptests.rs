//! Property-based tests for the game-world substrate.

use mmog_world::entity::Position;
use mmog_world::interaction::{count_pairs_exact, count_pairs_subzone};
use mmog_world::update::UpdateModel;
use mmog_world::zone::ZoneGrid;
use proptest::prelude::*;

fn positions(world: f64) -> impl Strategy<Value = Vec<Position>> {
    prop::collection::vec(
        (0.0..world, 0.0..world).prop_map(|(x, y)| Position::new(x, y)),
        0..60,
    )
}

proptest! {
    #[test]
    fn locate_always_in_grid(x in -500.0f64..1500.0, y in -500.0f64..1500.0, grid in 1u32..32) {
        let g = ZoneGrid::new(1000.0, grid);
        let z = g.locate(&Position::new(x, y));
        prop_assert!((z.0 as usize) < g.sub_zone_count());
    }

    #[test]
    fn count_map_conserves_entities(ps in positions(1000.0), grid in 1u32..16) {
        let g = ZoneGrid::new(1000.0, grid);
        let counts = g.count_map(&ps);
        let total: u64 = counts.iter().map(|&c| u64::from(c)).sum();
        prop_assert_eq!(total, ps.len() as u64);
    }

    #[test]
    fn exact_pairs_match_brute_force(ps in positions(100.0), radius in 0.0f64..60.0) {
        let g = ZoneGrid::new(100.0, 8);
        let fast = count_pairs_exact(&g, &ps, radius);
        let r2 = radius * radius;
        let mut brute = 0u64;
        for i in 0..ps.len() {
            for j in i + 1..ps.len() {
                let dx = ps[i].x - ps[j].x;
                let dy = ps[i].y - ps[j].y;
                if dx * dx + dy * dy <= r2 {
                    brute += 1;
                }
            }
        }
        prop_assert_eq!(fast, brute);
    }

    #[test]
    fn exact_pairs_monotone_in_radius(ps in positions(100.0), r1 in 0.0f64..30.0, dr in 0.0f64..30.0) {
        let g = ZoneGrid::new(100.0, 6);
        let small = count_pairs_exact(&g, &ps, r1);
        let large = count_pairs_exact(&g, &ps, r1 + dr);
        prop_assert!(large >= small);
    }

    #[test]
    fn subzone_pairs_bounded_by_total_pairs(counts in prop::collection::vec(0u32..100, 0..50)) {
        let n: u64 = counts.iter().map(|&c| u64::from(c)).sum();
        let pairs = count_pairs_subzone(&counts);
        // Co-located pairs can never exceed all-pairs over the total
        // population.
        prop_assert!(pairs <= n.saturating_mul(n.saturating_sub(1)) / 2);
    }

    #[test]
    fn update_costs_non_negative_and_ordered(n in 0.0f64..10_000.0) {
        let mut prev = -1.0;
        for m in UpdateModel::ALL {
            let c = m.cost(n);
            prop_assert!(c >= 0.0);
            prop_assert!(c.is_finite());
            // For n >= 2 complexity classes are strictly ordered.
            if n >= 2.0 {
                prop_assert!(c > prev, "{m} cost {c} <= previous {prev} at n={n}");
            }
            prev = c;
        }
    }

    #[test]
    fn aoi_reduction_never_increases_cost(n in 0.0f64..10_000.0) {
        for m in UpdateModel::ALL {
            prop_assert!(m.aoi_reduced().cost(n) <= m.cost(n) + 1e-9);
        }
    }

    #[test]
    fn neighborhood_contains_self_and_is_unique(
        grid in 1u32..12,
        cell in 0u32..144,
        radius in 0u32..5,
    ) {
        let g = ZoneGrid::new(120.0, grid);
        let z = mmog_world::zone::SubZoneId(cell % (grid * grid));
        let hood = g.neighborhood(z, radius);
        prop_assert!(hood.contains(&z));
        let mut sorted = hood.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), hood.len(), "duplicates in neighborhood");
    }
}
