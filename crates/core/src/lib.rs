//! High-level façade for the MMOG resource-provisioning ecosystem.
//!
//! This crate is the paper's contribution seen as a library: build an
//! [`Ecosystem`] — a hosting platform of data centers plus the MMOGs it
//! serves — pick a provisioning strategy, and run the trace-driven
//! evaluation.
//!
//! ```
//! use mmog_core::prelude::*;
//!
//! // A small RuneScape-like workload over the Table III platform.
//! let opts = ScenarioOpts { days: 1, seed: 42, group_cap: Some(2) };
//! let trace = standard_trace(&opts);
//! let report = Ecosystem::builder()
//!     .table3_platform()
//!     .game(GameSpec {
//!         predictor: PredictorKind::LastValue,
//!         ..Ecosystem::default_game(trace)
//!     })
//!     .train_ticks(0)
//!     .run();
//! assert!(report.metrics.samples() > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use mmog_datacenter::center::DataCenter;
use mmog_datacenter::locations::table3_hp12;
use mmog_faults::{FaultSchedule, ScenarioTimeline};
use mmog_predict::eval::PredictorKind;
use mmog_sim::engine::{AllocationMode, GameSpec, SimReport, Simulation, SimulationConfig};
use mmog_util::geo::DistanceClass;
use mmog_workload::trace::GameTrace;
use mmog_world::update::UpdateModel;

/// Commonly used items across the workspace, for glob import.
pub mod prelude {
    pub use crate::Ecosystem;
    pub use mmog_datacenter::center::{DataCenter, DataCenterSpec};
    pub use mmog_datacenter::locations::{table3_centers, table3_hp12};
    pub use mmog_datacenter::policy::HostingPolicy;
    pub use mmog_datacenter::resource::{ResourceType, ResourceVector};
    pub use mmog_faults::{
        FaultEvent, FaultKind, FaultSchedule, FaultSpec, ScenarioEvent, ScenarioEventKind,
        ScenarioSpec, ScenarioTimeline,
    };
    pub use mmog_predict::eval::PredictorKind;
    pub use mmog_predict::neural::{NeuralConfig, NeuralPredictor};
    pub use mmog_predict::traits::Predictor;
    pub use mmog_sim::demand::DemandModel;
    pub use mmog_sim::engine::{AllocationMode, GameSpec, SimReport, Simulation, SimulationConfig};
    pub use mmog_sim::scenario::{standard_trace, ScenarioOpts};
    pub use mmog_util::geo::DistanceClass;
    pub use mmog_util::time::{SimDuration, SimTime};
    pub use mmog_workload::runescape::{generate, RuneScapeConfig};
    pub use mmog_workload::trace::GameTrace;
    pub use mmog_world::update::UpdateModel;
}

/// The ecosystem façade: a fluent builder over the simulation engine.
pub struct Ecosystem;

impl Ecosystem {
    /// Starts building an ecosystem.
    #[must_use]
    pub fn builder() -> EcosystemBuilder {
        EcosystemBuilder::default()
    }

    /// A game spec with the paper's defaults: O(n²) interactions, no
    /// latency constraint, neural prediction, no headroom.
    #[must_use]
    pub fn default_game(trace: GameTrace) -> GameSpec {
        GameSpec {
            name: "game".into(),
            operator_base: 0,
            update_model: UpdateModel::Quadratic,
            tolerance: DistanceClass::VeryFar,
            headroom: 1.0,
            predictor: PredictorKind::Neural,
            workload: trace.into(),
            static_peak_players: 2100.0, // capacity x the 1.05 overfull clamp
            priority: 0,
        }
    }
}

/// Builder for an ecosystem run.
pub struct EcosystemBuilder {
    centers: Vec<DataCenter>,
    games: Vec<GameSpec>,
    mode: AllocationMode,
    ticks: Option<usize>,
    warmup_ticks: usize,
    train_ticks: usize,
    master_seed: u64,
    faults: Option<FaultSchedule>,
    scenario: Option<ScenarioTimeline>,
}

impl Default for EcosystemBuilder {
    fn default() -> Self {
        Self {
            centers: Vec::new(),
            games: Vec::new(),
            mode: AllocationMode::Dynamic,
            ticks: None,
            warmup_ticks: 30,
            train_ticks: 720,
            master_seed: 0x5EED,
            faults: None,
            scenario: None,
        }
    }
}

impl EcosystemBuilder {
    /// Uses the Table III platform with the Sec. V-B HP-1/HP-2
    /// round-robin policy assignment.
    #[must_use]
    pub fn table3_platform(mut self) -> Self {
        self.centers = table3_hp12();
        self
    }

    /// Uses a custom set of data centers.
    #[must_use]
    pub fn centers(mut self, centers: Vec<DataCenter>) -> Self {
        self.centers = centers;
        self
    }

    /// Adds a game to the ecosystem. Assigns a fresh operator-id base
    /// when the spec still has the default 0 and games already exist.
    #[must_use]
    pub fn game(mut self, mut spec: GameSpec) -> Self {
        if spec.operator_base == 0 && !self.games.is_empty() {
            spec.operator_base = self.games.len() as u32 * 100;
        }
        self.games.push(spec);
        self
    }

    /// Static (peak-sized) instead of dynamic provisioning.
    #[must_use]
    pub fn static_provisioning(mut self) -> Self {
        self.mode = AllocationMode::Static;
        self
    }

    /// Caps the simulated ticks (default: full trace length).
    #[must_use]
    pub fn ticks(mut self, ticks: usize) -> Self {
        self.ticks = Some(ticks);
        self
    }

    /// Warm-up ticks excluded from the metrics.
    #[must_use]
    pub fn warmup_ticks(mut self, ticks: usize) -> Self {
        self.warmup_ticks = ticks;
        self
    }

    /// Ticks of each group's history used to train neural predictors.
    #[must_use]
    pub fn train_ticks(mut self, ticks: usize) -> Self {
        self.train_ticks = ticks;
        self
    }

    /// Master seed for the per-server-group random streams (predictor
    /// weight initialisation and sample shuffling). Runs with the same
    /// seed are bit-identical regardless of thread count.
    #[must_use]
    pub fn master_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Injects a deterministic fault schedule: timed center outages,
    /// degradations, lease revocations and predictor dropouts the run
    /// must survive. Without this call the run is byte-identical to a
    /// fault-free build.
    #[must_use]
    pub fn faults(mut self, schedule: FaultSchedule) -> Self {
        self.faults = Some(schedule);
        self
    }

    /// Installs a deterministic scenario timeline: network partitions,
    /// link degradations, zone migrations, region failovers and flash
    /// crowds. Without this call the run is byte-identical to a
    /// scenario-free build. Composes with [`faults`](Self::faults).
    #[must_use]
    pub fn scenario(mut self, timeline: ScenarioTimeline) -> Self {
        self.scenario = Some(timeline);
        self
    }

    /// Finalises the configuration without running (for inspection or
    /// custom drivers).
    #[must_use]
    pub fn build(self) -> SimulationConfig {
        SimulationConfig {
            centers: self.centers,
            games: self.games,
            mode: self.mode,
            ticks: self.ticks,
            warmup_ticks: self.warmup_ticks,
            train_ticks: self.train_ticks,
            master_seed: self.master_seed,
            faults: self.faults,
            scenario: self.scenario,
        }
    }

    /// Builds and runs the simulation.
    ///
    /// # Panics
    /// Panics when no games were added or a game's trace is empty.
    #[must_use]
    pub fn run(self) -> SimReport {
        Simulation::new(self.build()).run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmog_sim::scenario::{standard_trace, ScenarioOpts};

    fn tiny_trace() -> GameTrace {
        standard_trace(&ScenarioOpts {
            days: 1,
            seed: 1,
            group_cap: Some(2),
        })
    }

    #[test]
    fn builder_runs_end_to_end() {
        let report = Ecosystem::builder()
            .table3_platform()
            .game(GameSpec {
                predictor: PredictorKind::LastValue,
                ..Ecosystem::default_game(tiny_trace())
            })
            .train_ticks(0)
            .run();
        assert!(report.ticks > 0);
        assert!(report.metrics.samples() > 0);
    }

    #[test]
    fn builder_auto_assigns_operator_bases() {
        let cfg = Ecosystem::builder()
            .table3_platform()
            .game(Ecosystem::default_game(tiny_trace()))
            .game(Ecosystem::default_game(tiny_trace()))
            .game(GameSpec {
                operator_base: 777,
                ..Ecosystem::default_game(tiny_trace())
            })
            .build();
        assert_eq!(cfg.games[0].operator_base, 0);
        assert_eq!(cfg.games[1].operator_base, 100);
        assert_eq!(cfg.games[2].operator_base, 777, "explicit base untouched");
    }

    #[test]
    fn static_mode_flag() {
        let cfg = Ecosystem::builder()
            .table3_platform()
            .game(Ecosystem::default_game(tiny_trace()))
            .static_provisioning()
            .build();
        assert_eq!(cfg.mode, AllocationMode::Static);
    }

    #[test]
    fn knobs_propagate() {
        let cfg = Ecosystem::builder()
            .table3_platform()
            .game(Ecosystem::default_game(tiny_trace()))
            .ticks(123)
            .warmup_ticks(7)
            .train_ticks(99)
            .build();
        assert_eq!(cfg.ticks, Some(123));
        assert_eq!(cfg.warmup_ticks, 7);
        assert_eq!(cfg.train_ticks, 99);
    }

    #[test]
    fn faults_knob_propagates() {
        use mmog_faults::{FaultEvent, FaultKind};
        let schedule = FaultSchedule::from_events(
            "one-outage",
            vec![FaultEvent {
                tick: 5,
                center: 0,
                kind: FaultKind::CenterDown,
            }],
        );
        let cfg = Ecosystem::builder()
            .table3_platform()
            .game(Ecosystem::default_game(tiny_trace()))
            .faults(schedule)
            .build();
        assert_eq!(cfg.faults.as_ref().map(FaultSchedule::len), Some(1));
        let unfaulted = Ecosystem::builder()
            .table3_platform()
            .game(Ecosystem::default_game(tiny_trace()))
            .build();
        assert!(unfaulted.faults.is_none());
    }

    #[test]
    fn default_game_matches_paper_defaults() {
        let g = Ecosystem::default_game(tiny_trace());
        assert_eq!(g.update_model, UpdateModel::Quadratic);
        assert_eq!(g.tolerance, DistanceClass::VeryFar);
        assert_eq!(g.static_peak_players, 2100.0);
        assert_eq!(g.headroom, 1.0);
    }
}
