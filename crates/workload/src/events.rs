//! Global population events.
//!
//! Figure 2 of the paper shows the two kinds of shock that dominate
//! MMOG population dynamics:
//!
//! - a **highly unpopular decision** (10 December 2007): "the number of
//!   active concurrent players drops by over 30,000 units (a quarter of
//!   its value) in less than one day. Under intense pressure, the game
//!   operators agree to amend the changes; the number of active
//!   concurrent players raises again, but to only 95% of the previous
//!   value";
//! - **new content releases** (18 December 2007, 15 January 2008): "a
//!   period of about one week after each release sees an over 50% surge
//!   of the number of active concurrent players".
//!
//! Each event contributes a multiplicative factor to the population;
//! [`PopulationEvent::multiplier`] evaluates it at a given time and the
//! factors compose across events.

use mmog_util::time::{SimTime, TICKS_PER_DAY};
use serde::{Deserialize, Serialize};

/// A population-level shock applied multiplicatively to a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PopulationEvent {
    /// Mass account cancellation after an unpopular change.
    UnpopularDecision {
        /// When the decision lands.
        at: SimTime,
        /// Fraction of the population lost at the trough (0.25 in Fig. 2).
        drop: f64,
        /// Days until the drop bottoms out (under one day in Fig. 2).
        crash_days: f64,
        /// Days the recovery takes once the change is amended.
        recovery_days: f64,
        /// Long-run level relative to before the event (0.95 in Fig. 2).
        recovery_level: f64,
    },
    /// A content release attracting a temporary surge.
    ContentRelease {
        /// Release time.
        at: SimTime,
        /// Peak surge fraction (0.5 for "an over 50% surge").
        surge: f64,
        /// Days until the surge peaks.
        ramp_days: f64,
        /// Days over which the surge decays back to baseline.
        duration_days: f64,
    },
}

impl PopulationEvent {
    /// The Figure 2 event sequence, relative to a trace starting
    /// `lead_days` before the unpopular decision.
    #[must_use]
    pub fn figure2_sequence(lead_days: u64) -> Vec<Self> {
        let day = |d: u64| SimTime::from_days(lead_days + d);
        vec![
            // 10 December 2007: the unpopular decision.
            Self::UnpopularDecision {
                at: day(0),
                drop: 0.25,
                crash_days: 0.75,
                recovery_days: 4.0,
                recovery_level: 0.95,
            },
            // 18 December 2007: first new content.
            Self::ContentRelease {
                at: day(8),
                surge: 0.5,
                ramp_days: 1.5,
                duration_days: 7.0,
            },
            // 15 January 2008: second new content.
            Self::ContentRelease {
                at: day(36),
                surge: 0.5,
                ramp_days: 1.5,
                duration_days: 7.0,
            },
        ]
    }

    /// Multiplicative population factor contributed by this event at
    /// time `t` (1.0 before the event starts).
    #[must_use]
    pub fn multiplier(&self, t: SimTime) -> f64 {
        match *self {
            Self::UnpopularDecision {
                at,
                drop,
                crash_days,
                recovery_days,
                recovery_level,
            } => {
                if t < at {
                    return 1.0;
                }
                let days = t.since(at).ticks() as f64 / TICKS_PER_DAY as f64;
                if days <= crash_days {
                    // Linear crash to the trough.
                    1.0 - drop * (days / crash_days.max(f64::MIN_POSITIVE))
                } else {
                    // Exponential recovery towards the (reduced) plateau.
                    let trough = 1.0 - drop;
                    let tau = (recovery_days / 3.0).max(f64::MIN_POSITIVE);
                    let progress = 1.0 - (-(days - crash_days) / tau).exp();
                    trough + (recovery_level - trough) * progress
                }
            }
            Self::ContentRelease {
                at,
                surge,
                ramp_days,
                duration_days,
            } => {
                if t < at {
                    return 1.0;
                }
                let days = t.since(at).ticks() as f64 / TICKS_PER_DAY as f64;
                if days <= ramp_days {
                    1.0 + surge * (days / ramp_days.max(f64::MIN_POSITIVE))
                } else {
                    // Exponential decay of the surge after the peak.
                    let tau = (duration_days / 2.0).max(f64::MIN_POSITIVE);
                    1.0 + surge * (-(days - ramp_days) / tau).exp()
                }
            }
        }
    }
}

/// Composes the multipliers of several events at time `t`.
#[must_use]
pub fn combined_multiplier(events: &[PopulationEvent], t: SimTime) -> f64 {
    events.iter().map(|e| e.multiplier(t)).product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmog_util::time::SimDuration;

    fn decision() -> PopulationEvent {
        PopulationEvent::UnpopularDecision {
            at: SimTime::from_days(10),
            drop: 0.25,
            crash_days: 0.75,
            recovery_days: 4.0,
            recovery_level: 0.95,
        }
    }

    fn release() -> PopulationEvent {
        PopulationEvent::ContentRelease {
            at: SimTime::from_days(10),
            surge: 0.5,
            ramp_days: 1.5,
            duration_days: 7.0,
        }
    }

    #[test]
    fn neutral_before_event() {
        assert_eq!(decision().multiplier(SimTime::from_days(9)), 1.0);
        assert_eq!(release().multiplier(SimTime::ZERO), 1.0);
    }

    #[test]
    fn decision_bottoms_at_quarter_drop_within_a_day() {
        let e = decision();
        let trough = e.multiplier(SimTime::from_days(10) + SimDuration::from_hours(18));
        assert!((trough - 0.75).abs() < 1e-9, "trough {trough}");
        // Less than one day to lose a quarter — the Fig. 2 claim.
        let after_day = e.multiplier(SimTime::from_days(11));
        assert!(after_day >= 0.75);
    }

    #[test]
    fn decision_recovers_to_95_percent() {
        let e = decision();
        let late = e.multiplier(SimTime::from_days(40));
        assert!((late - 0.95).abs() < 0.005, "late {late}");
        // Monotone recovery after the trough.
        let mut prev = 0.0;
        for d in 11..30 {
            let m = e.multiplier(SimTime::from_days(d));
            assert!(m >= prev - 1e-12, "non-monotone at day {d}");
            prev = m;
        }
    }

    #[test]
    fn release_peaks_at_surge_then_decays() {
        let e = release();
        let peak = e.multiplier(SimTime::from_days(10) + SimDuration::from_hours(36));
        assert!((peak - 1.5).abs() < 1e-9, "peak {peak}");
        let mid = e.multiplier(SimTime::from_days(15));
        assert!(mid > 1.0 && mid < 1.5, "mid {mid}");
        let late = e.multiplier(SimTime::from_days(40));
        assert!((late - 1.0).abs() < 0.01, "late {late}");
    }

    #[test]
    fn surge_lasts_about_a_week() {
        // "a period of about one week after each release sees an over
        // 50% surge" — the factor should still exceed ~1.1 six days in.
        let e = release();
        let day6 = e.multiplier(SimTime::from_days(16));
        assert!(day6 > 1.1, "day-6 factor {day6}");
    }

    #[test]
    fn combined_multiplier_composes() {
        let events = vec![decision(), release()];
        let t = SimTime::from_days(12);
        let product: f64 = events.iter().map(|e| e.multiplier(t)).product();
        assert!((combined_multiplier(&events, t) - product).abs() < 1e-12);
        assert_eq!(combined_multiplier(&[], t), 1.0);
    }

    #[test]
    fn figure2_sequence_shape() {
        let events = PopulationEvent::figure2_sequence(7);
        assert_eq!(events.len(), 3);
        // Before everything: neutral.
        assert_eq!(combined_multiplier(&events, SimTime::from_days(2)), 1.0);
        // Shortly after the decision: a clear dip.
        let dip = combined_multiplier(&events, SimTime::from_days(8));
        assert!(dip < 0.85, "dip {dip}");
        // During the first release surge (post-recovery): above baseline.
        let surge = combined_multiplier(&events, SimTime::from_days(17));
        assert!(surge > 1.1, "surge {surge}");
    }
}
