//! Player-count trace containers.
//!
//! The RuneScape traces of Sec. III-A "contain the number of players
//! over time for each server group used by the RuneScape game
//! operators", sampled every two minutes, across five geographical
//! regions. These containers mirror that hierarchy: a [`GameTrace`]
//! holds [`RegionTrace`]s, which hold per-group [`ServerGroupTrace`]s.

use mmog_util::series::TimeSeries;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A geographical region (the paper's "region 0" is Europe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegionId(pub u8);

/// A server group within a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServerGroupId(pub u32);

/// The player-count trace of a single server group.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerGroupTrace {
    /// Region this group belongs to.
    pub region: RegionId,
    /// Group identifier, unique within the region.
    pub group: ServerGroupId,
    /// Player count per 2-minute tick.
    pub series: TimeSeries,
}

/// All server groups of one region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionTrace {
    /// Region identifier.
    pub region: RegionId,
    /// Human-readable region name (e.g. "Europe").
    pub name: String,
    /// Per-group traces.
    pub groups: Vec<ServerGroupTrace>,
}

impl RegionTrace {
    /// Total regional player count over time.
    #[must_use]
    pub fn aggregate(&self) -> TimeSeries {
        TimeSeries::aggregate(self.groups.iter().map(|g| &g.series))
    }

    /// Number of server groups in the region.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Per-group loads at one tick (the cross-sections used for the
    /// Figure 3 envelope and IQR).
    #[must_use]
    pub fn cross_section(&self, tick: usize) -> Vec<f64> {
        self.groups
            .iter()
            .filter_map(|g| g.series.values().get(tick).copied())
            .collect()
    }

    /// Length of the shortest group series (analysis uses this bound).
    #[must_use]
    pub fn ticks(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.series.len())
            .min()
            .unwrap_or(0)
    }
}

/// A complete multi-region game trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GameTrace {
    /// All regions, indexed by `RegionId` order.
    pub regions: Vec<RegionTrace>,
}

impl GameTrace {
    /// The globally aggregated player count — the signal of Figure 2.
    #[must_use]
    pub fn global_series(&self) -> TimeSeries {
        TimeSeries::aggregate(
            self.regions
                .iter()
                .flat_map(|r| r.groups.iter().map(|g| &g.series)),
        )
    }

    /// Total number of server groups across all regions.
    #[must_use]
    pub fn total_groups(&self) -> usize {
        self.regions.iter().map(RegionTrace::group_count).sum()
    }

    /// Looks a region up by id.
    #[must_use]
    pub fn region(&self, id: RegionId) -> Option<&RegionTrace> {
        self.regions.iter().find(|r| r.region == id)
    }

    /// Serialises the trace to a simple CSV layout:
    /// `region,group,tick,players` with a header row.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("region,group,tick,players\n");
        for r in &self.regions {
            for g in &r.groups {
                for (t, v) in g.series.iter() {
                    // Player counts are integral; keep the file compact.
                    let _ = writeln!(
                        out,
                        "{},{},{},{}",
                        r.region.0,
                        g.group.0,
                        t.tick(),
                        v as u64
                    );
                }
            }
        }
        out
    }

    /// Parses the CSV produced by [`Self::to_csv`]. Regions re-created
    /// this way carry synthetic names (`"region N"`).
    ///
    /// # Errors
    /// Returns a message naming the first malformed line.
    pub fn from_csv(csv: &str) -> Result<Self, String> {
        use std::collections::BTreeMap;
        let mut table: BTreeMap<(u8, u32), Vec<(u64, f64)>> = BTreeMap::new();
        for (lineno, line) in csv.lines().enumerate() {
            if lineno == 0 || line.trim().is_empty() {
                continue; // header / blank
            }
            let mut fields = line.split(',');
            let parse = |f: Option<&str>, what: &str| -> Result<f64, String> {
                f.ok_or_else(|| format!("line {}: missing {what}", lineno + 1))?
                    .trim()
                    .parse::<f64>()
                    .map_err(|e| format!("line {}: bad {what}: {e}", lineno + 1))
            };
            let region = parse(fields.next(), "region")? as u8;
            let group = parse(fields.next(), "group")? as u32;
            let tick = parse(fields.next(), "tick")? as u64;
            let players = parse(fields.next(), "players")?;
            table
                .entry((region, group))
                .or_default()
                .push((tick, players));
        }
        let mut regions: BTreeMap<u8, RegionTrace> = BTreeMap::new();
        for ((region, group), mut samples) in table {
            samples.sort_by_key(|(t, _)| *t);
            let series: TimeSeries = samples.into_iter().map(|(_, v)| v).collect();
            regions
                .entry(region)
                .or_insert_with(|| RegionTrace {
                    region: RegionId(region),
                    name: format!("region {region}"),
                    groups: Vec::new(),
                })
                .groups
                .push(ServerGroupTrace {
                    region: RegionId(region),
                    group: ServerGroupId(group),
                    series,
                });
        }
        Ok(Self {
            regions: regions.into_values().collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_trace() -> GameTrace {
        let mk = |region: u8, group: u32, values: Vec<f64>| ServerGroupTrace {
            region: RegionId(region),
            group: ServerGroupId(group),
            series: TimeSeries::from_values(values),
        };
        GameTrace {
            regions: vec![
                RegionTrace {
                    region: RegionId(0),
                    name: "Europe".into(),
                    groups: vec![
                        mk(0, 0, vec![100.0, 200.0, 300.0]),
                        mk(0, 1, vec![50.0, 60.0, 70.0]),
                    ],
                },
                RegionTrace {
                    region: RegionId(1),
                    name: "US East".into(),
                    groups: vec![mk(1, 0, vec![10.0, 20.0, 30.0])],
                },
            ],
        }
    }

    #[test]
    fn aggregation_sums_groups_and_regions() {
        let t = tiny_trace();
        assert_eq!(t.regions[0].aggregate().values(), &[150.0, 260.0, 370.0]);
        assert_eq!(t.global_series().values(), &[160.0, 280.0, 400.0]);
        assert_eq!(t.total_groups(), 3);
    }

    #[test]
    fn cross_section_extracts_tick() {
        let t = tiny_trace();
        assert_eq!(t.regions[0].cross_section(1), vec![200.0, 60.0]);
        assert!(t.regions[0].cross_section(99).is_empty());
    }

    #[test]
    fn region_lookup() {
        let t = tiny_trace();
        assert_eq!(t.region(RegionId(1)).unwrap().name, "US East");
        assert!(t.region(RegionId(9)).is_none());
    }

    #[test]
    fn csv_round_trip() {
        let t = tiny_trace();
        let csv = t.to_csv();
        let parsed = GameTrace::from_csv(&csv).unwrap();
        assert_eq!(parsed.total_groups(), 3);
        assert_eq!(parsed.global_series().values(), t.global_series().values());
        assert_eq!(
            parsed.region(RegionId(0)).unwrap().groups[1]
                .series
                .values(),
            &[50.0, 60.0, 70.0]
        );
    }

    #[test]
    fn csv_rejects_malformed_lines() {
        let bad = "region,group,tick,players\n0,0,zero,100\n";
        let err = GameTrace::from_csv(bad).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let missing = "region,group,tick,players\n0,0\n";
        assert!(GameTrace::from_csv(missing).is_err());
    }

    #[test]
    fn csv_skips_blank_lines() {
        let csv = "region,group,tick,players\n\n0,0,0,5\n\n0,0,1,6\n";
        let parsed = GameTrace::from_csv(csv).unwrap();
        assert_eq!(parsed.global_series().values(), &[5.0, 6.0]);
    }

    #[test]
    fn ticks_is_min_group_length() {
        let mut t = tiny_trace();
        t.regions[0].groups[1].series = TimeSeries::from_values(vec![1.0]);
        assert_eq!(t.regions[0].ticks(), 1);
        let empty = RegionTrace {
            region: RegionId(7),
            name: "x".into(),
            groups: vec![],
        };
        assert_eq!(empty.ticks(), 0);
    }
}
