//! Regional workload analysis — the computations behind Figures 2 and 3.
//!
//! Figure 3 has three sub-plots for region 0 (Europe): (top) the
//! minimum / median / maximum load across server groups at every time
//! step; (middle) the interquartile range of the per-group loads over
//! time; (bottom) the autocorrelation function of every group's load.
//! This module computes all three, plus the dominant-period detection
//! used to verify the 24-hour cycle and a weekend-effect measure.

use crate::trace::RegionTrace;
use mmog_util::series::TimeSeries;
use mmog_util::stats;
use mmog_util::time::TICKS_PER_DAY;
use serde::{Deserialize, Serialize};

/// Min/median/max envelope of a region's per-group loads over time
/// (top sub-plot of Figure 3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadEnvelope {
    /// Minimum group load at each tick.
    pub min: TimeSeries,
    /// Median group load at each tick.
    pub median: TimeSeries,
    /// Maximum group load at each tick.
    pub max: TimeSeries,
}

/// Computes the load envelope of a region.
#[must_use]
pub fn load_envelope(region: &RegionTrace) -> LoadEnvelope {
    let ticks = region.ticks();
    let mut min = TimeSeries::with_capacity(ticks);
    let mut median = TimeSeries::with_capacity(ticks);
    let mut max = TimeSeries::with_capacity(ticks);
    let mut buf: Vec<f64> = Vec::with_capacity(region.group_count());
    for t in 0..ticks {
        buf.clear();
        buf.extend(region.groups.iter().map(|g| g.series.values()[t]));
        buf.sort_by(|a, b| a.partial_cmp(b).expect("loads are finite"));
        min.push(buf[0]);
        median.push(stats::quantile_sorted(&buf, 0.5));
        max.push(buf[buf.len() - 1]);
    }
    LoadEnvelope { min, median, max }
}

/// Interquartile range of the per-group loads at every tick (middle
/// sub-plot of Figure 3).
#[must_use]
pub fn iqr_series(region: &RegionTrace) -> TimeSeries {
    let ticks = region.ticks();
    let mut out = TimeSeries::with_capacity(ticks);
    let mut buf: Vec<f64> = Vec::with_capacity(region.group_count());
    for t in 0..ticks {
        buf.clear();
        buf.extend(region.groups.iter().map(|g| g.series.values()[t]));
        buf.sort_by(|a, b| a.partial_cmp(b).expect("loads are finite"));
        out.push(stats::quantile_sorted(&buf, 0.75) - stats::quantile_sorted(&buf, 0.25));
    }
    out
}

/// Autocorrelation function for every group of a region, up to
/// `max_lag` (bottom sub-plot of Figure 3). Groups with constant load
/// (e.g. always-full pinned at exactly one level) yield empty vectors.
#[must_use]
pub fn acf_per_group(region: &RegionTrace, max_lag: usize) -> Vec<Vec<f64>> {
    region
        .groups
        .iter()
        .map(|g| stats::autocorrelation(g.series.values(), max_lag))
        .collect()
}

/// Finds the lag (> `min_lag`) with the largest ACF value — the
/// dominant period of a signal. Returns `None` when the ACF is shorter
/// than `min_lag` or empty.
#[must_use]
pub fn dominant_period(acf: &[f64], min_lag: usize) -> Option<usize> {
    if acf.len() <= min_lag {
        return None;
    }
    acf.iter()
        .enumerate()
        .skip(min_lag.max(1))
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("ACF values are finite"))
        .map(|(lag, _)| lag)
}

/// Fraction of a region's groups whose load cycles daily: ACF at lag
/// 720 (24 h) above `threshold`. Sec. III-C observes that most groups
/// cycle but "the load of 2-5% of the servers is always 95%".
#[must_use]
pub fn diurnal_fraction(region: &RegionTrace, threshold: f64) -> f64 {
    let lag = TICKS_PER_DAY as usize;
    let acfs = acf_per_group(region, lag);
    if acfs.is_empty() {
        return 0.0;
    }
    let diurnal = acfs
        .iter()
        .filter(|acf| acf.len() > lag && acf[lag] > threshold)
        .count();
    diurnal as f64 / acfs.len() as f64
}

/// Weekend effect strength of a series: mean weekend load divided by
/// mean weekday load (1.0 = no effect). Returns `None` for traces
/// shorter than one week.
#[must_use]
pub fn weekend_effect(series: &TimeSeries) -> Option<f64> {
    if series.len() < 7 * TICKS_PER_DAY as usize {
        return None;
    }
    let (mut we_sum, mut we_n, mut wd_sum, mut wd_n) = (0.0, 0u64, 0.0, 0u64);
    for (t, v) in series.iter() {
        if t.is_weekend() {
            we_sum += v;
            we_n += 1;
        } else {
            wd_sum += v;
            wd_n += 1;
        }
    }
    if we_n == 0 || wd_n == 0 || wd_sum == 0.0 {
        return None;
    }
    Some((we_sum / we_n as f64) / (wd_sum / wd_n as f64))
}

/// Summary row of a region: the numbers a Figure 3-style report prints.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionSummary {
    /// Region name.
    pub name: String,
    /// Number of server groups.
    pub groups: usize,
    /// Mean of the median-load series.
    pub mean_median_load: f64,
    /// Mean IQR across time.
    pub mean_iqr: f64,
    /// Fraction of groups with a clear daily cycle.
    pub diurnal_fraction: f64,
    /// Median dominant ACF period over groups, in ticks.
    pub median_period: Option<f64>,
}

/// Builds the summary row for a region.
#[must_use]
pub fn summarize_region(region: &RegionTrace) -> RegionSummary {
    let envelope = load_envelope(region);
    let iqr = iqr_series(region);
    let lag = TICKS_PER_DAY as usize + 60;
    let periods: Vec<f64> = acf_per_group(region, lag)
        .iter()
        .filter_map(|acf| dominant_period(acf, 120).map(|p| p as f64))
        .collect();
    RegionSummary {
        name: region.name.clone(),
        groups: region.group_count(),
        mean_median_load: envelope.median.mean().unwrap_or(0.0),
        mean_iqr: iqr.mean().unwrap_or(0.0),
        diurnal_fraction: diurnal_fraction(region, 0.4),
        median_period: stats::median(&periods),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runescape::{generate, RuneScapeConfig};
    use crate::trace::{RegionId, ServerGroupId, ServerGroupTrace};

    fn synthetic_region() -> RegionTrace {
        // Three groups, sinusoidal with different amplitudes.
        let mk = |amp: f64, gid: u32| ServerGroupTrace {
            region: RegionId(0),
            group: ServerGroupId(gid),
            series: (0..(3 * TICKS_PER_DAY) as usize)
                .map(|i| {
                    1000.0
                        + amp * (2.0 * std::f64::consts::PI * i as f64 / TICKS_PER_DAY as f64).sin()
                })
                .collect(),
        };
        RegionTrace {
            region: RegionId(0),
            name: "synthetic".into(),
            groups: vec![mk(100.0, 0), mk(200.0, 1), mk(300.0, 2)],
        }
    }

    #[test]
    fn envelope_orders_min_median_max() {
        let r = synthetic_region();
        let e = load_envelope(&r);
        assert_eq!(e.min.len(), r.ticks());
        for t in 0..e.min.len() {
            let (mn, md, mx) = (e.min.values()[t], e.median.values()[t], e.max.values()[t]);
            assert!(mn <= md && md <= mx, "t={t}: {mn} {md} {mx}");
        }
    }

    #[test]
    fn iqr_positive_when_groups_differ() {
        let r = synthetic_region();
        let iqr = iqr_series(&r);
        // At the sinusoid peak the three groups differ by amplitude.
        let q = iqr.values()[(TICKS_PER_DAY / 4) as usize];
        assert!(q > 0.0, "IQR {q}");
    }

    #[test]
    fn acf_detects_daily_period() {
        let r = synthetic_region();
        let acfs = acf_per_group(&r, TICKS_PER_DAY as usize + 50);
        for acf in &acfs {
            let p = dominant_period(acf, 100).unwrap();
            let err = (p as i64 - TICKS_PER_DAY as i64).abs();
            assert!(err <= 5, "period {p}");
        }
    }

    #[test]
    fn dominant_period_edge_cases() {
        assert_eq!(dominant_period(&[], 10), None);
        assert_eq!(dominant_period(&[1.0, 0.5], 10), None);
        // Monotone decreasing ACF: max after min_lag is at min_lag.
        let acf: Vec<f64> = (0..100).map(|i| 1.0 / (1.0 + i as f64)).collect();
        assert_eq!(dominant_period(&acf, 10), Some(10));
    }

    #[test]
    fn diurnal_fraction_high_for_generated_region() {
        let mut cfg = RuneScapeConfig::paper_default(5, 21);
        cfg.regions.truncate(1);
        cfg.regions[0].groups = 12;
        cfg.outage_prob_per_day = 0.0;
        let t = generate(&cfg);
        let frac = diurnal_fraction(&t.regions[0], 0.4);
        // Almost all groups cycle; only always-full ones do not.
        assert!(frac > 0.8, "diurnal fraction {frac}");
    }

    #[test]
    fn weekend_effect_detects_boost() {
        // 14 days, 20% louder on weekends.
        let series: TimeSeries = (0..(14 * TICKS_PER_DAY) as usize)
            .map(|i| {
                let day = i as u64 / TICKS_PER_DAY;
                if day % 7 >= 5 {
                    120.0
                } else {
                    100.0
                }
            })
            .collect();
        let eff = weekend_effect(&series).unwrap();
        assert!((eff - 1.2).abs() < 1e-9, "effect {eff}");
    }

    #[test]
    fn weekend_effect_none_for_short_series() {
        let series: TimeSeries = (0..100).map(|_| 1.0).collect();
        assert_eq!(weekend_effect(&series), None);
    }

    #[test]
    fn summary_has_sane_fields() {
        let r = synthetic_region();
        let s = summarize_region(&r);
        assert_eq!(s.groups, 3);
        assert!((s.mean_median_load - 1000.0).abs() < 5.0);
        assert!(s.mean_iqr > 0.0);
        assert!(s.diurnal_fraction > 0.9);
        let p = s.median_period.unwrap();
        assert!((p - TICKS_PER_DAY as f64).abs() < 10.0, "period {p}");
    }
}
