//! The calibrated RuneScape-like trace generator.
//!
//! The paper's input workload is ten months of scraped RuneScape player
//! counts; this generator is the substitution (DESIGN.md §2). It
//! reproduces every statistical property Sec. III reports:
//!
//! - five geographical regions, with region 0 (Europe) holding 40 server
//!   groups (Fig. 3 analyses "40 different server groups");
//! - a diurnal pattern whose autocorrelation peaks at lag 720 (24 h of
//!   2-minute samples) with a negative peak at lag 360 (12 h);
//! - cross-group popularity spread such that at peak hours "the median is
//!   about 50% higher than the minimum";
//! - "the load of 2-5% of the servers is always 95%, except for outages";
//! - rare, short-lived server-group outages ("few and short-lived");
//! - a weekend effect on roughly one third of the traces (Sec. III-C:
//!   "This behavior is typical for one third of our traces");
//! - optional global population events (Figure 2's mass-quit and
//!   content-release shocks) via [`PopulationEvent`].

use crate::events::{combined_multiplier, PopulationEvent};
use crate::trace::{GameTrace, RegionId, RegionTrace, ServerGroupId, ServerGroupTrace};
use mmog_util::rng::Rng64;
use mmog_util::series::TimeSeries;
use mmog_util::time::{SimTime, TICKS_PER_DAY};
use serde::{Deserialize, Serialize};

/// Parameters of one geographical region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionSpec {
    /// Region name (for reports).
    pub name: String,
    /// Number of server groups hosted for this region.
    pub groups: u32,
    /// Player capacity of one fully loaded server group (2 000 for
    /// RuneScape, Sec. V-A).
    pub peak_players: f64,
    /// Offset of the local clock from trace time, in hours; shifts the
    /// diurnal peak so regions peak at their own late afternoon.
    pub utc_offset_hours: f64,
}

/// Full generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuneScapeConfig {
    /// Regions to generate.
    pub regions: Vec<RegionSpec>,
    /// Length of the trace in days.
    pub days: u64,
    /// Deterministic seed.
    pub seed: u64,
    /// Global population events applied to every group.
    pub events: Vec<PopulationEvent>,
    /// Fraction of groups pinned at 95 % load (paper: 2–5 %).
    pub always_full_fraction: f64,
    /// Fraction of groups showing a weekend effect (paper: one third).
    pub weekend_fraction: f64,
    /// Per-group probability of an outage starting on any given day.
    pub outage_prob_per_day: f64,
    /// Amplitude of the diurnal swing (0 = flat, 1 = empty at trough).
    pub diurnal_amplitude: f64,
    /// Per-tick probability that a group starts a flash episode — a
    /// ±10–25 % load swing ramping over a few ticks (world hops,
    /// minigame schedules). These drive the short-term dynamics that
    /// Sec. III shows are "more dynamic than previously believed".
    pub flash_prob_per_tick: f64,
    /// Per-tick probability that a whole region surges together — the
    /// scheduled in-game events (minigame rounds, boss spawns) that move
    /// players across every server group of a region at once. These
    /// correlated ramps are what defeat lagging predictors.
    pub regional_flash_prob_per_tick: f64,
}

impl RuneScapeConfig {
    /// The five-region layout calibrated to the paper: ~130 groups with
    /// 2 000-player capacity each, giving a maximal global concurrent
    /// population around 250 000 (Sec. III-B).
    #[must_use]
    pub fn paper_default(days: u64, seed: u64) -> Self {
        Self {
            regions: vec![
                RegionSpec {
                    name: "Europe".into(),
                    groups: 40,
                    peak_players: 2000.0,
                    utc_offset_hours: 1.0,
                },
                RegionSpec {
                    name: "US East".into(),
                    groups: 30,
                    peak_players: 2000.0,
                    utc_offset_hours: -5.0,
                },
                RegionSpec {
                    name: "US West".into(),
                    groups: 25,
                    peak_players: 2000.0,
                    utc_offset_hours: -8.0,
                },
                RegionSpec {
                    name: "US Central".into(),
                    groups: 20,
                    peak_players: 2000.0,
                    utc_offset_hours: -6.0,
                },
                RegionSpec {
                    name: "Oceania".into(),
                    groups: 15,
                    peak_players: 2000.0,
                    utc_offset_hours: 10.0,
                },
            ],
            days,
            seed,
            events: Vec::new(),
            always_full_fraction: 0.03,
            weekend_fraction: 1.0 / 3.0,
            outage_prob_per_day: 0.03,
            diurnal_amplitude: 0.65,
            flash_prob_per_tick: 0.004,
            regional_flash_prob_per_tick: 0.01,
        }
    }

    /// Like [`Self::paper_default`] but with the Figure 2 event sequence
    /// attached (mass-quit at `lead_days`, releases after).
    #[must_use]
    pub fn with_figure2_events(days: u64, seed: u64, lead_days: u64) -> Self {
        let mut cfg = Self::paper_default(days, seed);
        cfg.events = PopulationEvent::figure2_sequence(lead_days);
        cfg
    }
}

/// Per-group latent state sampled once at generation start.
struct GroupProfile {
    /// Relative popularity in (0, 1]; spreads the peak-hour loads so the
    /// cross-group median sits ~50 % above the minimum.
    popularity: f64,
    /// Pinned at 95 % load?
    always_full: bool,
    /// Shows the weekend effect?
    weekend: bool,
    /// Small per-group phase shift of the diurnal peak (hours).
    phase_jitter: f64,
}

/// Builds a boost-multiplier series out of ramped episodes: with
/// per-tick start probability `prob(t)` an episode starts, ramping to a
/// magnitude in ±`[lo, hi]` over 1–4 ticks, holding, then ramping back.
fn episode_series(
    ticks: usize,
    prob: impl Fn(usize) -> f64,
    lo: f64,
    hi: f64,
    rng: &mut Rng64,
) -> Vec<f64> {
    let mut boost = vec![0.0f64; ticks];
    let mut t = 0usize;
    while t < ticks {
        if rng.chance(prob(t)) {
            let magnitude = rng.range_f64(lo, hi) * if rng.chance(0.6) { 1.0 } else { -1.0 };
            let ramp = rng.range_u64(1, 5) as usize;
            let hold = rng.range_u64(10, 61) as usize;
            let mut level = 0.0;
            let step = magnitude / ramp as f64;
            for phase in 0..(2 * ramp + hold) {
                if t + phase >= ticks {
                    break;
                }
                if phase < ramp {
                    level += step;
                } else if phase >= ramp + hold {
                    level -= step;
                }
                boost[t + phase] = level;
            }
            t += 2 * ramp + hold;
        } else {
            t += 1;
        }
    }
    boost
}

/// Generates a full multi-region trace.
#[must_use]
pub fn generate(cfg: &RuneScapeConfig) -> GameTrace {
    let mut rng = Rng64::seed_from(cfg.seed);
    let ticks = (cfg.days * TICKS_PER_DAY) as usize;
    let mut regions = Vec::with_capacity(cfg.regions.len());
    for (ri, spec) in cfg.regions.iter().enumerate() {
        // Region-wide surges shared by all the region's groups.
        let mut region_rng = rng.split();
        // Magnitudes sit near the |Υ| = 1% event threshold on purpose,
        // and episodes cluster at the region's peak hours (scheduled
        // in-game events run when players are online): super-linear
        // update models amplify the same player surge into a larger
        // resource shortfall there (the Figure 10 separation).
        let offset = spec.utc_offset_hours;
        let base_prob = cfg.regional_flash_prob_per_tick;
        let region_boost = episode_series(
            ticks,
            |t| {
                let h = SimTime(t as u64).hour_of_day() + offset;
                let diurnal = 0.5 * (1.0 - (2.0 * std::f64::consts::PI * (h - 7.0) / 24.0).cos());
                base_prob * 2.0 * diurnal * diurnal
            },
            0.04,
            0.13,
            &mut region_rng,
        );
        let mut groups = Vec::with_capacity(spec.groups as usize);
        for gi in 0..spec.groups {
            let mut group_rng = rng.split();
            let profile = GroupProfile {
                popularity: group_rng.triangular(0.55, 1.0, 0.85),
                always_full: group_rng.chance(cfg.always_full_fraction),
                weekend: group_rng.chance(cfg.weekend_fraction),
                phase_jitter: group_rng.range_f64(-1.0, 1.0),
            };
            let series = generate_group(cfg, spec, &profile, ticks, &region_boost, &mut group_rng);
            groups.push(ServerGroupTrace {
                region: RegionId(ri as u8),
                group: ServerGroupId(gi),
                series,
            });
        }
        regions.push(RegionTrace {
            region: RegionId(ri as u8),
            name: spec.name.clone(),
            groups,
        });
    }
    GameTrace { regions }
}

/// Generates one server group's series.
fn generate_group(
    cfg: &RuneScapeConfig,
    spec: &RegionSpec,
    profile: &GroupProfile,
    ticks: usize,
    region_boost: &[f64],
    rng: &mut Rng64,
) -> TimeSeries {
    let mut series = TimeSeries::with_capacity(ticks);
    // AR(1) multiplicative noise: keeps the 2-minute signal smooth but
    // wandering, like real login churn.
    let (rho, sigma) = (0.98, 0.015);
    let mut noise = 0.0;
    // Outage state: remaining outage ticks.
    let mut outage_left = 0u32;
    let outage_prob_per_tick = cfg.outage_prob_per_day / TICKS_PER_DAY as f64;
    // Flash-episode state: current boost and the ramp step sequence.
    let mut flash_boost = 0.0f64;
    let mut flash_plan: Vec<f64> = Vec::new(); // per-tick boost deltas, reversed

    debug_assert_eq!(region_boost.len(), ticks);
    for (tick, &regional) in region_boost.iter().enumerate() {
        let t = SimTime(tick as u64);
        // Outages hit all groups, including the always-full ones
        // ("always 95%, except for outages").
        if outage_left > 0 {
            outage_left -= 1;
            series.push(0.0);
            continue;
        }
        if rng.chance(outage_prob_per_tick) {
            // 10–60 minutes: "few and short-lived".
            outage_left = rng.range_u64(5, 31) as u32;
            series.push(0.0);
            continue;
        }

        // Flash episodes: ramp up over 3-8 ticks, hold 10-60, ramp down.
        if flash_plan.is_empty() && flash_boost == 0.0 && rng.chance(cfg.flash_prob_per_tick) {
            let magnitude = rng.range_f64(0.10, 0.25) * if rng.chance(0.6) { 1.0 } else { -1.0 };
            let ramp = rng.range_u64(3, 9) as usize;
            let hold = rng.range_u64(10, 61) as usize;
            // Build the reversed delta plan: ramp down, hold, ramp up.
            let step = magnitude / ramp as f64;
            let mut plan = Vec::with_capacity(2 * ramp + hold);
            plan.extend(std::iter::repeat_n(-step, ramp));
            plan.extend(std::iter::repeat_n(0.0, hold));
            plan.extend(std::iter::repeat_n(step, ramp));
            flash_plan = plan;
        }
        if let Some(delta) = flash_plan.pop() {
            flash_boost += delta;
            if flash_plan.is_empty() {
                flash_boost = 0.0; // cancel rounding drift
            }
        }

        let event_mult = combined_multiplier(&cfg.events, t);
        let load = if profile.always_full {
            0.95 * spec.peak_players * event_mult.min(1.05)
        } else {
            let local_hour = t.hour_of_day() + spec.utc_offset_hours + profile.phase_jitter;
            // Peak at 19:00 local, trough at 07:00 local.
            let diurnal =
                0.5 * (1.0 - (2.0 * std::f64::consts::PI * (local_hour - 7.0) / 24.0).cos());
            let daily = (1.0 - cfg.diurnal_amplitude) + cfg.diurnal_amplitude * diurnal;
            let weekend = if profile.weekend && t.is_weekend() {
                1.2
            } else {
                1.0
            };
            noise = rho * noise + sigma * rng.normal();
            spec.peak_players
                * profile.popularity
                * daily
                * weekend
                * event_mult
                * (1.0 + noise)
                * (1.0 + flash_boost)
                * (1.0 + regional)
        };
        series.push(load.clamp(0.0, spec.peak_players * 1.05).round());
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmog_util::stats;

    fn small_cfg() -> RuneScapeConfig {
        let mut cfg = RuneScapeConfig::paper_default(4, 99);
        // Shrink for test speed: two regions, few groups.
        cfg.regions.truncate(2);
        cfg.regions[0].groups = 10;
        cfg.regions[1].groups = 5;
        cfg
    }

    #[test]
    fn deterministic() {
        let a = generate(&small_cfg());
        let b = generate(&small_cfg());
        assert_eq!(a.global_series().values(), b.global_series().values());
    }

    #[test]
    fn shape_matches_config() {
        let t = generate(&small_cfg());
        assert_eq!(t.regions.len(), 2);
        assert_eq!(t.total_groups(), 15);
        assert_eq!(t.global_series().len(), 4 * TICKS_PER_DAY as usize);
    }

    #[test]
    fn loads_within_capacity() {
        let t = generate(&small_cfg());
        for r in &t.regions {
            for g in &r.groups {
                for &v in g.series.values() {
                    assert!(v >= 0.0);
                    assert!(v <= 2000.0 * 1.05 + 0.5, "load {v} beyond capacity");
                }
            }
        }
    }

    #[test]
    fn diurnal_pattern_has_daily_acf_peak() {
        let mut cfg = small_cfg();
        cfg.days = 6;
        cfg.outage_prob_per_day = 0.0;
        let t = generate(&cfg);
        // Regional aggregate should autocorrelate at 24 h (lag 720) and
        // anti-correlate at 12 h (lag 360) — the Figure 3 structure.
        let agg = t.regions[0].aggregate();
        let acf = stats::autocorrelation(agg.values(), 760);
        assert!(acf[720] > 0.6, "24h ACF {}", acf[720]);
        assert!(acf[360] < -0.3, "12h ACF {}", acf[360]);
    }

    #[test]
    fn peak_hour_median_roughly_fifty_pct_above_min() {
        // Sec. III-C: "the median is about 50% higher than the minimum"
        // during peak hours. Exclude pinned/always-full groups (they are
        // outliers above) and outage zeros (below).
        let mut cfg = RuneScapeConfig::paper_default(2, 5);
        cfg.regions.truncate(1);
        cfg.always_full_fraction = 0.0;
        cfg.outage_prob_per_day = 0.0;
        let t = generate(&cfg);
        // Peak local hour for Europe (+1): 19:00 local = 18:00 trace.
        let tick = (18 * 30) as usize;
        let cross = t.regions[0].cross_section(tick);
        let med = stats::median(&cross).unwrap();
        let min = cross.iter().copied().fold(f64::INFINITY, f64::min);
        let ratio = med / min;
        assert!((1.2..2.2).contains(&ratio), "median/min at peak: {ratio}");
    }

    #[test]
    fn always_full_groups_sit_at_95_pct() {
        let mut cfg = small_cfg();
        cfg.always_full_fraction = 1.0;
        cfg.outage_prob_per_day = 0.0;
        cfg.events.clear();
        let t = generate(&cfg);
        for r in &t.regions {
            for g in &r.groups {
                let mean = g.series.mean().unwrap();
                assert!((mean - 1900.0).abs() < 10.0, "mean {mean}");
            }
        }
    }

    #[test]
    fn outages_drop_load_to_zero_briefly() {
        let mut cfg = small_cfg();
        cfg.outage_prob_per_day = 2.0; // force some outages
        let t = generate(&cfg);
        let zeros: usize = t
            .regions
            .iter()
            .flat_map(|r| &r.groups)
            .map(|g| g.series.values().iter().filter(|v| **v == 0.0).count())
            .sum();
        assert!(zeros > 0, "no outages generated");
        // Still short-lived overall: far less than 20% of all samples.
        let total: usize = t
            .regions
            .iter()
            .flat_map(|r| &r.groups)
            .map(|g| g.series.len())
            .sum();
        assert!((zeros as f64) < 0.2 * total as f64);
    }

    #[test]
    fn figure2_events_shape_global_series() {
        let mut cfg = RuneScapeConfig::with_figure2_events(24, 3, 8);
        cfg.regions.truncate(2);
        cfg.regions[0].groups = 8;
        cfg.regions[1].groups = 6;
        let t = generate(&cfg);
        let global = t.global_series();
        // Daily means to smooth the diurnal cycle out.
        let daily = global.downsample_mean(TICKS_PER_DAY as usize);
        let before = daily.values()[6]; // day 6: pre-event baseline
        let crash = daily.values()[9]; // day 9: right after the decision
        let surge = daily.values()[18]; // day 18: first release surge
        assert!(crash < 0.9 * before, "crash {crash} vs before {before}");
        assert!(surge > before, "surge {surge} vs before {before}");
    }

    #[test]
    fn weekend_fraction_respected_in_aggregate() {
        // With weekends boosted for a third of groups, weekend loads
        // should exceed weekday loads slightly in aggregate.
        let mut cfg = RuneScapeConfig::paper_default(14, 11);
        cfg.regions.truncate(1);
        cfg.regions[0].groups = 30;
        cfg.outage_prob_per_day = 0.0;
        cfg.always_full_fraction = 0.0;
        let t = generate(&cfg);
        let daily = t.global_series().downsample_mean(TICKS_PER_DAY as usize);
        let vals = daily.values();
        // Days 5,6,12,13 are weekends under the Monday-epoch convention.
        let weekend_mean = (vals[5] + vals[6] + vals[12] + vals[13]) / 4.0;
        let weekday_mean = (0..14)
            .filter(|d| ![5usize, 6, 12, 13].contains(d))
            .map(|d| vals[d])
            .sum::<f64>()
            / 10.0;
        assert!(
            weekend_mean > weekday_mean * 1.02,
            "weekend {weekend_mean} weekday {weekday_mean}"
        );
    }

    #[test]
    fn global_peak_near_quarter_million_with_paper_layout() {
        let mut cfg = RuneScapeConfig::paper_default(2, 17);
        cfg.outage_prob_per_day = 0.0;
        let t = generate(&cfg);
        let peak = t.global_series().max().unwrap();
        // Sec. III-B: maximum global concurrent players ≈ 250 000. The
        // regions peak at different trace hours, so the global peak sits
        // below the 260 000 theoretical capacity.
        assert!((120_000.0..260_000.0).contains(&peak), "global peak {peak}");
    }
}
