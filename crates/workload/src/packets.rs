//! Packet-level session trace model — the Figure 4 substitution.
//!
//! Sec. III-D collects eight `tcpdump` game-session traces (plus the
//! T5a/T5b validation twin) and shows that "the (network) load depends
//! on the number and type of player interactions":
//!
//! - fast-paced sessions (T1, T6) send packets "as often as possible,
//!   and including as much information as possible" regardless of
//!   crowding — low IAT, large packets;
//! - direct player-to-player trading (T2 market vs. T7) has similar
//!   packet sizes but very different IAT — T7's moments are lower
//!   because T2 involves more thinking time;
//! - group interaction (T4) needs packets "to arrive more often (lower
//!   IAT than for other traces) and to include information about more
//!   objects (higher packet size)".
//!
//! We encode those orderings as parametric distributions (log-normal
//! packet lengths, shifted-exponential IATs) and regenerate the CDFs.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use mmog_util::rng::Rng64;
use mmog_util::stats::Ecdf;
use serde::{Deserialize, Serialize};

/// Minimum wire size of a game packet (headers), bytes.
pub const MIN_PACKET: f64 = 40.0;
/// Ethernet MTU cap, bytes.
pub const MAX_PACKET: f64 = 1500.0;

/// Parameters of one emulated game session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionSpec {
    /// Trace name ("Trace 0" … "Trace 7", "Trace 5a/5b").
    pub name: &'static str,
    /// Environment label matching the Figure 4 legend.
    pub label: &'static str,
    /// Median packet length in bytes (log-normal location).
    pub median_len: f64,
    /// Log-normal shape (σ of the underlying normal).
    pub len_sigma: f64,
    /// Mean packet inter-arrival time in milliseconds.
    pub mean_iat_ms: f64,
    /// Minimum IAT (server tick floor), milliseconds.
    pub min_iat_ms: f64,
}

/// The nine session traces of Figure 4 with parameters encoding the
/// orderings Sec. III-D reports.
pub const SESSION_SPECS: [SessionSpec; 9] = [
    SessionSpec {
        name: "Trace 0",
        label: "non-crowded+creating content",
        median_len: 120.0,
        len_sigma: 0.50,
        mean_iat_ms: 250.0,
        min_iat_ms: 15.0,
    },
    SessionSpec {
        name: "Trace 1",
        label: "non-crowded+fast paced",
        median_len: 260.0,
        len_sigma: 0.35,
        mean_iat_ms: 60.0,
        min_iat_ms: 10.0,
    },
    SessionSpec {
        name: "Trace 2",
        label: "semi-crowded+p2p interaction",
        median_len: 180.0,
        len_sigma: 0.45,
        mean_iat_ms: 320.0,
        min_iat_ms: 20.0,
    },
    SessionSpec {
        name: "Trace 3",
        label: "crowded+p2p interaction",
        median_len: 190.0,
        len_sigma: 0.45,
        mean_iat_ms: 300.0,
        min_iat_ms: 20.0,
    },
    SessionSpec {
        name: "Trace 4",
        label: "group p2p interaction",
        median_len: 340.0,
        len_sigma: 0.40,
        mean_iat_ms: 45.0,
        min_iat_ms: 8.0,
    },
    SessionSpec {
        name: "Trace 5a",
        label: "new content+crowded",
        median_len: 200.0,
        len_sigma: 0.45,
        mean_iat_ms: 150.0,
        min_iat_ms: 15.0,
    },
    SessionSpec {
        name: "Trace 5b",
        label: "new content+crowded",
        median_len: 200.0,
        len_sigma: 0.45,
        mean_iat_ms: 150.0,
        min_iat_ms: 15.0,
    },
    SessionSpec {
        name: "Trace 6",
        label: "crowded+fast paced",
        median_len: 270.0,
        len_sigma: 0.35,
        mean_iat_ms: 62.0,
        min_iat_ms: 10.0,
    },
    SessionSpec {
        name: "Trace 7",
        label: "new content+locks",
        median_len: 185.0,
        len_sigma: 0.45,
        mean_iat_ms: 120.0,
        min_iat_ms: 12.0,
    },
];

/// One captured packet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Arrival timestamp in milliseconds since session start.
    pub at_ms: f64,
    /// Wire length in bytes.
    pub len: u32,
}

/// A generated session trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PacketTrace {
    /// Trace name.
    pub name: String,
    /// Legend label.
    pub label: String,
    /// Packets in arrival order.
    pub packets: Vec<Packet>,
}

impl PacketTrace {
    /// Generates a session of `n` packets from a spec.
    #[must_use]
    pub fn generate(spec: &SessionSpec, n: usize, rng: &mut Rng64) -> Self {
        let mut packets = Vec::with_capacity(n);
        let mut t = 0.0;
        // Log-normal location so that the median is `median_len`.
        let mu = spec.median_len.ln();
        let exp_rate = 1.0 / (spec.mean_iat_ms - spec.min_iat_ms).max(1.0);
        for _ in 0..n {
            let iat = spec.min_iat_ms + rng.exponential(exp_rate);
            t += iat;
            let len = (mu + spec.len_sigma * rng.normal()).exp();
            packets.push(Packet {
                at_ms: t,
                len: len.clamp(MIN_PACKET, MAX_PACKET).round() as u32,
            });
        }
        Self {
            name: spec.name.to_string(),
            label: spec.label.to_string(),
            packets,
        }
    }

    /// ECDF of packet lengths (left plot of Figure 4).
    #[must_use]
    pub fn length_ecdf(&self) -> Ecdf {
        Ecdf::new(self.packets.iter().map(|p| f64::from(p.len)).collect())
    }

    /// ECDF of inter-arrival times in milliseconds (right plot).
    #[must_use]
    pub fn iat_ecdf(&self) -> Ecdf {
        let iats = self
            .packets
            .windows(2)
            .map(|w| w[1].at_ms - w[0].at_ms)
            .collect();
        Ecdf::new(iats)
    }

    /// Mean goodput in bytes per second over the session.
    #[must_use]
    pub fn mean_bandwidth_bps(&self) -> f64 {
        match (self.packets.first(), self.packets.last()) {
            (Some(first), Some(last)) if last.at_ms > first.at_ms => {
                let bytes: u64 = self.packets.iter().map(|p| u64::from(p.len)).sum();
                bytes as f64 / ((last.at_ms - first.at_ms) / 1000.0)
            }
            _ => 0.0,
        }
    }

    /// Serialises to a compact binary format (u32 count, then per packet
    /// an f64 timestamp and u32 length, all big-endian).
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(8 + self.packets.len() * 12);
        buf.put_u32(self.packets.len() as u32);
        for p in &self.packets {
            buf.put_f64(p.at_ms);
            buf.put_u32(p.len);
        }
        buf.freeze()
    }

    /// Decodes the format produced by [`Self::encode`]. Name and label
    /// are not part of the wire format and must be supplied.
    ///
    /// # Errors
    /// Returns a message when the buffer is truncated.
    pub fn decode(name: &str, label: &str, mut buf: Bytes) -> Result<Self, String> {
        if buf.remaining() < 4 {
            return Err("buffer too short for header".into());
        }
        let n = buf.get_u32() as usize;
        if buf.remaining() < n * 12 {
            return Err(format!(
                "buffer holds {} bytes, need {} for {n} packets",
                buf.remaining(),
                n * 12
            ));
        }
        let mut packets = Vec::with_capacity(n);
        for _ in 0..n {
            let at_ms = buf.get_f64();
            let len = buf.get_u32();
            packets.push(Packet { at_ms, len });
        }
        Ok(Self {
            name: name.to_string(),
            label: label.to_string(),
            packets,
        })
    }
}

/// Generates all nine Figure 4 traces with `n` packets each.
#[must_use]
pub fn generate_all(n: usize, seed: u64) -> Vec<PacketTrace> {
    let mut rng = Rng64::seed_from(seed);
    SESSION_SPECS
        .iter()
        .map(|spec| {
            let mut trace_rng = rng.split();
            PacketTrace::generate(spec, n, &mut trace_rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmog_util::stats;

    fn spec(name: &str) -> SessionSpec {
        *SESSION_SPECS.iter().find(|s| s.name == name).unwrap()
    }

    fn gen(name: &str, seed: u64) -> PacketTrace {
        let mut rng = Rng64::seed_from(seed);
        PacketTrace::generate(&spec(name), 5000, &mut rng)
    }

    #[test]
    fn timestamps_strictly_increase() {
        let t = gen("Trace 0", 1);
        for w in t.packets.windows(2) {
            assert!(w[1].at_ms > w[0].at_ms);
        }
    }

    #[test]
    fn packet_lengths_within_wire_bounds() {
        for t in generate_all(2000, 2) {
            for p in &t.packets {
                assert!((MIN_PACKET as u32..=MAX_PACKET as u32).contains(&p.len));
            }
        }
    }

    #[test]
    fn fast_paced_has_low_iat_regardless_of_crowding() {
        // T1 (non-crowded) and T6 (crowded) should have similar, low IAT.
        let t1 = gen("Trace 1", 3);
        let t6 = gen("Trace 6", 3);
        let t2 = gen("Trace 2", 3);
        let med = |t: &PacketTrace| t.iat_ecdf().inverse(0.5).unwrap();
        assert!((med(&t1) - med(&t6)).abs() < 0.2 * med(&t1), "T1/T6 differ");
        assert!(med(&t1) < 0.4 * med(&t2), "fast-paced IAT must be low");
    }

    #[test]
    fn p2p_trades_same_size_different_iat() {
        // Sec. III-D: T2 vs T7 — similar packet sizes, lower IAT for T7.
        let t2 = gen("Trace 2", 5);
        let t7 = gen("Trace 7", 5);
        let med_len = |t: &PacketTrace| t.length_ecdf().inverse(0.5).unwrap();
        assert!(
            (med_len(&t2) - med_len(&t7)).abs() < 0.1 * med_len(&t2),
            "T2/T7 sizes should be similar"
        );
        let mean_iat = |t: &PacketTrace| {
            let iats: Vec<f64> = t
                .packets
                .windows(2)
                .map(|w| w[1].at_ms - w[0].at_ms)
                .collect();
            stats::mean(&iats).unwrap()
        };
        assert!(
            mean_iat(&t7) < 0.6 * mean_iat(&t2),
            "T7 IAT must be lower than T2"
        );
    }

    #[test]
    fn group_interaction_biggest_packets_lowest_iat() {
        let t4 = gen("Trace 4", 7);
        let others: Vec<PacketTrace> = SESSION_SPECS
            .iter()
            .filter(|s| s.name != "Trace 4")
            .map(|s| {
                let mut rng = Rng64::seed_from(11);
                PacketTrace::generate(s, 5000, &mut rng)
            })
            .collect();
        let med_len_t4 = t4.length_ecdf().inverse(0.5).unwrap();
        let med_iat_t4 = t4.iat_ecdf().inverse(0.5).unwrap();
        for o in &others {
            assert!(
                med_len_t4 > o.length_ecdf().inverse(0.5).unwrap(),
                "T4 packets must be largest (vs {})",
                o.name
            );
            assert!(
                med_iat_t4 <= o.iat_ecdf().inverse(0.5).unwrap() + 1e-9,
                "T4 IAT must be lowest (vs {})",
                o.name
            );
        }
    }

    #[test]
    fn validation_twins_are_statistically_close() {
        // T5a and T5b were captured from "the same environment at
        // consecutive periods of time" — distributions must agree.
        let a = gen("Trace 5a", 13);
        let b = gen("Trace 5b", 14);
        let ma = a.length_ecdf().inverse(0.5).unwrap();
        let mb = b.length_ecdf().inverse(0.5).unwrap();
        assert!((ma - mb).abs() < 0.05 * ma, "twin medians {ma} vs {mb}");
    }

    #[test]
    fn bandwidth_positive_and_sane() {
        let t = gen("Trace 6", 17);
        let bw = t.mean_bandwidth_bps();
        // Fast-paced: ~300B every ~62ms ≈ 5 KB/s.
        assert!((1_000.0..50_000.0).contains(&bw), "bandwidth {bw}");
        let empty = PacketTrace {
            name: "e".into(),
            label: "e".into(),
            packets: vec![],
        };
        assert_eq!(empty.mean_bandwidth_bps(), 0.0);
    }

    #[test]
    fn encode_decode_round_trip() {
        let t = gen("Trace 3", 19);
        let bytes = t.encode();
        let back = PacketTrace::decode(&t.name, &t.label, bytes).unwrap();
        assert_eq!(back.packets.len(), t.packets.len());
        for (a, b) in t.packets.iter().zip(&back.packets) {
            assert_eq!(a.len, b.len);
            assert!((a.at_ms - b.at_ms).abs() < 1e-12);
        }
    }

    #[test]
    fn decode_rejects_truncated_buffers() {
        let t = gen("Trace 0", 23);
        let bytes = t.encode();
        let short = bytes.slice(0..bytes.len() - 4);
        assert!(PacketTrace::decode("x", "y", short).is_err());
        assert!(PacketTrace::decode("x", "y", Bytes::from_static(&[0, 0])).is_err());
    }

    #[test]
    fn generate_all_produces_nine_distinct_traces() {
        let all = generate_all(500, 29);
        assert_eq!(all.len(), 9);
        let mut names: Vec<&str> = all.iter().map(|t| t.name.as_str()).collect();
        names.dedup();
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn median_len_matches_spec_roughly() {
        for s in &SESSION_SPECS {
            let mut rng = Rng64::seed_from(31);
            let t = PacketTrace::generate(s, 8000, &mut rng);
            let med = t.length_ecdf().inverse(0.5).unwrap();
            assert!(
                (med - s.median_len).abs() < 0.1 * s.median_len,
                "{}: median {med} vs spec {}",
                s.name,
                s.median_len
            );
        }
    }
}
