//! MMOG workload substrate: synthesis and analysis of player-population
//! traces, packet-level session traces, and market growth data.
//!
//! Section III of the paper analyses ten months of RuneScape traces
//! (player counts per server group, sampled every two minutes, across
//! five geographical regions) plus `tcpdump` captures of live game
//! sessions. Neither data source is publicly available, so this crate
//! provides calibrated synthetic equivalents (see DESIGN.md §2 for the
//! substitution argument):
//!
//! - [`trace`] — trace containers: server groups, regions, whole games;
//!   CSV import/export.
//! - [`events`] — global population events: the 10 December 2007
//!   "highly unpopular decision" (−25 % of concurrent players within a
//!   day, recovery to 95 %) and the content releases of 18 December 2007
//!   / 15 January 2008 (+50 % surges for about a week), Figure 2.
//! - [`runescape`] — the calibrated trace generator reproducing the
//!   statistical shape of Sec. III: diurnal cycles (24 h ACF peak, 12 h
//!   trough), peak-hour spread across groups, IQR cycles, 2–5 %
//!   always-full servers, rare short outages, weekend effects on a third
//!   of the groups.
//! - [`analysis`] — the Figure 2/3 analyses: load envelopes, IQR series,
//!   per-group autocorrelation, dominant-period detection.
//! - [`packets`] — the Figure 4 packet model: per-interaction-class
//!   packet-length and inter-arrival-time distributions for the nine
//!   session traces T0–T7/T5a/T5b, with a generator and ECDF extraction.
//! - [`growth`] — the Figure 1 market model: logistic subscription
//!   curves for the 1997–2008 MMORPG market.
//! - [`stream`] — the same generator as a lazy per-tick source: O(1)
//!   memory per group in the trace length, byte-identical to the
//!   materialized path, for thousand-group / million-player scale-out.
//! - [`cache`] — process-wide sharing of generated traces, so sweeps
//!   that re-request the same workload build it once.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod cache;
pub mod events;
pub mod growth;
pub mod packets;
pub mod runescape;
pub mod stream;
pub mod trace;

pub use events::PopulationEvent;
pub use runescape::{generate, RegionSpec, RuneScapeConfig};
pub use stream::StreamingTrace;
pub use trace::{GameTrace, RegionId, RegionTrace, ServerGroupId, ServerGroupTrace};
