//! The MMORPG market growth model — the Figure 1 substitution.
//!
//! Figure 1 plots "the number of MMORPG players over time" for ~40
//! titles between 1997 and 2008, sourced from Woodcock's MMOGChart
//! survey. The paper highlights that six games exceed 500 k players and
//! projects "over 60 million players by 2011 in the US and EU markets".
//! We model each title with a logistic adoption curve times an
//! exponential decline after its peak era, calibrated to the well-known
//! subscription histories.

use serde::{Deserialize, Serialize};

/// One MMOG title's subscription model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GameTitle {
    /// Title name.
    pub name: &'static str,
    /// Launch year (fractional years allowed).
    pub launch: f64,
    /// Peak subscriber count (millions).
    pub peak_millions: f64,
    /// Years from launch to reach ~90 % of peak.
    pub ramp_years: f64,
    /// Exponential decline rate per year after the plateau (0 = none).
    pub decline_per_year: f64,
    /// Years the title stays at peak before declining.
    pub plateau_years: f64,
}

impl GameTitle {
    /// Subscribers (millions) in calendar year `year`.
    #[must_use]
    pub fn subscribers(&self, year: f64) -> f64 {
        if year < self.launch {
            return 0.0;
        }
        let age = year - self.launch;
        // Logistic ramp: 90% of peak at `ramp_years`.
        let k = 4.39 / self.ramp_years.max(0.1); // ln(0.9/0.1)*2 ≈ 4.39
        let ramp = 1.0 / (1.0 + (-k * (age - self.ramp_years / 2.0)).exp());
        let decline_start = self.ramp_years + self.plateau_years;
        let decline = if age > decline_start {
            (-self.decline_per_year * (age - decline_start)).exp()
        } else {
            1.0
        };
        self.peak_millions * ramp * decline
    }
}

/// The Figure 1 title roster (launch years and peaks follow the public
/// subscription histories the MMOGChart survey aggregated).
#[must_use]
pub fn title_roster() -> Vec<GameTitle> {
    let t = |name, launch, peak, ramp, decline, plateau| GameTitle {
        name,
        launch,
        peak_millions: peak,
        ramp_years: ramp,
        decline_per_year: decline,
        plateau_years: plateau,
    };
    vec![
        t("The Realm Online", 1996.8, 0.025, 1.5, 0.3, 1.0),
        t("Ultima Online", 1997.7, 0.25, 2.0, 0.15, 3.0),
        t("Lineage", 1998.7, 3.0, 3.0, 0.12, 3.0),
        t("EverQuest", 1999.2, 0.55, 2.5, 0.15, 3.5),
        t("Asheron's Call", 1999.8, 0.12, 1.5, 0.2, 2.0),
        t("Anarchy Online", 2001.5, 0.11, 1.0, 0.25, 1.5),
        t("World War II Online", 2001.4, 0.03, 0.8, 0.3, 1.0),
        t("Dark Age of Camelot", 2001.8, 0.25, 1.5, 0.2, 2.0),
        t("Tibia", 1997.0, 0.3, 6.0, 0.0, 10.0),
        t("RuneScape", 2001.0, 5.0, 6.0, 0.0, 10.0),
        t("Final Fantasy XI", 2002.4, 0.48, 2.0, 0.05, 4.0),
        t("The Sims Online", 2002.9, 0.1, 0.8, 0.5, 0.5),
        t("A Tale in the Desert", 2003.1, 0.003, 1.0, 0.2, 1.0),
        t("EVE Online", 2003.4, 0.3, 4.0, 0.0, 5.0),
        t("PlanetSide", 2003.4, 0.06, 0.8, 0.4, 1.0),
        t("Toontown Online", 2003.4, 0.12, 1.5, 0.1, 3.0),
        t("Second Life", 2003.5, 0.45, 3.5, 0.0, 4.0),
        t("Star Wars Galaxies", 2003.5, 0.3, 1.0, 0.3, 1.5),
        t("Lineage II", 2003.8, 2.2, 2.0, 0.1, 3.0),
        t("Puzzle Pirates", 2003.9, 0.04, 1.5, 0.1, 2.0),
        t("City of Heroes", 2004.3, 0.18, 1.0, 0.2, 1.5),
        t("Dofus", 2004.7, 1.5, 3.0, 0.0, 4.0),
        t("EverQuest II", 2004.9, 0.3, 1.0, 0.2, 1.5),
        t("World of Warcraft", 2004.9, 10.0, 3.0, 0.0, 6.0),
        t("The Matrix Online", 2005.2, 0.05, 0.8, 0.5, 0.5),
        t("Guild Wars", 2005.3, 2.0, 2.0, 0.05, 3.0),
        t("Dungeons & Dragons Online", 2006.2, 0.12, 1.0, 0.2, 1.0),
        t("Auto Assault", 2006.3, 0.015, 0.5, 1.0, 0.3),
    ]
}

/// Aggregate subscriptions (millions) of a roster in a given year.
#[must_use]
pub fn total_subscribers(roster: &[GameTitle], year: f64) -> f64 {
    roster.iter().map(|t| t.subscribers(year)).sum()
}

/// Titles above `threshold_millions` subscribers in `year` — the
/// paper's "six games which currently have more than 500k players".
#[must_use]
pub fn titles_over(roster: &[GameTitle], year: f64, threshold_millions: f64) -> Vec<&'static str> {
    roster
        .iter()
        .filter(|t| t.subscribers(year) > threshold_millions)
        .map(|t| t.name)
        .collect()
}

/// Monthly aggregate series over `[from, to]` years: `(year, millions)`.
#[must_use]
pub fn aggregate_series(roster: &[GameTitle], from: f64, to: f64) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    let mut year = from;
    while year <= to + 1e-9 {
        out.push((year, total_subscribers(roster, year)));
        year += 1.0 / 12.0;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_before_launch() {
        for t in title_roster() {
            assert_eq!(t.subscribers(t.launch - 0.1), 0.0, "{}", t.name);
        }
    }

    #[test]
    fn ramp_reaches_ninety_pct_of_peak() {
        let t = GameTitle {
            name: "x",
            launch: 2000.0,
            peak_millions: 1.0,
            ramp_years: 2.0,
            decline_per_year: 0.0,
            plateau_years: 10.0,
        };
        let at_ramp = t.subscribers(2002.0);
        assert!((at_ramp - 0.9).abs() < 0.02, "at ramp end: {at_ramp}");
    }

    #[test]
    fn decline_after_plateau() {
        let t = GameTitle {
            name: "x",
            launch: 2000.0,
            peak_millions: 1.0,
            ramp_years: 1.0,
            decline_per_year: 0.5,
            plateau_years: 1.0,
        };
        let peak = t.subscribers(2002.0);
        let later = t.subscribers(2005.0);
        assert!(later < 0.5 * peak, "peak {peak} later {later}");
    }

    #[test]
    fn six_titles_over_half_million_in_2008() {
        // The paper: "there are six games which currently have more than
        // 500k players each" (as of 2008).
        let roster = title_roster();
        let big = titles_over(&roster, 2008.0, 0.5);
        assert_eq!(big.len(), 6, "big titles: {big:?}");
        assert!(big.contains(&"World of Warcraft"));
        assert!(big.contains(&"RuneScape"));
    }

    #[test]
    fn market_grows_through_the_decade() {
        let roster = title_roster();
        let y2000 = total_subscribers(&roster, 2000.0);
        let y2004 = total_subscribers(&roster, 2004.0);
        let y2008 = total_subscribers(&roster, 2008.0);
        assert!(y2000 < y2004 && y2004 < y2008, "{y2000} {y2004} {y2008}");
        // Figure 1's y-axis tops out near 25 million around 2008.
        assert!((15.0..30.0).contains(&y2008), "2008 total {y2008}");
    }

    #[test]
    fn runescape_is_second_largest_in_2008() {
        // Sec. III-A: "RuneScape is ranked second by number of players".
        let roster = title_roster();
        let mut by_size: Vec<(&str, f64)> = roster
            .iter()
            .map(|t| (t.name, t.subscribers(2008.0)))
            .collect();
        by_size.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        assert_eq!(by_size[0].0, "World of Warcraft");
        assert_eq!(by_size[1].0, "RuneScape");
    }

    #[test]
    fn aggregate_series_is_monthly() {
        let roster = title_roster();
        let series = aggregate_series(&roster, 1997.0, 1998.0);
        assert_eq!(series.len(), 13);
        assert!((series[1].0 - (1997.0 + 1.0 / 12.0)).abs() < 1e-9);
    }
}
