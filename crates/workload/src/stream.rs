//! Streaming trace generation: the materialized generator, one tick at
//! a time.
//!
//! [`crate::runescape::generate`] materialises every server group's full
//! series before anything can consume it — fine for the paper's ~130
//! groups × two weeks (≈10 MB), fatal at thousands of groups / millions
//! of synthetic players. [`StreamingTrace`] replays the *same* random
//! protocol lazily: construction performs exactly the seed-expansion
//! splits of the materialized path (one region stream, then one group
//! stream per group, in enumeration order), and [`StreamingTrace::next_tick`]
//! advances every group by one tick using O(1) state per group —
//! the AR(1) noise register, the outage countdown, and two small
//! fixed-capacity episode buffers whose maximum size is set by the
//! generator's own ramp/hold bounds, not by the trace length.
//!
//! # Byte-identity contract
//!
//! For every configuration, the stream of values produced group by
//! group, tick by tick, is **bit-identical** to the materialized
//! series: the per-tick RNG draws happen in the same order on the same
//! per-group streams, episode levels are computed with the same float
//! operations, and episode-start probabilities are evaluated at the
//! same tick indices (a chance draw happens exactly when the episode
//! buffer is empty, which mirrors the materialized `while` loop that
//! jumps `t` past each episode). `tests::streaming_matches_materialized`
//! and the bench crate's paper-scale determinism test pin this down.
//!
//! # Steady-state allocation
//!
//! All buffers are sized at construction; `next_tick` performs no
//! allocation (asserted by `crates/bench/tests/alloc_smoke.rs`).

use crate::events::{combined_multiplier, PopulationEvent};
use crate::runescape::{RegionSpec, RuneScapeConfig};
use mmog_util::rng::Rng64;
use mmog_util::time::{SimTime, TICKS_PER_DAY};

/// Maximum length of a regional surge episode: ramp ≤ 4 (`range_u64(1,
/// 5)`), hold ≤ 60 (`range_u64(10, 61)`), so `2·ramp + hold ≤ 68`.
const REGION_EPISODE_CAP: usize = 2 * 4 + 60;

/// Maximum length of a group flash episode: ramp ≤ 8 (`range_u64(3,
/// 9)`), hold ≤ 60, so `2·ramp + hold ≤ 76`.
const FLASH_EPISODE_CAP: usize = 2 * 8 + 60;

/// Streaming counterpart of `runescape::episode_series`: the same RNG
/// draws on the same stream, but the episode's level sequence is staged
/// in a fixed-capacity buffer instead of a trace-length vector.
#[derive(Debug, Clone)]
struct EpisodeStream {
    rng: Rng64,
    lo: f64,
    hi: f64,
    /// Pending episode levels; `cursor..levels.len()` is still to serve.
    levels: Vec<f64>,
    cursor: usize,
}

impl EpisodeStream {
    fn new(rng: Rng64, lo: f64, hi: f64, cap: usize) -> Self {
        Self {
            rng,
            lo,
            hi,
            levels: Vec::with_capacity(cap),
            cursor: 0,
        }
    }

    /// The boost level at the next tick (calls must be made for `t = 0,
    /// 1, 2, …` in order); `prob` is the caller-evaluated per-tick
    /// episode-start probability at that tick.
    fn next(&mut self, prob: f64) -> f64 {
        if self.cursor < self.levels.len() {
            let v = self.levels[self.cursor];
            self.cursor += 1;
            return v;
        }
        // Outside an episode: the materialized loop draws `chance` at
        // exactly these tick indices (it jumps `t` past each episode).
        if self.rng.chance(prob) {
            let magnitude = self.rng.range_f64(self.lo, self.hi)
                * if self.rng.chance(0.6) { 1.0 } else { -1.0 };
            let ramp = self.rng.range_u64(1, 5) as usize;
            let hold = self.rng.range_u64(10, 61) as usize;
            let mut level = 0.0;
            let step = magnitude / ramp as f64;
            self.levels.clear();
            self.cursor = 0;
            for phase in 0..(2 * ramp + hold) {
                if phase < ramp {
                    level += step;
                } else if phase >= ramp + hold {
                    level -= step;
                }
                self.levels.push(level);
            }
            let v = self.levels[0];
            self.cursor = 1;
            v
        } else {
            0.0
        }
    }
}

/// Per-group latent profile, sampled at construction exactly like the
/// materialized generator's `GroupProfile`.
#[derive(Debug, Clone)]
struct GroupProfile {
    popularity: f64,
    always_full: bool,
    weekend: bool,
    phase_jitter: f64,
}

/// Streaming counterpart of one `generate_group` call: the per-tick
/// loop body of the materialized generator, with the loop state kept
/// between calls.
#[derive(Debug, Clone)]
struct GroupStream {
    rng: Rng64,
    profile: GroupProfile,
    /// AR(1) noise register.
    noise: f64,
    /// Remaining outage ticks.
    outage_left: u32,
    /// Current flash boost and the reversed delta plan being consumed.
    flash_boost: f64,
    flash_plan: Vec<f64>,
}

impl GroupStream {
    fn new(mut rng: Rng64, cfg: &RuneScapeConfig) -> Self {
        // Identical draw order to the materialized GroupProfile sampling.
        let profile = GroupProfile {
            popularity: rng.triangular(0.55, 1.0, 0.85),
            always_full: rng.chance(cfg.always_full_fraction),
            weekend: rng.chance(cfg.weekend_fraction),
            phase_jitter: rng.range_f64(-1.0, 1.0),
        };
        Self {
            rng,
            profile,
            noise: 0.0,
            outage_left: 0,
            flash_boost: 0.0,
            flash_plan: Vec::with_capacity(FLASH_EPISODE_CAP),
        }
    }

    /// One tick of the materialized `generate_group` loop body.
    #[allow(clippy::too_many_arguments)]
    fn next(
        &mut self,
        tick: usize,
        regional: f64,
        spec: &RegionSpec,
        events: &[PopulationEvent],
        cfg: &RuneScapeConfig,
        outage_prob_per_tick: f64,
    ) -> f64 {
        let t = SimTime(tick as u64);
        if self.outage_left > 0 {
            self.outage_left -= 1;
            return 0.0;
        }
        if self.rng.chance(outage_prob_per_tick) {
            self.outage_left = self.rng.range_u64(5, 31) as u32;
            return 0.0;
        }

        if self.flash_plan.is_empty()
            && self.flash_boost == 0.0
            && self.rng.chance(cfg.flash_prob_per_tick)
        {
            let magnitude =
                self.rng.range_f64(0.10, 0.25) * if self.rng.chance(0.6) { 1.0 } else { -1.0 };
            let ramp = self.rng.range_u64(3, 9) as usize;
            let hold = self.rng.range_u64(10, 61) as usize;
            let step = magnitude / ramp as f64;
            // Reversed delta plan (consumed back to front), exactly as
            // the materialized generator builds it — but into the
            // pre-sized buffer, so no steady-state allocation.
            self.flash_plan.clear();
            self.flash_plan.extend(std::iter::repeat_n(-step, ramp));
            self.flash_plan.extend(std::iter::repeat_n(0.0, hold));
            self.flash_plan.extend(std::iter::repeat_n(step, ramp));
        }
        if let Some(delta) = self.flash_plan.pop() {
            self.flash_boost += delta;
            if self.flash_plan.is_empty() {
                self.flash_boost = 0.0; // cancel rounding drift
            }
        }

        let event_mult = combined_multiplier(events, t);
        let load = if self.profile.always_full {
            0.95 * spec.peak_players * event_mult.min(1.05)
        } else {
            let local_hour = t.hour_of_day() + spec.utc_offset_hours + self.profile.phase_jitter;
            let diurnal =
                0.5 * (1.0 - (2.0 * std::f64::consts::PI * (local_hour - 7.0) / 24.0).cos());
            let daily = (1.0 - cfg.diurnal_amplitude) + cfg.diurnal_amplitude * diurnal;
            let weekend = if self.profile.weekend && t.is_weekend() {
                1.2
            } else {
                1.0
            };
            let (rho, sigma) = (0.98, 0.015);
            self.noise = rho * self.noise + sigma * self.rng.normal();
            spec.peak_players
                * self.profile.popularity
                * daily
                * weekend
                * event_mult
                * (1.0 + self.noise)
                * (1.0 + self.flash_boost)
                * (1.0 + regional)
        };
        load.clamp(0.0, spec.peak_players * 1.05).round()
    }
}

/// One region's streams: the shared surge episode plus every group.
#[derive(Debug, Clone)]
struct RegionStream {
    spec: RegionSpec,
    episodes: EpisodeStream,
    groups: Vec<GroupStream>,
}

/// The whole configuration as a lazy tick source.
///
/// Group order is region-major (region 0's groups, then region 1's, …)
/// — the same global order in which the materialized
/// [`crate::trace::GameTrace`] enumerates its groups, and the order the
/// simulation engine assigns group indices.
#[derive(Debug, Clone)]
pub struct StreamingTrace {
    cfg: RuneScapeConfig,
    regions: Vec<RegionStream>,
    ticks: usize,
    t: usize,
    group_count: usize,
    outage_prob_per_tick: f64,
}

impl StreamingTrace {
    /// Builds the per-region / per-group streams, performing exactly the
    /// seed-expansion splits of [`crate::runescape::generate`].
    #[must_use]
    pub fn new(cfg: &RuneScapeConfig) -> Self {
        let mut rng = Rng64::seed_from(cfg.seed);
        let ticks = (cfg.days * TICKS_PER_DAY) as usize;
        let mut regions = Vec::with_capacity(cfg.regions.len());
        let mut group_count = 0usize;
        for spec in &cfg.regions {
            let region_rng = rng.split();
            let episodes = EpisodeStream::new(region_rng, 0.04, 0.13, REGION_EPISODE_CAP);
            let mut groups = Vec::with_capacity(spec.groups as usize);
            for _ in 0..spec.groups {
                let group_rng = rng.split();
                groups.push(GroupStream::new(group_rng, cfg));
            }
            group_count += groups.len();
            regions.push(RegionStream {
                spec: spec.clone(),
                episodes,
                groups,
            });
        }
        Self {
            outage_prob_per_tick: cfg.outage_prob_per_day / TICKS_PER_DAY as f64,
            cfg: cfg.clone(),
            regions,
            ticks,
            t: 0,
            group_count,
        }
    }

    /// The configuration this stream was built from.
    #[must_use]
    pub fn config(&self) -> &RuneScapeConfig {
        &self.cfg
    }

    /// Total ticks the stream will produce (`days × TICKS_PER_DAY`).
    #[must_use]
    pub fn ticks(&self) -> usize {
        self.ticks
    }

    /// The next tick index to be generated.
    #[must_use]
    pub fn tick(&self) -> usize {
        self.t
    }

    /// Total server groups across all regions.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.group_count
    }

    /// Generates one tick of demand for every group into `out`
    /// (region-major group order). Returns `false` — writing nothing —
    /// once the configured trace length is exhausted.
    ///
    /// Performs no allocation: the only mutable state is the per-group
    /// registers and the pre-sized episode buffers.
    ///
    /// # Panics
    /// Panics when `out` is shorter than [`Self::group_count`].
    pub fn next_tick(&mut self, out: &mut [f64]) -> bool {
        if self.t >= self.ticks {
            return false;
        }
        assert!(
            out.len() >= self.group_count,
            "output slice holds {} groups, stream has {}",
            out.len(),
            self.group_count
        );
        let t = self.t;
        let mut gi = 0usize;
        for region in &mut self.regions {
            // Regional surge level first (shared by the region's groups),
            // with the episode-start probability clustered at the
            // region's peak hours — identical to the materialized
            // closure passed to `episode_series`.
            let offset = region.spec.utc_offset_hours;
            let h = SimTime(t as u64).hour_of_day() + offset;
            let diurnal = 0.5 * (1.0 - (2.0 * std::f64::consts::PI * (h - 7.0) / 24.0).cos());
            let prob = self.cfg.regional_flash_prob_per_tick * 2.0 * diurnal * diurnal;
            let regional = region.episodes.next(prob);
            for group in &mut region.groups {
                out[gi] = group.next(
                    t,
                    regional,
                    &region.spec,
                    &self.cfg.events,
                    &self.cfg,
                    self.outage_prob_per_tick,
                );
                gi += 1;
            }
        }
        self.t += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runescape::generate;

    fn check_matches(cfg: &RuneScapeConfig) {
        let materialized = generate(cfg);
        let mut stream = StreamingTrace::new(cfg);
        let groups: Vec<&crate::trace::ServerGroupTrace> = materialized
            .regions
            .iter()
            .flat_map(|r| &r.groups)
            .collect();
        assert_eq!(stream.group_count(), groups.len());
        let mut out = vec![0.0f64; stream.group_count()];
        for t in 0..stream.ticks() {
            assert!(stream.next_tick(&mut out));
            for (gi, g) in groups.iter().enumerate() {
                let expect = g.series.values()[t];
                let got = out[gi];
                assert!(
                    expect.to_bits() == got.to_bits(),
                    "tick {t} group {gi}: stream {got} != materialized {expect}"
                );
            }
        }
        assert!(!stream.next_tick(&mut out), "stream must end at ticks()");
    }

    #[test]
    fn streaming_matches_materialized() {
        let mut cfg = RuneScapeConfig::paper_default(2, 99);
        cfg.regions.truncate(2);
        cfg.regions[0].groups = 6;
        cfg.regions[1].groups = 3;
        check_matches(&cfg);
    }

    #[test]
    fn streaming_matches_with_outages_and_events() {
        let mut cfg = RuneScapeConfig::with_figure2_events(3, 41, 1);
        cfg.regions.truncate(2);
        cfg.regions[0].groups = 4;
        cfg.regions[1].groups = 4;
        cfg.outage_prob_per_day = 2.0; // force outage branches
        check_matches(&cfg);
    }

    #[test]
    fn streaming_matches_always_full() {
        let mut cfg = RuneScapeConfig::paper_default(1, 7);
        cfg.regions.truncate(1);
        cfg.regions[0].groups = 3;
        cfg.always_full_fraction = 1.0;
        check_matches(&cfg);
    }

    #[test]
    fn episode_buffers_never_outgrow_their_caps() {
        let mut cfg = RuneScapeConfig::paper_default(4, 13);
        cfg.regions.truncate(1);
        cfg.regions[0].groups = 5;
        cfg.flash_prob_per_tick = 0.05; // plenty of episodes
        cfg.regional_flash_prob_per_tick = 0.05;
        let mut stream = StreamingTrace::new(&cfg);
        let mut out = vec![0.0f64; stream.group_count()];
        while stream.next_tick(&mut out) {
            for region in &stream.regions {
                assert!(region.episodes.levels.capacity() <= REGION_EPISODE_CAP);
                for g in &region.groups {
                    assert!(g.flash_plan.capacity() <= FLASH_EPISODE_CAP);
                }
            }
        }
    }

    #[test]
    fn tick_cursor_advances() {
        let mut cfg = RuneScapeConfig::paper_default(1, 3);
        cfg.regions.truncate(1);
        cfg.regions[0].groups = 2;
        let mut stream = StreamingTrace::new(&cfg);
        assert_eq!(stream.tick(), 0);
        let mut out = [0.0f64; 2];
        assert!(stream.next_tick(&mut out));
        assert_eq!(stream.tick(), 1);
        assert_eq!(stream.ticks(), TICKS_PER_DAY as usize);
    }
}
