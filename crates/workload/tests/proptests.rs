//! Property-based tests for the workload substrate.

use mmog_util::rng::Rng64;
use mmog_util::time::{SimTime, TICKS_PER_DAY};
use mmog_workload::events::{combined_multiplier, PopulationEvent};
use mmog_workload::packets::{PacketTrace, SESSION_SPECS};
use mmog_workload::runescape::{generate, RuneScapeConfig};
use mmog_workload::trace::GameTrace;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn event_multipliers_are_positive_and_bounded(
        at_day in 0u64..30,
        drop in 0.01f64..0.9,
        surge in 0.01f64..2.0,
        probe_day in 0u64..120,
    ) {
        let decision = PopulationEvent::UnpopularDecision {
            at: SimTime::from_days(at_day),
            drop,
            crash_days: 0.75,
            recovery_days: 4.0,
            recovery_level: 0.95,
        };
        let release = PopulationEvent::ContentRelease {
            at: SimTime::from_days(at_day),
            surge,
            ramp_days: 1.5,
            duration_days: 7.0,
        };
        let t = SimTime::from_days(probe_day);
        let md = decision.multiplier(t);
        prop_assert!(md > 0.0 && md <= 1.0 + 1e-9, "decision {md}");
        // Never below both the crash trough and the long-run plateau
        // (the recovery settles at whichever of the two applies).
        let floor = (1.0 - drop).min(0.95);
        prop_assert!(md >= floor - 1e-9, "decision {md} below floor {floor}");
        let mr = release.multiplier(t);
        prop_assert!((1.0 - 1e-9..=1.0 + surge + 1e-9).contains(&mr), "release {mr}");
        let combo = combined_multiplier(&[decision, release], t);
        prop_assert!((combo - md * mr).abs() < 1e-12);
    }

    #[test]
    fn trace_generation_bounds_hold(seed in any::<u64>(), groups in 1u32..6, days in 1u64..4) {
        let mut cfg = RuneScapeConfig::paper_default(days, seed);
        cfg.regions.truncate(1);
        cfg.regions[0].groups = groups;
        let t = generate(&cfg);
        prop_assert_eq!(t.total_groups(), groups as usize);
        for r in &t.regions {
            for g in &r.groups {
                prop_assert_eq!(g.series.len(), (days * TICKS_PER_DAY) as usize);
                for &v in g.series.values() {
                    prop_assert!(v >= 0.0);
                    prop_assert!(v <= cfg.regions[0].peak_players * 1.05 + 1.0);
                    prop_assert_eq!(v, v.round(), "player counts are integral");
                }
            }
        }
    }

    #[test]
    fn trace_csv_round_trips(seed in any::<u64>()) {
        let mut cfg = RuneScapeConfig::paper_default(1, seed);
        cfg.regions.truncate(2);
        cfg.regions[0].groups = 2;
        cfg.regions[1].groups = 1;
        let t = generate(&cfg);
        let parsed = GameTrace::from_csv(&t.to_csv()).unwrap();
        prop_assert_eq!(parsed.total_groups(), t.total_groups());
        let original_global = t.global_series();
        let parsed_global = parsed.global_series();
        prop_assert_eq!(parsed_global.values(), original_global.values());
    }

    #[test]
    fn packet_traces_round_trip_binary(seed in any::<u64>(), n in 1usize..500, which in 0usize..9) {
        let mut rng = Rng64::seed_from(seed);
        let t = PacketTrace::generate(&SESSION_SPECS[which], n, &mut rng);
        let decoded = PacketTrace::decode(&t.name, &t.label, t.encode()).unwrap();
        prop_assert_eq!(decoded.packets.len(), n);
        for (a, b) in t.packets.iter().zip(&decoded.packets) {
            prop_assert_eq!(a.len, b.len);
            prop_assert!((a.at_ms - b.at_ms).abs() < 1e-9);
        }
    }

    #[test]
    fn packet_iat_respects_floor(seed in any::<u64>(), which in 0usize..9) {
        let spec = SESSION_SPECS[which];
        let mut rng = Rng64::seed_from(seed);
        let t = PacketTrace::generate(&spec, 200, &mut rng);
        for w in t.packets.windows(2) {
            prop_assert!(w[1].at_ms - w[0].at_ms >= spec.min_iat_ms - 1e-9);
        }
    }
}
