//! Criterion version of Figure 6: the time taken to make one
//! prediction, per algorithm, plus the observation (update) path and
//! the neural training step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmog_predict::eval::PredictorKind;
use mmog_util::rng::Rng64;
use std::hint::black_box;

/// A noisy diurnal signal like the emulator's world totals.
fn signal(n: usize) -> Vec<f64> {
    let mut rng = Rng64::seed_from(6);
    (0..n)
        .map(|i| {
            (1000.0
                + 600.0 * (i as f64 * 2.0 * std::f64::consts::PI / 720.0).sin()
                + 20.0 * rng.normal())
            .max(0.0)
        })
        .collect()
}

fn bench_predict(c: &mut Criterion) {
    let series = signal(1500);
    let mut group = c.benchmark_group("predict");
    for kind in [
        PredictorKind::Neural,
        PredictorKind::SlidingWindowMedian,
        PredictorKind::Average,
        PredictorKind::ExpSmoothing50,
        PredictorKind::LastValue,
        PredictorKind::MovingAverage,
        PredictorKind::Ar,
    ] {
        let mut p = kind.build(&series[..720]);
        for &x in &series {
            p.observe(x);
        }
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter(|| black_box(p.predict()))
        });
    }
    group.finish();
}

fn bench_observe(c: &mut Criterion) {
    let series = signal(1500);
    let mut group = c.benchmark_group("observe");
    for kind in [
        PredictorKind::Neural,
        PredictorKind::SlidingWindowMedian,
        PredictorKind::Ar,
    ] {
        let mut p = kind.build(&series[..720]);
        let mut i = 0usize;
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter(|| {
                p.observe(black_box(series[i % series.len()]));
                i += 1;
            })
        });
    }
    group.finish();
}

fn bench_neural_training(c: &mut Criterion) {
    let series = signal(1500);
    c.bench_function("neural_offline_training_1500_samples", |b| {
        b.iter(|| {
            let cfg = mmog_predict::neural::NeuralConfig {
                max_eras: 10, // bounded: measure per-era cost, not convergence
                ..Default::default()
            };
            let (p, report) = mmog_predict::neural::NeuralPredictor::train(cfg, black_box(&series));
            black_box((p.config().window, report.eras))
        })
    });
}

fn bench_mlp_train_step(c: &mut Criterion) {
    use mmog_predict::mlp::{Mlp, Scratch};
    use mmog_util::rng::Rng64;
    let mut rng = Rng64::seed_from(9);
    let mut net = Mlp::new(&[6, 3, 1], &mut rng);
    let mut scratch = Scratch::default();
    let input = [0.1, -0.2, 0.3, -0.4, 0.5, -0.6];
    let target = [0.25];
    c.bench_function("mlp_train_step_scratch", |b| {
        b.iter(|| {
            black_box(net.train_step_scratch(
                &mut scratch,
                black_box(&input),
                black_box(&target),
                0.05,
                0.3,
            ))
        })
    });
    c.bench_function("mlp_forward_scratch", |b| {
        b.iter(|| black_box(net.forward_scratch(black_box(&input), &mut scratch)[0]))
    });
}

/// The batched tick kernel against the loop it replaces: one
/// `forward_batch` over a 64-row feature matrix versus 64 per-row
/// `forward_scratch` calls. The outputs are bit-identical (pinned by
/// test); the comparison is pure dispatch overhead.
fn bench_forward_batch(c: &mut Criterion) {
    use mmog_predict::mlp::{FeatureMatrix, Mlp, Scratch};
    let mut rng = Rng64::seed_from(9);
    let net = Mlp::new(&[6, 3, 1], &mut rng);
    let mut scratch = Scratch::default();
    let rows = 64usize;
    let mut batch = FeatureMatrix::with_capacity(6, rows);
    for i in 0..rows {
        let row: [f64; 6] = std::array::from_fn(|j| ((i * 7 + j) as f64 * 0.13).sin());
        batch.push_row(&row);
    }
    let mut out = vec![0.0; rows];
    let mut group = c.benchmark_group("mlp_forward_64_rows");
    group.bench_function("batched", |b| {
        b.iter(|| {
            net.forward_batch(&mut scratch, black_box(&batch), &mut out);
            black_box(out[rows - 1])
        })
    });
    group.bench_function("per_row", |b| {
        b.iter(|| {
            let mut last = 0.0;
            for i in 0..rows {
                last = net.forward_scratch(black_box(batch.row(i)), &mut scratch)[0];
            }
            black_box(last)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_predict,
    bench_observe,
    bench_neural_training,
    bench_mlp_train_step,
    bench_forward_batch
);
criterion_main!(benches);
