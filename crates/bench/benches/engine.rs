//! End-to-end engine benchmarks: a full (small) provisioning simulation
//! and the per-tick group fan-out, serial vs parallel, at 10/50/200
//! server groups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mmog_predict::eval::PredictorKind;
use mmog_sim::engine::{AllocationMode, Simulation};
use mmog_sim::scenario::{prediction_impact, ScenarioOpts};
use std::hint::black_box;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_one_day");
    group.sample_size(10);
    for (label, cap) in [("10_groups", 2), ("40_groups", 8)] {
        let opts = ScenarioOpts {
            days: 1,
            seed: 5,
            group_cap: Some(cap),
        };
        group.throughput(Throughput::Elements(720));
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter_batched(
                || {
                    let mut cfg =
                        prediction_impact(PredictorKind::LastValue, AllocationMode::Dynamic, &opts);
                    cfg.train_ticks = 0;
                    cfg
                },
                |cfg| black_box(Simulation::new(cfg).run().ticks),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// The tentpole comparison: one simulated day with the per-tick
/// predict→demand→request stage run serially (`jobs = 1`) versus fanned
/// out across all logical CPUs, at 10, 50, and 200 server groups
/// (5 regions x group cap 2/10/40). On a single-core host the two
/// paths should be within noise of each other; the parallel path's
/// advantage appears with the core count.
fn bench_group_fanout(c: &mut Criterion) {
    let baseline_jobs = mmog_par::jobs();
    let all = mmog_par::available_jobs();
    let mut group = c.benchmark_group("tick_fanout_one_day");
    group.sample_size(10);
    for (groups, cap) in [(10u32, 2u32), (50, 10), (200, 40)] {
        let opts = ScenarioOpts {
            days: 1,
            seed: 5,
            group_cap: Some(cap),
        };
        for (label, jobs) in [("serial", 1usize), ("parallel", all)] {
            group.throughput(Throughput::Elements(720));
            group.bench_function(BenchmarkId::new(format!("{groups}_groups"), label), |b| {
                b.iter_batched(
                    || {
                        let mut cfg = prediction_impact(
                            PredictorKind::LastValue,
                            AllocationMode::Dynamic,
                            &opts,
                        );
                        cfg.train_ticks = 0;
                        cfg
                    },
                    |cfg| {
                        mmog_par::set_jobs(jobs);
                        black_box(Simulation::new(cfg).run().ticks)
                    },
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
    mmog_par::set_jobs(baseline_jobs);
}

criterion_group!(benches, bench_simulation, bench_group_fanout);
criterion_main!(benches);
