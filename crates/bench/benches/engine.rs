//! End-to-end engine benchmarks: a full (small) provisioning simulation
//! and a single provisioner adjustment step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mmog_predict::eval::PredictorKind;
use mmog_sim::engine::{AllocationMode, Simulation};
use mmog_sim::scenario::{prediction_impact, ScenarioOpts};
use std::hint::black_box;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_one_day");
    group.sample_size(10);
    for (label, cap) in [("10_groups", 2), ("40_groups", 8)] {
        let opts = ScenarioOpts {
            days: 1,
            seed: 5,
            group_cap: Some(cap),
        };
        group.throughput(Throughput::Elements(720));
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter_batched(
                || {
                    let mut cfg =
                        prediction_impact(PredictorKind::LastValue, AllocationMode::Dynamic, &opts);
                    cfg.train_ticks = 0;
                    cfg
                },
                |cfg| black_box(Simulation::new(cfg).run().ticks),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
