//! AoS vs SoA layout of the per-group hot state, measured on the
//! engine's per-tick access pattern at 10/100/1000 groups.
//!
//! The engine used to carry each group's hot scalars (players, demand,
//! allocation, shortfall, error accumulators) inline in the same record
//! as its cold state (predictor, demand model, game binding — hundreds
//! of bytes that the tick loop never reads). The refactor moved the hot
//! scalars into one contiguous `Vec` of ~80-byte records. This bench
//! reconstructs both layouts side by side and runs the same
//! predict→accumulate→reduce tick kernel over each, so the cache effect
//! of the layout is measured in isolation from the rest of the engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// The hot scalars the tick loop actually touches (mirrors the engine's
/// `GroupHot`).
#[derive(Clone, Copy, Default)]
struct Hot {
    players: f64,
    demand: f64,
    alloc: f64,
    short: f64,
    target: f64,
    abs_err_sum: f64,
    actual_sum: f64,
}

/// Cold per-group payload the tick loop never reads (mirrors the
/// predictor + demand model + game binding that used to sit inline).
#[derive(Clone)]
struct Cold {
    _weights: [f64; 64],
    _history: Vec<f64>,
    _name: String,
}

impl Cold {
    fn new(i: usize) -> Self {
        Self {
            _weights: [0.5; 64],
            _history: vec![0.0; 24],
            _name: format!("group-{i}"),
        }
    }
}

/// Array-of-structs: hot and cold interleaved, the pre-refactor layout.
struct AosGroup {
    hot: Hot,
    _cold: Cold,
}

fn tick_kernel(hot: &mut Hot, t: usize) -> f64 {
    // Same arithmetic shape as the engine's predict→score step: read
    // the players signal, derive demand/allocation/shortfall, fold the
    // error accumulators, and contribute to the tick reduction.
    hot.players = (t as f64).mul_add(0.25, hot.players * 0.5);
    hot.demand = hot.players * 1.05;
    hot.alloc = hot.demand.min(2000.0);
    hot.short = hot.demand - hot.alloc;
    hot.target = hot.alloc;
    hot.abs_err_sum += hot.short.abs();
    hot.actual_sum += hot.players;
    hot.alloc - hot.short
}

fn bench_soa_tick(c: &mut Criterion) {
    const TICKS: usize = 720;
    let mut group = c.benchmark_group("tick_layout_one_day");
    group.sample_size(10);
    for n in [10usize, 100, 1000] {
        group.throughput(Throughput::Elements((TICKS * n) as u64));
        group.bench_function(BenchmarkId::new("aos", n), |b| {
            b.iter_batched(
                || {
                    (0..n)
                        .map(|i| AosGroup {
                            hot: Hot::default(),
                            _cold: Cold::new(i),
                        })
                        .collect::<Vec<_>>()
                },
                |mut groups| {
                    let mut acc = 0.0;
                    for t in 0..TICKS {
                        for g in &mut groups {
                            acc += tick_kernel(&mut g.hot, t);
                        }
                    }
                    black_box(acc)
                },
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_function(BenchmarkId::new("soa", n), |b| {
            b.iter_batched(
                || {
                    let hot = vec![Hot::default(); n];
                    let cold = (0..n).map(Cold::new).collect::<Vec<_>>();
                    (hot, cold)
                },
                |(mut hot, cold)| {
                    let mut acc = 0.0;
                    for t in 0..TICKS {
                        for h in &mut hot {
                            acc += tick_kernel(h, t);
                        }
                    }
                    black_box(cold.len());
                    black_box(acc)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_soa_tick);
criterion_main!(benches);
