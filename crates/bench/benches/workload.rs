//! Workload-substrate benchmarks: trace synthesis throughput and the
//! Figure 3 analyses (envelope, IQR, autocorrelation) that post-process
//! every generated region.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mmog_util::stats;
use mmog_workload::analysis;
use mmog_workload::runescape::{generate, RuneScapeConfig};
use std::hint::black_box;

fn bench_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generate");
    group.sample_size(10);
    for days in [1u64, 7] {
        let mut cfg = RuneScapeConfig::paper_default(days, 9);
        cfg.regions.truncate(1);
        cfg.regions[0].groups = 40;
        group.throughput(Throughput::Elements(days * 720 * 40));
        group.bench_function(BenchmarkId::new("region0_40groups_days", days), |b| {
            b.iter(|| black_box(generate(&cfg).total_groups()))
        });
    }
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let mut cfg = RuneScapeConfig::paper_default(3, 13);
    cfg.regions.truncate(1);
    cfg.regions[0].groups = 40;
    let trace = generate(&cfg);
    let region = &trace.regions[0];
    let mut group = c.benchmark_group("figure3_analysis");
    group.sample_size(10);
    group.bench_function("load_envelope", |b| {
        b.iter(|| black_box(analysis::load_envelope(black_box(region)).median.len()))
    });
    group.bench_function("iqr_series", |b| {
        b.iter(|| black_box(analysis::iqr_series(black_box(region)).len()))
    });
    let series = region.groups[0].series.values();
    group.bench_function("acf_one_group_lag780", |b| {
        b.iter(|| black_box(stats::autocorrelation(black_box(series), 780).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_generate, bench_analysis);
criterion_main!(benches);
