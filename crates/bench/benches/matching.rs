//! Matching micro-benchmarks: the cost of one request–offer match over
//! the Table III platform, and the bulk-rounding primitives — the code
//! every provisioning tick exercises for every server group.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmog_datacenter::locations::table3_hp12;
use mmog_datacenter::matching::{match_request, match_request_indexed, CandidateIndex};
use mmog_datacenter::policy::HostingPolicy;
use mmog_datacenter::request::{OperatorId, ResourceRequest};
use mmog_datacenter::resource::ResourceVector;
use mmog_util::geo::{DistanceClass, GeoPoint};
use mmog_util::time::SimTime;
use std::hint::black_box;

fn bench_match(c: &mut Criterion) {
    let mut group = c.benchmark_group("match_request");
    for tolerance in [DistanceClass::VeryClose, DistanceClass::VeryFar] {
        group.bench_function(BenchmarkId::from_parameter(tolerance.label()), |b| {
            // Fresh platform per iteration batch: grants mutate state.
            b.iter_batched(
                table3_hp12,
                |mut centers| {
                    let req = ResourceRequest::new(
                        OperatorId(1),
                        ResourceVector::new(1.0, 1.0, 1.0, 1.0),
                        GeoPoint::new(52.37, 4.90),
                        tolerance,
                    );
                    black_box(match_request(&mut centers, &req, SimTime::ZERO))
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_match_indexed(c: &mut Criterion) {
    let mut group = c.benchmark_group("match_request_indexed");
    for tolerance in [DistanceClass::VeryClose, DistanceClass::VeryFar] {
        group.bench_function(BenchmarkId::from_parameter(tolerance.label()), |b| {
            let origin = GeoPoint::new(52.37, 4.90);
            // One long-lived index, as the provisioner holds: the
            // ranking phase amortises away, only the fill loop remains.
            let mut index = CandidateIndex::new(origin, tolerance);
            b.iter_batched(
                table3_hp12,
                |mut centers| {
                    let req = ResourceRequest::new(
                        OperatorId(1),
                        ResourceVector::new(1.0, 1.0, 1.0, 1.0),
                        origin,
                        tolerance,
                    );
                    black_box(match_request_indexed(
                        &mut index,
                        &mut centers,
                        &req,
                        SimTime::ZERO,
                    ))
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_rounding(c: &mut Criterion) {
    let hp1 = HostingPolicy::hp(1);
    let req = ResourceVector::new(0.37, 1.21, 2.3, 0.61);
    c.bench_function("policy_round_request", |b| {
        b.iter(|| black_box(hp1.round_request(black_box(&req))))
    });
}

/// The incremental-skip payoff: a steady-state no-op settle with the
/// match memo armed (replay) versus the same tick forced down the full
/// candidate walk. Both paths leave the world untouched, so one
/// long-lived provisioner per variant is enough.
fn bench_memo_adjust(c: &mut Criterion) {
    use mmog_predict::simple::LastValue;
    use mmog_sim::demand::DemandModel;
    use mmog_sim::provision::GroupProvisioner;
    use mmog_world::update::UpdateModel;

    let setup = |memo: bool| {
        let mut centers = table3_hp12();
        let mut p = GroupProvisioner::new(
            OperatorId(1),
            GeoPoint::new(52.37, 4.90),
            DistanceClass::VeryFar,
            DemandModel::paper(UpdateModel::Quadratic),
            1.0,
            Box::new(LastValue::new()),
        );
        p.memo_enabled = memo;
        // Warm into the steady state: demand flat at 1500 players, the
        // first tick grants, the rest are no-ops.
        for t in 0..4u64 {
            let target = p.observe_and_target(1500.0);
            p.adjust(&target, &mut centers, SimTime(t));
        }
        let target = p.observe_and_target(1500.0);
        (p, centers, target)
    };

    let mut group = c.benchmark_group("steady_state_adjust");
    let (mut p, mut centers, target) = setup(true);
    group.bench_function("memo_hit", |b| {
        b.iter(|| black_box(p.adjust(black_box(&target), &mut centers, SimTime(4))))
    });
    assert!(
        p.adjust(&target, &mut centers, SimTime(4)).replayed,
        "memo bench must measure the replay path"
    );
    let (mut p, mut centers, target) = setup(false);
    group.bench_function("full_walk", |b| {
        b.iter(|| black_box(p.adjust(black_box(&target), &mut centers, SimTime(4))))
    });
    assert!(!p.adjust(&target, &mut centers, SimTime(4)).replayed);
    group.finish();
}

criterion_group!(
    benches,
    bench_match,
    bench_match_indexed,
    bench_rounding,
    bench_memo_adjust
);
criterion_main!(benches);
