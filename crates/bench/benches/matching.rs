//! Matching micro-benchmarks: the cost of one request–offer match over
//! the Table III platform, and the bulk-rounding primitives — the code
//! every provisioning tick exercises for every server group.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmog_datacenter::locations::table3_hp12;
use mmog_datacenter::matching::{match_request, match_request_indexed, CandidateIndex};
use mmog_datacenter::policy::HostingPolicy;
use mmog_datacenter::request::{OperatorId, ResourceRequest};
use mmog_datacenter::resource::ResourceVector;
use mmog_util::geo::{DistanceClass, GeoPoint};
use mmog_util::time::SimTime;
use std::hint::black_box;

fn bench_match(c: &mut Criterion) {
    let mut group = c.benchmark_group("match_request");
    for tolerance in [DistanceClass::VeryClose, DistanceClass::VeryFar] {
        group.bench_function(BenchmarkId::from_parameter(tolerance.label()), |b| {
            // Fresh platform per iteration batch: grants mutate state.
            b.iter_batched(
                table3_hp12,
                |mut centers| {
                    let req = ResourceRequest::new(
                        OperatorId(1),
                        ResourceVector::new(1.0, 1.0, 1.0, 1.0),
                        GeoPoint::new(52.37, 4.90),
                        tolerance,
                    );
                    black_box(match_request(&mut centers, &req, SimTime::ZERO))
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_match_indexed(c: &mut Criterion) {
    let mut group = c.benchmark_group("match_request_indexed");
    for tolerance in [DistanceClass::VeryClose, DistanceClass::VeryFar] {
        group.bench_function(BenchmarkId::from_parameter(tolerance.label()), |b| {
            let origin = GeoPoint::new(52.37, 4.90);
            // One long-lived index, as the provisioner holds: the
            // ranking phase amortises away, only the fill loop remains.
            let mut index = CandidateIndex::new(origin, tolerance);
            b.iter_batched(
                table3_hp12,
                |mut centers| {
                    let req = ResourceRequest::new(
                        OperatorId(1),
                        ResourceVector::new(1.0, 1.0, 1.0, 1.0),
                        origin,
                        tolerance,
                    );
                    black_box(match_request_indexed(
                        &mut index,
                        &mut centers,
                        &req,
                        SimTime::ZERO,
                    ))
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_rounding(c: &mut Criterion) {
    let hp1 = HostingPolicy::hp(1);
    let req = ResourceVector::new(0.37, 1.21, 2.3, 0.61);
    c.bench_function("policy_round_request", |b| {
        b.iter(|| black_box(hp1.round_request(black_box(&req))))
    });
}

criterion_group!(benches, bench_match, bench_match_indexed, bench_rounding);
criterion_main!(benches);
