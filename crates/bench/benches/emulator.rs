//! Emulator micro-benchmarks: the per-tick stepping cost at several
//! population sizes, and the two interaction counters (exact
//! grid-accelerated vs the sub-zone approximation) — the ablation
//! behind the Sec. IV-B claim that sub-zone counts are the practical
//! signal.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mmog_util::rng::Rng64;
use mmog_world::config::{EmulatorConfig, TraceSet};
use mmog_world::emulator::GameEmulator;
use mmog_world::entity::Position;
use mmog_world::interaction::{count_pairs_exact, count_pairs_subzone};
use mmog_world::zone::ZoneGrid;
use std::hint::black_box;

fn bench_emulator_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("emulator_step");
    for entities in [250usize, 1000, 2000, 4000] {
        let cfg = EmulatorConfig {
            peak_entities: entities,
            ..TraceSet::Set5.config()
        };
        let mut emu = GameEmulator::new(cfg, 1);
        // Warm up to steady-state population.
        for _ in 0..20 {
            emu.step();
        }
        group.throughput(Throughput::Elements(entities as u64));
        group.bench_function(BenchmarkId::from_parameter(entities), |b| {
            b.iter(|| black_box(emu.step().total))
        });
    }
    group.finish();
}

fn bench_interaction_counters(c: &mut Criterion) {
    let grid = ZoneGrid::new(1000.0, 16);
    let mut rng = Rng64::seed_from(3);
    let mut group = c.benchmark_group("interaction_pairs");
    for n in [500usize, 2000] {
        let positions: Vec<Position> = (0..n)
            .map(|_| Position::new(rng.range_f64(0.0, 1000.0), rng.range_f64(0.0, 1000.0)))
            .collect();
        let counts = grid.count_map(&positions);
        group.bench_function(BenchmarkId::new("exact_radius30", n), |b| {
            b.iter(|| black_box(count_pairs_exact(&grid, &positions, 30.0)))
        });
        group.bench_function(BenchmarkId::new("subzone_approx", n), |b| {
            b.iter(|| black_box(count_pairs_subzone(&counts)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_emulator_step, bench_interaction_counters);
criterion_main!(benches);
