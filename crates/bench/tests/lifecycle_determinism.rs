//! The causal lease-lifecycle contract at experiment scale: every
//! lease the engine grants is reconstructible from the trace alone —
//! request → grant → (maturity) → exactly one terminal — with no
//! orphans, at `--jobs 1` and `--jobs 4` with byte-identical semantic
//! output. The time-series export rides the same contract: its
//! deterministic downsampling makes `TS_<run>.json` documents
//! byte-identical across job counts.
//!
//! One test function: the jobs setting, the metric registry, the trace
//! destination and the time-series collector are all process-global,
//! so separate `#[test]`s would race under the parallel test harness.
//!
//! The mini-suite is chosen to exercise every terminal cause family:
//! fig08 drives plain dynamic provisioning (surplus/reshape/run_end
//! releases), fig_faults adds fault-plane revocations and center-down
//! drops, fig_scenarios adds migration and failover releases.

use mmog_bench::experiments as exp;
use mmog_bench::RunOpts;
use mmog_obs_analyze::{analyze_lifecycle, check_lifecycle, render_lifecycle, trace_diff};
use std::fs;
use std::path::{Path, PathBuf};

fn tiny() -> RunOpts {
    RunOpts {
        days: 1,
        cap: Some(2),
        seed: 77,
        ..RunOpts::default()
    }
}

fn mini_suite(opts: &RunOpts) -> Vec<String> {
    vec![
        exp::fig08_static_vs_dynamic(opts),
        exp::fig_faults(opts),
        exp::fig_scenarios(opts),
    ]
}

/// Runs the mini-suite with tracing into `trace_path` and time-series
/// export into `ts_dir`, returning `(trace bytes, sorted ts docs)`.
fn traced_pass(opts: &RunOpts, trace_path: &PathBuf, ts_dir: &Path) -> (String, Vec<String>) {
    mmog_obs::reset();
    mmog_obs::set_trace_path(Some(trace_path));
    fs::create_dir_all(ts_dir).expect("ts dir");
    mmog_obs::set_ts_dir(Some(ts_dir));
    let _reports = mini_suite(opts);
    mmog_obs::flush_trace().expect("trace flush succeeds");
    let ts_paths = mmog_obs::flush_ts().expect("ts flush succeeds");
    mmog_obs::set_trace_path(None);
    mmog_obs::set_ts_dir(None);
    let trace = fs::read_to_string(trace_path).expect("trace file exists");
    // flush_ts writes in label order, so the document sequence is
    // directly comparable across passes.
    let docs = ts_paths
        .iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let body = fs::read_to_string(p).expect("ts file exists");
            format!("{name}\n{body}")
        })
        .collect();
    (trace, docs)
}

#[test]
fn lease_lifecycles_reconstruct_fully_across_jobs() {
    let baseline_jobs = mmog_par::jobs();
    let opts = tiny();

    // Warm the process-wide workload/emulator caches so cache-build
    // effects don't differ between the compared passes.
    mmog_par::set_jobs(1);
    let _ = mini_suite(&opts);

    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let p1 = dir.join(format!("mmog_lease_det_j1_{pid}.jsonl"));
    let p4 = dir.join(format!("mmog_lease_det_j4_{pid}.jsonl"));
    let d1 = dir.join(format!("mmog_lease_ts_j1_{pid}"));
    let d4 = dir.join(format!("mmog_lease_ts_j4_{pid}"));

    let (trace_serial, ts_serial) = traced_pass(&opts, &p1, &d1);
    mmog_par::set_jobs(4);
    let (trace_parallel, ts_parallel) = traced_pass(&opts, &p4, &d4);
    mmog_par::set_jobs(baseline_jobs);
    let _ = fs::remove_file(&p1);
    let _ = fs::remove_file(&p4);
    let _ = fs::remove_dir_all(&d1);
    let _ = fs::remove_dir_all(&d4);

    // The event logs (lifecycle events included) are byte-identical.
    if let Some(d) = trace_diff(&trace_serial, &trace_parallel) {
        panic!(
            "JSONL event log must be byte-identical between --jobs 1 and --jobs 4: {}",
            d.message()
        );
    }

    // Every lease reconstructs: the causality invariants hold (every
    // grant has a request, no orphan terminals, no reused keys) and
    // 100% of granted leases reach exactly one terminal.
    let report = analyze_lifecycle(&trace_serial).expect("trace parses");
    check_lifecycle(&report).expect("causality invariants hold on the real suite");
    assert!(
        report.total_leases() > 0,
        "mini-suite must grant leases to make the check meaningful"
    );
    assert_eq!(
        report.total_closed(),
        report.total_leases(),
        "every granted lease must reach a terminal event"
    );
    for scope in &report.scopes {
        assert_eq!(
            scope.closed(),
            scope.leases.len(),
            "scope {} reconstructs 100% of its leases",
            scope.scope
        );
    }

    // The fault and scenario planes actually contributed terminal
    // causes beyond plain provisioning (the engine's own releases are
    // covered by every scope's run_end closure).
    let all_causes: Vec<String> = report
        .scopes
        .iter()
        .flat_map(|s| s.causes().into_keys())
        .collect();
    assert!(
        all_causes.iter().any(|c| c == "run_end"),
        "run-end closure must close surviving leases: {all_causes:?}"
    );
    assert!(
        all_causes.iter().any(|c| c == "revoked"),
        "fault suite must contribute revocations: {all_causes:?}"
    );

    // The rendered lifecycle report is pure semantic output, so it is
    // byte-identical across job counts (same input trace, same fold).
    let report_parallel = analyze_lifecycle(&trace_parallel).expect("trace parses");
    assert_eq!(
        render_lifecycle(&report),
        render_lifecycle(&report_parallel),
        "lifecycle report must be byte-identical across --jobs"
    );

    // Time-series exports: every document validates against the
    // `mmog-obs-ts/v1` schema, and the `semantic` sections (demand,
    // allocation, shortfall — sampled from serial sections and
    // downsampled by a pure function of the sample sequence) are
    // byte-identical across job counts. The `timing` sections (stage
    // latencies, and the memo skip rate, whose replay eligibility keys
    // on the process-wide availability epoch and so moves with --jobs)
    // are excluded, per the determinism contract.
    assert!(
        !ts_serial.is_empty(),
        "mini-suite must export at least one TS document"
    );
    let semantic_of = |doc: &String| {
        let (name, body) = doc.split_once('\n').expect("name header");
        let value = mmog_obs::json::parse(body).expect("ts doc parses");
        mmog_obs::validate_ts(&value).expect("ts doc validates");
        format!(
            "{name}\n{}",
            value
                .get("semantic")
                .expect("semantic section")
                .render_pretty()
        )
    };
    let sem_serial: Vec<String> = ts_serial.iter().map(semantic_of).collect();
    let sem_parallel: Vec<String> = ts_parallel.iter().map(semantic_of).collect();
    assert_eq!(
        sem_serial, sem_parallel,
        "TS semantic sections must be byte-identical across --jobs"
    );
}
