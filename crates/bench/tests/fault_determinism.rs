//! The fault plane's determinism contract: a faulted run's event trace
//! and simulation report are byte-identical between `--jobs 1` and
//! `--jobs 4`, and across repeated same-seed runs — fault events are
//! applied and emitted only from the engine's serial sections, so the
//! fan-out width can never reorder or drop them.
//!
//! The jobs setting and the trace destination are process-global, so
//! the fault and scenario suites serialize on one shared mutex instead
//! of racing under the parallel test harness.
//!
//! Mismatches route through `mmog-obs-analyze`'s first-divergence
//! helpers, so a failure names the first diverging event or line.

use mmog_faults::{FaultSpec, ScenarioEvent, ScenarioEventKind, ScenarioSpec, ScenarioTimeline};
use mmog_obs_analyze::{first_text_divergence, trace_diff};
use mmog_sim::engine::{AllocationMode, Simulation};
use mmog_sim::scenario::{self, ScenarioOpts};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Guards the process-global jobs / trace-path / obs state shared by
/// every test in this file.
static PROCESS_GLOBALS: Mutex<()> = Mutex::new(());

fn tiny() -> ScenarioOpts {
    ScenarioOpts {
        days: 1,
        seed: 77,
        group_cap: Some(2),
    }
}

/// Runs one faulted simulation (paper-default spec, dynamic
/// allocation) with tracing into `path` and returns `(report debug
/// fingerprint, trace bytes)`.
fn faulted_pass(path: &PathBuf) -> (String, String) {
    mmog_obs::reset();
    mmog_obs::set_trace_path(Some(path));
    let cfg = scenario::fault_injection(
        &FaultSpec::paper_default(),
        AllocationMode::Dynamic,
        &tiny(),
    );
    let report = Simulation::new(cfg).run();
    mmog_obs::flush_trace().expect("flush succeeds");
    mmog_obs::set_trace_path(None);
    let trace = fs::read_to_string(path).expect("trace file exists");
    (format!("{report:?}"), trace)
}

#[test]
fn faulted_runs_identical_across_jobs_and_repeats() {
    let _guard = PROCESS_GLOBALS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let baseline_jobs = mmog_par::jobs();
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let p1 = dir.join(format!("mmog_fault_det_j1_{pid}.jsonl"));
    let p4 = dir.join(format!("mmog_fault_det_j4_{pid}.jsonl"));
    let p4b = dir.join(format!("mmog_fault_det_j4b_{pid}.jsonl"));

    mmog_par::set_jobs(1);
    let (report_serial, trace_serial) = faulted_pass(&p1);
    mmog_par::set_jobs(4);
    let (report_parallel, trace_parallel) = faulted_pass(&p4);
    let (report_again, trace_again) = faulted_pass(&p4b);
    mmog_par::set_jobs(baseline_jobs);
    let _ = fs::remove_file(&p1);
    let _ = fs::remove_file(&p4);
    let _ = fs::remove_file(&p4b);

    if let Some(d) = first_text_divergence(&report_serial, &report_parallel) {
        panic!(
            "faulted SimReport must be bit-identical between --jobs 1 and --jobs 4: {}",
            d.message()
        );
    }
    if let Some(d) = trace_diff(&trace_serial, &trace_parallel) {
        panic!(
            "faulted event trace must be byte-identical between --jobs 1 and --jobs 4: {}",
            d.message()
        );
    }
    assert_eq!(report_parallel, report_again, "same-seed runs must agree");
    if let Some(d) = trace_diff(&trace_parallel, &trace_again) {
        panic!("same-seed traces must agree: {}", d.message());
    }

    // The trace actually exercises the fault plane: every lifecycle
    // event kind the acceptance criteria name is present, lines parse,
    // and sequence numbers are contiguous.
    assert!(!trace_serial.is_empty(), "trace must contain events");
    let mut kinds: Vec<String> = Vec::new();
    for (i, line) in trace_serial.lines().enumerate() {
        let (seq, _scope, kind, value) = mmog_obs::parse_trace_line(line).expect("line parses");
        assert_eq!(seq, i as u64, "sequence numbers are contiguous");
        mmog_obs::validate_event_fields(&kind, &value)
            .unwrap_or_else(|e| panic!("line {}: {e}", i + 1));
        if !kinds.contains(&kind) {
            kinds.push(kind);
        }
    }
    for required in ["center_down", "center_up", "lease_revoked", "reprovision"] {
        assert!(
            kinds.iter().any(|k| k == required),
            "trace must contain a `{required}` event; saw kinds {kinds:?}"
        );
    }
}

/// A composed scenario spec that fires every topology-mutation
/// primitive inside a 1-day run: partitions that heal, zone
/// migrations, a flash crowd, link degradations and a region failover.
fn busy_scenario_spec() -> ScenarioSpec {
    ScenarioSpec::parse(
        "partition=3,pmins=120,migrate=8,mcost=2,flash=3,fpeak=2.5,fmins=180,\
         failover=2,link=3,lfactor=4,lmins=90,seed=9",
    )
    .expect("valid spec")
}

/// Runs one scenario simulation (dynamic allocation) with tracing into
/// `path` and returns `(report debug fingerprint, trace bytes)`.
fn scenario_pass(path: &PathBuf) -> (String, String) {
    mmog_obs::reset();
    mmog_obs::set_trace_path(Some(path));
    let cfg = scenario::scenario_injection(&busy_scenario_spec(), AllocationMode::Dynamic, &tiny());
    assert!(cfg.scenario.is_some(), "busy spec must produce a timeline");
    let report = Simulation::new(cfg).run();
    mmog_obs::flush_trace().expect("flush succeeds");
    mmog_obs::set_trace_path(None);
    let trace = fs::read_to_string(path).expect("trace file exists");
    (format!("{report:?}"), trace)
}

/// Compares `actual` to the committed fixture in `tests/golden/`; set
/// `MMOG_UPDATE_GOLDEN=1` to regenerate after a deliberate
/// output-changing commit.
fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("MMOG_UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        fs::write(&path, actual).expect("write golden fixture");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {}: {e}; run once with MMOG_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    if let Some(d) = first_text_divergence(&expected, actual) {
        panic!(
            "{name} must stay byte-identical to the committed fixture: {}",
            d.message()
        );
    }
}

#[test]
fn scenario_determinism() {
    let _guard = PROCESS_GLOBALS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let baseline_jobs = mmog_par::jobs();
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let p1 = dir.join(format!("mmog_scenario_det_j1_{pid}.jsonl"));
    let p4 = dir.join(format!("mmog_scenario_det_j4_{pid}.jsonl"));
    let p4b = dir.join(format!("mmog_scenario_det_j4b_{pid}.jsonl"));

    mmog_par::set_jobs(1);
    let (report_serial, trace_serial) = scenario_pass(&p1);
    mmog_par::set_jobs(4);
    let (report_parallel, trace_parallel) = scenario_pass(&p4);
    let (report_again, trace_again) = scenario_pass(&p4b);
    mmog_par::set_jobs(baseline_jobs);
    let _ = fs::remove_file(&p1);
    let _ = fs::remove_file(&p4);
    let _ = fs::remove_file(&p4b);

    if let Some(d) = first_text_divergence(&report_serial, &report_parallel) {
        panic!(
            "scenario SimReport must be bit-identical between --jobs 1 and --jobs 4: {}",
            d.message()
        );
    }
    if let Some(d) = trace_diff(&trace_serial, &trace_parallel) {
        panic!(
            "scenario event trace must be byte-identical between --jobs 1 and --jobs 4: {}",
            d.message()
        );
    }
    assert_eq!(report_parallel, report_again, "same-seed runs must agree");
    if let Some(d) = trace_diff(&trace_parallel, &trace_again) {
        panic!("same-seed traces must agree: {}", d.message());
    }

    // The run exercised the whole scenario plane: migrations charged a
    // player-visible cost, episodes recovered, and every new event kind
    // landed in the trace with a valid field set.
    assert!(
        report_serial.contains("migration_player_ticks: 0.0") == false
            && report_serial.contains("migrations: 0,") == false,
        "busy scenario must migrate and charge cost: {report_serial}"
    );
    assert!(
        report_serial.contains("recovery_ticks: []") == false,
        "scenario episodes must open and recover: {report_serial}"
    );
    let mut kinds: Vec<String> = Vec::new();
    for (i, line) in trace_serial.lines().enumerate() {
        let (seq, _scope, kind, value) = mmog_obs::parse_trace_line(line).expect("line parses");
        assert_eq!(seq, i as u64, "sequence numbers are contiguous");
        mmog_obs::validate_event_fields(&kind, &value)
            .unwrap_or_else(|e| panic!("line {}: {e}", i + 1));
        if !kinds.contains(&kind) {
            kinds.push(kind);
        }
    }
    for required in [
        "partition",
        "heal",
        "migration",
        "flash_crowd",
        "topology_change",
    ] {
        assert!(
            kinds.iter().any(|k| k == required),
            "trace must contain a `{required}` event; saw kinds {kinds:?}"
        );
    }

    // Golden fixture: an explicit partition + heal + migration timeline
    // pins the scenario plane's report to committed bytes.
    let mut cfg = scenario::prediction_impact(
        mmog_predict::eval::PredictorKind::LastValue,
        AllocationMode::Dynamic,
        &tiny(),
    );
    cfg.train_ticks = 0;
    cfg.scenario = Some(
        ScenarioTimeline::from_events(
            "golden partition+heal+migrate",
            vec![
                ScenarioEvent {
                    tick: 100,
                    kind: ScenarioEventKind::Partition { mask: 0b0011 },
                },
                ScenarioEvent {
                    tick: 160,
                    kind: ScenarioEventKind::Heal,
                },
                ScenarioEvent {
                    tick: 200,
                    kind: ScenarioEventKind::Migrate { pick: 1 },
                },
            ],
        )
        .with_migration_cost(2),
    );
    let golden_report = Simulation::new(cfg).run();
    check_golden(
        "scenario_partition_migrate_tiny.txt",
        &format!("{golden_report:?}\n"),
    );
}
