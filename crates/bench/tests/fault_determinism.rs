//! The fault plane's determinism contract: a faulted run's event trace
//! and simulation report are byte-identical between `--jobs 1` and
//! `--jobs 4`, and across repeated same-seed runs — fault events are
//! applied and emitted only from the engine's serial sections, so the
//! fan-out width can never reorder or drop them.
//!
//! One test function: the jobs setting and the trace destination are
//! process-global, so separate `#[test]`s would race under the
//! parallel test harness.

use mmog_faults::FaultSpec;
use mmog_sim::engine::{AllocationMode, Simulation};
use mmog_sim::scenario::{self, ScenarioOpts};
use std::fs;
use std::path::PathBuf;

fn tiny() -> ScenarioOpts {
    ScenarioOpts {
        days: 1,
        seed: 77,
        group_cap: Some(2),
    }
}

/// Runs one faulted simulation (paper-default spec, dynamic
/// allocation) with tracing into `path` and returns `(report debug
/// fingerprint, trace bytes)`.
fn faulted_pass(path: &PathBuf) -> (String, String) {
    mmog_obs::reset();
    mmog_obs::set_trace_path(Some(path));
    let cfg = scenario::fault_injection(
        &FaultSpec::paper_default(),
        AllocationMode::Dynamic,
        &tiny(),
    );
    let report = Simulation::new(cfg).run();
    mmog_obs::flush_trace().expect("flush succeeds");
    mmog_obs::set_trace_path(None);
    let trace = fs::read_to_string(path).expect("trace file exists");
    (format!("{report:?}"), trace)
}

#[test]
fn faulted_runs_identical_across_jobs_and_repeats() {
    let baseline_jobs = mmog_par::jobs();
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let p1 = dir.join(format!("mmog_fault_det_j1_{pid}.jsonl"));
    let p4 = dir.join(format!("mmog_fault_det_j4_{pid}.jsonl"));
    let p4b = dir.join(format!("mmog_fault_det_j4b_{pid}.jsonl"));

    mmog_par::set_jobs(1);
    let (report_serial, trace_serial) = faulted_pass(&p1);
    mmog_par::set_jobs(4);
    let (report_parallel, trace_parallel) = faulted_pass(&p4);
    let (report_again, trace_again) = faulted_pass(&p4b);
    mmog_par::set_jobs(baseline_jobs);
    let _ = fs::remove_file(&p1);
    let _ = fs::remove_file(&p4);
    let _ = fs::remove_file(&p4b);

    assert_eq!(
        report_serial, report_parallel,
        "faulted SimReport must be bit-identical between --jobs 1 and --jobs 4"
    );
    assert_eq!(
        trace_serial, trace_parallel,
        "faulted event trace must be byte-identical between --jobs 1 and --jobs 4"
    );
    assert_eq!(report_parallel, report_again, "same-seed runs must agree");
    assert_eq!(trace_parallel, trace_again, "same-seed traces must agree");

    // The trace actually exercises the fault plane: every lifecycle
    // event kind the acceptance criteria name is present, lines parse,
    // and sequence numbers are contiguous.
    assert!(!trace_serial.is_empty(), "trace must contain events");
    let mut kinds: Vec<String> = Vec::new();
    for (i, line) in trace_serial.lines().enumerate() {
        let (seq, _scope, kind, _v) = mmog_obs::parse_trace_line(line).expect("line parses");
        assert_eq!(seq, i as u64, "sequence numbers are contiguous");
        if !kinds.contains(&kind) {
            kinds.push(kind);
        }
    }
    for required in ["center_down", "center_up", "lease_revoked", "reprovision"] {
        assert!(
            kinds.iter().any(|k| k == required),
            "trace must contain a `{required}` event; saw kinds {kinds:?}"
        );
    }
}
