//! The fault plane's determinism contract: a faulted run's event trace
//! and simulation report are byte-identical between `--jobs 1` and
//! `--jobs 4`, and across repeated same-seed runs — fault events are
//! applied and emitted only from the engine's serial sections, so the
//! fan-out width can never reorder or drop them.
//!
//! One test function: the jobs setting and the trace destination are
//! process-global, so separate `#[test]`s would race under the
//! parallel test harness.
//!
//! Mismatches route through `mmog-obs-analyze`'s first-divergence
//! helpers, so a failure names the first diverging event or line.

use mmog_faults::FaultSpec;
use mmog_obs_analyze::{first_text_divergence, trace_diff};
use mmog_sim::engine::{AllocationMode, Simulation};
use mmog_sim::scenario::{self, ScenarioOpts};
use std::fs;
use std::path::PathBuf;

fn tiny() -> ScenarioOpts {
    ScenarioOpts {
        days: 1,
        seed: 77,
        group_cap: Some(2),
    }
}

/// Runs one faulted simulation (paper-default spec, dynamic
/// allocation) with tracing into `path` and returns `(report debug
/// fingerprint, trace bytes)`.
fn faulted_pass(path: &PathBuf) -> (String, String) {
    mmog_obs::reset();
    mmog_obs::set_trace_path(Some(path));
    let cfg = scenario::fault_injection(
        &FaultSpec::paper_default(),
        AllocationMode::Dynamic,
        &tiny(),
    );
    let report = Simulation::new(cfg).run();
    mmog_obs::flush_trace().expect("flush succeeds");
    mmog_obs::set_trace_path(None);
    let trace = fs::read_to_string(path).expect("trace file exists");
    (format!("{report:?}"), trace)
}

#[test]
fn faulted_runs_identical_across_jobs_and_repeats() {
    let baseline_jobs = mmog_par::jobs();
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let p1 = dir.join(format!("mmog_fault_det_j1_{pid}.jsonl"));
    let p4 = dir.join(format!("mmog_fault_det_j4_{pid}.jsonl"));
    let p4b = dir.join(format!("mmog_fault_det_j4b_{pid}.jsonl"));

    mmog_par::set_jobs(1);
    let (report_serial, trace_serial) = faulted_pass(&p1);
    mmog_par::set_jobs(4);
    let (report_parallel, trace_parallel) = faulted_pass(&p4);
    let (report_again, trace_again) = faulted_pass(&p4b);
    mmog_par::set_jobs(baseline_jobs);
    let _ = fs::remove_file(&p1);
    let _ = fs::remove_file(&p4);
    let _ = fs::remove_file(&p4b);

    if let Some(d) = first_text_divergence(&report_serial, &report_parallel) {
        panic!(
            "faulted SimReport must be bit-identical between --jobs 1 and --jobs 4: {}",
            d.message()
        );
    }
    if let Some(d) = trace_diff(&trace_serial, &trace_parallel) {
        panic!(
            "faulted event trace must be byte-identical between --jobs 1 and --jobs 4: {}",
            d.message()
        );
    }
    assert_eq!(report_parallel, report_again, "same-seed runs must agree");
    if let Some(d) = trace_diff(&trace_parallel, &trace_again) {
        panic!("same-seed traces must agree: {}", d.message());
    }

    // The trace actually exercises the fault plane: every lifecycle
    // event kind the acceptance criteria name is present, lines parse,
    // and sequence numbers are contiguous.
    assert!(!trace_serial.is_empty(), "trace must contain events");
    let mut kinds: Vec<String> = Vec::new();
    for (i, line) in trace_serial.lines().enumerate() {
        let (seq, _scope, kind, value) = mmog_obs::parse_trace_line(line).expect("line parses");
        assert_eq!(seq, i as u64, "sequence numbers are contiguous");
        mmog_obs::validate_event_fields(&kind, &value)
            .unwrap_or_else(|e| panic!("line {}: {e}", i + 1));
        if !kinds.contains(&kind) {
            kinds.push(kind);
        }
    }
    for required in ["center_down", "center_up", "lease_revoked", "reprovision"] {
        assert!(
            kinds.iter().any(|k| k == required),
            "trace must contain a `{required}` event; saw kinds {kinds:?}"
        );
    }
}
