//! Steady-state allocation smoke test for the three hot-path kernels.
//!
//! A counting global allocator measures allocations across a warmed-up
//! loop of each kernel. The MLP training step and the neural
//! observe→predict path must be exactly allocation-free; the emulator
//! tick and the indexed matcher must stay under a small constant bound
//! (their outputs are owned values, so one clone per call is inherent).
//!
//! Everything runs inside ONE `#[test]` so the counter is never
//! polluted by a concurrently running sibling test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations attributable to `f`, measured as the minimum over a few
/// repeats: the libtest harness's main thread occasionally allocates
/// (progress reporting) while the test thread runs, and the minimum
/// filters that unrelated noise out — any unpolluted repeat reveals the
/// kernel's true count.
fn count_allocs(mut f: impl FnMut()) -> u64 {
    (0..4)
        .map(|_| {
            let before = ALLOCS.load(Ordering::Relaxed);
            f();
            ALLOCS.load(Ordering::Relaxed) - before
        })
        .min()
        .expect("at least one repeat")
}

#[test]
fn hot_kernels_stay_allocation_free_in_steady_state() {
    mlp_train_step_is_allocation_free();
    neural_observe_predict_is_allocation_free();
    emulator_step_allocations_are_bounded();
    indexed_match_allocations_are_bounded();
}

fn mlp_train_step_is_allocation_free() {
    use mmog_predict::mlp::{Mlp, Scratch};
    use mmog_util::rng::Rng64;
    let mut rng = Rng64::seed_from(42);
    let mut net = Mlp::new(&[6, 3, 1], &mut rng);
    let mut scratch = Scratch::default();
    let input = [0.1, -0.2, 0.3, -0.4, 0.5, -0.6];
    let target = [0.25];
    // Warm-up: the scratch grows to the network's shape once.
    for _ in 0..4 {
        let _ = net.train_step_scratch(&mut scratch, &input, &target, 0.05, 0.3);
        let _ = net.forward_scratch(&input, &mut scratch);
    }
    let n = count_allocs(|| {
        for _ in 0..512 {
            let _ = net.train_step_scratch(&mut scratch, &input, &target, 0.05, 0.3);
            let _ = net.forward_scratch(&input, &mut scratch);
        }
    });
    assert_eq!(n, 0, "warmed MLP train+forward must not allocate, got {n}");
}

fn neural_observe_predict_is_allocation_free() {
    use mmog_predict::neural::{NeuralConfig, NeuralPredictor};
    use mmog_predict::traits::Predictor;
    let mut p = NeuralPredictor::untrained(NeuralConfig::default(), 1000.0);
    // Fill the window and warm every internal buffer.
    for i in 0..64 {
        p.observe(900.0 + f64::from(i));
        let _ = p.predict();
    }
    let n = count_allocs(|| {
        for i in 0..512u32 {
            p.observe(950.0 + f64::from(i % 100));
            let _ = p.predict();
        }
    });
    assert_eq!(
        n, 0,
        "warmed neural observe→predict must not allocate, got {n}"
    );
}

fn emulator_step_allocations_are_bounded() {
    use mmog_world::config::EmulatorConfig;
    use mmog_world::emulator::GameEmulator;
    let cfg = EmulatorConfig {
        peak_entities: 400,
        ..EmulatorConfig::default()
    };
    let mut emu = GameEmulator::new(cfg, 7);
    for _ in 0..32 {
        let _ = emu.step();
    }
    let steps = 256u64;
    let n = count_allocs(|| {
        for _ in 0..steps {
            let _ = emu.step();
        }
    });
    // The returned snapshot owns its count map (one clone) and the
    // population drifts (entity-vector growth is amortised). Anything
    // near the old per-tick bucket/neighbourhood churn would be
    // hundreds per step.
    let per_step = n as f64 / steps as f64;
    assert!(
        per_step <= 16.0,
        "emulator step allocates too much: {per_step:.1}/step"
    );
}

fn indexed_match_allocations_are_bounded() {
    use mmog_datacenter::locations::table3_hp12;
    use mmog_datacenter::matching::{match_request_indexed, CandidateIndex};
    use mmog_datacenter::request::{OperatorId, ResourceRequest};
    use mmog_datacenter::resource::ResourceVector;
    use mmog_util::geo::{DistanceClass, GeoPoint};
    use mmog_util::time::SimTime;

    let mut centers = table3_hp12();
    let origin = GeoPoint::new(52.37, 4.90);
    let mut index = CandidateIndex::new(origin, DistanceClass::VeryFar);
    let req = ResourceRequest::new(
        OperatorId(1),
        ResourceVector::new(0.2, 0.2, 0.2, 0.2),
        origin,
        DistanceClass::VeryFar,
    );
    // Warm-up builds the index and grows the lease ledgers.
    for i in 0..16u64 {
        let _ = match_request_indexed(&mut index, &mut centers, &req, SimTime(i));
    }
    let calls = 128u64;
    let n = count_allocs(|| {
        for i in 0..calls {
            let _ = match_request_indexed(&mut index, &mut centers, &req, SimTime(16 + i));
        }
    });
    // Each call owns its MatchOutcome (grants + cloned phase-1
    // rejections) and appends a lease; the old path additionally
    // re-enumerated, re-sorted and cloned a policy per candidate.
    let per_call = n as f64 / calls as f64;
    assert!(
        per_call <= 16.0,
        "indexed match allocates too much: {per_call:.1}/call"
    );
}
