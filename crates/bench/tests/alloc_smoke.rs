//! Steady-state allocation smoke test for the three hot-path kernels.
//!
//! A counting global allocator measures allocations across a warmed-up
//! loop of each kernel. The MLP training step and the neural
//! observe→predict path must be exactly allocation-free; the emulator
//! tick and the indexed matcher must stay under a small constant bound
//! (their outputs are owned values, so one clone per call is inherent).
//!
//! Everything runs inside ONE `#[test]` so the counter is never
//! polluted by a concurrently running sibling test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations attributable to `f`, measured as the minimum over a few
/// repeats: the libtest harness's main thread occasionally allocates
/// (progress reporting) while the test thread runs, and the minimum
/// filters that unrelated noise out — any unpolluted repeat reveals the
/// kernel's true count.
fn count_allocs(mut f: impl FnMut()) -> u64 {
    (0..4)
        .map(|_| {
            let before = ALLOCS.load(Ordering::Relaxed);
            f();
            ALLOCS.load(Ordering::Relaxed) - before
        })
        .min()
        .expect("at least one repeat")
}

#[test]
fn hot_kernels_stay_allocation_free_in_steady_state() {
    mlp_train_step_is_allocation_free();
    mlp_forward_batch_is_allocation_free();
    neural_observe_predict_is_allocation_free();
    memoized_match_replay_is_allocation_free();
    emulator_step_allocations_are_bounded();
    indexed_match_allocations_are_bounded();
    streaming_trace_tick_is_allocation_free();
    streaming_memory_is_constant_in_trace_length();
    soa_tick_loop_allocations_are_bounded();
    latency_record_is_allocation_free();
    flight_push_is_allocation_free();
    flight_dump_allocations_are_bounded();
}

fn latency_record_is_allocation_free() {
    let h = mmog_obs::LatencyHisto::new();
    // One record touches every code path (bucket add, sum CAS, min/max).
    h.record(1_234);
    let n = count_allocs(|| {
        for i in 0..4096u64 {
            h.record(i.wrapping_mul(2_654_435_761));
        }
    });
    assert_eq!(n, 0, "latency record must not allocate, got {n}");
    // Snapshots allocate, recording never does — even after one.
    let snap = h.snapshot();
    std::hint::black_box(snap.count);
}

fn flight_push_is_allocation_free() {
    use mmog_obs::{FlightConfig, FlightRecorder};
    let mut rec = FlightRecorder::new(FlightConfig::new(16));
    rec.begin_tick(0);
    rec.push("tick", 0, &[1.0, 2.0, 0.5]);
    let n = count_allocs(|| {
        // Far past the ring capacity: steady state includes age
        // eviction in begin_tick and wraparound eviction in push.
        for t in 1..2048u64 {
            rec.begin_tick(t);
            rec.push("tick", t, &[1.0, 2.0, 0.5]);
            rec.push("tick_latency", t, &[10.0, 5.0, 3.0, 20.0]);
        }
    });
    assert_eq!(n, 0, "flight begin_tick+push must not allocate, got {n}");
    assert!(rec.pushed() > 4000);
}

fn flight_dump_allocations_are_bounded() {
    use mmog_obs::{FlightConfig, FlightRecorder, FlightTrigger};
    let dir = std::env::temp_dir().join("mmog_alloc_smoke_flight");
    let build = |retain: u64, ticks: u64| {
        let mut cfg = FlightConfig::new(retain);
        cfg.dump_dir.clone_from(&dir);
        let mut rec = FlightRecorder::new(cfg);
        for t in 0..ticks {
            rec.begin_tick(t);
            rec.push("tick", t, &[1.0, 2.0, 0.5]);
        }
        rec
    };
    // Single-shot (a second trigger is suppressed, so `count_allocs`'s
    // min-over-repeats trick cannot apply): measured raw, compared with
    // generous slack below.
    let dump_allocs = |mut rec: FlightRecorder, label: &'static str| {
        let before = ALLOCS.load(Ordering::Relaxed);
        let path = rec
            .trigger(FlightTrigger::Explicit, 10_000, label)
            .expect("dump writes")
            .expect("first trigger dumps");
        std::hint::black_box(&path);
        ALLOCS.load(Ordering::Relaxed) - before
    };
    // The dump path is bounded by the ring capacity, not the run
    // length: a 100x longer run through the same window must not cost
    // more than a small constant factor (same retained records, same
    // rendered lines; the FS layer adds per-write noise).
    let short = dump_allocs(build(16, 32), "alloc-smoke-short");
    let long = dump_allocs(build(16, 3200), "alloc-smoke-long");
    assert!(
        long <= short.saturating_mul(2) + 64,
        "flight dump allocations grew with run length: {short} at 32 ticks, {long} at 3200"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn mlp_train_step_is_allocation_free() {
    use mmog_predict::mlp::{Mlp, Scratch};
    use mmog_util::rng::Rng64;
    let mut rng = Rng64::seed_from(42);
    let mut net = Mlp::new(&[6, 3, 1], &mut rng);
    let mut scratch = Scratch::default();
    let input = [0.1, -0.2, 0.3, -0.4, 0.5, -0.6];
    let target = [0.25];
    // Warm-up: the scratch grows to the network's shape once.
    for _ in 0..4 {
        let _ = net.train_step_scratch(&mut scratch, &input, &target, 0.05, 0.3);
        let _ = net.forward_scratch(&input, &mut scratch);
    }
    let n = count_allocs(|| {
        for _ in 0..512 {
            let _ = net.train_step_scratch(&mut scratch, &input, &target, 0.05, 0.3);
            let _ = net.forward_scratch(&input, &mut scratch);
        }
    });
    assert_eq!(n, 0, "warmed MLP train+forward must not allocate, got {n}");
}

fn mlp_forward_batch_is_allocation_free() {
    use mmog_predict::mlp::{FeatureMatrix, Mlp, Scratch};
    use mmog_util::rng::Rng64;
    let mut rng = Rng64::seed_from(42);
    let net = Mlp::new(&[6, 3, 1], &mut rng);
    let mut scratch = Scratch::default();
    let mut batch = FeatureMatrix::with_capacity(6, 64);
    let mut out = vec![0.0; 64];
    let row = [0.1, -0.2, 0.3, -0.4, 0.5, -0.6];
    // Warm-up: the batch grows to its row count once, the scratch to
    // the network's shape once.
    batch.clear();
    for _ in 0..64 {
        batch.push_row(&row);
    }
    net.forward_batch(&mut scratch, &batch, &mut out);
    let n = count_allocs(|| {
        for _ in 0..64 {
            // Steady state includes the per-tick gather (clear + push
            // into recycled storage), not just the kernel.
            batch.clear();
            for _ in 0..64 {
                batch.push_row(&row);
            }
            net.forward_batch(&mut scratch, &batch, &mut out);
            std::hint::black_box(out[0]);
        }
    });
    assert_eq!(n, 0, "warmed batched forward must not allocate, got {n}");
}

fn memoized_match_replay_is_allocation_free() {
    use mmog_datacenter::locations::table3_hp12;
    use mmog_datacenter::request::OperatorId;
    use mmog_predict::simple::LastValue;
    use mmog_sim::demand::DemandModel;
    use mmog_sim::provision::GroupProvisioner;
    use mmog_util::geo::{DistanceClass, GeoPoint};
    use mmog_util::time::SimTime;
    use mmog_world::update::UpdateModel;

    let mut centers = table3_hp12();
    let mut p = GroupProvisioner::new(
        OperatorId(1),
        GeoPoint::new(52.37, 4.90),
        DistanceClass::VeryFar,
        DemandModel::paper(UpdateModel::Quadratic),
        1.0,
        Box::new(LastValue::new()),
    );
    let target = p.observe_and_target(1500.0);
    // Warm-up: grant, then run the full no-op walk once to arm the memo.
    for i in 0..4u64 {
        let _ = p.adjust(&target, &mut centers, SimTime(i));
    }
    let n = count_allocs(|| {
        for _ in 0..512 {
            let out = p.adjust(&target, &mut centers, SimTime(4));
            assert!(out.replayed, "steady state must hit the memo");
        }
    });
    assert_eq!(n, 0, "memoized match replay must not allocate, got {n}");
}

fn neural_observe_predict_is_allocation_free() {
    use mmog_predict::neural::{NeuralConfig, NeuralPredictor};
    use mmog_predict::traits::Predictor;
    let mut p = NeuralPredictor::untrained(NeuralConfig::default(), 1000.0);
    // Fill the window and warm every internal buffer.
    for i in 0..64 {
        p.observe(900.0 + f64::from(i));
        let _ = p.predict();
    }
    let n = count_allocs(|| {
        for i in 0..512u32 {
            p.observe(950.0 + f64::from(i % 100));
            let _ = p.predict();
        }
    });
    assert_eq!(
        n, 0,
        "warmed neural observe→predict must not allocate, got {n}"
    );
}

fn emulator_step_allocations_are_bounded() {
    use mmog_world::config::EmulatorConfig;
    use mmog_world::emulator::GameEmulator;
    let cfg = EmulatorConfig {
        peak_entities: 400,
        ..EmulatorConfig::default()
    };
    let mut emu = GameEmulator::new(cfg, 7);
    for _ in 0..32 {
        let _ = emu.step();
    }
    let steps = 256u64;
    let n = count_allocs(|| {
        for _ in 0..steps {
            let _ = emu.step();
        }
    });
    // The returned snapshot owns its count map (one clone) and the
    // population drifts (entity-vector growth is amortised). Anything
    // near the old per-tick bucket/neighbourhood churn would be
    // hundreds per step.
    let per_step = n as f64 / steps as f64;
    assert!(
        per_step <= 16.0,
        "emulator step allocates too much: {per_step:.1}/step"
    );
}

fn scale_rs_config(days: u64) -> mmog_workload::runescape::RuneScapeConfig {
    let mut cfg = mmog_workload::runescape::RuneScapeConfig::paper_default(days, 99);
    cfg.regions.truncate(2);
    cfg.regions[0].groups = 4;
    cfg.regions[1].groups = 3;
    cfg
}

fn streaming_trace_tick_is_allocation_free() {
    use mmog_workload::stream::StreamingTrace;
    // 4 days = 2880 ticks: enough for the warm-up plus every
    // measurement repeat without exhausting the stream.
    let cfg = scale_rs_config(4);
    let mut stream = StreamingTrace::new(&cfg);
    let mut row = vec![0.0; stream.group_count()];
    // Warm-up: episode buffers grow to their fixed caps.
    for _ in 0..64 {
        assert!(stream.next_tick(&mut row));
    }
    let n = count_allocs(|| {
        for _ in 0..512 {
            assert!(stream.next_tick(&mut row));
        }
    });
    assert_eq!(
        n, 0,
        "warmed streaming next_tick must not allocate, got {n}"
    );
}

/// Memory per group is O(1) in the trace length: generating twice the
/// days costs no additional allocations at all (construction allocates
/// the fixed per-group state; every tick after warm-up is free), where
/// a materialized trace would grow every group's series linearly.
fn streaming_memory_is_constant_in_trace_length() {
    use mmog_workload::stream::StreamingTrace;
    let total_allocs = |days: u64| {
        let cfg = scale_rs_config(days);
        count_allocs(|| {
            let mut stream = StreamingTrace::new(&cfg);
            let mut row = vec![0.0; stream.group_count()];
            while stream.next_tick(&mut row) {}
            std::hint::black_box(&row);
        })
    };
    let short = total_allocs(2);
    let long = total_allocs(4);
    // Identical construction, zero steady state: doubling the trace
    // must not add allocations (tiny slack for episode-buffer timing —
    // a buffer may hit its cap later in a longer trace).
    assert!(
        long <= short + 8,
        "streaming allocations grew with trace length: {short} allocs at 2 days, {long} at 4"
    );
}

/// The engine's struct-of-arrays tick loop stays bounded: doubling the
/// simulated window must cost only the per-tick settle/report work (no
/// per-tick rebuilds of group state, no materialized trace anywhere).
fn soa_tick_loop_allocations_are_bounded() {
    use mmog_bench::scale::{world_config, SweepPoint};
    use mmog_sim::engine::Simulation;
    let point = SweepPoint {
        label: "10k",
        worlds: 1,
        groups_per_world: 5,
    };
    // Configuration construction is identical for both window lengths
    // (both fit one generated day), so it cancels in the subtraction.
    let run_allocs = |ticks: usize| {
        count_allocs(|| {
            let cfg = world_config(&point, 0, ticks, 4242);
            let report = Simulation::new(cfg).run();
            std::hint::black_box(report.ticks);
        })
    };
    let base_ticks = 120u64;
    let short = run_allocs(base_ticks as usize);
    let long = run_allocs(2 * base_ticks as usize);
    let marginal = long.saturating_sub(short) as f64;
    let per_group_tick = marginal / (base_ticks as f64 * 5.0);
    // Each extra tick settles every group through the matcher (owned
    // grant lists) and appends to the report series (amortised); a
    // per-tick clone of hot state or trace would be orders of
    // magnitude past this.
    assert!(
        per_group_tick <= 32.0,
        "SoA tick loop allocates too much: {per_group_tick:.1} per group-tick \
         ({short} allocs at {base_ticks} ticks, {long} at {})",
        2 * base_ticks
    );
}

fn indexed_match_allocations_are_bounded() {
    use mmog_datacenter::locations::table3_hp12;
    use mmog_datacenter::matching::{match_request_indexed, CandidateIndex};
    use mmog_datacenter::request::{OperatorId, ResourceRequest};
    use mmog_datacenter::resource::ResourceVector;
    use mmog_util::geo::{DistanceClass, GeoPoint};
    use mmog_util::time::SimTime;

    let mut centers = table3_hp12();
    let origin = GeoPoint::new(52.37, 4.90);
    let mut index = CandidateIndex::new(origin, DistanceClass::VeryFar);
    let req = ResourceRequest::new(
        OperatorId(1),
        ResourceVector::new(0.2, 0.2, 0.2, 0.2),
        origin,
        DistanceClass::VeryFar,
    );
    // Warm-up builds the index and grows the lease ledgers.
    for i in 0..16u64 {
        let _ = match_request_indexed(&mut index, &mut centers, &req, SimTime(i));
    }
    let calls = 128u64;
    let n = count_allocs(|| {
        for i in 0..calls {
            let _ = match_request_indexed(&mut index, &mut centers, &req, SimTime(16 + i));
        }
    });
    // Each call owns its MatchOutcome (grants + cloned phase-1
    // rejections) and appends a lease; the old path additionally
    // re-enumerated, re-sorted and cloned a policy per candidate.
    let per_call = n as f64 / calls as f64;
    assert!(
        per_call <= 16.0,
        "indexed match allocates too much: {per_call:.1}/call"
    );
}
