//! The observability plane's determinism contract at experiment scale:
//! the JSONL event log and the `semantic` section of the metrics
//! summary are byte-identical between `--jobs 1` and `--jobs 4`, while
//! wall-clock data stays quarantined in the `timing` section.
//!
//! One test function: the jobs setting, the metric registry and the
//! trace destination are all process-global, so separate `#[test]`s
//! would race under the parallel test harness.
//!
//! Trace mismatches route through `mmog_obs_analyze::trace_diff`, so a
//! failure names the first diverging event (kind, tick, field) instead
//! of dumping two traces; every line of the real mini-suite trace is
//! also validated against the per-kind field schemas and folded into
//! timelines by the analytics reader.

use mmog_bench::experiments as exp;
use mmog_bench::RunOpts;
use mmog_obs_analyze::{analyze_trace, first_text_divergence, trace_diff, Query};
use std::fs;
use std::path::PathBuf;

fn tiny() -> RunOpts {
    RunOpts {
        days: 1,
        cap: Some(2),
        seed: 77,
        ..RunOpts::default()
    }
}

/// A mini-suite: fig08 drives the full engine pipeline (two Neural
/// simulations, events from every serial section), fig06 contributes
/// wall-clock latency instruments that must stay out of the semantic
/// section.
fn mini_suite(opts: &RunOpts) -> Vec<String> {
    vec![
        exp::fig08_static_vs_dynamic(opts),
        exp::fig06_prediction_time(opts),
    ]
}

/// Runs the mini-suite with tracing into `path` and returns
/// `(summary json, trace bytes)`.
fn traced_pass(opts: &RunOpts, path: &PathBuf) -> (String, String) {
    mmog_obs::reset();
    mmog_obs::set_trace_path(Some(path));
    let _reports = mini_suite(opts);
    let summary = mmog_obs::summary_json();
    mmog_obs::flush_trace().expect("flush succeeds");
    mmog_obs::set_trace_path(None);
    let trace = fs::read_to_string(path).expect("trace file exists");
    (summary, trace)
}

#[test]
fn semantic_outputs_identical_across_jobs() {
    let baseline_jobs = mmog_par::jobs();
    let opts = tiny();

    // Warm the process-wide workload/emulator caches so cache-build
    // counters (e.g. `world.emulator.runs`) don't differ between the
    // compared passes.
    mmog_par::set_jobs(1);
    let _ = mini_suite(&opts);

    let dir = std::env::temp_dir();
    let p1 = dir.join(format!("mmog_obs_det_j1_{}.jsonl", std::process::id()));
    let p4 = dir.join(format!("mmog_obs_det_j4_{}.jsonl", std::process::id()));

    let (summary_serial, trace_serial) = traced_pass(&opts, &p1);
    mmog_par::set_jobs(4);
    let (summary_parallel, trace_parallel) = traced_pass(&opts, &p4);
    mmog_par::set_jobs(baseline_jobs);
    let _ = fs::remove_file(&p1);
    let _ = fs::remove_file(&p4);

    // Both summaries satisfy the exported schema.
    mmog_obs::validate_summary(&summary_serial).expect("serial summary validates");
    mmog_obs::validate_summary(&summary_parallel).expect("parallel summary validates");

    // The semantic sections — counters, gauges, histograms — are
    // byte-identical; only `timing` may differ.
    let sem_serial = mmog_obs::semantic_section(&summary_serial).expect("semantic section");
    let sem_parallel = mmog_obs::semantic_section(&summary_parallel).expect("semantic section");
    if let Some(d) = first_text_divergence(&sem_serial, &sem_parallel) {
        panic!(
            "semantic metrics must be byte-identical between --jobs 1 and --jobs 4: {}",
            d.message()
        );
    }
    assert!(
        sem_serial.contains("sim.runs"),
        "the engine actually recorded: {sem_serial}"
    );

    // The event logs are byte-identical, non-empty, and well-formed.
    assert!(!trace_serial.is_empty(), "trace must contain events");
    if let Some(d) = trace_diff(&trace_serial, &trace_parallel) {
        panic!(
            "JSONL event log must be byte-identical between --jobs 1 and --jobs 4: {}",
            d.message()
        );
    }
    for (i, line) in trace_serial.lines().enumerate() {
        let (seq, _scope, kind, value) = mmog_obs::parse_trace_line(line).expect("line parses");
        assert_eq!(seq, i as u64, "sequence numbers are contiguous");
        // Every event of the real trace satisfies its kind's exact
        // field schema (names, order, types).
        mmog_obs::validate_event_fields(&kind, &value)
            .unwrap_or_else(|e| panic!("line {}: {e}", i + 1));
    }

    // The analytics reader folds the real trace into timelines: every
    // scope has per-tick rows, the sampled per-center series are
    // present, and the derived report/artifact are themselves
    // deterministic.
    let runs = analyze_trace(&trace_serial, &Query::default()).expect("trace analyzes cleanly");
    assert!(!runs.is_empty(), "mini-suite trace holds at least one run");
    for run in &runs {
        assert!(!run.ticks.is_empty(), "scope {} has tick rows", run.scope);
        assert!(
            !run.centers.is_empty(),
            "scope {} has center_tick series",
            run.scope
        );
    }
    let report = mmog_obs_analyze::render_timelines(&runs);
    let artifact = mmog_obs_analyze::timelines_value(&runs).render_pretty();
    let runs_again = analyze_trace(&trace_serial, &Query::default()).expect("re-analysis");
    assert_eq!(report, mmog_obs_analyze::render_timelines(&runs_again));
    assert_eq!(
        artifact,
        mmog_obs_analyze::timelines_value(&runs_again).render_pretty()
    );
}
