//! The parallel execution layer's determinism contract: simulation
//! reports and rendered experiment tables are bit-identical whether the
//! work runs serially (`--jobs 1`) or fanned out across worker threads.
//!
//! One test function covers every comparison: the jobs setting is
//! process-global, so splitting the checks into separate `#[test]`s
//! would race when the harness runs them concurrently.
//!
//! Failures route through `mmog-obs-analyze`'s first-divergence diff,
//! so a broken contract names the first diverging line instead of
//! dumping two multi-kilobyte reports.

use mmog_bench::experiments as exp;
use mmog_bench::RunOpts;
use mmog_obs_analyze::first_text_divergence;
use mmog_predict::eval::PredictorKind;
use mmog_sim::engine::{AllocationMode, Simulation};
use mmog_sim::scenario::{self, ScenarioOpts};
use std::fs;
use std::path::Path;

/// A scale small enough for a debug-build test, big enough to exceed
/// the engine's parallel-group threshold (5 regions x 2 groups = 10).
fn tiny() -> ScenarioOpts {
    ScenarioOpts {
        days: 1,
        seed: 77,
        group_cap: Some(2),
    }
}

/// Asserts byte-identity, reporting the first diverging line on
/// failure.
fn assert_same_text(what: &str, left: &str, right: &str) {
    if let Some(d) = first_text_divergence(left, right) {
        panic!("{what}: {}", d.message());
    }
}

/// Runs the prediction-impact scenario (neural predictor, so the
/// per-group seeded training streams are exercised) and renders the
/// report for comparison.
fn engine_fingerprint() -> String {
    let mut cfg =
        scenario::prediction_impact(PredictorKind::Neural, AllocationMode::Dynamic, &tiny());
    // A short offline phase keeps MLP training cheap in debug builds
    // while still exercising the parallel training fan-out.
    cfg.train_ticks = 96;
    let report = Simulation::new(cfg).run();
    format!("{report:?}")
}

/// The highest-churn configuration the engine supports: the paper
/// fault schedule AND the paper scenario timeline on one dynamic run,
/// so the memoized settle path works under constant invalidation —
/// availability-epoch bumps, topology changes, lease revocations,
/// migrations, flash crowds — at every job count.
fn churn_fingerprint() -> String {
    use mmog_faults::{FaultSchedule, FaultSpec, ScenarioSpec};
    let opts = tiny();
    let mut cfg = scenario::scenario_injection(
        &ScenarioSpec::paper_default(),
        AllocationMode::Dynamic,
        &opts,
    );
    let spec = FaultSpec {
        seed: 5,
        ..FaultSpec::paper_default()
    };
    let ticks = opts.days * mmog_util::time::TICKS_PER_DAY;
    let schedule = FaultSchedule::from_spec(&spec, ticks, cfg.centers.len());
    cfg.faults = (!schedule.is_empty()).then_some(schedule);
    let report = Simulation::new(cfg).run();
    format!("{report:?}")
}

/// Compares `actual` to the committed fixture in `tests/golden/`. The
/// fixtures were generated from the pre-hot-path-rewrite kernels, so
/// this pins the optimized MLP, emulator, and matcher to the exact
/// bytes the original implementations produced. Set
/// `MMOG_UPDATE_GOLDEN=1` to regenerate after a deliberate
/// output-changing commit.
fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("MMOG_UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        fs::write(&path, actual).expect("write golden fixture");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {}: {e}; run once with MMOG_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_same_text(
        &format!("{name} must stay byte-identical to the pre-optimization fixture"),
        &expected,
        actual,
    );
}

#[test]
fn reports_identical_for_any_job_count() {
    let baseline_jobs = mmog_par::jobs();

    // Engine level: one simulation, serial vs fanned out.
    mmog_par::set_jobs(1);
    let serial = engine_fingerprint();
    mmog_par::set_jobs(4);
    let parallel = engine_fingerprint();
    assert_same_text(
        "SimReport must be bit-identical between --jobs 1 and --jobs 4",
        &serial,
        &parallel,
    );

    // Same seed, same jobs: repeated runs agree (the caches and
    // per-group streams hold no run-to-run state).
    let again = engine_fingerprint();
    assert_same_text("same-seed runs must agree", &parallel, &again);

    // Sweep level: a multi-run experiment's rendered table. Table V
    // fans six predictor runs out and formats every metric (the neural
    // row exercises the seeded training streams).
    let opts = RunOpts {
        days: 1,
        cap: Some(2),
        seed: 77,
        ..RunOpts::default()
    };
    mmog_par::set_jobs(1);
    let serial_table = exp::table5_prediction_impact(&opts);
    mmog_par::set_jobs(4);
    let parallel_table = exp::table5_prediction_impact(&opts);
    assert_same_text(
        "experiment text must be byte-identical between --jobs 1 and --jobs 4",
        &serial_table,
        &parallel_table,
    );

    // fig06 measures wall-clock latency — Figure 6's subject — so its
    // table sits inside `mmog-obs` timing markers. With the markers
    // masked the rest of the report must be byte-identical too; fig06
    // is no longer exempt from the determinism contract. A malformed
    // marker structure (e.g. an unterminated block) is itself a
    // failure now, not a silent partial mask.
    mmog_par::set_jobs(1);
    let serial_fig06 = exp::fig06_prediction_time(&opts);
    mmog_par::set_jobs(4);
    let parallel_fig06 = exp::fig06_prediction_time(&opts);
    assert!(
        serial_fig06.contains(mmog_obs::TIMING_BEGIN),
        "fig06 must mark its wall-clock table"
    );
    let serial_masked =
        mmog_obs::mask_timing(&serial_fig06).expect("fig06 timing markers must be well-formed");
    let parallel_masked =
        mmog_obs::mask_timing(&parallel_fig06).expect("fig06 timing markers must be well-formed");
    assert_same_text(
        "fig06 must be byte-identical outside its timing markers",
        &serial_masked,
        &parallel_masked,
    );

    // Golden byte-identity for the hot-path kernels. fig05 leans on
    // the MLP training loop (seven predictors, eight emulated series)
    // and fig_faults drives the emulator, the matcher, and the fault
    // plane together — between them every optimized kernel's output
    // lands in a committed fixture, compared at two job counts.
    mmog_par::set_jobs(1);
    let serial_fig05 = exp::fig05_prediction_accuracy(&opts);
    let serial_faults = exp::fig_faults(&opts);
    mmog_par::set_jobs(4);
    let parallel_fig05 = exp::fig05_prediction_accuracy(&opts);
    let parallel_faults = exp::fig_faults(&opts);
    assert_same_text(
        "fig05 must be byte-identical between --jobs 1 and --jobs 4",
        &serial_fig05,
        &parallel_fig05,
    );
    assert_same_text(
        "fig_faults must be byte-identical between --jobs 1 and --jobs 4",
        &serial_faults,
        &parallel_faults,
    );
    check_golden("fig05_tiny.txt", &serial_fig05);
    check_golden("fig_faults_tiny.txt", &serial_faults);

    // Faulted + scenario in ONE run: the match memo is invalidated from
    // every serial section at once (faults, partitions, migrations,
    // flash crowds), and the report must still not depend on the job
    // count or on whether the memo is enabled at all.
    mmog_par::set_jobs(1);
    let serial_churn = churn_fingerprint();
    mmog_par::set_jobs(4);
    let parallel_churn = churn_fingerprint();
    assert_same_text(
        "faulted+scenario report must be bit-identical between --jobs 1 and --jobs 4",
        &serial_churn,
        &parallel_churn,
    );
    check_golden("churn_tiny.txt", &serial_churn);

    // Streaming workload generation: byte-identical to the materialized
    // path at full paper scale (130 groups x 14 days), group by group.
    streaming_matches_materialized_at_paper_scale();

    // Scale sweep: the deterministic semantic section is byte-identical
    // between --jobs 1 and --jobs 4 (timing fields are excluded from
    // the section by construction).
    let sweep = mmog_bench::scale::SweepPoint {
        label: "10k",
        worlds: 3,
        groups_per_world: 4,
    };
    mmog_par::set_jobs(1);
    let serial_sweep =
        mmog_bench::scale::render_semantic(&[mmog_bench::scale::run_point(&sweep, 60, 77)]);
    mmog_par::set_jobs(4);
    let parallel_sweep =
        mmog_bench::scale::render_semantic(&[mmog_bench::scale::run_point(&sweep, 60, 77)]);
    assert_same_text(
        "scale sweep semantics must be byte-identical between --jobs 1 and --jobs 4",
        &serial_sweep,
        &parallel_sweep,
    );

    // Flight recorder: trigger decisions are semantic (driven by the
    // deterministic fault schedule), so the dump report — trigger kind,
    // trigger tick, retained window, record count — must be identical
    // across job counts and repeats, with the recorder running.
    flight_trigger_decisions_are_deterministic();

    mmog_par::set_jobs(baseline_jobs);
}

/// A faulted run with the flight recorder installed: the first fault
/// fires the dump, and everything the dump reports about itself is a
/// pure function of the configuration.
fn flight_trigger_decisions_are_deterministic() {
    use mmog_faults::FaultSpec;
    let dir = std::env::temp_dir().join("mmog_determinism_flight");
    let mut flight_cfg = mmog_obs::FlightConfig::new(12);
    flight_cfg.dump_dir.clone_from(&dir);
    mmog_obs::set_flight_config(Some(flight_cfg));
    let run = || {
        let spec = FaultSpec {
            seed: 5,
            ..FaultSpec::paper_default()
        };
        let cfg = scenario::fault_injection(&spec, AllocationMode::Dynamic, &tiny());
        let report = Simulation::new(cfg).run();
        report
            .flight_dump
            .expect("a faulted run with the recorder on must dump")
    };
    mmog_par::set_jobs(1);
    let serial = run();
    mmog_par::set_jobs(4);
    let parallel = run();
    let repeat = run();
    mmog_obs::set_flight_config(None);
    assert_eq!(serial.trigger, "fault");
    assert_eq!(
        serial, parallel,
        "flight dump report must be identical between --jobs 1 and --jobs 4"
    );
    assert_eq!(parallel, repeat, "same-seed flight dumps must agree");
    assert!(
        serial.tick_to - serial.tick_from < 12,
        "retained window must respect retain_ticks: {serial:?}"
    );
    // The artifact itself is well-formed: standard envelope, known
    // field sets, ticks inside the declared window.
    let text = fs::read_to_string(&serial.path).expect("dump exists");
    let mut lines = text.lines();
    let (_, _, kind, meta) =
        mmog_obs::parse_trace_line(lines.next().expect("meta line")).expect("meta parses");
    assert_eq!(kind, "flight_meta");
    mmog_obs::validate_event_fields(&kind, &meta).expect("meta fields");
    let mut records = 0u64;
    for line in lines {
        let (_, _, kind, value) = mmog_obs::parse_trace_line(line).expect("record parses");
        mmog_obs::validate_event_fields(&kind, &value).expect("record fields");
        let tick = value
            .get("tick")
            .and_then(mmog_obs::json::Value::as_u64)
            .expect("record tick");
        assert!((serial.tick_from..=serial.tick_to).contains(&tick));
        records += 1;
    }
    assert_eq!(records, serial.records);
    let _ = fs::remove_dir_all(&dir);
}

/// The streaming generator replays the materialized generator's RNG
/// protocol exactly: at the paper's full scale every group's series
/// must match to the last bit, tick by tick.
fn streaming_matches_materialized_at_paper_scale() {
    use mmog_workload::runescape::{generate, RuneScapeConfig};
    use mmog_workload::stream::StreamingTrace;
    let cfg = RuneScapeConfig::paper_default(14, 2008);
    let trace = generate(&cfg);
    let mut stream = StreamingTrace::new(&cfg);
    let groups: Vec<&mmog_workload::trace::ServerGroupTrace> =
        trace.regions.iter().flat_map(|r| r.groups.iter()).collect();
    assert_eq!(stream.group_count(), groups.len());
    let mut row = vec![0.0; stream.group_count()];
    let mut t = 0usize;
    while stream.next_tick(&mut row) {
        for (g, (group, &streamed)) in groups.iter().zip(&row).enumerate() {
            let materialized = group.series.values()[t];
            assert!(
                materialized.to_bits() == streamed.to_bits(),
                "group {g} tick {t}: materialized {materialized} != streamed {streamed}"
            );
        }
        t += 1;
    }
    assert_eq!(t, trace.regions[0].groups[0].series.len());
}
