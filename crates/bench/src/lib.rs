//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each `src/bin/` binary is a thin wrapper around a function in
//! [`experiments`]; `bin/all_experiments` runs the full suite and
//! writes `results/*.txt`. Criterion micro-benchmarks live under
//! `benches/`.

pub mod cli;
pub mod experiments;
pub mod scale;

pub use cli::RunOpts;
