//! Minimal argument parsing shared by the experiment binaries.

use mmog_sim::scenario::ScenarioOpts;

/// Scale options for an experiment run.
#[derive(Debug, Clone, Copy)]
pub struct RunOpts {
    /// Trace length in days (paper: 14).
    pub days: u64,
    /// Optional cap on server groups per region (paper: none).
    pub cap: Option<u32>,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for RunOpts {
    fn default() -> Self {
        Self {
            days: 14,
            cap: None,
            seed: 2008,
        }
    }
}

impl RunOpts {
    /// Parses `--days N`, `--cap N`, `--seed N`, `--quick` from the
    /// process arguments. `--quick` is shorthand for a 3-day, 6-group
    /// smoke run. Unknown flags are ignored so binaries stay composable.
    #[must_use]
    pub fn from_args() -> Self {
        let mut opts = Self::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => {
                    opts.days = 3;
                    opts.cap = Some(6);
                }
                "--days" if i + 1 < args.len() => {
                    opts.days = args[i + 1].parse().unwrap_or(opts.days);
                    i += 1;
                }
                "--cap" if i + 1 < args.len() => {
                    opts.cap = args[i + 1].parse().ok();
                    i += 1;
                }
                "--seed" if i + 1 < args.len() => {
                    opts.seed = args[i + 1].parse().unwrap_or(opts.seed);
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        opts
    }

    /// The equivalent scenario options.
    #[must_use]
    pub fn scenario(&self) -> ScenarioOpts {
        ScenarioOpts {
            days: self.days,
            seed: self.seed,
            group_cap: self.cap,
        }
    }
}
