//! Minimal argument parsing shared by the experiment binaries.

use mmog_faults::{FaultSpec, ScenarioSpec};
use mmog_sim::scenario::ScenarioOpts;
use std::path::{Path, PathBuf};

/// `--help` text shared by the experiment binaries: every flag plus the
/// full `--faults` and `--scenario` grammars.
pub const HELP: &str = "\
Usage: <experiment> [FLAGS]

Scale:
  --quick                3-day, 6-groups-per-region smoke run
  --days N               trace length in days (default 14)
  --cap N                cap server groups per region (default: none)
  --seed N               deterministic master seed (default 2008)
  --jobs N               worker threads (0 = all CPUs, 1 = serial)

Observability:
  --trace PATH           write the JSONL event log to PATH
                         (fallback: MMOG_TRACE environment variable)
  --metrics              export the metrics summary (OBS_summary.json)
  --flight N             flight recorder: retain the last N ticks,
                         dumped to FLIGHT_<run>.jsonl on a trigger
  --flight-dump          dump the final window at run end regardless
  --tick-deadline-ms N   fire the flight recorder when a tick exceeds
                         N wall-clock milliseconds (diagnosis only)
  --ts DIR               export per-run downsampled time series as
                         DIR/TS_<run>.json (fallback: MMOG_TS)
  --live PATH            atomically rewrite a live telemetry snapshot
                         at PATH every few ticks; watch it with
                         mmog_top (fallback: MMOG_LIVE)
  --live-every N         live snapshot rewrite interval in ticks
                         (default 64)

Fault injection (--faults SPEC | MMOG_FAULTS):
  SPEC is `paper` or comma-separated key=value pairs; whitespace
  around `=` and `,` is ignored.
    outages=F   expected outages per center-day     repair=N   mean repair minutes
    degrade=F   expected degradations per center-day  dfrac=F  surviving fraction
    dmins=N     mean degradation minutes            revoke=F   lease revocations/day
    dropout=F   predictor dropout probability per tick          seed=N

Scenario engine (--scenario SPEC | MMOG_SCENARIO):
  SPEC is `paper` or comma-separated key=value pairs; whitespace
  around `=` and `,` is ignored.
    partition=F  expected network partitions/day    pmins=N    mean partition minutes
    migrate=F    expected zone migrations/day       mcost=N    ticks charged per player
    flash=F      expected flash crowds/day          fpeak=F    demand multiplier (>= 1)
    fmins=N      mean flash-crowd minutes           failover=F center drains/day
    link=F       link degradations/day              lfactor=F  distance multiplier (>= 1)
    lmins=N      mean link-degradation minutes      seed=N
";

/// Scale options for an experiment run.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Trace length in days (paper: 14).
    pub days: u64,
    /// Optional cap on server groups per region (paper: none).
    pub cap: Option<u32>,
    /// Deterministic seed.
    pub seed: u64,
    /// Worker threads for the parallel execution layer (0 = all
    /// logical CPUs; 1 = fully serial, bit-identical reference path).
    pub jobs: usize,
    /// JSONL event-log destination (`--trace <path>`; the `MMOG_TRACE`
    /// environment variable is the fallback).
    pub trace: Option<PathBuf>,
    /// Whether to export the metrics summary (`--metrics`).
    pub metrics: bool,
    /// Fault-injection spec (`--faults SPEC`; the `MMOG_FAULTS`
    /// environment variable is the fallback). `--faults paper` selects
    /// the default rates; `--faults "outages=0.5,repair=120"` tunes
    /// them. Malformed specs abort rather than silently running
    /// unfaulted.
    pub faults: Option<FaultSpec>,
    /// Scenario-engine spec (`--scenario SPEC`; the `MMOG_SCENARIO`
    /// environment variable is the fallback). `--scenario paper`
    /// selects the default rates; `--scenario "partition=1,migrate=4"`
    /// tunes them. Malformed specs abort rather than silently running
    /// scenario-free.
    pub scenario_spec: Option<ScenarioSpec>,
    /// Flight-recorder window (`--flight N`): retain the last N ticks
    /// of full-detail events per run, dumped to `FLIGHT_<run>.jsonl`
    /// only when a trigger fires. `None` disables the recorder (the
    /// default — runs stay byte-identical to pre-flight builds).
    pub flight: Option<u64>,
    /// `--flight-dump`: dump the final window at run end even without
    /// a trigger (implies `--flight` with the default window).
    pub flight_dump: bool,
    /// Per-tick deadline in milliseconds (`--tick-deadline-ms N`): a
    /// tick exceeding it fires the flight recorder's deadline-overrun
    /// trigger. Wall-clock — for interactive diagnosis, never CI gates.
    pub tick_deadline_ms: Option<u64>,
    /// Time-series output directory (`--ts DIR`; the `MMOG_TS`
    /// environment variable is the fallback). Each run exports its
    /// downsampled per-metric series as `DIR/TS_<run>.json`. `None`
    /// disables the plane (the default — runs stay byte-identical).
    pub ts_dir: Option<PathBuf>,
    /// Live telemetry snapshot path (`--live PATH`; the `MMOG_LIVE`
    /// environment variable is the fallback). `None` disables the tap.
    pub live: Option<PathBuf>,
    /// Live snapshot rewrite interval in ticks (`--live-every N`).
    pub live_every: Option<u64>,
}

impl Default for RunOpts {
    fn default() -> Self {
        Self {
            days: 14,
            cap: None,
            seed: 2008,
            jobs: 0,
            trace: None,
            metrics: false,
            faults: None,
            scenario_spec: None,
            flight: None,
            flight_dump: false,
            tick_deadline_ms: None,
            ts_dir: None,
            live: None,
            live_every: None,
        }
    }
}

impl RunOpts {
    /// Parses `--days N`, `--cap N`, `--seed N`, `--jobs N`, `--quick`,
    /// `--trace PATH`, `--metrics` from the process arguments and
    /// applies `--jobs` to the global parallelism setting plus the
    /// trace destination to the observability plane. `--quick` is
    /// shorthand for a 3-day, 6-group smoke run. Unknown flags are
    /// ignored so binaries stay composable.
    #[must_use]
    pub fn from_args() -> Self {
        if std::env::args().skip(1).any(|a| a == "--help" || a == "-h") {
            print!("{HELP}");
            std::process::exit(0);
        }
        let mut opts = Self::parse(std::env::args().skip(1));
        if opts.faults.is_none() {
            if let Ok(spec) = std::env::var("MMOG_FAULTS") {
                if !spec.is_empty() {
                    opts.faults = Some(parse_fault_spec(&spec));
                }
            }
        }
        if opts.scenario_spec.is_none() {
            if let Ok(spec) = std::env::var("MMOG_SCENARIO") {
                if !spec.is_empty() {
                    opts.scenario_spec = Some(parse_scenario_spec(&spec));
                }
            }
        }
        opts.apply_jobs();
        opts.apply_obs();
        opts
    }

    /// Parses flags from an explicit argument list (testable core of
    /// [`from_args`]; does not touch global state).
    ///
    /// [`from_args`]: Self::from_args
    #[must_use]
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut opts = Self::default();
        let args: Vec<String> = args.into_iter().collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => {
                    opts.days = 3;
                    opts.cap = Some(6);
                }
                "--days" if i + 1 < args.len() => {
                    opts.days = args[i + 1].parse().unwrap_or(opts.days);
                    i += 1;
                }
                "--cap" if i + 1 < args.len() => {
                    opts.cap = args[i + 1].parse().ok();
                    i += 1;
                }
                "--seed" if i + 1 < args.len() => {
                    opts.seed = args[i + 1].parse().unwrap_or(opts.seed);
                    i += 1;
                }
                "--jobs" if i + 1 < args.len() => {
                    opts.jobs = args[i + 1].parse().unwrap_or(opts.jobs);
                    i += 1;
                }
                "--trace" if i + 1 < args.len() => {
                    opts.trace = Some(PathBuf::from(&args[i + 1]));
                    i += 1;
                }
                "--metrics" => {
                    opts.metrics = true;
                }
                "--faults" if i + 1 < args.len() => {
                    opts.faults = Some(parse_fault_spec(&args[i + 1]));
                    i += 1;
                }
                "--scenario" if i + 1 < args.len() => {
                    opts.scenario_spec = Some(parse_scenario_spec(&args[i + 1]));
                    i += 1;
                }
                "--flight" if i + 1 < args.len() => {
                    opts.flight = args[i + 1].parse().ok();
                    i += 1;
                }
                "--flight-dump" => {
                    opts.flight_dump = true;
                }
                "--tick-deadline-ms" if i + 1 < args.len() => {
                    opts.tick_deadline_ms = args[i + 1].parse().ok();
                    i += 1;
                }
                "--ts" if i + 1 < args.len() => {
                    opts.ts_dir = Some(PathBuf::from(&args[i + 1]));
                    i += 1;
                }
                "--live" if i + 1 < args.len() => {
                    opts.live = Some(PathBuf::from(&args[i + 1]));
                    i += 1;
                }
                "--live-every" if i + 1 < args.len() => {
                    opts.live_every = args[i + 1].parse().ok();
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        opts
    }

    /// Installs this run's `--jobs` value as the process-wide worker
    /// count consulted by every parallel sweep and simulation.
    pub fn apply_jobs(&self) {
        mmog_par::set_jobs(self.jobs);
    }

    /// Installs the trace destination: `--trace` wins, otherwise the
    /// `MMOG_TRACE` environment variable applies. Also installs the
    /// flight-recorder configuration when `--flight`/`--flight-dump`
    /// asked for one, the time-series output directory (`--ts` /
    /// `MMOG_TS`) and the live telemetry tap (`--live` / `MMOG_LIVE`).
    pub fn apply_obs(&self) {
        match &self.trace {
            Some(path) => mmog_obs::set_trace_path(Some(path)),
            None => mmog_obs::apply_trace_env(),
        }
        mmog_obs::set_flight_config(self.flight_config());
        match &self.ts_dir {
            Some(dir) => mmog_obs::set_ts_dir(Some(dir)),
            None => {
                if let Ok(dir) = std::env::var("MMOG_TS") {
                    if !dir.is_empty() {
                        mmog_obs::set_ts_dir(Some(Path::new(&dir)));
                    }
                }
            }
        }
        match self.live_config() {
            Some(cfg) => mmog_obs::set_live_config(Some(cfg)),
            None => mmog_obs::apply_live_env(),
        }
    }

    /// The live-tap configuration this run asked for, if any.
    #[must_use]
    pub fn live_config(&self) -> Option<mmog_obs::LiveConfig> {
        let path = self.live.as_deref()?;
        let mut cfg = mmog_obs::LiveConfig::new(path);
        if let Some(every) = self.live_every {
            cfg.every_ticks = every;
        }
        Some(cfg)
    }

    /// The flight-recorder configuration this run asked for, if any.
    #[must_use]
    pub fn flight_config(&self) -> Option<mmog_obs::FlightConfig> {
        const DEFAULT_RETAIN_TICKS: u64 = 64;
        if self.flight.is_none() && !self.flight_dump && self.tick_deadline_ms.is_none() {
            return None;
        }
        let mut cfg = mmog_obs::FlightConfig::new(self.flight.unwrap_or(DEFAULT_RETAIN_TICKS));
        cfg.dump_at_end = self.flight_dump;
        cfg.deadline_ns = self.tick_deadline_ms.map(|ms| ms.saturating_mul(1_000_000));
        Some(cfg)
    }

    /// The equivalent scenario options.
    #[must_use]
    pub fn scenario(&self) -> ScenarioOpts {
        ScenarioOpts {
            days: self.days,
            seed: self.seed,
            group_cap: self.cap,
        }
    }
}

/// Resolves a `--faults` / `MMOG_FAULTS` value: the keyword `paper`
/// selects [`FaultSpec::paper_default`]; anything else must parse as a
/// `key=value` list.
///
/// # Panics
/// Panics on a malformed spec — a typo must abort the run, not
/// silently disable fault injection.
#[must_use]
pub fn parse_fault_spec(spec: &str) -> FaultSpec {
    if spec == "paper" {
        return FaultSpec::paper_default();
    }
    match FaultSpec::parse(spec) {
        Ok(parsed) => parsed,
        Err(err) => panic!("invalid fault spec {spec:?}: {err}"),
    }
}

/// Resolves a `--scenario` / `MMOG_SCENARIO` value: the keyword `paper`
/// selects [`ScenarioSpec::paper_default`]; anything else must parse as
/// a `key=value` list.
///
/// # Panics
/// Panics on a malformed spec — a typo must abort the run, not
/// silently disable the scenario engine.
#[must_use]
pub fn parse_scenario_spec(spec: &str) -> ScenarioSpec {
    if spec == "paper" {
        return ScenarioSpec::paper_default();
    }
    match ScenarioSpec::parse(spec) {
        Ok(parsed) => parsed,
        Err(err) => panic!("invalid scenario spec {spec:?}: {err}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn defaults_are_paper_scale() {
        let o = RunOpts::parse(args(&[]));
        assert_eq!((o.days, o.cap, o.seed, o.jobs), (14, None, 2008, 0));
    }

    #[test]
    fn quick_and_overrides_parse() {
        let o = RunOpts::parse(args(&["--quick", "--seed", "7", "--jobs", "3"]));
        assert_eq!(o.days, 3);
        assert_eq!(o.cap, Some(6));
        assert_eq!(o.seed, 7);
        assert_eq!(o.jobs, 3);
        // Explicit scale after --quick wins.
        let o = RunOpts::parse(args(&["--quick", "--days", "5", "--cap", "9"]));
        assert_eq!((o.days, o.cap), (5, Some(9)));
    }

    #[test]
    fn unknown_flags_and_bad_values_are_ignored() {
        let o = RunOpts::parse(args(&["--verbose", "--days", "abc", "--jobs", "x"]));
        assert_eq!(o.days, 14);
        assert_eq!(o.jobs, 0);
        assert_eq!(o.trace, None);
        assert!(!o.metrics);
    }

    #[test]
    fn faults_flag_parses() {
        let o = RunOpts::parse(args(&["--faults", "paper"]));
        assert_eq!(o.faults, Some(FaultSpec::paper_default()));
        let o = RunOpts::parse(args(&["--faults", "outages=0.5,repair=120,seed=9"]));
        let spec = o.faults.expect("spec parsed");
        assert_eq!(spec.outages_per_center_day, 0.5);
        assert_eq!(spec.repair_minutes, 120);
        assert_eq!(spec.seed, 9);
        // Absent by default, and --faults without a value is ignored
        // like any malformed flag.
        assert_eq!(RunOpts::parse(args(&[])).faults, None);
        assert_eq!(RunOpts::parse(args(&["--faults"])).faults, None);
    }

    #[test]
    #[should_panic(expected = "invalid fault spec")]
    fn malformed_fault_spec_aborts() {
        let _ = RunOpts::parse(args(&["--faults", "bogus_key=1"]));
    }

    #[test]
    fn scenario_flag_parses() {
        let o = RunOpts::parse(args(&["--scenario", "paper"]));
        assert_eq!(o.scenario_spec, Some(ScenarioSpec::paper_default()));
        let o = RunOpts::parse(args(&["--scenario", "partition=1.5, migrate = 4, mcost=3"]));
        let spec = o.scenario_spec.expect("spec parsed");
        assert_eq!(spec.partitions_per_day, 1.5);
        assert_eq!(spec.migrations_per_day, 4.0);
        assert_eq!(spec.migration_cost_ticks, 3);
        // Absent by default, and --scenario without a value is ignored
        // like any malformed flag.
        assert_eq!(RunOpts::parse(args(&[])).scenario_spec, None);
        assert_eq!(RunOpts::parse(args(&["--scenario"])).scenario_spec, None);
    }

    #[test]
    #[should_panic(expected = "invalid scenario spec")]
    fn malformed_scenario_spec_aborts() {
        let _ = RunOpts::parse(args(&["--scenario", "partitions=1"]));
    }

    #[test]
    fn help_documents_both_spec_grammars() {
        for key in [
            "--faults",
            "outages=",
            "repair=",
            "dropout=",
            "--scenario",
            "partition=",
            "pmins=",
            "migrate=",
            "mcost=",
            "flash=",
            "fpeak=",
            "fmins=",
            "failover=",
            "link=",
            "lfactor=",
            "lmins=",
            "seed=",
        ] {
            assert!(HELP.contains(key), "help text missing {key}");
        }
    }

    #[test]
    fn observability_flags_parse() {
        let o = RunOpts::parse(args(&["--trace", "events.jsonl", "--metrics"]));
        assert_eq!(o.trace.as_deref(), Some(Path::new("events.jsonl")));
        assert!(o.metrics);
        // --trace without a value is ignored like any malformed flag.
        let o = RunOpts::parse(args(&["--trace"]));
        assert_eq!(o.trace, None);
    }

    #[test]
    fn ts_and_live_flags_parse_and_configure() {
        // Off by default: no tap, runs stay byte-identical.
        let o = RunOpts::parse(args(&[]));
        assert_eq!(o.ts_dir, None);
        assert!(o.live_config().is_none());
        let o = RunOpts::parse(args(&[
            "--ts",
            "results",
            "--live",
            "results/OBS_live.json",
            "--live-every",
            "16",
        ]));
        assert_eq!(o.ts_dir.as_deref(), Some(Path::new("results")));
        let cfg = o.live_config().expect("configured");
        assert_eq!(cfg.path, Path::new("results/OBS_live.json"));
        assert_eq!(cfg.interval(), 16);
        // --live without --live-every keeps the default interval.
        let o = RunOpts::parse(args(&["--live", "x.json"]));
        assert_eq!(o.live_config().expect("configured").interval(), 64);
    }

    #[test]
    fn flight_flags_parse_and_configure() {
        // Off by default: no recorder, runs stay byte-identical.
        assert!(RunOpts::parse(args(&[])).flight_config().is_none());
        let o = RunOpts::parse(args(&["--flight", "32"]));
        assert_eq!(o.flight, Some(32));
        let cfg = o.flight_config().expect("configured");
        assert_eq!(cfg.retain_ticks, 32);
        assert!(!cfg.dump_at_end);
        assert_eq!(cfg.deadline_ns, None);
        // --flight-dump alone implies the default window.
        let o = RunOpts::parse(args(&["--flight-dump"]));
        let cfg = o.flight_config().expect("configured");
        assert_eq!(cfg.retain_ticks, 64);
        assert!(cfg.dump_at_end);
        // The deadline converts ms → ns and implies a recorder too.
        let o = RunOpts::parse(args(&["--tick-deadline-ms", "5"]));
        let cfg = o.flight_config().expect("configured");
        assert_eq!(cfg.deadline_ns, Some(5_000_000));
    }
}
