//! Minimal argument parsing shared by the experiment binaries.

use mmog_sim::scenario::ScenarioOpts;

/// Scale options for an experiment run.
#[derive(Debug, Clone, Copy)]
pub struct RunOpts {
    /// Trace length in days (paper: 14).
    pub days: u64,
    /// Optional cap on server groups per region (paper: none).
    pub cap: Option<u32>,
    /// Deterministic seed.
    pub seed: u64,
    /// Worker threads for the parallel execution layer (0 = all
    /// logical CPUs; 1 = fully serial, bit-identical reference path).
    pub jobs: usize,
}

impl Default for RunOpts {
    fn default() -> Self {
        Self {
            days: 14,
            cap: None,
            seed: 2008,
            jobs: 0,
        }
    }
}

impl RunOpts {
    /// Parses `--days N`, `--cap N`, `--seed N`, `--jobs N`, `--quick`
    /// from the process arguments and applies `--jobs` to the global
    /// parallelism setting. `--quick` is shorthand for a 3-day, 6-group
    /// smoke run. Unknown flags are ignored so binaries stay composable.
    #[must_use]
    pub fn from_args() -> Self {
        let opts = Self::parse(std::env::args().skip(1));
        opts.apply_jobs();
        opts
    }

    /// Parses flags from an explicit argument list (testable core of
    /// [`from_args`]; does not touch global state).
    ///
    /// [`from_args`]: Self::from_args
    #[must_use]
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut opts = Self::default();
        let args: Vec<String> = args.into_iter().collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => {
                    opts.days = 3;
                    opts.cap = Some(6);
                }
                "--days" if i + 1 < args.len() => {
                    opts.days = args[i + 1].parse().unwrap_or(opts.days);
                    i += 1;
                }
                "--cap" if i + 1 < args.len() => {
                    opts.cap = args[i + 1].parse().ok();
                    i += 1;
                }
                "--seed" if i + 1 < args.len() => {
                    opts.seed = args[i + 1].parse().unwrap_or(opts.seed);
                    i += 1;
                }
                "--jobs" if i + 1 < args.len() => {
                    opts.jobs = args[i + 1].parse().unwrap_or(opts.jobs);
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        opts
    }

    /// Installs this run's `--jobs` value as the process-wide worker
    /// count consulted by every parallel sweep and simulation.
    pub fn apply_jobs(&self) {
        mmog_par::set_jobs(self.jobs);
    }

    /// The equivalent scenario options.
    #[must_use]
    pub fn scenario(&self) -> ScenarioOpts {
        ScenarioOpts {
            days: self.days,
            seed: self.seed,
            group_cap: self.cap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn defaults_are_paper_scale() {
        let o = RunOpts::parse(args(&[]));
        assert_eq!((o.days, o.cap, o.seed, o.jobs), (14, None, 2008, 0));
    }

    #[test]
    fn quick_and_overrides_parse() {
        let o = RunOpts::parse(args(&["--quick", "--seed", "7", "--jobs", "3"]));
        assert_eq!(o.days, 3);
        assert_eq!(o.cap, Some(6));
        assert_eq!(o.seed, 7);
        assert_eq!(o.jobs, 3);
        // Explicit scale after --quick wins.
        let o = RunOpts::parse(args(&["--quick", "--days", "5", "--cap", "9"]));
        assert_eq!((o.days, o.cap), (5, Some(9)));
    }

    #[test]
    fn unknown_flags_and_bad_values_are_ignored() {
        let o = RunOpts::parse(args(&["--verbose", "--days", "abc", "--jobs", "x"]));
        assert_eq!(o.days, 14);
        assert_eq!(o.jobs, 0);
    }
}
