//! The federation scale sweep behind `bin/scale_bench`.
//!
//! Scales the provisioning pipeline from the paper's ~130 server groups
//! to millions of synthetic players by federating **worlds**: each world
//! is an independent [`Simulation`] driven by a one-region *streaming*
//! RuneScape-like workload (O(1) memory per group in the trace length —
//! no materialized series anywhere), and the federation fans the worlds
//! across the PR-1 parallel layer with `mmog_par::par_map`. Inside a
//! world the engine detects the parallel context and runs serial, so
//! the per-world reports are bit-identical for any `--jobs` and the
//! sweep's semantic section can be committed and diffed byte-for-byte.
//!
//! The JSON document written by [`render_json`] is shaped like
//! `BENCH_parallel.json` (`jobs`, `logical_cpus`, `stages[{path,
//! total_ms}]`, `wall_seconds`) so the PR-5 `obs_gate` bench machinery
//! gates it against a committed baseline without new comparison code.

use mmog_datacenter::resource::ResourceType;
use mmog_predict::eval::PredictorKind;
use mmog_sim::engine::{AllocationMode, SimReport, Simulation, SimulationConfig};
use mmog_sim::scenario::ScenarioOpts;
use mmog_util::time::TICKS_PER_DAY;
use mmog_workload::runescape::RuneScapeConfig;

/// One point of the sweep: a target player population reached as
/// `worlds × groups_per_world × 2000` players.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Display label (`"10k"`, `"1M"`, …), also the stage path suffix.
    pub label: &'static str,
    /// Independent federated worlds.
    pub worlds: usize,
    /// Server groups per world (each peaks at 2 000 players).
    pub groups_per_world: u32,
}

impl SweepPoint {
    /// Peak synthetic players this point simulates.
    #[must_use]
    pub fn players(&self) -> u64 {
        self.worlds as u64 * u64::from(self.groups_per_world) * 2000
    }
}

/// The sweep ladder. `--quick` stops at 100k, the default at 1M, and
/// `--full` adds the 10M point (500 worlds — minutes, not CI material).
#[must_use]
pub fn sweep_points(quick: bool, full: bool) -> Vec<SweepPoint> {
    let mut points = vec![
        SweepPoint {
            label: "10k",
            worlds: 1,
            groups_per_world: 5,
        },
        SweepPoint {
            label: "100k",
            worlds: 5,
            groups_per_world: 10,
        },
    ];
    if !quick {
        points.push(SweepPoint {
            label: "1M",
            worlds: 50,
            groups_per_world: 10,
        });
        if full {
            points.push(SweepPoint {
                label: "10M",
                worlds: 500,
                groups_per_world: 10,
            });
        }
    }
    points
}

/// Deterministic per-world reductions — everything here is a pure
/// function of the world's seed and scale, independent of `--jobs`,
/// wall clock, and machine.
#[derive(Debug, Clone)]
pub struct WorldSummary {
    /// World index within its sweep point.
    pub world: usize,
    /// Mean CPU over-allocation excess (Ω − 100), percent.
    pub avg_over_cpu: f64,
    /// Mean CPU under-allocation Υ, percent (≤ 0).
    pub avg_under_cpu: f64,
    /// Significant under-allocation events.
    pub events: u64,
    /// Scored ticks.
    pub samples: u64,
    /// Adjustment steps with a partially unmet request.
    pub unmet_steps: u64,
}

impl WorldSummary {
    fn from_report(world: usize, report: &SimReport) -> Self {
        Self {
            world,
            avg_over_cpu: report.metrics.avg_over(ResourceType::Cpu),
            avg_under_cpu: report.metrics.avg_under(ResourceType::Cpu),
            events: report.metrics.events(),
            samples: report.metrics.samples(),
            unmet_steps: report.unmet_steps,
        }
    }
}

/// Timing and semantics of one completed sweep point.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// The point that ran.
    pub point: SweepPoint,
    /// Ticks each world simulated.
    pub ticks: usize,
    /// Wall-clock seconds for the whole point (all worlds).
    pub seconds: f64,
    /// Peak RSS in kB after the point, if the platform exposes it.
    pub peak_rss_kb: Option<u64>,
    /// One summary per world, in world order.
    pub worlds: Vec<WorldSummary>,
    /// Per-stage latency distributions over every world of this point
    /// (path → merged snapshot), captured from the engine's log-bucketed
    /// histograms. Wall-clock data — never part of the semantic section.
    pub latency: Vec<(String, mmog_obs::LatencySnapshot)>,
    /// Settle calls the match memo replayed across every world of this
    /// point. Timing-domain: parallel fault interleavings can shift the
    /// process-global availability epoch, so counts may vary with
    /// `--jobs` — reported here and in the stage JSON, never in the
    /// semantic section.
    pub match_skips: u64,
    /// Settle calls that ran the full candidate walk.
    pub match_full: u64,
}

impl PointResult {
    /// Synthetic players simulated per wall-clock second, normalised to
    /// a full simulated day: simulating one day for P players in S
    /// seconds scores P/S; shorter windows scale proportionally.
    #[must_use]
    pub fn players_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.point.players() as f64 / self.seconds * self.ticks as f64 / TICKS_PER_DAY as f64
        } else {
            0.0
        }
    }

    /// World-ticks simulated per wall-clock second.
    #[must_use]
    pub fn ticks_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            (self.point.worlds * self.ticks) as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// Fraction of group-settle calls the match memo replayed instead
    /// of walking candidates, in [0, 1]. Zero when nothing settled.
    #[must_use]
    pub fn match_skip_rate(&self) -> f64 {
        let total = self.match_skips + self.match_full;
        if total > 0 {
            self.match_skips as f64 / total as f64
        } else {
            0.0
        }
    }
}

/// The streaming one-region configuration of one federated world.
/// Public so the allocation-smoke and determinism tests exercise the
/// exact workload the sweep runs.
#[must_use]
pub fn world_config(
    point: &SweepPoint,
    world: usize,
    ticks: usize,
    master_seed: u64,
) -> SimulationConfig {
    let days = (ticks as u64).div_ceil(TICKS_PER_DAY).max(1);
    // Every world gets its own seed stream; the offset keeps world 0 of
    // different points distinct as well.
    let seed = master_seed
        .wrapping_add(point.players())
        .wrapping_add(world as u64);
    let mut rs = RuneScapeConfig::paper_default(days, seed);
    rs.regions.truncate(1);
    rs.regions[0].groups = point.groups_per_world;
    // The streaming workload replaces the materialized trace wholesale,
    // so build the config through the workload-parameterized scenario
    // constructor — generating the standard trace per world just to
    // throw it away cost more than a third of the 1M point's wall time.
    let mut game = mmog_sim::scenario::prediction_impact_with_workload(
        PredictorKind::LastValue,
        AllocationMode::Dynamic,
        &ScenarioOpts::smoke(seed),
        rs.into(),
    );
    game.ticks = Some(ticks);
    game.train_ticks = 0;
    game.warmup_ticks = 0;
    game.master_seed = seed;
    game
}

fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Runs one sweep point: builds every world's streaming configuration
/// and fans the runs across the parallel layer. World order (and so the
/// semantic section) is independent of `--jobs`.
///
/// Resets the process-global latency registry first so each point's
/// snapshot covers exactly its own worlds — callers interleaving other
/// instrumented work with a sweep should snapshot before calling.
#[must_use]
pub fn run_point(point: &SweepPoint, ticks: usize, master_seed: u64) -> PointResult {
    let worlds: Vec<usize> = (0..point.worlds).collect();
    mmog_obs::reset_latency();
    // Counters are process-global and cumulative: deltas around the
    // point isolate this point's skip activity.
    let c_skips = mmog_obs::counter("sim.match.skips", mmog_obs::Domain::Timing);
    let c_full = mmog_obs::counter("sim.match.full", mmog_obs::Domain::Timing);
    let skips_before = c_skips.get();
    let full_before = c_full.get();
    let start = std::time::Instant::now();
    let reports = mmog_par::par_map(&worlds, |&w| {
        Simulation::new(world_config(point, w, ticks, master_seed)).run()
    });
    let seconds = start.elapsed().as_secs_f64();
    let match_skips = c_skips.get().wrapping_sub(skips_before);
    let match_full = c_full.get().wrapping_sub(full_before);
    let latency = mmog_obs::snapshot_latency()
        .into_iter()
        .filter(|(path, snap)| path.starts_with("sim/run/") && snap.count > 0)
        .collect();
    let worlds = reports
        .iter()
        .enumerate()
        .map(|(w, r)| WorldSummary::from_report(w, r))
        .collect();
    PointResult {
        point: *point,
        ticks,
        seconds,
        peak_rss_kb: peak_rss_kb(),
        worlds,
        latency,
        match_skips,
        match_full,
    }
}

/// Runs the whole ladder, reporting progress on stdout.
#[must_use]
pub fn run_sweep(points: &[SweepPoint], ticks: usize, master_seed: u64) -> Vec<PointResult> {
    points
        .iter()
        .map(|p| {
            let result = run_point(p, ticks, master_seed);
            println!(
                "scale/{}: {} players, {} worlds x {} groups, {:.2}s ({:.0} players/s, {:.1} world-ticks/s, {:.1}% match skips)",
                p.label,
                p.players(),
                p.worlds,
                p.groups_per_world,
                result.seconds,
                result.players_per_sec(),
                result.ticks_per_sec(),
                result.match_skip_rate() * 100.0,
            );
            result
        })
        .collect()
}

/// Renders the deterministic section alone: identical bytes for any
/// `--jobs` and any machine (the determinism suite compares this output
/// across worker counts through the trace differ).
#[must_use]
pub fn render_semantic(results: &[PointResult]) -> String {
    let mut out = String::from("{\n    \"points\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "      {{\"label\": \"{}\", \"players\": {}, \"worlds\": [\n",
            r.point.label,
            r.point.players()
        ));
        for (j, w) in r.worlds.iter().enumerate() {
            let wc = if j + 1 == r.worlds.len() { "" } else { "," };
            out.push_str(&format!(
                "        {{\"world\": {}, \"avg_over_cpu\": {:.6}, \"avg_under_cpu\": {:.6}, \
                 \"events\": {}, \"samples\": {}, \"unmet_steps\": {}}}{wc}\n",
                w.world, w.avg_over_cpu, w.avg_under_cpu, w.events, w.samples, w.unmet_steps
            ));
        }
        out.push_str(&format!("      ]}}{comma}\n"));
    }
    out.push_str("    ]\n  }");
    out
}

/// Renders the full `BENCH_scale.json` document
/// (`mmog-scale-bench/v2`). The `stages` array matches the shape
/// `obs_gate`'s bench comparison reads (`path`, `total_ms`), with
/// throughput fields alongside; v2 adds a per-stage `latency` object
/// (engine path → log-bucketed snapshot with percentiles) feeding the
/// p99 gate and `latency_report`; `semantic` embeds [`render_semantic`].
#[must_use]
pub fn render_json(results: &[PointResult], ticks: usize, seed: u64) -> String {
    let jobs = mmog_par::jobs();
    let cpus = mmog_par::available_jobs();
    let wall: f64 = results.iter().map(|r| r.seconds).sum();
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"mmog-scale-bench/v2\",\n");
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str(&format!("  \"logical_cpus\": {cpus},\n"));
    out.push_str(&format!("  \"ticks\": {ticks},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str("  \"stages\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let rss = r
            .peak_rss_kb
            .map_or("null".to_string(), |kb| kb.to_string());
        let latency = mmog_obs::json::Value::Obj(
            r.latency
                .iter()
                .map(|(path, snap)| (path.clone(), snap.to_value()))
                .collect(),
        )
        .render();
        out.push_str(&format!(
            "    {{\"path\": \"scale/{}\", \"players\": {}, \"worlds\": {}, \"groups\": {}, \
             \"total_ms\": {:.3}, \"players_per_sec\": {:.0}, \"ticks_per_sec\": {:.2}, \
             \"peak_rss_kb\": {rss}, \"match_skips\": {}, \"match_full\": {}, \
             \"match_skip_rate\": {:.4}, \"latency\": {latency}}}{comma}\n",
            r.point.label,
            r.point.players(),
            r.point.worlds,
            r.point.worlds as u64 * u64::from(r.point.groups_per_world),
            r.seconds * 1e3,
            r.players_per_sec(),
            r.ticks_per_sec(),
            r.match_skips,
            r.match_full,
            r.match_skip_rate(),
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"semantic\": {},\n", render_semantic(results)));
    out.push_str(&format!("  \"wall_seconds\": {wall:.3}\n"));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_matches_flags() {
        let quick = sweep_points(true, false);
        assert_eq!(
            quick.iter().map(|p| p.label).collect::<Vec<_>>(),
            ["10k", "100k"]
        );
        let default = sweep_points(false, false);
        assert_eq!(default.last().unwrap().label, "1M");
        let full = sweep_points(false, true);
        assert_eq!(full.last().unwrap().label, "10M");
        assert_eq!(full.last().unwrap().players(), 10_000_000);
        for p in &full {
            let expected: u64 = match p.label {
                "10k" => 10_000,
                "100k" => 100_000,
                "1M" => 1_000_000,
                "10M" => 10_000_000,
                other => panic!("unexpected point {other}"),
            };
            assert_eq!(p.players(), expected, "{}", p.label);
        }
    }

    #[test]
    fn world_config_is_streaming_and_seed_distinct() {
        let p = SweepPoint {
            label: "10k",
            worlds: 1,
            groups_per_world: 5,
        };
        let cfg = world_config(&p, 0, 120, 2008);
        assert_eq!(cfg.games[0].workload.group_count(), 5);
        assert!(matches!(
            cfg.games[0].workload,
            mmog_sim::engine::GameWorkload::Streaming(_)
        ));
        assert_eq!(cfg.ticks, Some(120));
        let other = world_config(&p, 1, 120, 2008);
        assert_ne!(cfg.master_seed, other.master_seed);
    }

    #[test]
    fn tiny_sweep_produces_gate_compatible_json() {
        let p = SweepPoint {
            label: "10k",
            worlds: 2,
            groups_per_world: 2,
        };
        let results = run_sweep(&[p], 30, 7);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].worlds.len(), 2);
        assert!(results[0].worlds.iter().all(|w| w.samples == 30));
        let json = render_json(&results, 30, 7);
        // The bench-gate reader must accept this document as-is, and an
        // identical run must pass the p99 gate it feeds.
        let baseline = mmog_obs_analyze::gate::make_bench_baseline(&json).unwrap();
        let thresholds = mmog_obs_analyze::gate::BenchThresholds::default();
        let outcome = mmog_obs_analyze::gate::check_bench(&baseline, &json, &thresholds).unwrap();
        assert!(outcome.pass(), "{:?}", outcome.failures);
        // And the document itself parses as JSON with the v2 latency
        // section carrying the engine's per-tick distribution.
        let doc = mmog_obs::json::parse(&json).unwrap();
        assert_eq!(
            doc.get("schema").and_then(mmog_obs::json::Value::as_str),
            Some("mmog-scale-bench/v2")
        );
        assert!(doc.get("semantic").is_some());
        let stage = &doc
            .get("stages")
            .and_then(mmog_obs::json::Value::as_arr)
            .unwrap()[0];
        let tick = stage
            .get("latency")
            .and_then(|l| l.get("sim/run/tick"))
            .expect("v2 stages carry sim/run/tick latency");
        let count = tick.get("count").and_then(mmog_obs::json::Value::as_u64);
        assert_eq!(count, Some(2 * 30), "one tick record per world-tick");
        let snap = mmog_obs::LatencySnapshot::from_value(tick).unwrap();
        assert!(snap.quantile(0.99).is_some());
    }

    #[test]
    fn semantic_section_ignores_timing() {
        let p = SweepPoint {
            label: "10k",
            worlds: 1,
            groups_per_world: 2,
        };
        let mut results = run_sweep(&[p], 20, 11);
        let a = render_semantic(&results);
        results[0].seconds *= 100.0;
        results[0].peak_rss_kb = Some(123_456);
        let b = render_semantic(&results);
        assert_eq!(a, b, "semantic rendering must not depend on timing");
    }
}
