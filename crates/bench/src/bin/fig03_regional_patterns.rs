//! Regenerates Figure 3 (regional load envelope, IQR, ACF).
fn main() {
    let opts = mmog_bench::RunOpts::from_args();
    print!(
        "{}",
        mmog_bench::experiments::fig03_regional_patterns(&opts)
    );
}
