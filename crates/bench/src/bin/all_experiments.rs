//! Runs the full experiment suite and writes one report per table and
//! figure under `results/`.
//!
//! The header prints the Table II evaluation-space coverage map; each
//! experiment then regenerates its figure/table (see DESIGN.md §4 for
//! the experiment index). Pass `--quick` for a smoke-scale run or
//! `--days N --cap N` for custom scales.
//!
//! The 20 experiments are independent (each builds its workload through
//! the shared process-wide cache), so they fan out across `--jobs N`
//! worker threads (default: all logical CPUs; `--jobs 1` reproduces the
//! serial path). Reports are collected in suite order and printed and
//! written exactly as the serial runner did — byte-identical output for
//! any job count. Wall-clock timings land in `results/BENCH_parallel.json`.

use mmog_bench::experiments as exp;
use mmog_bench::RunOpts;
use std::fs;
use std::path::Path;
use std::time::Instant;

const TABLE2: &str = "\
Table II: evaluation-space coverage (bold = the section's focus)
Section  Allocation    Predictors  Update models  Policies  Latency  MMOGs
V-B      static+dyn.   ALL         O(n^2)         HP-1/2    none     one
V-C      dynamic       Neural      ALL            optimal   none     one
V-D      dynamic       Neural      O(n^2)         ALL       none     one
V-E      dynamic       Neural      O(n^2)         east/west ALL      one
V-F      dynamic       Neural      O(n^2) mix     optimal   none     SEVERAL
";

/// Renders the timing report as JSON (the workspace's serde is an
/// offline no-op shim, so the handful of fields are formatted by hand).
/// Every entry carries the jobs/CPU context it ran under, and the
/// suite-wide per-stage span breakdown from `mmog-obs` follows the
/// experiment list.
fn timing_json(opts: &RunOpts, cores: usize, timings: &[(&str, f64)], wall_seconds: f64) -> String {
    let serial_sum: f64 = timings.iter().map(|(_, s)| s).sum();
    let speedup = if wall_seconds > 0.0 {
        serial_sum / wall_seconds
    } else {
        1.0
    };
    let jobs = mmog_par::jobs();
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str(&format!("  \"logical_cpus\": {cores},\n"));
    out.push_str(&format!(
        "  \"scale\": {{\"days\": {}, \"cap\": {}, \"seed\": {}}},\n",
        opts.days,
        opts.cap.map_or("null".to_string(), |c| c.to_string()),
        opts.seed
    ));
    out.push_str("  \"experiments\": [\n");
    for (i, (name, secs)) in timings.iter().enumerate() {
        let comma = if i + 1 == timings.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"seconds\": {secs:.3}, \
             \"jobs\": {jobs}, \"logical_cpus\": {cores}}}{comma}\n"
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"stages\": [\n");
    let spans = mmog_obs::snapshot_spans();
    for (i, (path, s)) in spans.iter().enumerate() {
        let comma = if i + 1 == spans.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"path\": \"{path}\", \"calls\": {}, \"total_ms\": {:.3}, \
             \"mean_us\": {:.2}}}{comma}\n",
            s.calls,
            s.total_ns as f64 / 1e6,
            s.mean_us()
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"experiment_seconds_sum\": {serial_sum:.3},\n"));
    out.push_str(&format!("  \"wall_seconds\": {wall_seconds:.3},\n"));
    out.push_str(&format!("  \"speedup_vs_serial_sum\": {speedup:.2}\n"));
    out.push_str("}\n");
    out
}

fn main() {
    let opts = RunOpts::from_args();
    let out_dir = Path::new("results");
    fs::create_dir_all(out_dir).expect("cannot create results/");
    println!("{TABLE2}");
    println!(
        "Running the full suite at scale: {} days, group cap {:?}, seed {} ({} jobs)\n",
        opts.days,
        opts.cap,
        opts.seed,
        mmog_par::jobs()
    );

    let experiments: Vec<(&str, fn(&RunOpts) -> String)> = vec![
        ("fig01_growth", exp::fig01_growth),
        ("fig02_global_population", exp::fig02_global_population),
        ("fig03_regional_patterns", exp::fig03_regional_patterns),
        ("fig04_packet_cdfs", exp::fig04_packet_cdfs),
        ("table1_emulator_sets", exp::table1_emulator_sets),
        ("fig05_prediction_accuracy", exp::fig05_prediction_accuracy),
        ("fig06_prediction_time", exp::fig06_prediction_time),
        ("table5_prediction_impact", exp::table5_prediction_impact),
        ("fig08_static_vs_dynamic", exp::fig08_static_vs_dynamic),
        (
            "fig09_10_table6_interaction",
            exp::fig09_10_table6_interaction,
        ),
        ("fig11_resource_bulk", exp::fig11_resource_bulk),
        ("fig12_time_bulk", exp::fig12_time_bulk),
        ("fig13_latency_tolerance", exp::fig13_latency_tolerance),
        (
            "fig14_allocation_by_center",
            exp::fig14_allocation_by_center,
        ),
        ("table7_multi_mmog", exp::table7_multi_mmog),
        ("ablation_headroom", exp::ablation_headroom),
        ("ablation_aoi", exp::ablation_aoi),
        ("ablation_priority", exp::ablation_priority),
        ("fig_faults", exp::fig_faults),
        ("fig_scenarios", exp::fig_scenarios),
    ];

    // Fan the suite out; results come back in suite order regardless of
    // completion order, so printing and files match the serial runner.
    let suite_start = Instant::now();
    let reports: Vec<(String, f64)> = mmog_par::par_map(&experiments, |&(_, f)| {
        let start = Instant::now();
        let report = f(&opts);
        (report, start.elapsed().as_secs_f64())
    });
    let wall_seconds = suite_start.elapsed().as_secs_f64();

    let mut timings: Vec<(&str, f64)> = Vec::with_capacity(experiments.len());
    for ((name, _), (report, secs)) in experiments.iter().zip(&reports) {
        let path = out_dir.join(format!("{name}.txt"));
        fs::write(&path, report).expect("cannot write report");
        println!("== {name} ({secs:.1}s) -> {}", path.display());
        println!("{report}");
        timings.push((name, *secs));
    }

    let cores = mmog_par::available_jobs();
    let json = timing_json(&opts, cores, &timings, wall_seconds);
    let bench_path = out_dir.join("BENCH_parallel.json");
    fs::write(&bench_path, &json).expect("cannot write timing report");
    println!(
        "== suite wall time {wall_seconds:.1}s over {} experiments ({} jobs, {cores} CPUs) -> {}",
        timings.len(),
        mmog_par::jobs(),
        bench_path.display()
    );

    // Observability exports: the JSONL event log (--trace / MMOG_TRACE)
    // and the metrics summary (--metrics).
    match mmog_obs::flush_trace() {
        Ok(Some(path)) => println!("== event trace -> {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("== event trace write failed: {e}"),
    }
    match mmog_obs::flush_ts() {
        Ok(paths) => {
            for path in paths {
                println!("== time series -> {}", path.display());
            }
        }
        Err(e) => eprintln!("== time-series write failed: {e}"),
    }
    if opts.metrics {
        // Give the summary the suite wall time so the `obs/self`
        // section can report the recorder's overhead as a percentage.
        mmog_obs::note_wall_seconds(wall_seconds);
        let summary_path = out_dir.join("OBS_summary.json");
        fs::write(&summary_path, mmog_obs::summary_json()).expect("cannot write OBS summary");
        println!("== metrics summary -> {}\n", summary_path.display());
        println!("{}", mmog_obs::render_summary_table());
        // Flame-style span profile next to the summary. Pure wall-clock
        // data, so the whole file sits inside timing markers — anything
        // byte-comparing results/ masks it wholesale.
        let spans = mmog_obs::snapshot_spans();
        let profile =
            mmog_obs_analyze::render_profile(&mmog_obs_analyze::profile_from_spans(&spans));
        let spans_path = out_dir.join("OBS_spans.txt");
        fs::write(&spans_path, mmog_obs::timing_block(&profile))
            .expect("cannot write span profile");
        println!("== span profile -> {}", spans_path.display());
    }
}
