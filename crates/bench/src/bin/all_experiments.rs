//! Runs the full experiment suite and writes one report per table and
//! figure under `results/`.
//!
//! The header prints the Table II evaluation-space coverage map; each
//! experiment then regenerates its figure/table (see DESIGN.md §4 for
//! the experiment index). Pass `--quick` for a smoke-scale run or
//! `--days N --cap N` for custom scales.

use mmog_bench::experiments as exp;
use mmog_bench::RunOpts;
use std::fs;
use std::path::Path;
use std::time::Instant;

const TABLE2: &str = "\
Table II: evaluation-space coverage (bold = the section's focus)
Section  Allocation    Predictors  Update models  Policies  Latency  MMOGs
V-B      static+dyn.   ALL         O(n^2)         HP-1/2    none     one
V-C      dynamic       Neural      ALL            optimal   none     one
V-D      dynamic       Neural      O(n^2)         ALL       none     one
V-E      dynamic       Neural      O(n^2)         east/west ALL      one
V-F      dynamic       Neural      O(n^2) mix     optimal   none     SEVERAL
";

fn main() {
    let opts = RunOpts::from_args();
    let out_dir = Path::new("results");
    fs::create_dir_all(out_dir).expect("cannot create results/");
    println!("{TABLE2}");
    println!(
        "Running the full suite at scale: {} days, group cap {:?}, seed {}\n",
        opts.days, opts.cap, opts.seed
    );

    let experiments: Vec<(&str, fn(&RunOpts) -> String)> = vec![
        ("fig01_growth", exp::fig01_growth),
        ("fig02_global_population", exp::fig02_global_population),
        ("fig03_regional_patterns", exp::fig03_regional_patterns),
        ("fig04_packet_cdfs", exp::fig04_packet_cdfs),
        ("table1_emulator_sets", exp::table1_emulator_sets),
        ("fig05_prediction_accuracy", exp::fig05_prediction_accuracy),
        ("fig06_prediction_time", exp::fig06_prediction_time),
        ("table5_prediction_impact", exp::table5_prediction_impact),
        ("fig08_static_vs_dynamic", exp::fig08_static_vs_dynamic),
        (
            "fig09_10_table6_interaction",
            exp::fig09_10_table6_interaction,
        ),
        ("fig11_resource_bulk", exp::fig11_resource_bulk),
        ("fig12_time_bulk", exp::fig12_time_bulk),
        ("fig13_latency_tolerance", exp::fig13_latency_tolerance),
        (
            "fig14_allocation_by_center",
            exp::fig14_allocation_by_center,
        ),
        ("table7_multi_mmog", exp::table7_multi_mmog),
        ("ablation_headroom", exp::ablation_headroom),
        ("ablation_aoi", exp::ablation_aoi),
        ("ablation_priority", exp::ablation_priority),
    ];

    for (name, f) in experiments {
        let start = Instant::now();
        let report = f(&opts);
        let elapsed = start.elapsed();
        let path = out_dir.join(format!("{name}.txt"));
        fs::write(&path, &report).expect("cannot write report");
        println!("== {name} ({elapsed:.1?}) -> {}", path.display());
        println!("{report}");
    }
}
