//! Regenerates Figure 1 (MMORPG market growth).
fn main() {
    let opts = mmog_bench::RunOpts::from_args();
    print!("{}", mmog_bench::experiments::fig01_growth(&opts));
}
