//! Regenerates Table I (the eight emulated data sets).
fn main() {
    let opts = mmog_bench::RunOpts::from_args();
    print!("{}", mmog_bench::experiments::table1_emulator_sets(&opts));
}
