//! Regenerates Figure 12 (time-bulk sweep).
fn main() {
    let opts = mmog_bench::RunOpts::from_args();
    print!("{}", mmog_bench::experiments::fig12_time_bulk(&opts));
}
