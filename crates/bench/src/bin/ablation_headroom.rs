//! Regenerates the headroom ablation.
fn main() {
    let opts = mmog_bench::RunOpts::from_args();
    print!("{}", mmog_bench::experiments::ablation_headroom(&opts));
}
