//! Regenerates Figure 14 (per-center allocation at Very-far tolerance).
fn main() {
    let opts = mmog_bench::RunOpts::from_args();
    print!(
        "{}",
        mmog_bench::experiments::fig14_allocation_by_center(&opts)
    );
}
