//! Regenerates Figure 11 (CPU resource-bulk sweep).
fn main() {
    let opts = mmog_bench::RunOpts::from_args();
    print!("{}", mmog_bench::experiments::fig11_resource_bulk(&opts));
}
