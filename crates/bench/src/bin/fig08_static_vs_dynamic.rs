//! Regenerates Figure 8 (static vs dynamic over-allocation).
fn main() {
    let opts = mmog_bench::RunOpts::from_args();
    print!(
        "{}",
        mmog_bench::experiments::fig08_static_vs_dynamic(&opts)
    );
}
