//! Regenerates Figures 9-10 and Table VI (update-model impact).
fn main() {
    let opts = mmog_bench::RunOpts::from_args();
    print!(
        "{}",
        mmog_bench::experiments::fig09_10_table6_interaction(&opts)
    );
}
