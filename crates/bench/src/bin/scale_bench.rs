//! `scale_bench` — the federation scale sweep (10k → 10M synthetic
//! players), writing `results/BENCH_scale.json`.
//!
//! Each sweep point federates independent worlds, every one driven by a
//! streaming one-region RuneScape-like workload (O(1) memory per group
//! in the trace length) and fanned across the parallel layer; see
//! [`mmog_bench::scale`]. The JSON is gate-compatible: CI compares it
//! against `results/BASELINE_scale.json` with `obs_gate --bench-only`.
//!
//! ```text
//! scale_bench [--quick] [--full] [--ticks N] [--jobs N] [--seed N]
//!             [--flight N] [--flight-dump] [--tick-deadline-ms N]
//!             [--trace PATH] [--ts DIR] [--live PATH] [--live-every N]
//! ```
//!
//! `--quick` stops the ladder at 100k (the CI smoke scale), the default
//! runs 10k → 1M, `--full` adds the 10M point. `--ticks` sets the
//! per-world tick count (default one day, 720). The flight flags
//! install the per-run flight recorder exactly as the experiment
//! binaries do (see `mmog_bench::cli`): each world keeps a bounded
//! window of full-detail events and dumps `FLIGHT_<run>.jsonl` only on
//! a trigger.

use mmog_bench::scale;
use mmog_util::time::TICKS_PER_DAY;
use std::fs;
use std::path::Path;

struct Opts {
    quick: bool,
    full: bool,
    ticks: usize,
    seed: u64,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        quick: false,
        full: false,
        ticks: TICKS_PER_DAY as usize,
        seed: 2008,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => opts.quick = true,
            "--full" => opts.full = true,
            "--ticks" if i + 1 < args.len() => {
                opts.ticks = args[i + 1].parse().unwrap_or(opts.ticks);
                i += 1;
            }
            "--seed" if i + 1 < args.len() => {
                opts.seed = args[i + 1].parse().unwrap_or(opts.seed);
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    // --jobs and the observability flags (--trace, --flight, --ts,
    // --live, ...) share the experiment binaries' parser, so every
    // binary spells them identically.
    let run = mmog_bench::cli::RunOpts::parse(args);
    run.apply_jobs();
    run.apply_obs();
    opts
}

fn main() {
    let opts = parse_args();
    let points = scale::sweep_points(opts.quick, opts.full);
    println!(
        "Scale sweep: {} -> {} players, {} ticks/world, {} jobs",
        points.first().map_or(0, scale::SweepPoint::players),
        points.last().map_or(0, scale::SweepPoint::players),
        opts.ticks,
        mmog_par::jobs()
    );
    let results = scale::run_sweep(&points, opts.ticks, opts.seed);
    let json = scale::render_json(&results, opts.ticks, opts.seed);
    let out_dir = Path::new("results");
    fs::create_dir_all(out_dir).expect("cannot create results/");
    let path = out_dir.join("BENCH_scale.json");
    fs::write(&path, &json).expect("cannot write BENCH_scale.json");
    println!("-> {}", path.display());
    print!("{json}");
    match mmog_obs::flush_trace() {
        Ok(Some(path)) => println!("== event trace -> {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("== event trace write failed: {e}"),
    }
    match mmog_obs::flush_ts() {
        Ok(paths) => {
            for path in paths {
                println!("== time series -> {}", path.display());
            }
        }
        Err(e) => eprintln!("== time-series write failed: {e}"),
    }
}
