//! Regenerates the scenario-engine figure (mutation intensity × mode).
//!
//! Standalone entry point for the scenario plane: writes the rendered
//! table to `results/fig_scenarios.txt`, flushes the event trace when
//! one is configured (`--trace` / `MMOG_TRACE`), and exports the
//! metrics summary under `--metrics` — the artifacts the
//! `scenario-smoke` CI job validates.

use std::fs;
use std::path::Path;

fn main() {
    let opts = mmog_bench::RunOpts::from_args();
    let report = mmog_bench::experiments::fig_scenarios(&opts);
    print!("{report}");
    let out_dir = Path::new("results");
    fs::create_dir_all(out_dir).expect("cannot create results/");
    let path = out_dir.join("fig_scenarios.txt");
    fs::write(&path, &report).expect("cannot write report");
    println!("== fig_scenarios -> {}", path.display());
    match mmog_obs::flush_trace() {
        Ok(Some(path)) => println!("== event trace -> {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("== event trace write failed: {e}"),
    }
    match mmog_obs::flush_ts() {
        Ok(paths) => {
            for path in paths {
                println!("== time series -> {}", path.display());
            }
        }
        Err(e) => eprintln!("== time-series write failed: {e}"),
    }
    if opts.metrics {
        let summary_path = out_dir.join("OBS_summary.json");
        fs::write(&summary_path, mmog_obs::summary_json()).expect("cannot write OBS summary");
        println!("== metrics summary -> {}", summary_path.display());
    }
}
