//! Regenerates Figure 4 (packet length / IAT CDFs).
fn main() {
    let opts = mmog_bench::RunOpts::from_args();
    print!("{}", mmog_bench::experiments::fig04_packet_cdfs(&opts));
}
