//! Regenerates Figure 2 (global concurrent players with population events).
fn main() {
    let opts = mmog_bench::RunOpts::from_args();
    print!(
        "{}",
        mmog_bench::experiments::fig02_global_population(&opts)
    );
}
