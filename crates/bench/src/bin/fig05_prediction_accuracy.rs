//! Regenerates Figure 5 (prediction accuracy bake-off).
fn main() {
    let opts = mmog_bench::RunOpts::from_args();
    print!(
        "{}",
        mmog_bench::experiments::fig05_prediction_accuracy(&opts)
    );
}
