//! Regenerates Table VII (multi-MMOG workload mixes).
fn main() {
    let opts = mmog_bench::RunOpts::from_args();
    print!("{}", mmog_bench::experiments::table7_multi_mmog(&opts));
}
