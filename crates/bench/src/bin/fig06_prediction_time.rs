//! Regenerates Figure 6 (per-prediction latency).
fn main() {
    let opts = mmog_bench::RunOpts::from_args();
    print!("{}", mmog_bench::experiments::fig06_prediction_time(&opts));
}
