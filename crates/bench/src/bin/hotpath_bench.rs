//! Hot-path kernel benchmark: runs the full experiment suite, captures
//! the per-stage timing spans, and writes a before/after comparison to
//! `results/BENCH_hotpath.json`.
//!
//! The "before" column is the span table measured at the pre-optimization
//! commit (the parent of the allocation-free kernel rewrite) with the
//! same scale flags on the same class of machine — it is embedded here
//! so CI can regenerate the comparison without checking out two
//! revisions. Stages that did not exist before the rewrite (the
//! per-kernel timers added with it) report `"before_ms": null`.
//!
//! Usage mirrors `all_experiments`: `--quick` for the smoke scale,
//! `--days N --cap N --jobs N` for custom scales. Speedups are only
//! apples-to-apples against the embedded baseline when run with
//! `--quick --jobs 1`.

use mmog_bench::experiments as exp;
use mmog_bench::RunOpts;
use std::fs;
use std::path::Path;
use std::time::Instant;

/// Per-stage span table measured at the pre-optimization commit
/// (`01b8dad`) with `--quick --jobs 1` on a 1-logical-CPU machine:
/// `(path, calls, total_ms)`.
const BASELINE_COMMIT: &str = "01b8dad";
const BASELINE_JOBS: usize = 1;
const BASELINE_CPUS: usize = 1;
const BASELINE_WALL_SECONDS: f64 = 44.118;
const BASELINE: &[(&str, u64, f64)] = &[
    ("predict/measure_latency", 4, 42.648),
    ("predict/neural/train", 1449, 37378.359),
    ("sim/build", 59, 37151.145),
    ("sim/build/train", 59, 37145.882),
    ("sim/run", 59, 5717.809),
    ("sim/run/match_settle", 103_680, 3333.534),
    ("sim/run/predict_score", 127_440, 1869.068),
    ("sim/run/reduce", 127_440, 488.284),
    ("world/emulator/run", 8, 725.990),
];

fn baseline_ms(path: &str) -> Option<f64> {
    BASELINE
        .iter()
        .find(|(p, _, _)| *p == path)
        .map(|&(_, _, ms)| ms)
}

fn main() {
    let opts = RunOpts::from_args();
    let out_dir = Path::new("results");
    fs::create_dir_all(out_dir).expect("cannot create results/");

    let experiments: Vec<(&str, fn(&RunOpts) -> String)> = vec![
        ("fig01_growth", exp::fig01_growth),
        ("fig02_global_population", exp::fig02_global_population),
        ("fig03_regional_patterns", exp::fig03_regional_patterns),
        ("fig04_packet_cdfs", exp::fig04_packet_cdfs),
        ("table1_emulator_sets", exp::table1_emulator_sets),
        ("fig05_prediction_accuracy", exp::fig05_prediction_accuracy),
        ("fig06_prediction_time", exp::fig06_prediction_time),
        ("table5_prediction_impact", exp::table5_prediction_impact),
        ("fig08_static_vs_dynamic", exp::fig08_static_vs_dynamic),
        (
            "fig09_10_table6_interaction",
            exp::fig09_10_table6_interaction,
        ),
        ("fig11_resource_bulk", exp::fig11_resource_bulk),
        ("fig12_time_bulk", exp::fig12_time_bulk),
        ("fig13_latency_tolerance", exp::fig13_latency_tolerance),
        (
            "fig14_allocation_by_center",
            exp::fig14_allocation_by_center,
        ),
        ("table7_multi_mmog", exp::table7_multi_mmog),
        ("ablation_headroom", exp::ablation_headroom),
        ("ablation_aoi", exp::ablation_aoi),
        ("ablation_priority", exp::ablation_priority),
        ("fig_faults", exp::fig_faults),
    ];

    println!(
        "Hot-path benchmark: {} experiments at {} days, cap {:?}, seed {} ({} jobs)",
        experiments.len(),
        opts.days,
        opts.cap,
        opts.seed,
        mmog_par::jobs()
    );

    mmog_obs::reset_spans();
    let start = Instant::now();
    let reports = mmog_par::par_map(&experiments, |&(_, f)| f(&opts));
    let wall_seconds = start.elapsed().as_secs_f64();
    // Reports are discarded (all_experiments owns the committed copies)
    // but must be fully materialised for the timing to be honest.
    let report_bytes: usize = reports.iter().map(String::len).sum();

    let jobs = mmog_par::jobs();
    let cores = mmog_par::available_jobs();
    let spans = mmog_obs::snapshot_spans();

    let mut out = String::from("{\n");
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str(&format!("  \"logical_cpus\": {cores},\n"));
    out.push_str(&format!(
        "  \"scale\": {{\"days\": {}, \"cap\": {}, \"seed\": {}}},\n",
        opts.days,
        opts.cap.map_or("null".to_string(), |c| c.to_string()),
        opts.seed
    ));
    out.push_str(&format!(
        "  \"baseline\": {{\"commit\": \"{BASELINE_COMMIT}\", \"jobs\": {BASELINE_JOBS}, \
         \"logical_cpus\": {BASELINE_CPUS}, \"wall_seconds\": {BASELINE_WALL_SECONDS}}},\n"
    ));
    out.push_str("  \"stages\": [\n");
    for (i, (path, s)) in spans.iter().enumerate() {
        let comma = if i + 1 == spans.len() { "" } else { "," };
        let after_ms = s.total_ns as f64 / 1e6;
        let (before, speedup) = match baseline_ms(path) {
            Some(b) if after_ms > 0.0 => (format!("{b:.3}"), format!("{:.2}", b / after_ms)),
            Some(b) => (format!("{b:.3}"), "null".to_string()),
            None => ("null".to_string(), "null".to_string()),
        };
        out.push_str(&format!(
            "    {{\"path\": \"{path}\", \"calls\": {}, \"before_ms\": {before}, \
             \"after_ms\": {after_ms:.3}, \"mean_us\": {:.2}, \"speedup\": {speedup}}}{comma}\n",
            s.calls,
            s.mean_us()
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"wall_seconds\": {wall_seconds:.3},\n"));
    out.push_str(&format!("  \"report_bytes\": {report_bytes}\n"));
    out.push_str("}\n");

    let path = out_dir.join("BENCH_hotpath.json");
    fs::write(&path, &out).expect("cannot write BENCH_hotpath.json");
    println!(
        "== hot-path timings ({wall_seconds:.1}s wall) -> {}",
        path.display()
    );
    print!("{out}");
}
