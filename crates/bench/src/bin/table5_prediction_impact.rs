//! Regenerates Table V and Figure 7 (prediction impact on provisioning).
fn main() {
    let opts = mmog_bench::RunOpts::from_args();
    print!(
        "{}",
        mmog_bench::experiments::table5_prediction_impact(&opts)
    );
}
