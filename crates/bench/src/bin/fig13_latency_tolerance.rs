//! Regenerates Figure 13 (latency-tolerance allocation distribution).
fn main() {
    let opts = mmog_bench::RunOpts::from_args();
    print!(
        "{}",
        mmog_bench::experiments::fig13_latency_tolerance(&opts)
    );
}
