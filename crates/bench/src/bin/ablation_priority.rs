//! Regenerates the request-priority extension (the paper's future work).
fn main() {
    let opts = mmog_bench::RunOpts::from_args();
    print!("{}", mmog_bench::experiments::ablation_priority(&opts));
}
