//! Validates observability artifacts: an `OBS_summary.json` against the
//! `mmog-obs/v1` schema, and optionally a JSONL event trace for
//! well-formedness, contiguous sequence numbers, and — per event — the
//! exact field set its kind declares in `mmog_obs::EVENT_FIELDS`
//! (names, order, and types, covering the fault plane's
//! `center_down`/`center_up`/`lease_revoked`/`reprovision` family).
//!
//! Usage: `obs_check <OBS_summary.json> [trace.jsonl]`
//!        `obs_check --scale <BENCH_scale.json>`
//!
//! `--scale` validates a `scale_bench` document instead: the
//! `mmog-scale-bench/v1` schema tag, the gate-compatible timing shape
//! (`jobs`, `logical_cpus`, `stages[{path, total_ms}]`,
//! `wall_seconds`), the per-stage throughput fields, and the
//! deterministic `semantic` section.
//!
//! Exits non-zero with a diagnostic on the first violation — the CI
//! observability smoke job runs this against a quick-scale
//! `all_experiments` run, and the scale smoke job against
//! `scale_bench --quick` output.

use mmog_obs::json::Value;
use std::process::ExitCode;

fn check_summary(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    mmog_obs::validate_summary(&text).map_err(|e| format!("{path}: {e}"))?;
    println!("OK summary {path}");
    Ok(())
}

fn check_trace(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut count = 0u64;
    let mut kinds_seen = 0usize;
    let mut seen = [false; mmog_obs::KNOWN_EVENT_KINDS.len()];
    for (i, line) in text.lines().enumerate() {
        let (seq, _scope, kind, value) =
            mmog_obs::parse_trace_line(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        if seq != i as u64 {
            return Err(format!(
                "{path}:{}: sequence number {seq}, expected {i}",
                i + 1
            ));
        }
        // Unknown kinds and field-set violations (missing/extra fields,
        // order skew, wrong types) both fail here.
        mmog_obs::validate_event_fields(&kind, &value)
            .map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        if let Some(idx) = mmog_obs::KNOWN_EVENT_KINDS.iter().position(|k| *k == kind) {
            if !seen[idx] {
                seen[idx] = true;
                kinds_seen += 1;
            }
        }
        count += 1;
    }
    if count == 0 {
        return Err(format!("{path}: trace is empty"));
    }
    println!("OK trace {path} ({count} events, {kinds_seen} kinds, all field sets valid)");
    Ok(())
}

/// Validates a `BENCH_scale.json` document (the testable core is
/// [`check_scale_text`]; this wrapper adds file I/O).
fn check_scale(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    check_scale_text(&text).map_err(|e| format!("{path}: {e}"))?;
    println!("OK scale bench {path}");
    Ok(())
}

fn check_scale_text(text: &str) -> Result<(), String> {
    let doc = mmog_obs::json::parse(text).map_err(|e| e.to_string())?;
    match doc.get("schema").and_then(Value::as_str) {
        Some("mmog-scale-bench/v1") => {}
        Some(other) => return Err(format!("unknown schema {other:?}")),
        None => return Err("missing schema field".into()),
    }
    for field in ["jobs", "logical_cpus", "ticks", "seed"] {
        doc.get(field)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("missing or non-integer {field}"))?;
    }
    doc.get("wall_seconds")
        .and_then(Value::as_f64)
        .ok_or("missing or non-numeric wall_seconds")?;
    let stages = doc
        .get("stages")
        .and_then(Value::as_arr)
        .ok_or("missing stages array")?;
    if stages.is_empty() {
        return Err("stages array is empty".into());
    }
    for (i, s) in stages.iter().enumerate() {
        let path = s
            .get("path")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("stages[{i}]: missing path"))?;
        if !path.starts_with("scale/") {
            return Err(format!("stages[{i}]: path {path:?} must start with scale/"));
        }
        for field in ["total_ms", "players_per_sec", "ticks_per_sec"] {
            s.get(field)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("stages[{i}]: missing or non-numeric {field}"))?;
        }
        for field in ["players", "worlds", "groups"] {
            s.get(field)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("stages[{i}]: missing or non-integer {field}"))?;
        }
        // peak_rss_kb is platform-dependent: integer or null, but
        // must be present.
        let rss = s
            .get("peak_rss_kb")
            .ok_or_else(|| format!("stages[{i}]: missing peak_rss_kb"))?;
        if rss.as_u64().is_none() && !matches!(rss, Value::Null) {
            return Err(format!("stages[{i}]: peak_rss_kb must be integer or null"));
        }
    }
    let points = doc
        .get("semantic")
        .and_then(|s| s.get("points"))
        .and_then(Value::as_arr)
        .ok_or("missing semantic.points array")?;
    if points.len() != stages.len() {
        return Err(format!(
            "semantic.points has {} entries but stages has {}",
            points.len(),
            stages.len()
        ));
    }
    for (i, p) in points.iter().enumerate() {
        let worlds = p
            .get("worlds")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("semantic.points[{i}]: missing worlds array"))?;
        if worlds.is_empty() {
            return Err(format!("semantic.points[{i}]: worlds array is empty"));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(first) = args.next() else {
        eprintln!("usage: obs_check <OBS_summary.json> [trace.jsonl] | obs_check --scale <BENCH_scale.json>");
        return ExitCode::FAILURE;
    };
    let result = if first == "--scale" {
        match args.next() {
            Some(path) => check_scale(&path),
            None => Err("--scale needs a path".into()),
        }
    } else {
        check_summary(&first).and_then(|()| match args.next() {
            Some(trace) => check_trace(&trace),
            None => Ok(()),
        })
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("INVALID: {e}");
            ExitCode::FAILURE
        }
    }
}
