//! Validates observability artifacts: an `OBS_summary.json` against the
//! `mmog-obs/v1` schema, and optionally a JSONL event trace for
//! well-formedness, contiguous sequence numbers, and — per event — the
//! exact field set its kind declares in `mmog_obs::EVENT_FIELDS`
//! (names, order, and types, covering the fault plane's
//! `center_down`/`center_up`/`lease_revoked`/`reprovision` family).
//!
//! Usage: `obs_check <OBS_summary.json> [trace.jsonl]`
//!        `obs_check --scale <BENCH_scale.json>`
//!        `obs_check --flight <FLIGHT_run.jsonl>`
//!        `obs_check --ts <TS_run.json | OBS_live.json>...`
//!
//! Trace validation also replays the causal lease-lifecycle chain
//! (`mmog_obs_analyze::lifecycle`): every grant must name a request,
//! lease keys must never be reused, and every granted lease must reach
//! exactly one terminal release/revocation — orphans fail the check.
//! The kind-coverage count is reported against
//! `mmog_obs::KNOWN_EVENT_KINDS.len()`, so it tracks schema growth
//! automatically instead of a hand-maintained total.
//!
//! `--scale` validates a `scale_bench` document instead: the
//! `mmog-scale-bench/v1` or `/v2` schema tag, the gate-compatible
//! timing shape (`jobs`, `logical_cpus`, `stages[{path, total_ms}]`,
//! `wall_seconds`), the per-stage throughput fields, the v2 per-stage
//! `latency` sections (well-formed snapshots with monotone
//! percentiles), and the deterministic `semantic` section. Unknown
//! schema versions are rejected outright.
//!
//! `--flight` validates a flight-recorder dump: a `flight_meta` first
//! line, the standard trace envelope and per-kind field sets on every
//! record, ticks monotone within the window the meta line declares,
//! and no more distinct ticks than `retain_ticks` — the recorder's
//! bounded-window guarantee, checked from the artifact alone.
//!
//! Exits non-zero with a diagnostic on the first violation — the CI
//! observability smoke job runs this against a quick-scale
//! `all_experiments` run, and the scale smoke job against
//! `scale_bench --quick` output.

use mmog_obs::json::Value;
use std::process::ExitCode;

fn check_summary(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    mmog_obs::validate_summary(&text).map_err(|e| format!("{path}: {e}"))?;
    println!("OK summary {path}");
    Ok(())
}

fn check_trace(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut count = 0u64;
    let mut kinds_seen = 0usize;
    let mut seen = [false; mmog_obs::KNOWN_EVENT_KINDS.len()];
    for (i, line) in text.lines().enumerate() {
        let (seq, _scope, kind, value) =
            mmog_obs::parse_trace_line(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        if seq != i as u64 {
            return Err(format!(
                "{path}:{}: sequence number {seq}, expected {i}",
                i + 1
            ));
        }
        // Unknown kinds and field-set violations (missing/extra fields,
        // order skew, wrong types) both fail here.
        mmog_obs::validate_event_fields(&kind, &value)
            .map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        if let Some(idx) = mmog_obs::KNOWN_EVENT_KINDS.iter().position(|k| *k == kind) {
            if !seen[idx] {
                seen[idx] = true;
                kinds_seen += 1;
            }
        }
        count += 1;
    }
    if count == 0 {
        return Err(format!("{path}: trace is empty"));
    }
    // Causality invariants: reconstruct every lease's lifecycle and
    // fail on orphans, reused keys, or grants without requests.
    let report = mmog_obs_analyze::analyze_lifecycle(&text).map_err(|e| format!("{path}: {e}"))?;
    mmog_obs_analyze::check_lifecycle(&report).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "OK trace {path} ({count} events, {kinds_seen}/{} kinds, all field sets valid, \
         {} leases reconstructed)",
        mmog_obs::KNOWN_EVENT_KINDS.len(),
        report.total_leases()
    );
    Ok(())
}

/// Validates a time-series (`TS_<run>.json`) or live-snapshot
/// (`OBS_live.json`) document, dispatching on the embedded schema tag.
fn check_ts(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = mmog_obs::json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    match doc.get("schema").and_then(Value::as_str) {
        Some(mmog_obs::TS_SCHEMA) => {
            mmog_obs::validate_ts(&doc).map_err(|e| format!("{path}: {e}"))?;
            println!("OK time series {path}");
        }
        Some(mmog_obs::LIVE_SCHEMA) => {
            mmog_obs::validate_live(&doc).map_err(|e| format!("{path}: {e}"))?;
            println!("OK live snapshot {path}");
        }
        Some(other) => return Err(format!("{path}: unknown schema {other:?}")),
        None => return Err(format!("{path}: missing schema field")),
    }
    Ok(())
}

/// Validates a `BENCH_scale.json` document (the testable core is
/// [`check_scale_text`]; this wrapper adds file I/O).
fn check_scale(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    check_scale_text(&text).map_err(|e| format!("{path}: {e}"))?;
    println!("OK scale bench {path}");
    Ok(())
}

fn check_scale_text(text: &str) -> Result<(), String> {
    let doc = mmog_obs::json::parse(text)?;
    // v1: pre-latency documents, still accepted (committed baselines
    // age slowly). v2: per-stage latency sections become mandatory.
    let latency_required = match doc.get("schema").and_then(Value::as_str) {
        Some("mmog-scale-bench/v1") => false,
        Some("mmog-scale-bench/v2") => true,
        Some(other) => return Err(format!("unknown schema {other:?}")),
        None => return Err("missing schema field".into()),
    };
    for field in ["jobs", "logical_cpus", "ticks", "seed"] {
        doc.get(field)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("missing or non-integer {field}"))?;
    }
    doc.get("wall_seconds")
        .and_then(Value::as_f64)
        .ok_or("missing or non-numeric wall_seconds")?;
    let stages = doc
        .get("stages")
        .and_then(Value::as_arr)
        .ok_or("missing stages array")?;
    if stages.is_empty() {
        return Err("stages array is empty".into());
    }
    for (i, s) in stages.iter().enumerate() {
        let path = s
            .get("path")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("stages[{i}]: missing path"))?;
        if !path.starts_with("scale/") {
            return Err(format!("stages[{i}]: path {path:?} must start with scale/"));
        }
        for field in ["total_ms", "players_per_sec", "ticks_per_sec"] {
            s.get(field)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("stages[{i}]: missing or non-numeric {field}"))?;
        }
        for field in ["players", "worlds", "groups"] {
            s.get(field)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("stages[{i}]: missing or non-integer {field}"))?;
        }
        // peak_rss_kb is platform-dependent: integer or null, but
        // must be present.
        let rss = s
            .get("peak_rss_kb")
            .ok_or_else(|| format!("stages[{i}]: missing peak_rss_kb"))?;
        if rss.as_u64().is_none() && !matches!(rss, Value::Null) {
            return Err(format!("stages[{i}]: peak_rss_kb must be integer or null"));
        }
        // Match-skip telemetry: optional (absent from pre-memo
        // documents), but when present must be coherent.
        for field in ["match_skips", "match_full"] {
            if let Some(v) = s.get(field) {
                v.as_u64()
                    .ok_or_else(|| format!("stages[{i}]: {field} must be an integer"))?;
            }
        }
        if let Some(rate) = s.get("match_skip_rate") {
            let rate = rate
                .as_f64()
                .ok_or_else(|| format!("stages[{i}]: match_skip_rate must be numeric"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!(
                    "stages[{i}]: match_skip_rate {rate} outside [0, 1]"
                ));
            }
        }
        match s.get("latency") {
            Some(latency) => check_stage_latency(latency, i)?,
            None if latency_required => {
                return Err(format!(
                    "stages[{i}]: v2 documents require a latency section"
                ))
            }
            None => {}
        }
    }
    let points = doc
        .get("semantic")
        .and_then(|s| s.get("points"))
        .and_then(Value::as_arr)
        .ok_or("missing semantic.points array")?;
    if points.len() != stages.len() {
        return Err(format!(
            "semantic.points has {} entries but stages has {}",
            points.len(),
            stages.len()
        ));
    }
    for (i, p) in points.iter().enumerate() {
        let worlds = p
            .get("worlds")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("semantic.points[{i}]: missing worlds array"))?;
        if worlds.is_empty() {
            return Err(format!("semantic.points[{i}]: worlds array is empty"));
        }
    }
    Ok(())
}

/// Validates one stage's `latency` object: every entry must parse as a
/// `LatencySnapshot` (which re-checks that bucket counts sum to the
/// recorded count) and report monotone percentiles.
fn check_stage_latency(latency: &Value, stage: usize) -> Result<(), String> {
    let entries = latency
        .as_obj()
        .ok_or_else(|| format!("stages[{stage}]: latency must be an object"))?;
    if entries.is_empty() {
        return Err(format!("stages[{stage}]: latency object is empty"));
    }
    for (path, value) in entries {
        let snap = mmog_obs::LatencySnapshot::from_value(value)
            .map_err(|e| format!("stages[{stage}]: latency {path}: {e}"))?;
        if snap.count == 0 {
            return Err(format!("stages[{stage}]: latency {path}: empty snapshot"));
        }
        let quantiles: Vec<u64> = [0.5, 0.9, 0.99, 0.999]
            .iter()
            .filter_map(|&p| snap.quantile(p))
            .collect();
        if quantiles.windows(2).any(|w| w[0] > w[1]) {
            return Err(format!(
                "stages[{stage}]: latency {path}: percentiles not monotone: {quantiles:?}"
            ));
        }
    }
    Ok(())
}

/// Validates a `FLIGHT_<run>.jsonl` dump (the testable core is
/// [`check_flight_text`]; this wrapper adds file I/O).
fn check_flight(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let (records, ticks) = check_flight_text(&text).map_err(|e| format!("{path}: {e}"))?;
    println!("OK flight {path} ({records} records over {ticks} ticks, window bounded)");
    Ok(())
}

fn check_flight_text(text: &str) -> Result<(u64, u64), String> {
    let mut lines = text.lines().enumerate();
    let (_, meta_line) = lines.next().ok_or("dump is empty")?;
    let (seq, _scope, kind, meta) =
        mmog_obs::parse_trace_line(meta_line).map_err(|e| format!("line 1: {e}"))?;
    if seq != 0 || kind != "flight_meta" {
        return Err(format!(
            "line 1: expected flight_meta at seq 0, found {kind:?} at seq {seq}"
        ));
    }
    mmog_obs::validate_event_fields(&kind, &meta).map_err(|e| format!("line 1: {e}"))?;
    let meta_u64 = |field: &str| {
        meta.get(field)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("line 1: flight_meta missing {field}"))
    };
    let retain_ticks = meta_u64("retain_ticks")?;
    let tick_from = meta_u64("tick_from")?;
    let tick_to = meta_u64("tick_to")?;
    let declared_records = meta_u64("records")?;
    match meta.get("trigger").and_then(Value::as_str) {
        Some(
            "fault" | "partition" | "migration" | "deadline_overrun" | "gate_breach" | "explicit",
        ) => {}
        Some(other) => return Err(format!("line 1: unknown trigger {other:?}")),
        None => return Err("line 1: flight_meta missing trigger".into()),
    }
    if tick_from > tick_to {
        return Err(format!(
            "line 1: window [{tick_from}, {tick_to}] is inverted"
        ));
    }
    let mut records = 0u64;
    let mut distinct_ticks = 0u64;
    let mut last_tick: Option<u64> = None;
    for (i, line) in lines {
        let n = i + 1;
        let (seq, _scope, kind, value) =
            mmog_obs::parse_trace_line(line).map_err(|e| format!("line {n}: {e}"))?;
        if seq != i as u64 {
            return Err(format!("line {n}: sequence number {seq}, expected {i}"));
        }
        mmog_obs::validate_event_fields(&kind, &value).map_err(|e| format!("line {n}: {e}"))?;
        let tick = value
            .get("tick")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("line {n}: record without a tick"))?;
        if !(tick_from..=tick_to).contains(&tick) {
            return Err(format!(
                "line {n}: tick {tick} outside the declared window [{tick_from}, {tick_to}]"
            ));
        }
        if last_tick.is_some_and(|last| tick < last) {
            return Err(format!("line {n}: tick {tick} is not monotone"));
        }
        if last_tick != Some(tick) {
            distinct_ticks += 1;
            last_tick = Some(tick);
        }
        records += 1;
    }
    if records != declared_records {
        return Err(format!(
            "flight_meta declares {declared_records} records, dump has {records}"
        ));
    }
    // The recorder's contract: the retained window never exceeds the
    // configured tick span, no matter how long the run was.
    if distinct_ticks > retain_ticks {
        return Err(format!(
            "{distinct_ticks} distinct ticks exceed retain_ticks {retain_ticks}"
        ));
    }
    Ok((records, distinct_ticks))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(first) = args.next() else {
        eprintln!(
            "usage: obs_check <OBS_summary.json> [trace.jsonl] | obs_check --scale \
             <BENCH_scale.json> | obs_check --flight <FLIGHT_run.jsonl> | obs_check --ts \
             <TS_run.json | OBS_live.json>..."
        );
        return ExitCode::FAILURE;
    };
    let result = if first == "--scale" {
        match args.next() {
            Some(path) => check_scale(&path),
            None => Err("--scale needs a path".into()),
        }
    } else if first == "--ts" {
        let paths: Vec<String> = args.collect();
        if paths.is_empty() {
            Err("--ts needs at least one path".into())
        } else {
            paths.iter().try_for_each(|p| check_ts(p))
        }
    } else if first == "--flight" {
        match args.next() {
            Some(path) => check_flight(&path),
            None => Err("--flight needs a path".into()),
        }
    } else {
        check_summary(&first).and_then(|()| match args.next() {
            Some(trace) => check_trace(&trace),
            None => Ok(()),
        })
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("INVALID: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmog_obs::{FlightConfig, FlightRecorder, FlightTrigger};

    fn snapshot_json(values: &[u64]) -> String {
        let h = mmog_obs::LatencyHisto::new();
        for &v in values {
            h.record(v);
        }
        h.snapshot().to_value().render()
    }

    fn scale_doc(schema: &str, latency: Option<&str>) -> String {
        let latency = latency.map_or(String::new(), |l| format!(r#", "latency": {l}"#));
        format!(
            r#"{{"schema":"{schema}","jobs":1,"logical_cpus":1,"ticks":30,"seed":7,
  "stages":[{{"path":"scale/10k","players":10000,"worlds":1,"groups":5,"total_ms":5.0,
    "players_per_sec":1.0,"ticks_per_sec":1.0,"peak_rss_kb":null{latency}}}],
  "semantic":{{"points":[{{"label":"10k","players":10000,"worlds":[{{"world":0}}]}}]}},
  "wall_seconds":0.005}}"#
        )
    }

    #[test]
    fn scale_schema_versions() {
        let snap = snapshot_json(&[1_000, 2_000, 3_000]);
        let latency = format!(r#"{{"sim/run/tick":{snap}}}"#);
        // v2 with a well-formed latency section passes.
        check_scale_text(&scale_doc("mmog-scale-bench/v2", Some(&latency))).unwrap();
        // v2 without latency fails; v1 without it passes.
        let err = check_scale_text(&scale_doc("mmog-scale-bench/v2", None)).unwrap_err();
        assert!(err.contains("latency"), "{err}");
        check_scale_text(&scale_doc("mmog-scale-bench/v1", None)).unwrap();
        // Unknown schema versions are rejected with a clear message.
        let err = check_scale_text(&scale_doc("mmog-scale-bench/v3", None)).unwrap_err();
        assert!(err.contains("unknown schema"), "{err}");
        // A latency section whose bucket counts disagree with `count`
        // is malformed.
        let lying = latency.replace(r#""count":3"#, r#""count":4"#);
        assert!(check_scale_text(&scale_doc("mmog-scale-bench/v2", Some(&lying))).is_err());
    }

    fn dump_text(retain: u64, push_ticks: std::ops::Range<u64>) -> String {
        let dir = std::env::temp_dir().join(format!("obs_check_flight_{retain}"));
        let mut cfg = FlightConfig::new(retain);
        cfg.dump_dir.clone_from(&dir);
        let mut rec = FlightRecorder::new(cfg);
        for t in push_ticks {
            rec.begin_tick(t);
            rec.push("tick", t, &[1.0, 2.0, 0.0]);
            rec.push("tick_latency", t, &[10.0, 5.0, 0.0, 20.0]);
        }
        let path = rec
            .trigger(FlightTrigger::Explicit, 99, "check-test")
            .unwrap()
            .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        text
    }

    #[test]
    fn flight_dump_round_trips_and_tampering_fails() {
        let text = dump_text(8, 0..100);
        let (records, ticks) = check_flight_text(&text).unwrap();
        assert_eq!(ticks, 8, "eviction keeps exactly retain_ticks ticks");
        assert_eq!(records, 16);

        // A record tick outside the declared window fails.
        let outside = text.replace(r#""tick":99,"#, r#""tick":3,"#);
        let err = check_flight_text(&outside).unwrap_err();
        assert!(err.contains("monotone") || err.contains("outside"), "{err}");

        // A lying record count fails.
        let lying = text.replace(r#""records":16"#, r#""records":7"#);
        assert!(check_flight_text(&lying).unwrap_err().contains("records"));

        // More distinct ticks than retain_ticks fails.
        let narrow = text.replace(r#""retain_ticks":8"#, r#""retain_ticks":4"#);
        let err = check_flight_text(&narrow).unwrap_err();
        assert!(err.contains("retain_ticks"), "{err}");

        // The meta line must come first.
        let mut lines: Vec<&str> = text.lines().collect();
        lines.rotate_left(1);
        assert!(check_flight_text(&lines.join("\n")).is_err());
        assert!(check_flight_text("").is_err());
    }

    #[test]
    fn flight_triggers_whitelist_scenario_kinds() {
        let text = dump_text(4, 0..10);
        assert!(text.contains(r#""trigger":"explicit""#), "fixture shape");
        // Every trigger the engine can fire validates, including the
        // scenario plane's partition and migration dumps.
        for trigger in [
            "fault",
            "partition",
            "migration",
            "deadline_overrun",
            "gate_breach",
        ] {
            let swapped = text.replace(
                r#""trigger":"explicit""#,
                &format!(r#""trigger":"{trigger}""#),
            );
            check_flight_text(&swapped).unwrap_or_else(|e| panic!("trigger {trigger}: {e}"));
        }
        // Unknown triggers still fail loudly.
        let bogus = text.replace(r#""trigger":"explicit""#, r#""trigger":"gremlin""#);
        let err = check_flight_text(&bogus).unwrap_err();
        assert!(err.contains("unknown trigger"), "{err}");
    }
}
