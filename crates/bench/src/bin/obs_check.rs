//! Validates observability artifacts: an `OBS_summary.json` against the
//! `mmog-obs/v1` schema, and optionally a JSONL event trace for
//! well-formedness, contiguous sequence numbers, and — per event — the
//! exact field set its kind declares in `mmog_obs::EVENT_FIELDS`
//! (names, order, and types, covering the fault plane's
//! `center_down`/`center_up`/`lease_revoked`/`reprovision` family).
//!
//! Usage: `obs_check <OBS_summary.json> [trace.jsonl]`
//!
//! Exits non-zero with a diagnostic on the first violation — the CI
//! observability smoke job runs this against a quick-scale
//! `all_experiments` run.

use std::process::ExitCode;

fn check_summary(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    mmog_obs::validate_summary(&text).map_err(|e| format!("{path}: {e}"))?;
    println!("OK summary {path}");
    Ok(())
}

fn check_trace(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut count = 0u64;
    let mut kinds_seen = 0usize;
    let mut seen = [false; mmog_obs::KNOWN_EVENT_KINDS.len()];
    for (i, line) in text.lines().enumerate() {
        let (seq, _scope, kind, value) =
            mmog_obs::parse_trace_line(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        if seq != i as u64 {
            return Err(format!(
                "{path}:{}: sequence number {seq}, expected {i}",
                i + 1
            ));
        }
        // Unknown kinds and field-set violations (missing/extra fields,
        // order skew, wrong types) both fail here.
        mmog_obs::validate_event_fields(&kind, &value)
            .map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        if let Some(idx) = mmog_obs::KNOWN_EVENT_KINDS.iter().position(|k| *k == kind) {
            if !seen[idx] {
                seen[idx] = true;
                kinds_seen += 1;
            }
        }
        count += 1;
    }
    if count == 0 {
        return Err(format!("{path}: trace is empty"));
    }
    println!("OK trace {path} ({count} events, {kinds_seen} kinds, all field sets valid)");
    Ok(())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(summary) = args.next() else {
        eprintln!("usage: obs_check <OBS_summary.json> [trace.jsonl]");
        return ExitCode::FAILURE;
    };
    let result = check_summary(&summary).and_then(|()| match args.next() {
        Some(trace) => check_trace(&trace),
        None => Ok(()),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("INVALID: {e}");
            ExitCode::FAILURE
        }
    }
}
