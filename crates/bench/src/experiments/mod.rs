//! Experiment implementations, one function per table/figure.
//!
//! Every function renders a plain-text report whose rows correspond to
//! the series or table cells of the paper's figure. The binaries print
//! it; `bin/all_experiments` also writes it under `results/`.

pub mod faults;
pub mod prediction;
pub mod provisioning;
pub mod scenarios;
pub mod workload;

pub use faults::fig_faults;
pub use prediction::{fig05_prediction_accuracy, fig06_prediction_time};
pub use provisioning::{
    ablation_aoi, ablation_headroom, ablation_priority, fig08_static_vs_dynamic,
    fig09_10_table6_interaction, fig11_resource_bulk, fig12_time_bulk, fig13_latency_tolerance,
    fig14_allocation_by_center, table5_prediction_impact, table7_multi_mmog,
};
pub use scenarios::fig_scenarios;
pub use workload::{
    fig01_growth, fig02_global_population, fig03_regional_patterns, fig04_packet_cdfs,
    table1_emulator_sets,
};
