//! The fault-injection experiment: provisioning under deterministic
//! data-center failures.
//!
//! Sweeps the fault intensity (a multiplier on the base spec's event
//! rates) against the allocation mode, measuring what the paper's
//! evaluation never stresses: how the request–offer matching mechanism
//! *re-provisions* after outages, degradations and lease revocations.
//! Dynamic allocation self-heals — lost capacity is re-requested from
//! surviving centers within the latency tolerance, so unserved
//! player-ticks return to zero after every outage; static allocation
//! only re-buys its fixed peak block and pays for it all day.

use crate::cli::RunOpts;
use mmog_datacenter::resource::ResourceType;
use mmog_faults::FaultSpec;
use mmog_sim::engine::{AllocationMode, SimReport, Simulation};
use mmog_sim::report::render_table;
use mmog_sim::scenario;
use std::fmt::Write as _;

/// The sweep's fault-intensity multipliers: the unfaulted baseline,
/// the base spec, and a 4× storm.
pub const FAULT_MULTIPLIERS: [f64; 3] = [0.0, 1.0, 4.0];

fn mode_label(mode: AllocationMode) -> &'static str {
    match mode {
        AllocationMode::Dynamic => "dynamic",
        AllocationMode::Static => "static",
    }
}

fn fault_row(label: &str, report: &SimReport) -> Vec<String> {
    let recovered = report.recovery_ticks.len();
    let mean_recovery = if recovered == 0 {
        "-".to_string()
    } else {
        let sum: u64 = report.recovery_ticks.iter().sum();
        format!("{:.1}", sum as f64 / recovered as f64)
    };
    vec![
        label.to_string(),
        report.fault_events.to_string(),
        report.leases_revoked.to_string(),
        report.reprovisions.to_string(),
        format!("{:.0}", report.unserved_player_ticks),
        recovered.to_string(),
        mean_recovery,
        report.unrecovered_outages.to_string(),
        report.rejections.total().to_string(),
        format!("{:.2}", report.metrics.avg_over(ResourceType::Cpu)),
        format!("{:.2}", report.metrics.avg_under(ResourceType::Cpu)),
    ]
}

const FAULT_HEADERS: [&str; 11] = [
    "Setup",
    "Faults",
    "Revoked",
    "Reprov",
    "Unserved p-t",
    "Healed",
    "Mean heal [ticks]",
    "Unhealed",
    "Rejections",
    "Over CPU [%]",
    "Under CPU [%]",
];

/// The fault-injection figure: outage intensity × allocation mode.
/// The base spec comes from `--faults` (default: the paper-default
/// rates), scaled by [`FAULT_MULTIPLIERS`].
#[must_use]
pub fn fig_faults(opts: &RunOpts) -> String {
    let sopts = opts.scenario();
    let base = opts.faults.clone().unwrap_or_else(FaultSpec::paper_default);
    let cells: Vec<(AllocationMode, f64)> = [AllocationMode::Dynamic, AllocationMode::Static]
        .iter()
        .flat_map(|&mode| FAULT_MULTIPLIERS.iter().map(move |&m| (mode, m)))
        .collect();
    let reports = mmog_par::par_map(&cells, |&(mode, mult)| {
        Simulation::new(scenario::fault_injection(&base.scaled(mult), mode, &sopts)).run()
    });
    let mut out =
        String::from("Fault injection: deterministic outages, degradations, lease revocations\n\n");
    let _ = writeln!(out, "base spec: {}\n", base.label());
    let rows: Vec<Vec<String>> = cells
        .iter()
        .zip(&reports)
        .map(|(&(mode, mult), report)| {
            fault_row(&format!("{} x{mult:.1}", mode_label(mode)), report)
        })
        .collect();
    out.push_str(&render_table(&FAULT_HEADERS, &rows));
    out.push_str(
        "\nExpected shape: dynamic allocation re-provisions lost capacity from \
         surviving centers (every outage heals, unserved player-ticks stay \
         bounded); static allocation only re-buys its peak block, so its \
         unserved volume grows with the fault rate while its over-allocation \
         stays an order of magnitude above dynamic's.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> RunOpts {
        RunOpts {
            days: 1,
            cap: Some(2),
            seed: 11,
            ..RunOpts::default()
        }
    }

    #[test]
    fn fig_faults_renders_all_cells() {
        let out = fig_faults(&quick_opts());
        assert!(out.contains("dynamic x0.0"));
        assert!(out.contains("dynamic x4.0"));
        assert!(out.contains("static x1.0"));
        assert!(out.contains("base spec:"));
        // Deterministic: the same opts render the same bytes.
        assert_eq!(out, fig_faults(&quick_opts()));
    }

    #[test]
    fn custom_spec_overrides_base() {
        let mut opts = quick_opts();
        opts.faults = Some(FaultSpec::parse("outages=0.1,seed=3").expect("valid spec"));
        let out = fig_faults(&opts);
        assert!(out.contains("seed=3"), "label reflects the custom spec");
    }
}
