//! Prediction experiments: Figures 5 and 6.

use crate::cli::RunOpts;
use mmog_predict::eval::{evaluate_accuracy, measure_latency, PredictorKind};
use mmog_sim::report::render_table;
use mmog_util::stats::Summary;
use mmog_util::time::TICKS_PER_DAY;
use mmog_world::config::TraceSet;
use mmog_world::emulator::GameEmulator;
use std::fmt::Write as _;

/// Generates the eight Table I data sets as world-total entity series
/// (two simulated days: the first is the collection phase). The eight
/// emulator runs are independent, so they fan out in parallel, and the
/// world-emulator cache shares each run with every other experiment
/// that asks for the same set.
fn emulated_series(seed: u64) -> Vec<(TraceSet, Vec<f64>)> {
    mmog_par::par_map(&TraceSet::ALL, |&set| {
        let run = GameEmulator::run_cached(set.config(), seed, 2 * TICKS_PER_DAY as usize);
        (set, run.total_series().into_values())
    })
}

/// Figure 5 — the accuracy of seven prediction algorithms on the eight
/// emulated data sets.
#[must_use]
pub fn fig05_prediction_accuracy(opts: &RunOpts) -> String {
    let mut out =
        String::from("Figure 5: prediction error [%] of seven algorithms on eight data sets\n\n");
    let sets = emulated_series(opts.seed);
    let mut rows: Vec<Vec<String>> = PredictorKind::FIGURE5
        .iter()
        .map(|k| vec![k.label().to_string()])
        .collect();
    let mut winners: Vec<String> = Vec::new();
    for (set, series) in &sets {
        let results = evaluate_accuracy(series, &PredictorKind::FIGURE5, 0.5);
        let best = results
            .iter()
            .min_by(|a, b| a.error_pct.partial_cmp(&b.error_pct).expect("finite"))
            .expect("non-empty");
        winners.push(format!("{}: {}", set.name(), best.name));
        for (row, res) in rows.iter_mut().zip(&results) {
            row.push(format!("{:.2}", res.error_pct));
        }
    }
    let mut headers = vec!["Predictor"];
    let names: Vec<&str> = sets.iter().map(|(s, _)| s.name()).collect();
    headers.extend(&names);
    out.push_str(&render_table(&headers, &rows));
    let _ = writeln!(out, "\nBest per set: {}", winners.join("; "));

    // Aggregate ranking (paper: the neural predictor performs best).
    let mut totals: Vec<(String, f64)> = PredictorKind::FIGURE5
        .iter()
        .enumerate()
        .map(|(i, k)| {
            let sum: f64 = rows[i][1..]
                .iter()
                .map(|s| s.parse::<f64>().unwrap_or(0.0))
                .sum();
            (k.label().to_string(), sum / sets.len() as f64)
        })
        .collect();
    totals.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    let _ = writeln!(out, "\nMean error ranking (best first):");
    for (name, err) in &totals {
        let _ = writeln!(out, "  {name:<24} {err:.2}%");
    }

    // Extensions beyond the paper's seven: AR(p), Holt, seasonal-naïve.
    let extensions = [
        PredictorKind::Ar,
        PredictorKind::Holt,
        PredictorKind::Seasonal,
    ];
    let _ = writeln!(
        out,
        "\nExtension predictors (mean error over the eight sets):"
    );
    for kind in extensions {
        let mean: f64 = sets
            .iter()
            .map(|(_, series)| evaluate_accuracy(series, &[kind], 0.5)[0].error_pct)
            .sum::<f64>()
            / sets.len() as f64;
        let _ = writeln!(out, "  {:<24} {mean:.2}%", kind.label());
    }
    out
}

/// Figure 6 — the time taken to make one prediction.
#[must_use]
pub fn fig06_prediction_time(opts: &RunOpts) -> String {
    let mut out =
        String::from("Figure 6: per-prediction latency (micro-seconds; min/Q1/median/Q3/max)\n\n");
    // The figure shows Neural, Sliding window, Average, Exp smoothing;
    // Last value is excluded ("no computational requirements").
    let kinds = [
        PredictorKind::Neural,
        PredictorKind::SlidingWindowMedian,
        PredictorKind::Average,
        PredictorKind::ExpSmoothing50,
    ];
    let (_, series) = &emulated_series(opts.seed)[0];
    let mut rows = Vec::new();
    for kind in kinds {
        let res = measure_latency(kind, series, 50, 2000);
        let us: Vec<f64> = res.samples_ns.iter().map(|ns| ns / 1000.0).collect();
        let s = Summary::of(&us).expect("non-empty samples");
        rows.push(vec![
            res.name,
            format!("{:.4}", s.min),
            format!("{:.4}", s.q1),
            format!("{:.4}", s.median),
            format!("{:.4}", s.q3),
            format!("{:.4}", s.max),
        ]);
    }
    // The measured latencies are wall-clock — Figure 6's subject — so
    // the table lives inside timing markers: the determinism suite
    // masks it and compares everything else byte-for-byte.
    out.push_str(&mmog_obs::timing_block(&render_table(
        &["Predictor", "Min", "Q1", "Median", "Q3", "Max"],
        &rows,
    )));
    out.push_str(
        "\nPaper: the neural predictor is the slowest (~7us on a 2006 desktop) yet still \
         in the fast category; see benches/predictors.rs for the Criterion version.\n",
    );
    out
}
